#!/usr/bin/env python3
"""Compare a fresh BENCH_kernels.json against a committed baseline.

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_kernels.json \
      --current build/bench/BENCH_kernels.json [--warn-pct 10] [--fail-pct 25]

Records are matched on (name, threads) and compared on `seconds`.
Slowdowns above --warn-pct print a warning; slowdowns above --fail-pct
(and any record with bitwise_equal_to_serial == false) fail the run with
exit code 1. Records present in only one file are reported but do not
fail the run, so the baseline can trail the benchmark by one PR.

Stdlib only — runs on a bare CI python3.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path, "r", encoding="utf-8") as f:
        records = json.load(f)
    if not isinstance(records, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    out = {}
    for r in records:
        key = (r["name"], int(r["threads"]))
        if key in out:
            raise ValueError(f"{path}: duplicate record for {key}")
        out[key] = r
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--warn-pct", type=float, default=10.0)
    parser.add_argument("--fail-pct", type=float, default=25.0)
    args = parser.parse_args()

    try:
        baseline = load_records(args.baseline)
        current = load_records(args.current)
    except (OSError, ValueError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    failures = []
    warnings = []
    for key in sorted(set(baseline) & set(current)):
        name, threads = key
        base_s = float(baseline[key]["seconds"])
        cur_s = float(current[key]["seconds"])
        if base_s <= 0.0:
            warnings.append(f"{name} threads={threads}: "
                            f"non-positive baseline seconds {base_s}")
            continue
        delta_pct = (cur_s - base_s) / base_s * 100.0
        line = (f"{name:<16} threads={threads}  "
                f"baseline {base_s:.6f}s  current {cur_s:.6f}s  "
                f"{delta_pct:+.1f}%")
        if delta_pct > args.fail_pct:
            failures.append(line)
        elif delta_pct > args.warn_pct:
            warnings.append(line)
        else:
            print(f"ok    {line}")

    for key in sorted(set(baseline) - set(current)):
        warnings.append(f"{key[0]} threads={key[1]}: missing from current run")
    for key in sorted(set(current) - set(baseline)):
        print(f"note  {key[0]} threads={key[1]}: new record, no baseline")

    for key in sorted(current):
        if current[key].get("bitwise_equal_to_serial") is False:
            failures.append(f"{key[0]} threads={key[1]}: "
                            "parallel result not bitwise equal to serial")

    for w in warnings:
        print(f"WARN  {w}")
    for f in failures:
        print(f"FAIL  {f}")

    if failures:
        print(f"\n{len(failures)} regression(s) above "
              f"{args.fail_pct:.0f}% (or determinism breaks)",
              file=sys.stderr)
        return 1
    print(f"\nall comparisons within {args.fail_pct:.0f}% "
          f"({len(warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
