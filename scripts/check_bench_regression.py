#!/usr/bin/env python3
"""Compare a fresh benchmark JSON against a committed baseline.

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_kernels.json \
      --current build/bench/BENCH_kernels.json [--warn-pct 10] [--fail-pct 25]

Records are matched on (name, threads) and compared on `seconds`.
Kernel-style records carry a `name`; serving records carry a `scenario`
(used as the name) and no `threads` (keyed as threads=0). Pairs where
either side lacks `seconds` are skipped with a note. Slowdowns above
--warn-pct print a warning; slowdowns above --fail-pct (and any record
with bitwise_equal_to_serial == false) fail the run with exit code 1.
Records present in only one file are reported but do not fail the run,
so the baseline can trail the benchmark by one PR.

Thread-scaling gates (--min-speedup name:threads:factor, repeatable;
default matmul_fwd:4:2.5) fail the run when the current file has a
matching record whose speedup_vs_1 falls below the factor. A gate is
skipped, with a note, when the record is absent (e.g. the smoke sweep
stops at 2 threads) or when the recorded hardware_concurrency is below
the thread count — a 1-core CI box cannot exhibit real scaling, and
oversubscribed numbers would only gate on noise. Pass --min-speedup none
to disable.

With --quant, both files are quantization summaries
(BENCH_serving_quant.json: a top-level object whose per-precision
timing records live under "records", keyed on "precision"). On top of
the usual seconds comparison, the current summary is gated on hard
quality floors mirroring the bench binary's own exit gates: int8
link-prediction AUC within 0.01 of fp32, probe cosine >= 0.99, int8
never slower than fp32, and — only when the run reports AVX-VNNI
hardware (avx_vnni == true) — int8 embed throughput >= 2x fp32.

Stdlib only — runs on a bare CI python3.
"""

import argparse
import json
import sys


def load_records(path, quant=False):
    with open(path, "r", encoding="utf-8") as f:
        records = json.load(f)
    if quant:
        if not isinstance(records, dict) or "records" not in records:
            raise ValueError(f"{path}: expected a quant summary object "
                             f"with a 'records' array")
        records = records["records"]
    if not isinstance(records, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    out = {}
    for r in records:
        name = r.get("name", r.get("scenario", r.get("precision")))
        if name is None:
            raise ValueError(f"{path}: record with neither name, scenario, "
                             f"nor precision")
        key = (name, int(r.get("threads", 0)))
        if key in out:
            raise ValueError(f"{path}: duplicate record for {key}")
        out[key] = r
    return out


def quant_quality_failures(path):
    """Hard quality gates on a current quant summary; list of failures."""
    with open(path, "r", encoding="utf-8") as f:
        summary = json.load(f)
    failures = []
    auc_delta = float(summary.get("auc_delta", float("inf")))
    if auc_delta > 0.01:
        failures.append(f"quant: int8 AUC delta {auc_delta:.4f} exceeds "
                        f"the 0.01 accuracy tolerance")
    cosine = float(summary.get("min_probe_cosine", 0.0))
    if cosine < 0.99:
        failures.append(f"quant: min probe cosine {cosine:.5f} below 0.99")
    speedup = float(summary.get("speedup_vs_fp32", 0.0))
    if speedup < 1.0:
        failures.append(f"quant: int8 embed throughput {speedup:.2f}x fp32 "
                        f"— slower than the path it replaces")
    elif summary.get("avx_vnni"):
        if speedup < 2.0:
            failures.append(f"quant: int8 speedup {speedup:.2f}x below the "
                            f"2x floor on AVX-VNNI hardware")
        else:
            print(f"ok    quant speedup_vs_fp32 {speedup:.2f}x "
                  f"(avx_vnni, 2x floor)")
    else:
        print(f"note  quant speedup gate skipped: no AVX-VNNI on this "
              f"machine (measured {speedup:.2f}x)")
    if not failures:
        print(f"ok    quant auc_delta {auc_delta:.4f}  "
              f"min_probe_cosine {cosine:.5f}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--warn-pct", type=float, default=10.0)
    parser.add_argument("--fail-pct", type=float, default=25.0)
    parser.add_argument("--min-speedup", action="append", default=None,
                        metavar="NAME:THREADS:FACTOR",
                        help="thread-scaling gate; repeatable; 'none' "
                             "disables (default matmul_fwd:4:2.5)")
    parser.add_argument("--quant", action="store_true",
                        help="treat both files as BENCH_serving_quant.json "
                             "summaries and apply the int8 quality gates")
    args = parser.parse_args()

    speedup_gates = []
    for spec in (args.min_speedup or ["matmul_fwd:4:2.5"]):
        if spec == "none":
            speedup_gates = []
            break
        try:
            name, threads, factor = spec.split(":")
            speedup_gates.append((name, int(threads), float(factor)))
        except ValueError:
            print(f"error: bad --min-speedup spec {spec!r}", file=sys.stderr)
            return 2

    try:
        baseline = load_records(args.baseline, quant=args.quant)
        current = load_records(args.current, quant=args.quant)
    except (OSError, ValueError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    failures = []
    warnings = []
    if args.quant:
        try:
            failures.extend(quant_quality_failures(args.current))
        except (OSError, ValueError, KeyError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
    for key in sorted(set(baseline) & set(current)):
        name, threads = key
        if "seconds" not in baseline[key] or "seconds" not in current[key]:
            print(f"note  {name} threads={threads}: no seconds field, skipped")
            continue
        base_s = float(baseline[key]["seconds"])
        cur_s = float(current[key]["seconds"])
        if base_s <= 0.0:
            warnings.append(f"{name} threads={threads}: "
                            f"non-positive baseline seconds {base_s}")
            continue
        delta_pct = (cur_s - base_s) / base_s * 100.0
        line = (f"{name:<16} threads={threads}  "
                f"baseline {base_s:.6f}s  current {cur_s:.6f}s  "
                f"{delta_pct:+.1f}%")
        if delta_pct > args.fail_pct:
            failures.append(line)
        elif delta_pct > args.warn_pct:
            warnings.append(line)
        else:
            print(f"ok    {line}")

    for key in sorted(set(baseline) - set(current)):
        warnings.append(f"{key[0]} threads={key[1]}: missing from current run")
    for key in sorted(set(current) - set(baseline)):
        print(f"note  {key[0]} threads={key[1]}: new record, no baseline")

    for key in sorted(current):
        if current[key].get("bitwise_equal_to_serial") is False:
            failures.append(f"{key[0]} threads={key[1]}: "
                            "parallel result not bitwise equal to serial")

    for name, threads, factor in speedup_gates:
        rec = current.get((name, threads))
        if rec is None:
            print(f"note  scaling gate {name} threads={threads}: "
                  "no such record in current run, skipped")
            continue
        cores = rec.get("hardware_concurrency")
        if cores is None or int(cores) < threads:
            print(f"note  scaling gate {name} threads={threads}: "
                  f"machine has {cores} core(s), skipped "
                  "(cannot scale past physical cores)")
            continue
        if "speedup_vs_1" not in rec:
            print(f"note  scaling gate {name} threads={threads}: "
                  "record has no speedup_vs_1, skipped")
            continue
        speedup = float(rec["speedup_vs_1"])
        line = (f"{name:<16} threads={threads}  "
                f"speedup_vs_1 {speedup:.2f}x  required {factor:.2f}x")
        if speedup < factor:
            failures.append(line)
        else:
            print(f"ok    {line}")

    for w in warnings:
        print(f"WARN  {w}")
    for f in failures:
        print(f"FAIL  {f}")

    if failures:
        print(f"\n{len(failures)} regression(s) above "
              f"{args.fail_pct:.0f}% (or determinism breaks)",
              file=sys.stderr)
        return 1
    print(f"\nall comparisons within {args.fail_pct:.0f}% "
          f"({len(warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
