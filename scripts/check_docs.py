#!/usr/bin/env python3
"""Documentation lint, run in CI (docs-lint job).

Three checks keep the operational docs honest as the tree grows:

1. Architecture coverage: every immediate subdirectory of src/ must be
   mentioned in docs/ARCHITECTURE.md (as ``src/<name>`` or ``<name>/``), so
   a new subsystem cannot land without a layer-map entry.

2. Env-var table coverage: every ``CPDG_*`` environment variable referenced
   by the code (any quoted "CPDG_..." literal in src/, bench/, tests/,
   examples/ — the superset of direct getenv() reads, which also catches
   names routed through helpers) must appear in a README.md table row.
   Variables documented in the README but never read by the code are
   reported as warnings only, since docs may legitimately lead the code by
   one PR.

3. Runbook coverage: every serving-surface variable the code reads
   (``CPDG_SERVE_*``, plus the serving fault-drill and live-feed knobs)
   must be mentioned in docs/OPERATIONS.md — an operator knob cannot land
   without runbook guidance.

Exits nonzero on any hard failure, printing one line per problem.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ARCHITECTURE = REPO / "docs" / "ARCHITECTURE.md"
OPERATIONS = REPO / "docs" / "OPERATIONS.md"
README = REPO / "README.md"
CODE_DIRS = ["src", "bench", "tests", "examples"]
CODE_SUFFIXES = {".cc", ".h", ".cpp", ".hpp"}
ENV_VAR_RE = re.compile(r'"(CPDG_[A-Z][A-Z0-9_]*)"')


def find_src_subdirs():
    return sorted(
        p.name for p in (REPO / "src").iterdir()
        if p.is_dir() and not p.name.startswith(".")
    )


def find_env_vars():
    """All quoted CPDG_* literals in the code, mapped to one example use."""
    found = {}
    for top in CODE_DIRS:
        root = REPO / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in CODE_SUFFIXES:
                continue
            text = path.read_text(errors="replace")
            for match in ENV_VAR_RE.finditer(text):
                found.setdefault(match.group(1), path.relative_to(REPO))
    return found


def readme_table_vars(readme_text):
    """CPDG_* names appearing in markdown table rows (lines starting '|')."""
    documented = set()
    for line in readme_text.splitlines():
        if line.lstrip().startswith("|"):
            documented.update(ENV_VAR_RE.findall(line.replace("`", '"')))
            documented.update(re.findall(r"`(CPDG_[A-Z][A-Z0-9_]*)`", line))
    return documented


def main():
    failures = []
    warnings = []

    if not ARCHITECTURE.is_file():
        failures.append(f"missing {ARCHITECTURE.relative_to(REPO)}")
        arch_text = ""
    else:
        arch_text = ARCHITECTURE.read_text()

    for subdir in find_src_subdirs():
        if f"src/{subdir}" not in arch_text and f"{subdir}/" not in arch_text:
            failures.append(
                f"docs/ARCHITECTURE.md does not mention src/{subdir} — add "
                f"it to the layer map"
            )

    if not README.is_file():
        failures.append("missing README.md")
        documented = set()
    else:
        documented = readme_table_vars(README.read_text())

    used = find_env_vars()
    for name in sorted(used):
        if name not in documented:
            failures.append(
                f"env var {name} (read in {used[name]}) is missing from the "
                f"README.md environment-variable table"
            )

    if not OPERATIONS.is_file():
        failures.append(f"missing {OPERATIONS.relative_to(REPO)}")
        ops_text = ""
    else:
        ops_text = OPERATIONS.read_text()
    operator_vars = sorted(
        name for name in used
        if name.startswith(("CPDG_SERVE_", "CPDG_FAULT_SERVE_"))
        or name == "CPDG_BENCH_FEED_EPS"
    )
    for name in operator_vars:
        if name not in ops_text:
            failures.append(
                f"serving knob {name} (read in {used[name]}) is missing "
                f"from the docs/OPERATIONS.md runbook"
            )
    for name in sorted(documented - set(used)):
        warnings.append(
            f"warning: {name} is documented in README.md but never "
            f"referenced by the code"
        )

    for line in warnings:
        print(line)
    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        return 1
    print(
        f"docs lint ok: {len(find_src_subdirs())} src/ subdirs covered, "
        f"{len(used)} env vars documented"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
