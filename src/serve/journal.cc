#include "serve/journal.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "storage/event_log.h"
#include "util/atomic_file.h"
#include "util/byte_codec.h"

namespace cpdg::serve {
namespace {

using storage::FileFooter;
using storage::FileHeader;
using storage::FileKind;
using storage::MappedFile;
using storage::ParsedFile;
using storage::ParseStoreFile;

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IoError("cannot create journal dir " + dir + ": " +
                         std::strerror(errno));
}

}  // namespace

std::string JournalEntryPath(const std::string& dir, int64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "advance-%08lld.log",
                static_cast<long long>(seq));
  return dir + "/" + name;
}

Status AppendJournalEntry(const std::string& dir, int64_t seq,
                          int64_t num_nodes,
                          const std::vector<graph::Event>& events) {
  if (events.empty()) {
    return Status::InvalidArgument("journal entry must not be empty");
  }
  CPDG_RETURN_NOT_OK(EnsureDir(dir));
  util::AtomicFileSink sink;
  CPDG_RETURN_NOT_OK(sink.Open(JournalEntryPath(dir, seq)));
  FileHeader header;
  header.kind = static_cast<uint32_t>(FileKind::kDelta);
  header.num_nodes = num_nodes;
  CPDG_RETURN_NOT_OK(sink.Append(&header, sizeof(header)));
  CPDG_RETURN_NOT_OK(
      sink.Append(events.data(), events.size() * sizeof(graph::Event)));
  FileFooter footer;
  footer.record_count = static_cast<int64_t>(events.size());
  footer.min_time = events.front().time;
  footer.max_time = events.back().time;
  footer.payload_crc =
      util::Crc32(events.data(), events.size() * sizeof(graph::Event));
  CPDG_RETURN_NOT_OK(sink.Append(&footer, sizeof(footer)));
  return sink.Commit();
}

Result<std::vector<std::vector<graph::Event>>> LoadJournal(
    const std::string& dir, int64_t num_nodes) {
  std::vector<std::vector<graph::Event>> entries;
  for (int64_t seq = 0;; ++seq) {
    const std::string path = JournalEntryPath(dir, seq);
    if (!util::FileExists(path)) break;
    CPDG_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
    // Journal entries are small; always CRC them.
    CPDG_ASSIGN_OR_RETURN(
        ParsedFile parsed,
        ParseStoreFile(file, FileKind::kDelta, path, /*verify_crc=*/true));
    if (parsed.header->num_nodes != num_nodes) {
      return Status::IoError(
          "journal entry num_nodes mismatch (" + path + ": " +
          std::to_string(parsed.header->num_nodes) + " vs engine " +
          std::to_string(num_nodes) + ")");
    }
    if (parsed.payload_size !=
        parsed.footer->record_count *
            static_cast<int64_t>(sizeof(graph::Event))) {
      return Status::IoError("journal entry truncated: " + path);
    }
    if (parsed.footer->record_count <= 0) {
      return Status::IoError("journal entry empty: " + path);
    }
    const graph::Event* events =
        reinterpret_cast<const graph::Event*>(parsed.payload);
    std::vector<graph::Event> batch(
        events, events + parsed.footer->record_count);
    for (const graph::Event& e : batch) {
      if (e.src < 0 || e.src >= num_nodes || e.dst < 0 ||
          e.dst >= num_nodes) {
        return Status::IoError("journal entry references node out of range: " +
                               path);
      }
    }
    entries.push_back(std::move(batch));
  }
  return entries;
}

}  // namespace cpdg::serve
