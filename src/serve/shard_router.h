#ifndef CPDG_SERVE_SHARD_ROUTER_H_
#define CPDG_SERVE_SHARD_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/event.h"
#include "graph/temporal_graph.h"

namespace cpdg::serve {

struct Request;

/// \brief Deterministic request-to-shard placement for the multi-shard
/// serving engine.
///
/// Shards are full replicas of the frozen encoder state (every shard
/// replays the complete event stream on advance — see DESIGN.md §12 for
/// why partitioned replay would break bitwise identity), so any shard
/// *can* answer any request. Routing by node id is a cache-affinity
/// choice: sending node n's queries to the same shard every time keeps
/// that shard's EmbeddingCache hot for n, instead of spreading n's rows
/// thinly over all shard caches.
class ShardRouter {
 public:
  explicit ShardRouter(int num_shards) : num_shards_(num_shards) {}

  int num_shards() const { return num_shards_; }

  /// Owning shard of a node id (affinity partition, not data partition).
  int ShardOf(graph::NodeId node) const {
    if (num_shards_ <= 1 || node < 0) return 0;
    return static_cast<int>(node % num_shards_);
  }

  /// Placement of a request: affinity of its first query node. Multi-node
  /// requests are not split — the whole batch lands on one shard, keeping
  /// the response a single tensor computed at a single memory version.
  int RouteRequest(const Request& request) const;

 private:
  int num_shards_;
};

/// \brief The shared rendezvous behind a cross-shard Advance: a two-phase
/// barrier that quiesces every shard executor, replays the event stream on
/// each replica, and holds them until the coordinator has verified the
/// fleet converged on one memory version.
///
/// Lifecycle (coordinator = the client thread driving Advance; executors =
/// the per-shard serving threads that pop the kAdvance barrier request):
///
///   coordinator                      executor (per shard)
///   -----------                      --------------------
///   push barrier to every queue
///   AwaitQuiesced(timeout) ───────── Arrive(shard, heartbeat)
///     (stragglers abandoned            blocks, bumping heartbeat
///      on timeout)
///   StartReplay() ─────────────────── Arrive returns kReplay
///                                     ... replays events ...
///   AwaitReplayed(timeout) ────────── FinishReplay(shard, ok, version)
///     collects per-shard results        blocks, bumping heartbeat
///   Release() ─────────────────────── FinishReplay returns
///
/// Executors that arrive after the quiesce timeout get kAbandoned from
/// Arrive: they must NOT replay (the fleet has moved on without them) and
/// their shard is marked failed for the watchdog to rebuild from
/// checkpoint + journal. All waits on the executor side tick the shard's
/// heartbeat so a correctly-parked executor is never mistaken for a
/// wedged one.
class AdvanceOp {
 public:
  /// \brief Outcome of Arrive on the executor side.
  enum class ExecutorSignal {
    kReplay,     ///< proceed to replay events() on this shard
    kAbandoned,  ///< arrived too late; do not replay, mark shard failed
  };

  /// \brief Per-shard outcome visible to the coordinator after
  /// AwaitReplayed.
  struct ShardResult {
    bool arrived = false;
    bool replayed = false;
    bool success = false;
    uint64_t memory_version = 0;
    std::string error;
  };

  AdvanceOp(int num_shards,
            std::shared_ptr<const std::vector<graph::Event>> events);

  const std::vector<graph::Event>& events() const { return *events_; }

  // --- executor side ---------------------------------------------------

  /// Registers shard `shard` at the barrier and blocks until the
  /// coordinator starts the replay phase (kReplay) or has abandoned this
  /// shard (kAbandoned). `heartbeat` is incremented while waiting.
  ExecutorSignal Arrive(int shard, std::atomic<int64_t>* heartbeat);

  /// Reports the shard's replay outcome and blocks until Release().
  /// `heartbeat` is incremented while waiting.
  void FinishReplay(int shard, bool success, uint64_t memory_version,
                    std::string error, std::atomic<int64_t>* heartbeat);

  // --- coordinator side ------------------------------------------------

  /// Declares that `shard` will never arrive (its queue is shut down or
  /// being drained by a restart); AwaitQuiesced stops waiting for it.
  /// Callable from the coordinator or from the drain path.
  void MarkAbsent(int shard);

  /// Blocks until every non-absent shard has arrived, or `timeout`
  /// elapses — in which case the barrier is closed and the missing shards
  /// are abandoned. Returns true iff all non-absent shards arrived.
  bool AwaitQuiesced(std::chrono::milliseconds timeout);

  /// Releases the arrived executors into the replay phase. Call exactly
  /// once, after AwaitQuiesced.
  void StartReplay();

  /// Blocks until every arrived shard has reported FinishReplay, or
  /// `timeout` elapses. Returns true iff all arrived shards reported.
  bool AwaitReplayed(std::chrono::milliseconds timeout);

  /// Snapshot of per-shard outcomes; meaningful after AwaitReplayed.
  std::vector<ShardResult> results() const;

  /// Dismisses the parked executors. Call exactly once, last.
  void Release();

 private:
  const std::shared_ptr<const std::vector<graph::Event>> events_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ShardResult> shards_;
  int arrived_ = 0;
  int absent_ = 0;
  int finished_ = 0;
  bool closed_ = false;         // no further arrivals join the barrier
  bool replay_started_ = false;
  bool released_ = false;
};

}  // namespace cpdg::serve

#endif  // CPDG_SERVE_SHARD_ROUTER_H_
