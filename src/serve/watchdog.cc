#include "serve/watchdog.h"

#include <cstdio>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace cpdg::serve {

Watchdog::Watchdog(Options options, std::vector<Target> targets,
                   std::function<bool(int)> restart)
    : options_(options),
      targets_(std::move(targets)),
      restart_(std::move(restart)),
      last_heartbeat_(targets_.size(), 0),
      missed_(targets_.size(), 0) {
  CPDG_CHECK(restart_ != nullptr);
  CPDG_CHECK_GE(options_.max_missed, 1);
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  CPDG_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.interval, [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    Tick();
    lock.lock();
  }
}

void Watchdog::Tick() {
  for (size_t i = 0; i < targets_.size(); ++i) {
    const Target& target = targets_[i];
    bool wedged = false;
    if (target.failed()) {
      // Self-declared failure (replay error, abandoned barrier, prior
      // restart that could not reload the checkpoint): restart now.
      wedged = true;
    } else {
      const int64_t beat = target.heartbeat();
      if (beat != last_heartbeat_[i]) {
        last_heartbeat_[i] = beat;
        missed_[i] = 0;
      } else if (target.has_work()) {
        // No progress while requests are queued: count a miss. An idle
        // executor (empty queue) never accrues misses.
        if (++missed_[i] >= options_.max_missed) {
          wedged = true;
        }
      } else {
        missed_[i] = 0;
      }
    }
    if (!wedged) continue;
    std::fprintf(stderr, "cpdg-serve watchdog: shard %zu unhealthy (%s), restarting\n",
                 i, target.failed() ? "failed" : "wedged");
    if (restart_(static_cast<int>(i))) {
      restarts_.fetch_add(1);
      obs::MetricsRegistry::Global()
          .counter("serve.watchdog.restarts")
          .Add();
      missed_[i] = 0;
      last_heartbeat_[i] = target.heartbeat();
    } else {
      failed_restarts_.fetch_add(1);
      obs::MetricsRegistry::Global()
          .counter("serve.watchdog.failed_restarts")
          .Add();
      // Leave missed_ saturated; retried next tick via the failed() probe
      // (the engine keeps the shard marked failed until a rebuild lands).
    }
  }
}

}  // namespace cpdg::serve
