#ifndef CPDG_SERVE_JOURNAL_H_
#define CPDG_SERVE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/event.h"
#include "util/status.h"

namespace cpdg::serve {

/// \file On-disk advance journal (CPDG_SERVE_JOURNAL_DIR).
///
/// The in-memory journal_ of ServingEngine makes a watchdog-rebuilt
/// *shard* recover advances; this file makes a restarted *process* recover
/// them: every successful-validation Advance appends one entry file before
/// any replica replays it, and FromCheckpoint reloads the directory into
/// the journal before building shards.
///
/// Format: each entry reuses the storage layer's delta-file framing
/// (storage::FileHeader kind=kDelta | raw graph::Event records |
/// storage::FileFooter with payload CRC32), written through
/// util::AtomicFileSink so readers only ever observe complete files — the
/// same durability recipe, the same fault-injection hooks, and the same
/// validation path as the graph store's append log. Entries are named by
/// consecutive sequence numbers from 0; the journal's commit point is the
/// rename of entry N, so a crash mid-append leaves entries 0..N-1 intact.
///
/// The journal is relative to one checkpoint: entries replay on top of the
/// checkpoint's memory snapshot. Pointing an engine at a new checkpoint
/// requires an empty (or cleared) journal directory — see
/// docs/OPERATIONS.md.

/// Path of journal entry `seq` inside `dir`.
std::string JournalEntryPath(const std::string& dir, int64_t seq);

/// \brief Durably appends entry `seq` (creating `dir` first if missing).
/// `events` must be non-empty and reference nodes in [0, num_nodes); the
/// engine validates before calling. Any IO failure leaves entries
/// 0..seq-1 readable and entry seq absent.
Status AppendJournalEntry(const std::string& dir, int64_t seq,
                          int64_t num_nodes,
                          const std::vector<graph::Event>& events);

/// \brief Loads entries 0, 1, ... until the first missing file, validating
/// framing, CRC, node range, and the num_nodes stamp of every entry.
/// A missing directory is an empty journal, not an error; a corrupt or
/// out-of-range entry is an IoError (the operator must restore or clear
/// the directory — serving silently without journaled advances would
/// diverge from the fleet the journal records).
Result<std::vector<std::vector<graph::Event>>> LoadJournal(
    const std::string& dir, int64_t num_nodes);

}  // namespace cpdg::serve

#endif  // CPDG_SERVE_JOURNAL_H_
