#include "serve/shard_router.h"

#include <utility>

#include "serve/request_queue.h"
#include "util/check.h"

namespace cpdg::serve {

namespace {
/// Slice length of heartbeat-ticking waits. Short enough that a parked
/// executor ticks several times per watchdog interval.
constexpr auto kHeartbeatSlice = std::chrono::milliseconds(10);
}  // namespace

int ShardRouter::RouteRequest(const Request& request) const {
  if (request.nodes.empty()) return 0;
  return ShardOf(request.nodes[0]);
}

AdvanceOp::AdvanceOp(
    int num_shards, std::shared_ptr<const std::vector<graph::Event>> events)
    : events_(std::move(events)), shards_(num_shards) {
  CPDG_CHECK_GE(num_shards, 1);
  CPDG_CHECK(events_ != nullptr);
}

AdvanceOp::ExecutorSignal AdvanceOp::Arrive(int shard,
                                            std::atomic<int64_t>* heartbeat) {
  std::unique_lock<std::mutex> lock(mu_);
  CPDG_CHECK_GE(shard, 0);
  CPDG_CHECK_LT(shard, static_cast<int>(shards_.size()));
  if (closed_) return ExecutorSignal::kAbandoned;
  shards_[shard].arrived = true;
  ++arrived_;
  cv_.notify_all();
  while (!replay_started_ && !released_) {
    cv_.wait_for(lock, kHeartbeatSlice);
    if (heartbeat != nullptr) heartbeat->fetch_add(1);
  }
  // released_ without replay_started_ means the coordinator gave up on the
  // whole barrier (it never does today, but fail safe: don't replay).
  return replay_started_ ? ExecutorSignal::kReplay
                         : ExecutorSignal::kAbandoned;
}

void AdvanceOp::FinishReplay(int shard, bool success, uint64_t memory_version,
                             std::string error,
                             std::atomic<int64_t>* heartbeat) {
  std::unique_lock<std::mutex> lock(mu_);
  ShardResult& result = shards_[shard];
  result.replayed = true;
  result.success = success;
  result.memory_version = memory_version;
  result.error = std::move(error);
  ++finished_;
  cv_.notify_all();
  while (!released_) {
    cv_.wait_for(lock, kHeartbeatSlice);
    if (heartbeat != nullptr) heartbeat->fetch_add(1);
  }
}

void AdvanceOp::MarkAbsent(int shard) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CPDG_CHECK_GE(shard, 0);
    CPDG_CHECK_LT(shard, static_cast<int>(shards_.size()));
    // An arrived executor cannot become absent; only count it once.
    if (shards_[shard].arrived || !shards_[shard].error.empty()) return;
    shards_[shard].error = "absent: queue drained or shut down";
    ++absent_;
  }
  cv_.notify_all();
}

bool AdvanceOp::AwaitQuiesced(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool all = cv_.wait_for(lock, timeout, [this] {
    return arrived_ + absent_ >= static_cast<int>(shards_.size());
  });
  // Close the barrier either way: late arrivals must not join a replay
  // the coordinator has already sequenced.
  closed_ = true;
  return all;
}

void AdvanceOp::StartReplay() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CPDG_CHECK(closed_);
    replay_started_ = true;
  }
  cv_.notify_all();
}

bool AdvanceOp::AwaitReplayed(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout, [this] { return finished_ >= arrived_; });
}

std::vector<AdvanceOp::ShardResult> AdvanceOp::results() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_;
}

void AdvanceOp::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
  }
  cv_.notify_all();
}

}  // namespace cpdg::serve
