#include "serve/serving_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tensor/checkpoint_container.h"
#include "tensor/ops.h"
#include "tensor/serialization.h"
#include "train/checkpoint.h"
#include "util/check.h"

namespace cpdg::serve {
namespace {

namespace ts = cpdg::tensor;

/// Events replayed per CommitBatch during Advance. Fixed (not an option)
/// because replay results depend on the batching; a stable constant keeps
/// Advance reproducible across processes and lets tests build bit-exact
/// reference encoders.
constexpr int64_t kAdvanceReplayBatch = 128;

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int64_t>(parsed);
}

obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().gauge("serve.queue.depth");
  return g;
}

obs::Histogram& BatchRequestsHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().histogram(
      "serve.batch.coalesced_requests");
  return h;
}

obs::Histogram& NodesComputedHistogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().histogram("serve.batch.nodes_computed");
  return h;
}

obs::Histogram& LatencyHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().histogram(
      "serve.request.latency_seconds");
  return h;
}

Status ValidateNodes(const std::vector<graph::NodeId>& nodes,
                     int64_t num_nodes, const char* what) {
  if (nodes.empty()) {
    return Status::InvalidArgument(std::string(what) + " list is empty");
  }
  for (graph::NodeId v : nodes) {
    if (v < 0 || v >= num_nodes) {
      return Status::InvalidArgument(std::string(what) + " node " +
                                     std::to_string(v) +
                                     " out of range [0, " +
                                     std::to_string(num_nodes) + ")");
    }
  }
  return Status::OK();
}

}  // namespace

ServingOptions ServingOptions::FromEnv() {
  ServingOptions o;
  o.max_batch = std::max<int64_t>(1, EnvInt64("CPDG_SERVE_MAX_BATCH",
                                              o.max_batch));
  o.max_wait_micros = std::max<int64_t>(
      0, EnvInt64("CPDG_SERVE_MAX_WAIT_MICROS", o.max_wait_micros));
  o.cache_capacity = std::max<int64_t>(
      0, EnvInt64("CPDG_SERVE_CACHE_CAPACITY", o.cache_capacity));
  return o;
}

ServingEngine::ServingEngine(const dgnn::EncoderConfig& config,
                             int64_t predictor_hidden,
                             const graph::GraphStore* graph,
                             const ServingOptions& options)
    : options_(options),
      // Parameters are overwritten by the checkpoint restore; the seed only
      // determines the (discarded) construction-time initialization.
      rng_(0x5e17f0u),
      cache_(options.cache_capacity) {
  CPDG_CHECK(graph != nullptr);
  CPDG_CHECK_GE(options_.max_batch, 1);
  CPDG_CHECK_GE(options_.max_wait_micros, 0);
  encoder_ = std::make_unique<dgnn::DgnnEncoder>(config, graph, &rng_);
  if (predictor_hidden > 0) {
    predictor_ = std::make_unique<dgnn::LinkPredictor>(
        config.embed_dim, predictor_hidden, &rng_);
  }
}

Result<std::unique_ptr<ServingEngine>> ServingEngine::FromCheckpoint(
    const dgnn::EncoderConfig& config, int64_t predictor_hidden,
    const graph::GraphStore* graph, const std::string& checkpoint_path,
    const ServingOptions& options) {
  CPDG_TRACE_SPAN("serve/load_checkpoint");
  CPDG_ASSIGN_OR_RETURN(ts::SectionReader reader,
                        ts::SectionReader::Open(checkpoint_path));
  CPDG_ASSIGN_OR_RETURN(std::string_view payload,
                        reader.Find(ts::kParamsSection));
  CPDG_ASSIGN_OR_RETURN(std::vector<ts::Tensor> loaded,
                        ts::DecodeTensorList(payload));

  std::unique_ptr<ServingEngine> engine(
      new ServingEngine(config, predictor_hidden, graph, options));

  // Encoder parameters first, predictor appended — the pre-trainer's save
  // order. RestoreTensorData validates count and every shape before
  // copying anything, so a checkpoint from a different architecture is
  // rejected without a partially-restored engine.
  std::vector<ts::Tensor> params = engine->encoder_->Parameters();
  if (engine->predictor_ != nullptr) {
    std::vector<ts::Tensor> dec = engine->predictor_->Parameters();
    params.insert(params.end(), dec.begin(), dec.end());
  }
  CPDG_RETURN_NOT_OK(ts::RestoreTensorData(params, loaded));

  if (reader.Has(train::kMemorySection)) {
    CPDG_ASSIGN_OR_RETURN(std::string_view memory_bytes,
                          reader.Find(train::kMemorySection));
    CPDG_RETURN_NOT_OK(
        engine->encoder_->memory().DeserializeFrom(memory_bytes));
  }

  // Freeze: serving never trains, and inference-mode forwards skip graph
  // construction entirely, but a frozen flag keeps any accidental
  // grad-enabled use (e.g. a caller poking encoder()) from training.
  for (ts::Tensor& p : params) p.set_requires_grad(false);

  engine->executor_ = std::thread(&ServingEngine::ExecutorLoop, engine.get());
  return engine;
}

ServingEngine::~ServingEngine() { Shutdown(); }

void ServingEngine::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;
  queue_.Shutdown();
  if (executor_.joinable()) executor_.join();
}

uint64_t ServingEngine::memory_version() const {
  return encoder_->memory().version();
}

bool ServingEngine::Enqueue(std::unique_ptr<Request> request) {
  request->enqueue_us = obs::Profiler::Global().NowMicros();
  return queue_.Push(std::move(request));
}

Result<tensor::Tensor> ServingEngine::Embed(
    const std::vector<graph::NodeId>& nodes, double time) {
  static obs::Counter& requests =
      obs::MetricsRegistry::Global().counter("serve.requests.embed");
  CPDG_RETURN_NOT_OK(
      ValidateNodes(nodes, encoder_->config().num_nodes, "embed"));
  requests.Add();
  auto request = std::make_unique<Request>();
  request->kind = Request::Kind::kEmbed;
  request->nodes = nodes;
  request->time = time;
  std::future<Result<tensor::Tensor>> future =
      request->embed_result.get_future();
  if (!Enqueue(std::move(request))) {
    return Status::FailedPrecondition("serving engine is shut down");
  }
  return future.get();
}

Result<std::vector<double>> ServingEngine::ScoreLinks(
    const std::vector<graph::NodeId>& srcs,
    const std::vector<graph::NodeId>& dsts, double time) {
  static obs::Counter& requests =
      obs::MetricsRegistry::Global().counter("serve.requests.score_links");
  if (predictor_ == nullptr) {
    return Status::FailedPrecondition(
        "engine was built without a link predictor (predictor_hidden == 0)");
  }
  if (srcs.size() != dsts.size()) {
    return Status::InvalidArgument(
        "src/dst length mismatch: " + std::to_string(srcs.size()) + " vs " +
        std::to_string(dsts.size()));
  }
  CPDG_RETURN_NOT_OK(
      ValidateNodes(srcs, encoder_->config().num_nodes, "score src"));
  CPDG_RETURN_NOT_OK(
      ValidateNodes(dsts, encoder_->config().num_nodes, "score dst"));
  requests.Add();
  auto request = std::make_unique<Request>();
  request->kind = Request::Kind::kScoreLinks;
  request->nodes = srcs;
  request->dsts = dsts;
  request->time = time;
  std::future<Result<std::vector<double>>> future =
      request->score_result.get_future();
  if (!Enqueue(std::move(request))) {
    return Status::FailedPrecondition("serving engine is shut down");
  }
  return future.get();
}

Status ServingEngine::Advance(std::vector<graph::Event> events) {
  static obs::Counter& requests =
      obs::MetricsRegistry::Global().counter("serve.requests.advance");
  if (events.empty()) return Status::OK();
  const int64_t num_nodes = encoder_->config().num_nodes;
  for (const graph::Event& e : events) {
    if (e.src < 0 || e.src >= num_nodes || e.dst < 0 || e.dst >= num_nodes) {
      return Status::InvalidArgument(
          "advance event (" + std::to_string(e.src) + ", " +
          std::to_string(e.dst) + ") references a node out of range [0, " +
          std::to_string(num_nodes) + ")");
    }
  }
  requests.Add();
  auto request = std::make_unique<Request>();
  request->kind = Request::Kind::kAdvance;
  request->events = std::move(events);
  std::future<Status> future = request->advance_result.get_future();
  if (!Enqueue(std::move(request))) {
    return Status::FailedPrecondition("serving engine is shut down");
  }
  return future.get();
}

void ServingEngine::ExecutorLoop() {
  const auto max_wait = std::chrono::microseconds(options_.max_wait_micros);
  while (true) {
    std::vector<std::unique_ptr<Request>> batch =
        queue_.PopBatch(options_.max_batch, max_wait);
    if (batch.empty()) return;  // shut down and drained
    ExecuteBatch(std::move(batch));
  }
}

void ServingEngine::ExecuteAdvance(Request* request) {
  CPDG_TRACE_SPAN("serve/advance");
  static obs::Counter& advanced =
      obs::MetricsRegistry::Global().counter("serve.advance.events");
  ts::InferenceModeGuard guard;
  encoder_->ReplayEvents(request->events, kAdvanceReplayBatch);
  cache_.InvalidateAll();
  advanced.Add(static_cast<int64_t>(request->events.size()));
  request->advance_result.set_value(Status::OK());
}

void ServingEngine::ExecuteBatch(std::vector<std::unique_ptr<Request>> batch) {
  CPDG_TRACE_SPAN("serve/execute_batch");
  QueueDepthGauge().Set(static_cast<double>(queue_.depth()));
  BatchRequestsHistogram().Observe(static_cast<double>(batch.size()));

  const auto finish = [](Request* r) {
    LatencyHistogram().Observe(
        static_cast<double>(obs::Profiler::Global().NowMicros() -
                            r->enqueue_us) *
        1e-6);
  };

  if (batch.front()->kind == Request::Kind::kAdvance) {
    CPDG_CHECK_EQ(batch.size(), 1u);  // queue pops advances alone
    ExecuteAdvance(batch.front().get());
    finish(batch.front().get());
    return;
  }

  // Collect the distinct (node, time) queries of the whole batch,
  // resolving each against the cache at the current memory version.
  const uint64_t version = encoder_->memory().version();
  const int64_t dim = encoder_->config().embed_dim;
  std::map<std::pair<graph::NodeId, double>, std::vector<float>> rows;
  std::vector<graph::NodeId> miss_nodes;
  std::vector<double> miss_times;
  for (const auto& request : batch) {
    auto collect = [&](graph::NodeId node) {
      auto [it, inserted] = rows.try_emplace({node, request->time});
      if (!inserted) return;  // already resolved or queued for compute
      if (!cache_.Lookup({node, request->time, version}, &it->second)) {
        miss_nodes.push_back(node);
        miss_times.push_back(request->time);
      }
    };
    for (graph::NodeId v : request->nodes) collect(v);
    for (graph::NodeId v : request->dsts) collect(v);
  }

  NodesComputedHistogram().Observe(static_cast<double>(miss_nodes.size()));
  if (!miss_nodes.empty()) {
    CPDG_TRACE_SPAN("serve/forward");
    ts::InferenceModeGuard guard;
    // Read-only protocol: flush into the per-batch cache, never commit, so
    // memory (and its version) stay untouched.
    encoder_->BeginBatch();
    ts::Tensor z = encoder_->ComputeEmbeddings(miss_nodes, miss_times);
    CPDG_CHECK_EQ(z.cols(), dim);
    for (size_t i = 0; i < miss_nodes.size(); ++i) {
      const float* row = z.data() + static_cast<int64_t>(i) * dim;
      std::vector<float> values(row, row + dim);
      cache_.Insert({miss_nodes[i], miss_times[i], version}, values);
      rows[{miss_nodes[i], miss_times[i]}] = std::move(values);
    }
  }

  const auto row_of = [&](graph::NodeId node, double time) {
    auto it = rows.find({node, time});
    CPDG_CHECK(it != rows.end());
    CPDG_CHECK_EQ(it->second.size(), static_cast<size_t>(dim));
    return it->second;
  };
  const auto gather = [&](const std::vector<graph::NodeId>& nodes,
                          double time) {
    std::vector<float> data;
    data.reserve(nodes.size() * static_cast<size_t>(dim));
    for (graph::NodeId v : nodes) {
      const std::vector<float>& row = row_of(v, time);
      data.insert(data.end(), row.begin(), row.end());
    }
    return ts::Tensor::FromVector(static_cast<int64_t>(nodes.size()), dim,
                                  std::move(data));
  };

  for (auto& request : batch) {
    if (request->kind == Request::Kind::kEmbed) {
      request->embed_result.set_value(gather(request->nodes, request->time));
    } else {
      CPDG_TRACE_SPAN("serve/score");
      ts::InferenceModeGuard guard;
      ts::Tensor logits = predictor_->ForwardLogits(
          gather(request->nodes, request->time),
          gather(request->dsts, request->time));
      ts::Tensor probs = ts::Sigmoid(logits);
      std::vector<double> out(request->nodes.size());
      for (size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<double>(probs.at(static_cast<int64_t>(i), 0));
      }
      request->score_result.set_value(std::move(out));
    }
    finish(request.get());
  }
}

}  // namespace cpdg::serve
