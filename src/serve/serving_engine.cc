#include "serve/serving_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "serve/journal.h"
#include "tensor/checkpoint_container.h"
#include "tensor/ops.h"
#include "tensor/serialization.h"
#include "train/checkpoint.h"
#include "util/check.h"
#include "util/fault_injection.h"

namespace cpdg::serve {
namespace {

namespace ts = cpdg::tensor;

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int64_t>(parsed);
}

obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().gauge("serve.queue.depth");
  return g;
}

obs::Histogram& BatchRequestsHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().histogram(
      "serve.batch.coalesced_requests");
  return h;
}

obs::Histogram& NodesComputedHistogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().histogram("serve.batch.nodes_computed");
  return h;
}

obs::Histogram& LatencyHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().histogram(
      "serve.request.latency_seconds");
  return h;
}

obs::Counter& RejectedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("serve.overload.rejected");
  return c;
}

obs::Counter& ShedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("serve.overload.shed");
  return c;
}

obs::Counter& DeadlineExceededCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().counter(
      "serve.overload.deadline_exceeded");
  return c;
}

obs::Counter& StaleServedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("serve.overload.stale_served");
  return c;
}

obs::Counter& DrainedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("serve.overload.drained");
  return c;
}

int64_t NowMicros() { return obs::Profiler::Global().NowMicros(); }

Status ValidateNodes(const std::vector<graph::NodeId>& nodes,
                     int64_t num_nodes, const char* what) {
  if (nodes.empty()) {
    return Status::InvalidArgument(std::string(what) + " list is empty");
  }
  for (graph::NodeId v : nodes) {
    if (v < 0 || v >= num_nodes) {
      return Status::InvalidArgument(std::string(what) + " node " +
                                     std::to_string(v) +
                                     " out of range [0, " +
                                     std::to_string(num_nodes) + ")");
    }
  }
  return Status::OK();
}

}  // namespace

const char* ServePrecisionName(ServePrecision precision) {
  switch (precision) {
    case ServePrecision::kFp32:
      return "fp32";
    case ServePrecision::kInt8:
      return "int8";
  }
  return "unknown";
}

Result<ServePrecision> ParseServePrecision(const std::string& text) {
  if (text == "fp32") return ServePrecision::kFp32;
  if (text == "int8") return ServePrecision::kInt8;
  return Status::InvalidArgument("unknown serve precision \"" + text +
                                 "\" (expected fp32 | int8)");
}

ServingOptions ServingOptions::FromEnv() {
  ServingOptions o;
  o.max_batch = std::max<int64_t>(1, EnvInt64("CPDG_SERVE_MAX_BATCH",
                                              o.max_batch));
  o.max_wait_micros = std::max<int64_t>(
      0, EnvInt64("CPDG_SERVE_MAX_WAIT_MICROS", o.max_wait_micros));
  o.cache_capacity = std::max<int64_t>(
      0, EnvInt64("CPDG_SERVE_CACHE_CAPACITY", o.cache_capacity));
  o.num_shards = static_cast<int>(std::clamp<int64_t>(
      EnvInt64("CPDG_SERVE_SHARDS", o.num_shards), 1, 256));
  o.queue_limit = std::max<int64_t>(
      0, EnvInt64("CPDG_SERVE_QUEUE_LIMIT", o.queue_limit));
  if (const char* v = std::getenv("CPDG_SERVE_OVERLOAD")) {
    Result<OverloadPolicy> parsed = ParseOverloadPolicy(v);
    if (parsed.ok()) o.overload = parsed.value();
  }
  o.default_deadline_us = std::max<int64_t>(
      0, EnvInt64("CPDG_SERVE_DEADLINE_US", o.default_deadline_us));
  if (const char* v = std::getenv("CPDG_SERVE_PRECISION")) {
    Result<ServePrecision> parsed = ParseServePrecision(v);
    if (parsed.ok()) o.precision = parsed.value();
  }
  if (const char* v = std::getenv("CPDG_SERVE_JOURNAL_DIR")) {
    if (*v != '\0') o.journal_dir = v;
  }
  return o;
}

AdmissionDecision DecideAdmission(int64_t now_us, int64_t enqueue_us,
                                  int64_t deadline_us) {
  if (deadline_us <= 0) return AdmissionDecision::kCompute;
  if (now_us >= deadline_us) return AdmissionDecision::kExpire;
  const int64_t budget = deadline_us - enqueue_us;
  const int64_t waited = now_us - enqueue_us;
  if (2 * waited >= budget) return AdmissionDecision::kTryStale;
  return AdmissionDecision::kCompute;
}

ServingEngine::ServingEngine(const dgnn::EncoderConfig& config,
                             int64_t predictor_hidden,
                             const graph::GraphStore* graph,
                             std::string checkpoint_path,
                             const ServingOptions& options)
    : options_(options),
      config_(config),
      predictor_hidden_(predictor_hidden),
      graph_(graph),
      checkpoint_path_(std::move(checkpoint_path)),
      router_(options.num_shards) {}

Result<std::unique_ptr<ServingEngine>> ServingEngine::FromCheckpoint(
    const dgnn::EncoderConfig& config, int64_t predictor_hidden,
    const graph::GraphStore* graph, const std::string& checkpoint_path,
    const ServingOptions& options) {
  if (graph == nullptr) {
    return Status::InvalidArgument("graph must not be null");
  }
  ServingOptions opts = options;
  if (opts.max_batch < 1) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (opts.max_wait_micros < 0) {
    return Status::InvalidArgument("max_wait_micros must be >= 0");
  }
  if (opts.cache_capacity < 0) {
    return Status::InvalidArgument("cache_capacity must be >= 0");
  }
  if (opts.num_shards < 1 || opts.num_shards > 256) {
    return Status::InvalidArgument("num_shards must be in [1, 256], got " +
                                   std::to_string(opts.num_shards));
  }
  if (opts.queue_limit < 0) {
    return Status::InvalidArgument("queue_limit must be >= 0");
  }
  if (opts.default_deadline_us < 0) {
    return Status::InvalidArgument("default_deadline_us must be >= 0");
  }
  if (opts.watchdog_interval_ms < 1 || opts.watchdog_max_missed < 1 ||
      opts.quiesce_timeout_ms < 1) {
    return Status::InvalidArgument(
        "watchdog interval/max_missed and quiesce timeout must be positive");
  }
  // Deadline-pressed requests degrade to stale cache hits; that needs the
  // previous cache generation to survive advances.
  if (opts.default_deadline_us > 0) opts.keep_stale_entries = true;

  std::unique_ptr<ServingEngine> engine(new ServingEngine(
      config, predictor_hidden, graph, checkpoint_path, opts));
  if (!opts.journal_dir.empty()) {
    // Process-restart recovery: reload every durably-journaled advance so
    // the BuildShard catch-up below replays them onto the checkpoint's
    // memory snapshot, exactly as a watchdog-rebuilt shard would. No
    // executors exist yet, so journal_ needs no lock here.
    CPDG_ASSIGN_OR_RETURN(std::vector<std::vector<graph::Event>> persisted,
                          LoadJournal(opts.journal_dir, config.num_nodes));
    for (std::vector<graph::Event>& events : persisted) {
      engine->journal_.push_back(
          std::make_shared<const std::vector<graph::Event>>(
              std::move(events)));
    }
    engine->journal_next_seq_ =
        static_cast<int64_t>(engine->journal_.size());
  }
  for (int i = 0; i < opts.num_shards; ++i) {
    size_t applied = 0;
    CPDG_ASSIGN_OR_RETURN(std::shared_ptr<Shard> shard,
                          engine->BuildShard(i, &applied));
    engine->shards_.push_back(std::move(shard));
  }
  engine->serve_version_.store(
      engine->shards_[0]->encoder->memory().version());
  for (const auto& shard : engine->shards_) {
    // Replica construction is deterministic; divergence here is a bug,
    // not an input error.
    CPDG_CHECK_EQ(shard->encoder->memory().version(),
                  engine->serve_version_.load());
    engine->StartShard(shard);
  }
  engine->StartWatchdog();
  return engine;
}

Result<std::shared_ptr<ServingEngine::Shard>> ServingEngine::BuildShard(
    int index, size_t* journal_applied) {
  CPDG_TRACE_SPAN("serve/load_checkpoint");
  if (util::FaultInjector::Instance().ConsumeServeReloadCorrupt()) {
    return Status::IoError(
        "injected checkpoint corruption (CPDG_FAULT_SERVE_RELOAD_CORRUPT)");
  }
  CPDG_ASSIGN_OR_RETURN(ts::SectionReader reader,
                        ts::SectionReader::Open(checkpoint_path_));
  CPDG_ASSIGN_OR_RETURN(std::string_view payload,
                        reader.Find(ts::kParamsSection));
  CPDG_ASSIGN_OR_RETURN(std::vector<ts::Tensor> loaded,
                        ts::DecodeTensorList(payload));

  auto shard = std::make_shared<Shard>();
  shard->index = index;
  shard->encoder =
      std::make_unique<dgnn::DgnnEncoder>(config_, graph_, &shard->rng);
  if (predictor_hidden_ > 0) {
    shard->predictor = std::make_unique<dgnn::LinkPredictor>(
        config_.embed_dim, predictor_hidden_, &shard->rng);
  }
  RequestQueue::Options queue_options;
  queue_options.limit = options_.queue_limit;
  queue_options.policy = options_.overload;
  shard->queue = std::make_unique<RequestQueue>(queue_options);
  shard->cache = std::make_unique<EmbeddingCache>(options_.cache_capacity);

  // Encoder parameters first, predictor appended — the pre-trainer's save
  // order. RestoreTensorData validates count and every shape before
  // copying anything, so a checkpoint from a different architecture is
  // rejected without a partially-restored replica.
  std::vector<ts::Tensor> params = shard->encoder->Parameters();
  if (shard->predictor != nullptr) {
    std::vector<ts::Tensor> dec = shard->predictor->Parameters();
    params.insert(params.end(), dec.begin(), dec.end());
  }
  CPDG_RETURN_NOT_OK(ts::RestoreTensorData(params, loaded));

  if (reader.Has(train::kMemorySection)) {
    CPDG_ASSIGN_OR_RETURN(std::string_view memory_bytes,
                          reader.Find(train::kMemorySection));
    CPDG_RETURN_NOT_OK(
        shard->encoder->memory().DeserializeFrom(memory_bytes));
  }

  // Freeze: serving never trains, and inference-mode forwards skip graph
  // construction entirely, but a frozen flag keeps any accidental
  // grad-enabled use (e.g. a caller poking encoder()) from training.
  for (ts::Tensor& p : params) p.set_requires_grad(false);

  if (options_.precision == ServePrecision::kInt8) {
    // Quantize the frozen weight matrices once, after restore. Only
    // plausible MatMul right-operands qualify: [1, d] parameters (biases,
    // time frequencies) never multiply, and per-node tables above the row
    // bound are gathered by row, not multiplied. Registration is keyed by
    // data pointer, so an extra registered matrix that never appears as a
    // MatMul operand is inert (DESIGN.md §14).
    constexpr int64_t kMaxQuantRows = 8192;
    for (const ts::Tensor& p : params) {
      if (p.rows() < 2 || p.rows() > kMaxQuantRows) continue;
      shard->quant_params.AddWeight(p.data(), p.rows(), p.cols());
    }
  }

  // Catch up to the fleet: replay every journaled advance in the same
  // kAdvanceReplayBatch chunks the live replicas used, which makes this
  // replica bit-identical to them (DESIGN.md §12).
  std::vector<std::shared_ptr<const std::vector<graph::Event>>> entries;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    entries = journal_;
  }
  {
    ts::InferenceModeGuard guard;
    for (const auto& events : entries) {
      shard->encoder->ReplayEvents(*events, kAdvanceReplayBatch);
    }
  }
  *journal_applied = entries.size();
  return shard;
}

void ServingEngine::StartShard(const std::shared_ptr<Shard>& shard) {
  CPDG_CHECK(!shard->executor.joinable());
  std::shared_ptr<Shard> owned = shard;
  shard->executor = std::thread(
      [this, owned = std::move(owned)] { ExecutorLoop(owned); });
}

void ServingEngine::StartWatchdog() {
  Watchdog::Options wopts;
  wopts.interval = std::chrono::milliseconds(options_.watchdog_interval_ms);
  wopts.max_missed = options_.watchdog_max_missed;
  std::vector<Watchdog::Target> targets;
  for (int i = 0; i < router_.num_shards(); ++i) {
    Watchdog::Target target;
    target.heartbeat = [this, i] { return shard(i)->heartbeat.load(); };
    target.has_work = [this, i] {
      std::shared_ptr<Shard> s = shard(i);
      return s->queue->depth() > 0 || s->inflight.load() > 0;
    };
    target.failed = [this, i] { return shard(i)->failed.load(); };
    targets.push_back(std::move(target));
  }
  watchdog_ = std::make_unique<Watchdog>(
      wopts, std::move(targets), [this](int i) { return RestartShard(i); });
  watchdog_->Start();
}

bool ServingEngine::RestartShard(int index) {
  std::shared_ptr<Shard> old = shard(index);
  // Fence the failed replica: no new admissions, fail what was queued.
  old->failed.store(true);
  old->queue->Shutdown();
  const Status drained_status = Status::Unavailable(
      "shard " + std::to_string(index) + " restarting after failure");
  for (std::unique_ptr<Request>& request : old->queue->DrainAll()) {
    drained_.fetch_add(1);
    DrainedCounter().Add();
    FailRequest(request.get(), drained_status, index);
  }

  size_t applied = 0;
  Result<std::shared_ptr<Shard>> rebuilt = BuildShard(index, &applied);
  if (!rebuilt.ok()) {
    reload_failures_.fetch_add(1);
    std::fprintf(stderr, "cpdg-serve: shard %d reload failed: %s\n", index,
                 rebuilt.status().ToString().c_str());
    return false;  // old shard stays failed; watchdog retries next tick
  }
  std::shared_ptr<Shard> fresh = rebuilt.TakeValue();

  // Swap in only once the replica has caught up with every journaled
  // advance — advances race this restart, and an un-caught-up swap would
  // serve an older memory version. Barrier pushes go to the shard list
  // snapshot taken under shards_mu_ when the advance was journaled, so
  // after the swap (same mutex) an advance either reached the old queue
  // (absent — this replica has it via the journal) or targets the fresh
  // replica's queue directly.
  while (true) {
    std::vector<std::shared_ptr<const std::vector<graph::Event>>> delta;
    {
      std::lock_guard<std::mutex> lock(shards_mu_);
      if (journal_.size() == applied) {
        zombies_.push_back(old);
        shards_[index] = fresh;
        break;
      }
      delta.assign(journal_.begin() + static_cast<int64_t>(applied),
                   journal_.end());
      applied = journal_.size();
    }
    ts::InferenceModeGuard guard;
    for (const auto& events : delta) {
      fresh->encoder->ReplayEvents(*events, kAdvanceReplayBatch);
    }
  }
  StartShard(fresh);
  // Keep the fleet version honest if this replica caught up past the last
  // coordinated bump (e.g. every other shard failed that advance).
  uint64_t seen = serve_version_.load();
  const uint64_t mine = fresh->encoder->memory().version();
  while (mine > seen &&
         !serve_version_.compare_exchange_weak(seen, mine)) {
  }
  return true;
}

ServingEngine::~ServingEngine() { Shutdown(); }

void ServingEngine::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;
  // Stop the watchdog first so a shutdown drain is never mistaken for a
  // wedged shard mid-teardown.
  if (watchdog_ != nullptr) watchdog_->Stop();
  std::vector<std::shared_ptr<Shard>> all;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    all = shards_;
    all.insert(all.end(), zombies_.begin(), zombies_.end());
  }
  for (const auto& shard : all) shard->queue->Shutdown();
  for (const auto& shard : all) {
    if (shard->executor.joinable()) shard->executor.join();
  }
  // A shard whose executor exited failed (and was never restarted) may
  // still hold queued requests: fail them explicitly rather than letting
  // their clients hang on a dropped promise.
  const Status status =
      Status::FailedPrecondition("serving engine shut down before execution");
  for (const auto& shard : all) {
    for (std::unique_ptr<Request>& request : shard->queue->DrainAll()) {
      drained_.fetch_add(1);
      DrainedCounter().Add();
      FailRequest(request.get(), status, shard->index);
    }
  }
}

std::shared_ptr<ServingEngine::Shard> ServingEngine::shard(int index) const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  return shards_[static_cast<size_t>(index)];
}

const dgnn::DgnnEncoder& ServingEngine::encoder() const {
  return *shard(0)->encoder;
}

std::vector<uint64_t> ServingEngine::ShardMemoryVersions() const {
  // Quiescent-state test hook: versions are sampled without stopping the
  // executors, so call it only when no advance is in flight.
  std::lock_guard<std::mutex> lock(shards_mu_);
  std::vector<uint64_t> versions;
  versions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    versions.push_back(shard->encoder->memory().version());
  }
  return versions;
}

int64_t ServingEngine::cache_hits() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  int64_t total = 0;
  for (const auto& s : shards_) total += s->cache->hits();
  for (const auto& s : zombies_) total += s->cache->hits();
  return total;
}

int64_t ServingEngine::cache_misses() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  int64_t total = 0;
  for (const auto& s : shards_) total += s->cache->misses();
  for (const auto& s : zombies_) total += s->cache->misses();
  return total;
}

int64_t ServingEngine::cache_evictions() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  int64_t total = 0;
  for (const auto& s : shards_) total += s->cache->evictions();
  for (const auto& s : zombies_) total += s->cache->evictions();
  return total;
}

int64_t ServingEngine::cache_invalidations() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  int64_t total = 0;
  for (const auto& s : shards_) total += s->cache->invalidations();
  for (const auto& s : zombies_) total += s->cache->invalidations();
  return total;
}

int64_t ServingEngine::queue_peak_depth() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  int64_t peak = 0;
  for (const auto& s : shards_) peak = std::max(peak, s->queue->peak_depth());
  for (const auto& s : zombies_) {
    peak = std::max(peak, s->queue->peak_depth());
  }
  return peak;
}

void ServingEngine::FailRequest(Request* request, const Status& status,
                                int shard_index) {
  switch (request->kind) {
    case Request::Kind::kEmbed:
      request->embed_result.set_value(status);
      break;
    case Request::Kind::kScoreLinks:
      request->score_result.set_value(status);
      break;
    case Request::Kind::kAdvance:
      // Barriers carry no promise; tell the coordinator this shard will
      // not arrive (it catches up from the journal after restart).
      if (request->advance != nullptr) {
        request->advance->MarkAbsent(shard_index);
      }
      break;
  }
}

Status ServingEngine::Submit(std::unique_ptr<Request> request,
                             int64_t deadline_us) {
  if (shutdown_.load()) {
    return Status::FailedPrecondition("serving engine is shut down");
  }
  const int64_t now = NowMicros();
  request->enqueue_us = now;
  const int64_t budget =
      deadline_us > 0 ? deadline_us : options_.default_deadline_us;
  if (budget > 0) request->deadline_us = now + budget;

  const int index = router_.RouteRequest(*request);
  std::shared_ptr<Shard> target = shard(index);
  std::vector<std::unique_ptr<Request>> shed;
  const PushOutcome outcome = target->queue->Push(request, &shed);
  const Status shed_status = Status::ResourceExhausted(
      "request shed under overload (shed-oldest policy, shard " +
      std::to_string(index) + ")");
  for (std::unique_ptr<Request>& victim : shed) {
    shed_.fetch_add(1);
    ShedCounter().Add();
    FailRequest(victim.get(), shed_status, index);
  }
  switch (outcome) {
    case PushOutcome::kAccepted:
      QueueDepthGauge().Set(static_cast<double>(target->queue->depth()));
      return Status::OK();
    case PushOutcome::kRejected:
      rejected_.fetch_add(1);
      RejectedCounter().Add();
      return Status::ResourceExhausted(
          "serving queue full (shard " + std::to_string(index) + ", limit " +
          std::to_string(options_.queue_limit) + ", policy " +
          OverloadPolicyName(options_.overload) + ")");
    case PushOutcome::kShutdown:
      if (shutdown_.load()) {
        return Status::FailedPrecondition("serving engine is shut down");
      }
      return Status::Unavailable("shard " + std::to_string(index) +
                                 " is restarting; retry");
  }
  return Status::Internal("unreachable push outcome");
}

Result<EmbedResponse> ServingEngine::EmbedFull(
    const std::vector<graph::NodeId>& nodes, double time,
    int64_t deadline_us) {
  CPDG_ASSIGN_OR_RETURN(std::future<Result<EmbedResponse>> future,
                        EmbedAsync(nodes, time, deadline_us));
  return future.get();
}

Result<std::future<Result<EmbedResponse>>> ServingEngine::EmbedAsync(
    const std::vector<graph::NodeId>& nodes, double time,
    int64_t deadline_us) {
  static obs::Counter& requests =
      obs::MetricsRegistry::Global().counter("serve.requests.embed");
  CPDG_RETURN_NOT_OK(ValidateNodes(nodes, config_.num_nodes, "embed"));
  requests.Add();
  auto request = std::make_unique<Request>();
  request->kind = Request::Kind::kEmbed;
  request->nodes = nodes;
  request->time = time;
  std::future<Result<EmbedResponse>> future =
      request->embed_result.get_future();
  CPDG_RETURN_NOT_OK(Submit(std::move(request), deadline_us));
  return future;
}

Result<tensor::Tensor> ServingEngine::Embed(
    const std::vector<graph::NodeId>& nodes, double time) {
  CPDG_ASSIGN_OR_RETURN(EmbedResponse response, EmbedFull(nodes, time));
  return std::move(response.embeddings);
}

Result<ScoreResponse> ServingEngine::ScoreLinksFull(
    const std::vector<graph::NodeId>& srcs,
    const std::vector<graph::NodeId>& dsts, double time,
    int64_t deadline_us) {
  static obs::Counter& requests =
      obs::MetricsRegistry::Global().counter("serve.requests.score_links");
  if (predictor_hidden_ <= 0) {
    return Status::FailedPrecondition(
        "engine was built without a link predictor (predictor_hidden == 0)");
  }
  if (srcs.size() != dsts.size()) {
    return Status::InvalidArgument(
        "src/dst length mismatch: " + std::to_string(srcs.size()) + " vs " +
        std::to_string(dsts.size()));
  }
  CPDG_RETURN_NOT_OK(ValidateNodes(srcs, config_.num_nodes, "score src"));
  CPDG_RETURN_NOT_OK(ValidateNodes(dsts, config_.num_nodes, "score dst"));
  requests.Add();
  auto request = std::make_unique<Request>();
  request->kind = Request::Kind::kScoreLinks;
  request->nodes = srcs;
  request->dsts = dsts;
  request->time = time;
  std::future<Result<ScoreResponse>> future =
      request->score_result.get_future();
  CPDG_RETURN_NOT_OK(Submit(std::move(request), deadline_us));
  return future.get();
}

Result<std::vector<double>> ServingEngine::ScoreLinks(
    const std::vector<graph::NodeId>& srcs,
    const std::vector<graph::NodeId>& dsts, double time) {
  CPDG_ASSIGN_OR_RETURN(ScoreResponse response,
                        ScoreLinksFull(srcs, dsts, time));
  return std::move(response.probabilities);
}

Status ServingEngine::Advance(std::vector<graph::Event> events) {
  static obs::Counter& requests =
      obs::MetricsRegistry::Global().counter("serve.requests.advance");
  static obs::Counter& advanced =
      obs::MetricsRegistry::Global().counter("serve.advance.events");
  if (shutdown_.load()) {
    return Status::FailedPrecondition("serving engine is shut down");
  }
  if (events.empty()) return Status::OK();
  const int64_t num_nodes = config_.num_nodes;
  for (const graph::Event& e : events) {
    if (e.src < 0 || e.src >= num_nodes || e.dst < 0 || e.dst >= num_nodes) {
      return Status::InvalidArgument(
          "advance event (" + std::to_string(e.src) + ", " +
          std::to_string(e.dst) + ") references a node out of range [0, " +
          std::to_string(num_nodes) + ")");
    }
  }
  requests.Add();
  CPDG_TRACE_SPAN("serve/advance");

  // One coordinator at a time; concurrent advances queue here, preserving
  // a total order that the journal records.
  std::lock_guard<std::mutex> advance_lock(advance_mu_);
  auto shared_events =
      std::make_shared<const std::vector<graph::Event>>(std::move(events));
  if (!options_.journal_dir.empty()) {
    // Durable-first: once this entry is committed, a process restarted
    // from the same checkpoint + journal dir replays the advance even if
    // we crash before any replica does. An IO failure fails the whole
    // advance before any replica (or the in-memory journal) saw it, so
    // disk and fleet cannot disagree.
    CPDG_RETURN_NOT_OK(AppendJournalEntry(options_.journal_dir,
                                          journal_next_seq_,
                                          config_.num_nodes, *shared_events));
    ++journal_next_seq_;
  }
  std::vector<std::shared_ptr<Shard>> snapshot;
  {
    // Journal-first, atomically with the shard-list snapshot: any replica
    // rebuilt from now on replays this advance from the journal, and
    // exactly the snapshot shards get it as a barrier.
    std::lock_guard<std::mutex> lock(shards_mu_);
    journal_.push_back(shared_events);
    snapshot = shards_;
  }

  auto op =
      std::make_shared<AdvanceOp>(router_.num_shards(), shared_events);
  const int64_t now = NowMicros();
  for (int i = 0; i < router_.num_shards(); ++i) {
    auto barrier = std::make_unique<Request>();
    barrier->kind = Request::Kind::kAdvance;
    barrier->advance = op;
    barrier->enqueue_us = now;
    if (snapshot[static_cast<size_t>(i)]->queue->PushControl(barrier) !=
        PushOutcome::kAccepted) {
      // Restarting or shutting down; its replacement replays the journal.
      op->MarkAbsent(i);
    }
  }

  op->AwaitQuiesced(std::chrono::milliseconds(options_.quiesce_timeout_ms));
  op->StartReplay();
  // Replay budget is far looser than quiesce: it scales with the event
  // stream, not with executor batch latency.
  op->AwaitReplayed(
      std::chrono::milliseconds(options_.quiesce_timeout_ms * 10));
  const std::vector<AdvanceOp::ShardResult> results = op->results();
  op->Release();

  uint64_t version = 0;
  int successes = 0;
  bool mismatch = false;
  for (size_t i = 0; i < results.size(); ++i) {
    const AdvanceOp::ShardResult& r = results[i];
    const bool healthy = r.arrived && r.replayed && r.success;
    const bool absent = !r.arrived && !r.error.empty();
    if (healthy) {
      if (successes > 0 && r.memory_version != version) mismatch = true;
      version = r.memory_version;
      ++successes;
    } else if (!absent) {
      // Wedged before the barrier, timed out mid-replay, or failed the
      // replay: this replica is behind the fleet. The watchdog rebuilds
      // it from checkpoint + journal (which contains this advance).
      snapshot[i]->failed.store(true);
    }
  }
  if (mismatch) {
    // Deterministic replay makes this unreachable short of memory
    // corruption; recover by rebuilding every replica from the journal.
    for (const auto& shard : snapshot) shard->failed.store(true);
    return Status::Internal(
        "shard replicas diverged after advance replay; rebuilding fleet");
  }
  if (successes == 0) {
    return Status::Unavailable(
        "no live shard replayed the advance; journaled for recovery");
  }
  serve_version_.store(version);
  advanced.Add(static_cast<int64_t>(shared_events->size()));
  return Status::OK();
}

void ServingEngine::ExecutorLoop(std::shared_ptr<Shard> shard) {
  const auto max_wait = std::chrono::microseconds(options_.max_wait_micros);
  while (true) {
    std::vector<std::unique_ptr<Request>> batch =
        shard->queue->PopBatch(options_.max_batch, max_wait);
    if (batch.empty()) return;  // shut down and drained
    shard->heartbeat.fetch_add(1);
    shard->inflight.store(static_cast<int64_t>(batch.size()));
    const int64_t stall =
        util::FaultInjector::Instance().ConsumeServeStallMillis();
    if (stall > 0) {
      // Injected wedge: the heartbeat freezes with work in flight, which
      // is exactly the signature the watchdog restarts on.
      std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    }
    if (batch.front()->kind == Request::Kind::kAdvance) {
      CPDG_CHECK_EQ(batch.size(), 1u);  // queue pops advances alone
      ExecuteBarrier(shard.get(), std::move(batch.front()));
    } else {
      ExecuteBatch(shard.get(), std::move(batch));
    }
    shard->inflight.store(0);
    shard->heartbeat.fetch_add(1);
    if (shard->failed.load()) {
      // Abandoned barrier or failed replay: this replica is behind the
      // fleet and must not serve. The watchdog drains the queue (failing
      // the waiters) and swaps in a rebuilt replica.
      return;
    }
  }
}

void ServingEngine::ExecuteBarrier(Shard* shard,
                                   std::unique_ptr<Request> request) {
  CPDG_TRACE_SPAN("serve/advance_barrier");
  std::shared_ptr<AdvanceOp> op = request->advance;
  CPDG_CHECK(op != nullptr);
  const AdvanceOp::ExecutorSignal signal =
      op->Arrive(shard->index, &shard->heartbeat);
  if (signal == AdvanceOp::ExecutorSignal::kAbandoned) {
    shard->failed.store(true);
    return;
  }
  if (util::FaultInjector::Instance().ConsumeServeReplayFail()) {
    shard->failed.store(true);
    op->FinishReplay(shard->index, /*success=*/false,
                     shard->encoder->memory().version(),
                     "injected replay failure (CPDG_FAULT_SERVE_REPLAY_FAIL)",
                     &shard->heartbeat);
    return;
  }
  {
    ts::InferenceModeGuard guard;
    shard->encoder->ReplayEvents(op->events(), kAdvanceReplayBatch);
  }
  if (!options_.keep_stale_entries) {
    shard->cache->InvalidateAll();
  }
  // else: the previous generation stays for deadline-pressed stale
  // serving; fresh inserts overwrite rows in place.
  op->FinishReplay(shard->index, /*success=*/true,
                   shard->encoder->memory().version(), "",
                   &shard->heartbeat);
}

bool ServingEngine::TryServeStale(Shard* shard, Request* request,
                                  uint64_t current_version) {
  const int64_t dim = config_.embed_dim;
  bool any_stale = false;
  const auto gather_any = [&](const std::vector<graph::NodeId>& nodes,
                              std::vector<float>* data) {
    data->reserve(nodes.size() * static_cast<size_t>(dim));
    for (graph::NodeId v : nodes) {
      std::vector<float> row;
      uint64_t row_version = 0;
      if (!shard->cache->LookupAnyVersion(v, request->time, &row,
                                          &row_version)) {
        return false;
      }
      if (row_version != current_version) any_stale = true;
      data->insert(data->end(), row.begin(), row.end());
    }
    return true;
  };

  std::vector<float> src_data;
  if (!gather_any(request->nodes, &src_data)) return false;
  std::vector<float> dst_data;
  if (request->kind == Request::Kind::kScoreLinks &&
      !gather_any(request->dsts, &dst_data)) {
    return false;
  }

  const int64_t latency = NowMicros() - request->enqueue_us;
  if (any_stale) {
    stale_served_.fetch_add(1);
    StaleServedCounter().Add();
  }
  if (request->kind == Request::Kind::kEmbed) {
    EmbedResponse response;
    response.embeddings = ts::Tensor::FromVector(
        static_cast<int64_t>(request->nodes.size()), dim,
        std::move(src_data));
    response.stale = any_stale;
    response.memory_version = current_version;
    response.latency_us = latency;
    LatencyHistogram().Observe(static_cast<double>(latency) * 1e-6);
    request->embed_result.set_value(std::move(response));
    return true;
  }
  CPDG_CHECK(request->kind == Request::Kind::kScoreLinks);
  ts::InferenceModeGuard guard;
  ts::QuantModeGuard qguard(&shard->quant_params);
  ts::Tensor logits = shard->predictor->ForwardLogits(
      ts::Tensor::FromVector(static_cast<int64_t>(request->nodes.size()),
                             dim, std::move(src_data)),
      ts::Tensor::FromVector(static_cast<int64_t>(request->dsts.size()),
                             dim, std::move(dst_data)));
  ts::Tensor probs = ts::Sigmoid(logits);
  ScoreResponse response;
  response.probabilities.resize(request->nodes.size());
  for (size_t i = 0; i < response.probabilities.size(); ++i) {
    response.probabilities[i] =
        static_cast<double>(probs.at(static_cast<int64_t>(i), 0));
  }
  response.stale = any_stale;
  response.memory_version = current_version;
  response.latency_us = latency;
  LatencyHistogram().Observe(static_cast<double>(latency) * 1e-6);
  request->score_result.set_value(std::move(response));
  return true;
}

void ServingEngine::ExecuteBatch(Shard* shard,
                                 std::vector<std::unique_ptr<Request>> batch) {
  CPDG_TRACE_SPAN("serve/execute_batch");
  QueueDepthGauge().Set(static_cast<double>(shard->queue->depth()));
  BatchRequestsHistogram().Observe(static_cast<double>(batch.size()));

  const uint64_t version = shard->encoder->memory().version();
  const int64_t dim = config_.embed_dim;
  const int64_t admission_now = NowMicros();

  // Deadline triage before any compute: expired requests fail fast, and
  // requests that burned most of their budget waiting are served from the
  // stale cache when possible instead of joining the forward.
  std::vector<std::unique_ptr<Request>> live;
  live.reserve(batch.size());
  for (std::unique_ptr<Request>& request : batch) {
    switch (DecideAdmission(admission_now, request->enqueue_us,
                            request->deadline_us)) {
      case AdmissionDecision::kExpire: {
        deadline_exceeded_.fetch_add(1);
        DeadlineExceededCounter().Add();
        FailRequest(
            request.get(),
            Status::DeadlineExceeded(
                "deadline exceeded before execution (budget " +
                std::to_string(request->deadline_us - request->enqueue_us) +
                " us, waited " +
                std::to_string(admission_now - request->enqueue_us) +
                " us)"),
            shard->index);
        shard->heartbeat.fetch_add(1);
        break;
      }
      case AdmissionDecision::kTryStale:
        if (TryServeStale(shard, request.get(), version)) {
          shard->heartbeat.fetch_add(1);
          break;
        }
        live.push_back(std::move(request));
        break;
      case AdmissionDecision::kCompute:
        live.push_back(std::move(request));
        break;
    }
  }
  if (live.empty()) return;

  // Collect the distinct (node, time) queries of the remaining batch,
  // resolving each against the cache at the current memory version.
  std::map<std::pair<graph::NodeId, double>, std::vector<float>> rows;
  std::vector<graph::NodeId> miss_nodes;
  std::vector<double> miss_times;
  for (const auto& request : live) {
    auto collect = [&](graph::NodeId node) {
      auto [it, inserted] = rows.try_emplace({node, request->time});
      if (!inserted) return;  // already resolved or queued for compute
      if (!shard->cache->Lookup({node, request->time, version},
                                &it->second)) {
        miss_nodes.push_back(node);
        miss_times.push_back(request->time);
      }
    };
    for (graph::NodeId v : request->nodes) collect(v);
    for (graph::NodeId v : request->dsts) collect(v);
  }

  NodesComputedHistogram().Observe(static_cast<double>(miss_nodes.size()));
  if (!miss_nodes.empty()) {
    CPDG_TRACE_SPAN("serve/forward");
    ts::InferenceModeGuard guard;
    // Query-time forwards may run int8 (the set is empty — inert — at
    // fp32); advance replay in ExecuteBarrier deliberately does not, so
    // persistent memory state is precision-independent.
    ts::QuantModeGuard qguard(&shard->quant_params);
    // Read-only protocol: flush into the per-batch cache, never commit, so
    // memory (and its version) stay untouched.
    shard->encoder->BeginBatch();
    ts::Tensor z = shard->encoder->ComputeEmbeddings(miss_nodes, miss_times);
    CPDG_CHECK_EQ(z.cols(), dim);
    for (size_t i = 0; i < miss_nodes.size(); ++i) {
      const float* row = z.data() + static_cast<int64_t>(i) * dim;
      std::vector<float> values(row, row + dim);
      shard->cache->Insert({miss_nodes[i], miss_times[i], version}, values);
      rows[{miss_nodes[i], miss_times[i]}] = std::move(values);
    }
  }

  const auto row_of = [&](graph::NodeId node, double time) {
    auto it = rows.find({node, time});
    CPDG_CHECK(it != rows.end());
    CPDG_CHECK_EQ(it->second.size(), static_cast<size_t>(dim));
    return it->second;
  };
  const auto gather = [&](const std::vector<graph::NodeId>& nodes,
                          double time) {
    std::vector<float> data;
    data.reserve(nodes.size() * static_cast<size_t>(dim));
    for (graph::NodeId v : nodes) {
      const std::vector<float>& row = row_of(v, time);
      data.insert(data.end(), row.begin(), row.end());
    }
    return ts::Tensor::FromVector(static_cast<int64_t>(nodes.size()), dim,
                                  std::move(data));
  };

  for (auto& request : live) {
    const int64_t latency = NowMicros() - request->enqueue_us;
    if (request->kind == Request::Kind::kEmbed) {
      EmbedResponse response;
      response.embeddings = gather(request->nodes, request->time);
      response.memory_version = version;
      response.latency_us = latency;
      request->embed_result.set_value(std::move(response));
    } else {
      CPDG_TRACE_SPAN("serve/score");
      ts::InferenceModeGuard guard;
      ts::QuantModeGuard qguard(&shard->quant_params);
      ts::Tensor logits = shard->predictor->ForwardLogits(
          gather(request->nodes, request->time),
          gather(request->dsts, request->time));
      ts::Tensor probs = ts::Sigmoid(logits);
      ScoreResponse response;
      response.probabilities.resize(request->nodes.size());
      for (size_t i = 0; i < response.probabilities.size(); ++i) {
        response.probabilities[i] =
            static_cast<double>(probs.at(static_cast<int64_t>(i), 0));
      }
      response.memory_version = version;
      response.latency_us = latency;
      request->score_result.set_value(std::move(response));
    }
    LatencyHistogram().Observe(static_cast<double>(latency) * 1e-6);
    shard->heartbeat.fetch_add(1);
  }
}

}  // namespace cpdg::serve
