#ifndef CPDG_SERVE_REQUEST_QUEUE_H_
#define CPDG_SERVE_REQUEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "graph/temporal_graph.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace cpdg::serve {

/// \brief One pending client call, parked on a promise until the executor
/// thread fulfills it. Exactly one of the three promises is used, selected
/// by `kind`.
struct Request {
  enum class Kind { kEmbed, kScoreLinks, kAdvance };

  Kind kind = Kind::kEmbed;

  /// kEmbed: query nodes. kScoreLinks: link sources.
  std::vector<graph::NodeId> nodes;
  /// kScoreLinks only: link destinations (same length as `nodes`).
  std::vector<graph::NodeId> dsts;
  /// Query time t for kEmbed / kScoreLinks.
  double time = 0.0;
  /// kAdvance only: events to replay into the frozen memory.
  std::vector<graph::Event> events;

  std::promise<Result<tensor::Tensor>> embed_result;
  std::promise<Result<std::vector<double>>> score_result;
  std::promise<Status> advance_result;

  /// Enqueue timestamp (obs::Profiler::NowMicros clock) for end-to-end
  /// latency accounting.
  int64_t enqueue_us = 0;
};

/// \brief Thread-safe FIFO that coalesces waiting requests into batches.
///
/// Producers (any number of client threads) Push; a single consumer (the
/// engine's executor thread) drains with PopBatch, which blocks until at
/// least one request is queued and then keeps absorbing requests — waiting
/// up to `max_wait` for stragglers — until it holds `max_batch` of them.
///
/// kAdvance requests are batch barriers: an advance is only ever returned
/// alone, and a batch never extends past one. Combined with FIFO order
/// this guarantees every embed/score request is executed against the
/// memory version that was current when it was enqueued relative to
/// surrounding advances — a coalesced batch can never straddle a memory
/// mutation.
class RequestQueue {
 public:
  /// Enqueues a request. Returns false (request untouched) after Shutdown.
  bool Push(std::unique_ptr<Request> request) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return false;
      queue_.push_back(std::move(request));
    }
    cv_.notify_one();
    return true;
  }

  /// \brief Blocks for the next coalesced batch (see class comment).
  /// Returns an empty vector only when the queue is shut down and fully
  /// drained — the executor's exit signal.
  std::vector<std::unique_ptr<Request>> PopBatch(
      int64_t max_batch, std::chrono::microseconds max_wait) {
    std::vector<std::unique_ptr<Request>> batch;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return batch;  // shut down and drained

    const auto deadline = std::chrono::steady_clock::now() + max_wait;
    while (static_cast<int64_t>(batch.size()) < max_batch) {
      if (!queue_.empty()) {
        if (queue_.front()->kind == Request::Kind::kAdvance) {
          // Barrier: pop it alone, never alongside other work.
          if (batch.empty()) {
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
          }
          break;
        }
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        continue;
      }
      if (shutdown_ ||
          cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    return batch;
  }

  /// Wakes the consumer; subsequent Push calls fail, queued requests still
  /// drain through PopBatch.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
  }

  /// Instantaneous queue depth (requests waiting, not in-flight batches).
  int64_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(queue_.size());
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Request>> queue_;
  bool shutdown_ = false;
};

}  // namespace cpdg::serve

#endif  // CPDG_SERVE_REQUEST_QUEUE_H_
