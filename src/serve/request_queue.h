#ifndef CPDG_SERVE_REQUEST_QUEUE_H_
#define CPDG_SERVE_REQUEST_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "graph/temporal_graph.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace cpdg::serve {

class AdvanceOp;  // shard_router.h; Request only carries a shared_ptr

/// \brief Embedding answer plus its serving provenance: which memory
/// version the rows were computed at, whether they were served from a
/// stale cache generation under deadline pressure, and the end-to-end
/// latency the executor measured.
struct EmbedResponse {
  tensor::Tensor embeddings;  // [n, embed_dim]
  bool stale = false;
  uint64_t memory_version = 0;
  int64_t latency_us = 0;
};

/// \brief Link-probability answer with the same provenance fields.
struct ScoreResponse {
  std::vector<double> probabilities;
  bool stale = false;
  uint64_t memory_version = 0;
  int64_t latency_us = 0;
};

/// \brief One pending client call, parked on a promise until a shard
/// executor fulfills it. Exactly one of the promises is used, selected by
/// `kind`; kAdvance requests carry no promise — they are rendezvous
/// barriers coordinated through the shared AdvanceOp.
struct Request {
  enum class Kind { kEmbed, kScoreLinks, kAdvance };

  Kind kind = Kind::kEmbed;

  /// kEmbed: query nodes. kScoreLinks: link sources.
  std::vector<graph::NodeId> nodes;
  /// kScoreLinks only: link destinations (same length as `nodes`).
  std::vector<graph::NodeId> dsts;
  /// Query time t for kEmbed / kScoreLinks.
  double time = 0.0;
  /// kAdvance only: the cross-shard two-phase barrier this request joins.
  std::shared_ptr<AdvanceOp> advance;

  std::promise<Result<EmbedResponse>> embed_result;
  std::promise<Result<ScoreResponse>> score_result;

  /// Enqueue timestamp (obs::Profiler::NowMicros clock) for latency
  /// accounting and deadline-budget math.
  int64_t enqueue_us = 0;
  /// Absolute expiry on the same clock; 0 = no deadline. Expired requests
  /// are answered kDeadlineExceeded instead of being computed.
  int64_t deadline_us = 0;
};

/// \brief What a full queue does with a new request.
enum class OverloadPolicy {
  kReject,     ///< fail the new request with kResourceExhausted
  kShedOldest, ///< drop the oldest queued request(s) to admit the new one
  kBlock,      ///< block the producer until space frees up
};

/// Parses "reject" / "shed-oldest" / "block" (the CPDG_SERVE_OVERLOAD
/// vocabulary).
inline Result<OverloadPolicy> ParseOverloadPolicy(const std::string& name) {
  if (name == "reject") return OverloadPolicy::kReject;
  if (name == "shed-oldest") return OverloadPolicy::kShedOldest;
  if (name == "block") return OverloadPolicy::kBlock;
  return Status::InvalidArgument(
      "unknown overload policy \"" + name +
      "\" (expected reject|shed-oldest|block)");
}

inline const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kReject:
      return "reject";
    case OverloadPolicy::kShedOldest:
      return "shed-oldest";
    case OverloadPolicy::kBlock:
      return "block";
  }
  return "unknown";
}

/// \brief Admission verdict of Push; [[nodiscard]] so no caller can drop a
/// rejected or shut-down request on the floor without failing its promise.
enum class [[nodiscard]] PushOutcome { kAccepted, kRejected, kShutdown };

/// \brief Thread-safe FIFO that coalesces waiting requests into batches,
/// bounded by an admission-control limit.
///
/// Producers (any number of client threads) Push; a single consumer (the
/// shard's executor thread) drains with PopBatch, which blocks until at
/// least one request is queued and then keeps absorbing requests — waiting
/// up to `max_wait` for stragglers — until it holds `max_batch` of them.
///
/// With `limit > 0` the queue refuses to grow past `limit` requests; the
/// OverloadPolicy decides whether the producer is rejected, the oldest
/// queued request is shed (returned to the producer to fail), or the
/// producer blocks for space. Control-plane pushes (advance barriers,
/// which must reach the executor even under overload) use PushControl and
/// bypass the limit.
///
/// kAdvance requests are batch barriers: an advance is only ever returned
/// alone, and a batch never extends past one. Combined with FIFO order
/// this guarantees every embed/score request is executed against the
/// memory version that was current when it was enqueued relative to
/// surrounding advances — a coalesced batch can never straddle a memory
/// mutation.
class RequestQueue {
 public:
  struct Options {
    /// Maximum queued requests; 0 = unbounded.
    int64_t limit = 0;
    OverloadPolicy policy = OverloadPolicy::kReject;
  };

  RequestQueue() = default;
  explicit RequestQueue(const Options& options) : options_(options) {}

  /// \brief Enqueues a request subject to the queue limit. On kAccepted
  /// the request has been moved into the queue; on kRejected/kShutdown it
  /// is left with the caller, who must fail its promise. Under
  /// kShedOldest, evicted older requests are appended to `*shed` (also for
  /// the caller to fail); barriers are never shed.
  PushOutcome Push(std::unique_ptr<Request>& request,
                   std::vector<std::unique_ptr<Request>>* shed = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return PushOutcome::kShutdown;
    if (options_.limit > 0 &&
        static_cast<int64_t>(queue_.size()) >= options_.limit) {
      switch (options_.policy) {
        case OverloadPolicy::kReject:
          return PushOutcome::kRejected;
        case OverloadPolicy::kShedOldest: {
          while (static_cast<int64_t>(queue_.size()) >= options_.limit) {
            auto victim = queue_.begin();
            while (victim != queue_.end() &&
                   (*victim)->kind == Request::Kind::kAdvance) {
              ++victim;
            }
            if (victim == queue_.end()) return PushOutcome::kRejected;
            if (shed != nullptr) shed->push_back(std::move(*victim));
            queue_.erase(victim);
          }
          break;
        }
        case OverloadPolicy::kBlock: {
          space_cv_.wait(lock, [this] {
            return shutdown_ ||
                   static_cast<int64_t>(queue_.size()) < options_.limit;
          });
          if (shutdown_) return PushOutcome::kShutdown;
          break;
        }
      }
    }
    queue_.push_back(std::move(request));
    peak_depth_ = std::max(peak_depth_, static_cast<int64_t>(queue_.size()));
    lock.unlock();
    cv_.notify_one();
    return PushOutcome::kAccepted;
  }

  /// \brief Control-plane enqueue (advance barriers): bypasses the queue
  /// limit so an overloaded shard still quiesces. Fails only after
  /// Shutdown, leaving the request with the caller.
  PushOutcome PushControl(std::unique_ptr<Request>& request) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return PushOutcome::kShutdown;
      queue_.push_back(std::move(request));
      peak_depth_ =
          std::max(peak_depth_, static_cast<int64_t>(queue_.size()));
    }
    cv_.notify_one();
    return PushOutcome::kAccepted;
  }

  /// \brief Blocks for the next coalesced batch (see class comment).
  /// Returns an empty vector only when the queue is shut down and fully
  /// drained — the executor's exit signal.
  std::vector<std::unique_ptr<Request>> PopBatch(
      int64_t max_batch, std::chrono::microseconds max_wait) {
    std::vector<std::unique_ptr<Request>> batch;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return batch;  // shut down and drained

    const auto deadline = std::chrono::steady_clock::now() + max_wait;
    while (static_cast<int64_t>(batch.size()) < max_batch) {
      if (!queue_.empty()) {
        if (queue_.front()->kind == Request::Kind::kAdvance) {
          // Barrier: pop it alone, never alongside other work.
          if (batch.empty()) {
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
          }
          break;
        }
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        continue;
      }
      if (shutdown_ ||
          cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    if (options_.limit > 0 && options_.policy == OverloadPolicy::kBlock) {
      lock.unlock();
      space_cv_.notify_all();
    }
    return batch;
  }

  /// \brief Removes and returns everything queued (the restart drain: the
  /// watchdog fails these with kUnavailable instead of letting them rot in
  /// a dead shard's queue). Wakes blocked producers.
  std::vector<std::unique_ptr<Request>> DrainAll() {
    std::vector<std::unique_ptr<Request>> drained;
    {
      std::lock_guard<std::mutex> lock(mu_);
      drained.reserve(queue_.size());
      for (auto& request : queue_) drained.push_back(std::move(request));
      queue_.clear();
    }
    space_cv_.notify_all();
    return drained;
  }

  /// Wakes the consumer and any blocked producers; subsequent Push calls
  /// fail, queued requests still drain through PopBatch.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    space_cv_.notify_all();
  }

  /// Instantaneous queue depth (requests waiting, not in-flight batches).
  int64_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(queue_.size());
  }

  /// High-water mark of the queue depth since construction.
  int64_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_depth_;
  }

  const Options& options() const { return options_; }

 private:
  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        // consumer wakeups
  std::condition_variable space_cv_;  // kBlock producer wakeups
  std::deque<std::unique_ptr<Request>> queue_;
  int64_t peak_depth_ = 0;
  bool shutdown_ = false;
};

}  // namespace cpdg::serve

#endif  // CPDG_SERVE_REQUEST_QUEUE_H_
