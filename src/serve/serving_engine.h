#ifndef CPDG_SERVE_SERVING_ENGINE_H_
#define CPDG_SERVE_SERVING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dgnn/encoder.h"
#include "graph/graph_store.h"
#include "serve/embedding_cache.h"
#include "serve/request_queue.h"
#include "serve/shard_router.h"
#include "serve/watchdog.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpdg::serve {

/// Events replayed per CommitBatch during Advance and during journal
/// catch-up of a restarted shard. Fixed (not an option) because replay
/// results depend on the batching; a stable constant keeps every replica —
/// including one rebuilt from checkpoint + journal after a crash —
/// bit-identical to the fleet and to single-shard serving.
inline constexpr int64_t kAdvanceReplayBatch = 128;

/// \brief Numeric precision of query-time forwards (embed / score-links).
/// Advance replay and journal catch-up always run fp32 regardless, so the
/// persistent memory state — the recovery source of truth — is identical
/// at every precision (DESIGN.md §14).
enum class ServePrecision {
  kFp32,  ///< bit-identical to the direct encoder forward (the default)
  kInt8,  ///< quantized frozen-weight kernels (tensor/quant.h)
};

const char* ServePrecisionName(ServePrecision precision);
Result<ServePrecision> ParseServePrecision(const std::string& text);

/// \brief Knobs of the serving engine; every field has an environment
/// override (see FromEnv) documented in the README env-var table.
struct ServingOptions {
  /// Maximum requests coalesced into one executor batch.
  int64_t max_batch = 64;
  /// How long a non-full batch is held open for stragglers once the queue
  /// drains. The default 0 is adaptive batching: execute immediately with
  /// whatever queued while the previous batch ran — the right setting when
  /// clients block on their results (they cannot produce stragglers while
  /// a batch is being held). Raise it only for open-loop clients that keep
  /// submitting without waiting.
  int64_t max_wait_micros = 0;
  /// Embedding-cache rows per shard; 0 disables caching.
  int64_t cache_capacity = 4096;

  /// Executor shards (full frozen-state replicas, requests routed by node
  /// affinity). CPDG_SERVE_SHARDS.
  int num_shards = 1;
  /// Per-shard queued-request bound; 0 = unbounded (no admission control).
  /// CPDG_SERVE_QUEUE_LIMIT.
  int64_t queue_limit = 0;
  /// What a full queue does with new requests. CPDG_SERVE_OVERLOAD
  /// (reject | shed-oldest | block).
  OverloadPolicy overload = OverloadPolicy::kReject;
  /// Default per-request latency budget in microseconds; 0 = no deadline.
  /// Per-call deadlines override it. CPDG_SERVE_DEADLINE_US.
  int64_t default_deadline_us = 0;
  /// Keep cache entries of older memory versions across Advance so a
  /// deadline-pressed request can be served stale instead of expired.
  /// Forced on by FromCheckpoint whenever default_deadline_us > 0;
  /// otherwise the cache is invalidated eagerly on advance.
  bool keep_stale_entries = false;

  /// Shard-health sampling period of the watchdog.
  int64_t watchdog_interval_ms = 100;
  /// Samples without executor progress (while work is queued) before a
  /// shard is declared wedged and restarted.
  int watchdog_max_missed = 20;
  /// How long an Advance waits for all shards to park at the barrier
  /// before abandoning the stragglers (they are restarted from checkpoint
  /// + journal by the watchdog).
  int64_t quiesce_timeout_ms = 2000;

  /// Numeric precision of query-time forwards. CPDG_SERVE_PRECISION
  /// (fp32 | int8). Advance replay always runs fp32 (ServePrecision
  /// comment); int8 trades bit-identity for throughput within a measured
  /// AUC tolerance (bench_serving, docs/OPERATIONS.md rollout checklist).
  ServePrecision precision = ServePrecision::kFp32;

  /// Directory of the on-disk advance journal (serve/journal.h); empty
  /// disables persistence. When set, FromCheckpoint reloads any journaled
  /// advances before building shards, and every Advance appends its entry
  /// durably before any replica replays it. CPDG_SERVE_JOURNAL_DIR.
  std::string journal_dir;

  /// Defaults overridden by CPDG_SERVE_MAX_BATCH, CPDG_SERVE_MAX_WAIT_MICROS,
  /// CPDG_SERVE_CACHE_CAPACITY, CPDG_SERVE_SHARDS, CPDG_SERVE_QUEUE_LIMIT,
  /// CPDG_SERVE_OVERLOAD, CPDG_SERVE_DEADLINE_US, CPDG_SERVE_PRECISION and
  /// CPDG_SERVE_JOURNAL_DIR when set.
  static ServingOptions FromEnv();
};

/// \brief What the executor does with a request given its deadline budget.
enum class AdmissionDecision {
  kCompute,   ///< within budget: compute fresh
  kTryStale,  ///< budget mostly burned: prefer a stale cache hit
  kExpire,    ///< deadline already passed: fail with kDeadlineExceeded
};

/// \brief Pure deadline-budget policy (unit-tested directly). A request
/// with no deadline always computes. An expired one never computes. In
/// between, once at least half the budget was burned waiting in the queue,
/// the executor prefers serving a stale cached row over starting a fresh
/// forward it would likely not finish in time.
AdmissionDecision DecideAdmission(int64_t now_us, int64_t enqueue_us,
                                  int64_t deadline_us);

/// \brief Frozen-encoder embedding server with shard-replicated executors,
/// bounded request queues, deadline admission, and watchdog-supervised
/// crash recovery.
///
/// Loads a CPDGCKPT v2 checkpoint (the "params" tensor list, plus the
/// "memory" DGNN state snapshot when present), freezes the encoder, and
/// answers embedding and link-scoring queries behind per-shard thread-safe
/// request queues. Each of the `num_shards` executor threads owns a full
/// replica of the frozen encoder state; requests are routed to shards by
/// node-id affinity (ShardRouter), which keeps each shard's embedding
/// cache hot for its node range. Replicas — not partitions — because a
/// node's embedding reads its sampled neighbors' memory rows, which
/// land on other shards under any partition (DESIGN.md §12).
///
/// Determinism: forwards run under tensor::InferenceModeGuard on the
/// read-only encoder protocol (dgnn::DgnnEncoder class comment), whose
/// output rows depend only on their own (node, time) query. Non-stale
/// results are therefore bit-identical to a direct encoder forward
/// regardless of shard count, coalescing, racing clients, or cache
/// warmth — and a shard restarted from checkpoint + journal converges to
/// the same bits.
///
/// Advance(events) is a fleet-wide two-phase barrier (AdvanceOp): the
/// events are journaled first, every shard executor quiesces, each replica
/// replays the full stream in kAdvanceReplayBatch chunks, and the shared
/// serving version moves once the coordinator has verified all replicas
/// converged on one memory version. Shards that miss the barrier or fail
/// replay are marked failed and rebuilt by the watchdog from the
/// checkpoint plus the journal — which already contains the advance they
/// missed.
///
/// Overload behavior: with queue_limit > 0, a full shard queue rejects,
/// sheds-oldest, or blocks per OverloadPolicy; rejected and shed requests
/// fail with kResourceExhausted. With a deadline, an expired request fails
/// with kDeadlineExceeded (it is never computed), and a nearly-expired one
/// may be answered from a stale cache generation with `stale=true` in the
/// response rather than missing its deadline.
///
/// All public methods are thread-safe; the *Full variants expose staleness
/// and latency provenance, the plain Embed/ScoreLinks wrappers keep the
/// original signatures. Queue depth, batch sizes, end-to-end latency,
/// overload verdicts, and cache traffic are exported through the serve.*
/// metrics; executor stages are traced as serve/* spans.
class ServingEngine {
 public:
  /// \brief Builds an engine for `config` (plus a LinkPredictor with
  /// `predictor_hidden` hidden units when > 0) and restores parameters —
  /// and memory, when the checkpoint carries a "memory" section — from
  /// `checkpoint_path`, once per shard replica.
  ///
  /// The checkpoint's tensor list must match the constructed modules
  /// exactly (count and shapes, encoder parameters first, predictor
  /// appended — the layout the pre-trainer writes); any mismatch or
  /// corruption fails with a recoverable Status, never a partially
  /// initialized engine. `graph` provides the temporal neighborhoods and
  /// must outlive the engine. The path is retained for watchdog restarts.
  static Result<std::unique_ptr<ServingEngine>> FromCheckpoint(
      const dgnn::EncoderConfig& config, int64_t predictor_hidden,
      const graph::GraphStore* graph, const std::string& checkpoint_path,
      const ServingOptions& options = ServingOptions());

  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// \brief Temporal embeddings z_i^t for `nodes` at query time `time`,
  /// [n, embed_dim], detached from any autograd graph.
  Result<tensor::Tensor> Embed(const std::vector<graph::NodeId>& nodes,
                               double time);

  /// \brief Embed with provenance. `deadline_us` is a relative latency
  /// budget from now (0 = use options().default_deadline_us; that being 0
  /// too means no deadline).
  Result<EmbedResponse> EmbedFull(const std::vector<graph::NodeId>& nodes,
                                  double time, int64_t deadline_us = 0);

  /// \brief Non-blocking submission for open-loop clients (the load
  /// generator): returns the future immediately, admission errors as a
  /// failed Result. The future resolves when a shard executor answers.
  Result<std::future<Result<EmbedResponse>>> EmbedAsync(
      const std::vector<graph::NodeId>& nodes, double time,
      int64_t deadline_us = 0);

  /// \brief Link probabilities sigmoid(MLP(z_src || z_dst)) for the pairs
  /// (srcs[i], dsts[i]) at query time `time`. Requires the engine to have
  /// been built with a predictor (predictor_hidden > 0).
  Result<std::vector<double>> ScoreLinks(
      const std::vector<graph::NodeId>& srcs,
      const std::vector<graph::NodeId>& dsts, double time);

  /// \brief ScoreLinks with provenance; deadline semantics as EmbedFull.
  Result<ScoreResponse> ScoreLinksFull(const std::vector<graph::NodeId>& srcs,
                                       const std::vector<graph::NodeId>& dsts,
                                       double time, int64_t deadline_us = 0);

  /// \brief Replays `events` (chronological) into every shard replica's
  /// frozen memory through the two-phase barrier described in the class
  /// comment. Returns OK when at least one replica applied the advance
  /// (stragglers are journaled-in by the watchdog); kUnavailable when no
  /// live replica could.
  Status Advance(std::vector<graph::Event> events);

  /// Stops the watchdog, stops accepting requests, drains the queues,
  /// joins every executor (including restarted-out zombies). Idempotent;
  /// the destructor calls it.
  void Shutdown();

  /// Fleet serving version: the dgnn::Memory::version() all live replicas
  /// agreed on at the last successful advance (or load).
  uint64_t memory_version() const { return serve_version_.load(); }

  /// Shard 0's encoder (all replicas are bit-identical); stable for the
  /// engine's lifetime — restarted-out replicas are retired, not freed,
  /// until Shutdown.
  const dgnn::DgnnEncoder& encoder() const;

  bool has_predictor() const { return predictor_hidden_ > 0; }
  const ServingOptions& options() const { return options_; }
  int num_shards() const { return router_.num_shards(); }

  /// Per-shard dgnn::Memory::version() snapshot (test hook for barrier
  /// consistency: all entries equal after a successful Advance).
  std::vector<uint64_t> ShardMemoryVersions() const;

  /// Cache traffic totals summed over all replicas, including retired
  /// ones (test hooks; mirrored in serve.cache.* metrics).
  int64_t cache_hits() const;
  int64_t cache_misses() const;
  int64_t cache_evictions() const;
  int64_t cache_invalidations() const;

  /// Overload / robustness totals (test hooks; serve.overload.* metrics).
  int64_t rejected_count() const { return rejected_.load(); }
  int64_t shed_count() const { return shed_.load(); }
  int64_t deadline_exceeded_count() const {
    return deadline_exceeded_.load();
  }
  int64_t stale_served_count() const { return stale_served_.load(); }
  /// Requests failed kUnavailable when a failed shard's queue was drained.
  int64_t drained_count() const { return drained_.load(); }
  int64_t watchdog_restarts() const {
    return watchdog_ != nullptr ? watchdog_->restarts() : 0;
  }
  /// Restart attempts that could not reload the checkpoint (left for
  /// retry on the next watchdog tick).
  int64_t reload_failures() const { return reload_failures_.load(); }
  /// Highest queue depth observed on any shard (bounded-queue evidence).
  int64_t queue_peak_depth() const;

 private:
  /// One executor replica: full frozen encoder state, its own queue,
  /// cache, thread, and health flags.
  struct Shard {
    int index = 0;
    // Parameters are overwritten by the checkpoint restore; the seed only
    // determines the (discarded) construction-time initialization.
    Rng rng{0x5e17f0u};
    std::unique_ptr<dgnn::DgnnEncoder> encoder;
    std::unique_ptr<dgnn::LinkPredictor> predictor;
    std::unique_ptr<RequestQueue> queue;
    std::unique_ptr<EmbeddingCache> cache;
    /// int8 copies of the frozen weight matrices, quantized once at build
    /// time; empty unless options_.precision == kInt8. Activated per
    /// query-time forward with tensor::QuantModeGuard — never during
    /// replay, so memory state stays precision-independent.
    tensor::QuantizedParamSet quant_params;
    std::thread executor;

    /// Bumped on every pop, every fulfilled request, and every barrier
    /// wait tick; the watchdog's liveness signal.
    std::atomic<int64_t> heartbeat{0};
    /// Requests popped but not yet answered (watchdog has-work probe).
    std::atomic<int64_t> inflight{0};
    /// Self-declared unhealthy (failed replay, abandoned barrier, failed
    /// reload); the watchdog rebuilds the shard on its next tick.
    std::atomic<bool> failed{false};
  };

  ServingEngine(const dgnn::EncoderConfig& config, int64_t predictor_hidden,
                const graph::GraphStore* graph, std::string checkpoint_path,
                const ServingOptions& options);

  /// Loads the checkpoint into a fresh replica and replays the advance
  /// journal prefix; `*journal_applied` reports how many entries were
  /// replayed (for the restart catch-up loop). Does not start the thread.
  Result<std::shared_ptr<Shard>> BuildShard(int index,
                                            size_t* journal_applied);
  void StartShard(const std::shared_ptr<Shard>& shard);
  void StartWatchdog();
  /// Watchdog restart callback: drain, rebuild from checkpoint + journal,
  /// swap. Returns false (shard left failed, retried next tick) when the
  /// checkpoint reload fails.
  bool RestartShard(int index);

  void ExecutorLoop(std::shared_ptr<Shard> shard);
  void ExecuteBatch(Shard* shard, std::vector<std::unique_ptr<Request>> batch);
  void ExecuteBarrier(Shard* shard, std::unique_ptr<Request> request);
  /// Graceful degradation: answer from the cache at *any* memory version
  /// (flagging stale rows) when the deadline budget is nearly spent.
  /// Returns false when a row is missing — the request falls back to the
  /// compute path.
  bool TryServeStale(Shard* shard, Request* request,
                     uint64_t current_version);

  /// Stamps enqueue/deadline, routes, and pushes under admission control;
  /// on error the request's promise is untouched (the caller returns the
  /// Status instead of waiting on the future).
  Status Submit(std::unique_ptr<Request> request, int64_t deadline_us);
  /// Fails a request's promise with `status` (advance barriers are marked
  /// absent on their op instead).
  void FailRequest(Request* request, const Status& status, int shard_index);

  std::shared_ptr<Shard> shard(int index) const;

  ServingOptions options_;
  const dgnn::EncoderConfig config_;
  const int64_t predictor_hidden_;
  const graph::GraphStore* graph_;
  const std::string checkpoint_path_;
  ShardRouter router_;

  mutable std::mutex shards_mu_;
  std::vector<std::shared_ptr<Shard>> shards_;
  /// Replicas swapped out by restarts; threads joined at Shutdown (their
  /// in-flight batches are allowed to finish).
  std::vector<std::shared_ptr<Shard>> zombies_;
  /// Every successful-validation Advance, in order, journaled *before* the
  /// barrier — the recovery source of truth for rebuilt shards.
  std::vector<std::shared_ptr<const std::vector<graph::Event>>> journal_;

  /// Serializes Advance coordinators.
  std::mutex advance_mu_;
  /// Sequence number of the next on-disk journal entry (mutated only under
  /// advance_mu_); starts past the entries FromCheckpoint reloaded.
  int64_t journal_next_seq_ = 0;
  std::atomic<uint64_t> serve_version_{0};

  std::unique_ptr<Watchdog> watchdog_;
  std::atomic<bool> shutdown_{false};

  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> deadline_exceeded_{0};
  std::atomic<int64_t> stale_served_{0};
  std::atomic<int64_t> drained_{0};
  std::atomic<int64_t> reload_failures_{0};
};

}  // namespace cpdg::serve

#endif  // CPDG_SERVE_SERVING_ENGINE_H_
