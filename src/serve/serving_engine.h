#ifndef CPDG_SERVE_SERVING_ENGINE_H_
#define CPDG_SERVE_SERVING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dgnn/encoder.h"
#include "graph/graph_store.h"
#include "serve/embedding_cache.h"
#include "serve/request_queue.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpdg::serve {

/// \brief Knobs of the serving engine; every field has an environment
/// override (see FromEnv) documented in the README env-var table.
struct ServingOptions {
  /// Maximum requests coalesced into one executor batch.
  int64_t max_batch = 64;
  /// How long a non-full batch is held open for stragglers once the queue
  /// drains. The default 0 is adaptive batching: execute immediately with
  /// whatever queued while the previous batch ran — the right setting when
  /// clients block on their results (they cannot produce stragglers while
  /// a batch is being held). Raise it only for open-loop clients that keep
  /// submitting without waiting.
  int64_t max_wait_micros = 0;
  /// Embedding-cache rows; 0 disables caching.
  int64_t cache_capacity = 4096;

  /// Defaults overridden by CPDG_SERVE_MAX_BATCH, CPDG_SERVE_MAX_WAIT_MICROS
  /// and CPDG_SERVE_CACHE_CAPACITY when set.
  static ServingOptions FromEnv();
};

/// \brief Frozen-encoder embedding server.
///
/// Loads a CPDGCKPT v2 checkpoint (the "params" tensor list, plus the
/// "memory" DGNN state snapshot when present), freezes the encoder, and
/// answers embedding and link-scoring queries behind a thread-safe request
/// queue. A single executor thread drains the queue, coalescing waiting
/// requests into batches (RequestQueue); the tensor kernels inside each
/// forward still fan out over util::ThreadPool::Global(), so batching
/// amortizes per-request overhead without giving up kernel parallelism.
///
/// Determinism: forwards run under tensor::InferenceModeGuard on the
/// read-only encoder protocol (dgnn::DgnnEncoder class comment), whose
/// output rows depend only on their own (node, time) query. Results are
/// therefore bit-identical to a direct encoder forward regardless of how
/// requests were coalesced, how many client threads raced, or whether the
/// embedding cache was warm.
///
/// Advance(events) replays events into the frozen memory (parameters stay
/// fixed), bumping dgnn::Memory::version() and invalidating the cache. The
/// temporal graph itself is immutable, so advanced events update node
/// memory but do not extend the neighborhood structure used by the
/// embedding module's temporal attention.
///
/// All public methods are thread-safe; Embed/ScoreLinks/Advance block the
/// caller until the executor fulfills the request. Queue depth, batch
/// sizes, end-to-end latency, and cache traffic are exported through the
/// serve.* metrics; executor stages are traced as serve/* spans.
class ServingEngine {
 public:
  /// \brief Builds an engine for `config` (plus a LinkPredictor with
  /// `predictor_hidden` hidden units when > 0) and restores parameters —
  /// and memory, when the checkpoint carries a "memory" section — from
  /// `checkpoint_path`.
  ///
  /// The checkpoint's tensor list must match the constructed modules
  /// exactly (count and shapes, encoder parameters first, predictor
  /// appended — the layout the pre-trainer writes); any mismatch or
  /// corruption fails without a partially-initialized engine. `graph`
  /// provides the temporal neighborhoods and must outlive the engine.
  static Result<std::unique_ptr<ServingEngine>> FromCheckpoint(
      const dgnn::EncoderConfig& config, int64_t predictor_hidden,
      const graph::GraphStore* graph, const std::string& checkpoint_path,
      const ServingOptions& options = ServingOptions());

  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// \brief Temporal embeddings z_i^t for `nodes` at query time `time`,
  /// [n, embed_dim], detached from any autograd graph.
  Result<tensor::Tensor> Embed(const std::vector<graph::NodeId>& nodes,
                               double time);

  /// \brief Link probabilities sigmoid(MLP(z_src || z_dst)) for the pairs
  /// (srcs[i], dsts[i]) at query time `time`. Requires the engine to have
  /// been built with a predictor (predictor_hidden > 0).
  Result<std::vector<double>> ScoreLinks(
      const std::vector<graph::NodeId>& srcs,
      const std::vector<graph::NodeId>& dsts, double time);

  /// \brief Replays `events` (chronological) into the frozen memory and
  /// invalidates the embedding cache. Acts as a barrier: requests enqueued
  /// before the advance observe pre-advance memory, requests after it the
  /// post-advance memory.
  Status Advance(std::vector<graph::Event> events);

  /// Stops accepting requests, drains the queue, joins the executor.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  /// Current dgnn::Memory::version() of the frozen memory.
  uint64_t memory_version() const;

  const dgnn::DgnnEncoder& encoder() const { return *encoder_; }
  bool has_predictor() const { return predictor_ != nullptr; }
  const ServingOptions& options() const { return options_; }

  /// Cache traffic totals (test hooks; mirrored in serve.cache.* metrics).
  int64_t cache_hits() const { return cache_.hits(); }
  int64_t cache_misses() const { return cache_.misses(); }
  int64_t cache_evictions() const { return cache_.evictions(); }
  int64_t cache_invalidations() const { return cache_.invalidations(); }

 private:
  ServingEngine(const dgnn::EncoderConfig& config, int64_t predictor_hidden,
                const graph::GraphStore* graph,
                const ServingOptions& options);

  void ExecutorLoop();
  void ExecuteBatch(std::vector<std::unique_ptr<Request>> batch);
  void ExecuteAdvance(Request* request);

  /// Blocks on `request`'s future after enqueueing; factored because all
  /// three public calls share the push/fail-on-shutdown dance.
  bool Enqueue(std::unique_ptr<Request> request);

  ServingOptions options_;
  Rng rng_;
  std::unique_ptr<dgnn::DgnnEncoder> encoder_;
  std::unique_ptr<dgnn::LinkPredictor> predictor_;

  RequestQueue queue_;
  EmbeddingCache cache_;
  std::thread executor_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace cpdg::serve

#endif  // CPDG_SERVE_SERVING_ENGINE_H_
