#ifndef CPDG_SERVE_EMBEDDING_CACHE_H_
#define CPDG_SERVE_EMBEDDING_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/temporal_graph.h"

namespace cpdg::serve {

/// \brief LRU cache of computed node embeddings, keyed on
/// (node, query time) with the memory version stored alongside each row.
///
/// The memory version (dgnn::Memory::version()) makes staleness checks
/// O(1): any mutation of the frozen memory — in serving that is exactly an
/// Advance() replay — bumps the version, so Lookup (which requires an
/// exact version match) can never return a pre-advance row for a
/// post-advance query. Storing the version *inside* the entry rather than
/// in the key is what makes graceful degradation possible: under deadline
/// pressure the engine may deliberately ask for a row at *any* version via
/// LookupAnyVersion and flag the response stale, instead of missing its
/// deadline recomputing.
///
/// The engine either calls InvalidateAll() on advance to reclaim dead
/// entries eagerly, or — when configured to keep a stale generation for
/// degradation — leaves them to be overwritten by fresh inserts at the
/// same (node, time) or pushed out by LRU pressure.
///
/// The cache is NOT thread-safe; in the serving engine each shard
/// executor thread owns its own instance. Hit/miss/eviction/invalidation
/// totals are mirrored into the global MetricsRegistry under serve.cache.*
/// and kept as plain members for tests.
class EmbeddingCache {
 public:
  /// `capacity` is the maximum number of cached rows; 0 disables the cache
  /// entirely (Lookup always misses, Insert is a no-op).
  explicit EmbeddingCache(int64_t capacity);

  struct Key {
    graph::NodeId node = -1;
    double time = 0.0;
    uint64_t version = 0;

    bool operator==(const Key& o) const {
      return node == o.node && time == o.time && version == o.version;
    }
  };

  /// Copies the cached embedding row into `out` and refreshes recency;
  /// returns false (and leaves `out` untouched) when no row exists for
  /// (node, time) or the stored row was computed at a different memory
  /// version.
  bool Lookup(const Key& key, std::vector<float>* out);

  /// Degraded-mode lookup: returns the row cached for (node, time) at
  /// *whatever* memory version it was computed, writing that version to
  /// `*version_out`. The caller compares it against the current version to
  /// decide the `stale` flag. Counts as a hit/miss like Lookup.
  bool LookupAnyVersion(graph::NodeId node, double time,
                        std::vector<float>* out, uint64_t* version_out);

  /// Inserts (or refreshes) a row, evicting the least-recently-used entry
  /// when at capacity. A row for the same (node, time) at any version is
  /// overwritten — newer versions supersede stale generations in place.
  void Insert(const Key& key, std::vector<float> embedding);

  /// Drops every entry (counted under invalidations, not evictions).
  void InvalidateAll();

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  int64_t capacity() const { return capacity_; }

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }
  int64_t invalidations() const { return invalidations_; }

 private:
  /// Internal map key: version intentionally excluded (see class comment).
  struct MapKey {
    graph::NodeId node = -1;
    double time = 0.0;

    bool operator==(const MapKey& o) const {
      return node == o.node && time == o.time;
    }
  };

  struct MapKeyHash {
    size_t operator()(const MapKey& k) const;
  };

  struct Entry {
    MapKey key;
    uint64_t version = 0;
    std::vector<float> row;
  };

  int64_t capacity_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<MapKey, std::list<Entry>::iterator, MapKeyHash> entries_;

  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t invalidations_ = 0;
};

}  // namespace cpdg::serve

#endif  // CPDG_SERVE_EMBEDDING_CACHE_H_
