#ifndef CPDG_SERVE_EMBEDDING_CACHE_H_
#define CPDG_SERVE_EMBEDDING_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/temporal_graph.h"

namespace cpdg::serve {

/// \brief LRU cache of computed node embeddings, keyed on
/// (node, query time, memory version).
///
/// The memory version (dgnn::Memory::version()) makes staleness checks
/// O(1): any mutation of the frozen memory — in serving that is exactly an
/// Advance() replay — bumps the version, so entries computed against the
/// old memory can never be returned for a post-advance query. The engine
/// additionally calls InvalidateAll() on advance to reclaim the dead
/// entries eagerly instead of waiting for LRU pressure.
///
/// The cache is NOT thread-safe; in the serving engine it is owned and
/// touched exclusively by the single executor thread. Hit/miss/eviction/
/// invalidation totals are mirrored into the global MetricsRegistry under
/// serve.cache.* and kept as plain members for tests.
class EmbeddingCache {
 public:
  /// `capacity` is the maximum number of cached rows; 0 disables the cache
  /// entirely (Lookup always misses, Insert is a no-op).
  explicit EmbeddingCache(int64_t capacity);

  struct Key {
    graph::NodeId node = -1;
    double time = 0.0;
    uint64_t version = 0;

    bool operator==(const Key& o) const {
      return node == o.node && time == o.time && version == o.version;
    }
  };

  /// Copies the cached embedding row into `out` and refreshes recency;
  /// returns false (and leaves `out` untouched) on miss.
  bool Lookup(const Key& key, std::vector<float>* out);

  /// Inserts (or refreshes) a row, evicting the least-recently-used entry
  /// when at capacity. Overwrites an existing entry for the same key.
  void Insert(const Key& key, std::vector<float> embedding);

  /// Drops every entry (counted under invalidations, not evictions).
  void InvalidateAll();

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  int64_t capacity() const { return capacity_; }

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }
  int64_t invalidations() const { return invalidations_; }

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  using Entry = std::pair<Key, std::vector<float>>;

  int64_t capacity_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> entries_;

  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t invalidations_ = 0;
};

}  // namespace cpdg::serve

#endif  // CPDG_SERVE_EMBEDDING_CACHE_H_
