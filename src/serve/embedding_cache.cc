#include "serve/embedding_cache.h"

#include <cstring>
#include <functional>

#include "obs/metrics.h"
#include "util/check.h"

namespace cpdg::serve {
namespace {

obs::Counter& HitCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("serve.cache.hits");
  return c;
}

obs::Counter& MissCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("serve.cache.misses");
  return c;
}

obs::Counter& EvictionCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("serve.cache.evictions");
  return c;
}

obs::Counter& InvalidationCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("serve.cache.invalidations");
  return c;
}

}  // namespace

size_t EmbeddingCache::MapKeyHash::operator()(const MapKey& k) const {
  // Hash-combine of node and the bit pattern of time, so distinct doubles
  // never collide by construction.
  uint64_t time_bits = 0;
  static_assert(sizeof(time_bits) == sizeof(k.time));
  std::memcpy(&time_bits, &k.time, sizeof(time_bits));
  size_t h = std::hash<int64_t>()(k.node);
  h ^= std::hash<uint64_t>()(time_bits) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  return h;
}

EmbeddingCache::EmbeddingCache(int64_t capacity) : capacity_(capacity) {
  CPDG_CHECK_GE(capacity, 0);
}

bool EmbeddingCache::Lookup(const Key& key, std::vector<float>* out) {
  CPDG_CHECK(out != nullptr);
  auto it = entries_.find(MapKey{key.node, key.time});
  if (it == entries_.end() || it->second->version != key.version) {
    ++misses_;
    MissCounter().Add();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->row;
  ++hits_;
  HitCounter().Add();
  return true;
}

bool EmbeddingCache::LookupAnyVersion(graph::NodeId node, double time,
                                      std::vector<float>* out,
                                      uint64_t* version_out) {
  CPDG_CHECK(out != nullptr);
  CPDG_CHECK(version_out != nullptr);
  auto it = entries_.find(MapKey{node, time});
  if (it == entries_.end()) {
    ++misses_;
    MissCounter().Add();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->row;
  *version_out = it->second->version;
  ++hits_;
  HitCounter().Add();
  return true;
}

void EmbeddingCache::Insert(const Key& key, std::vector<float> embedding) {
  if (capacity_ == 0) return;
  const MapKey map_key{key.node, key.time};
  auto it = entries_.find(map_key);
  if (it != entries_.end()) {
    it->second->version = key.version;
    it->second->row = std::move(embedding);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (static_cast<int64_t>(entries_.size()) >= capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    EvictionCounter().Add();
  }
  lru_.push_front(Entry{map_key, key.version, std::move(embedding)});
  entries_.emplace(map_key, lru_.begin());
}

void EmbeddingCache::InvalidateAll() {
  const int64_t dropped = static_cast<int64_t>(entries_.size());
  entries_.clear();
  lru_.clear();
  invalidations_ += dropped;
  InvalidationCounter().Add(dropped);
}

}  // namespace cpdg::serve
