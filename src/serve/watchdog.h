#ifndef CPDG_SERVE_WATCHDOG_H_
#define CPDG_SERVE_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cpdg::serve {

/// \brief Shard health monitor: detects wedged or failed shard executors
/// and asks the owning engine to restart them.
///
/// Liveness is heartbeat-based. Every shard executor increments its
/// heartbeat counter whenever it makes progress (pops a batch, finishes a
/// request, ticks a barrier wait). The watchdog samples the counters every
/// `interval`; a shard whose counter has not moved for `max_missed`
/// consecutive samples *while it has work queued* is declared wedged. The
/// has-work condition is what separates "wedged" from "idle": an idle
/// executor parked on an empty queue legitimately never ticks.
///
/// A shard can also declare itself failed (replay error, abandoned
/// barrier) by setting its failed flag; the watchdog picks that up on the
/// next sample without waiting for missed heartbeats.
///
/// The watchdog never restarts shards itself — it invokes the `restart`
/// callback and trusts the engine to drain, rebuild, and swap the shard.
/// If the restart fails (e.g. injected checkpoint corruption), the shard
/// stays failed and is retried on the next tick.
class Watchdog {
 public:
  struct Options {
    std::chrono::milliseconds interval{50};
    /// Samples without progress (while work is queued) before a shard is
    /// declared wedged.
    int max_missed = 5;
  };

  /// \brief Health probes for one shard, all safe to call from the
  /// watchdog thread while the executor runs.
  struct Target {
    std::function<int64_t()> heartbeat;
    std::function<bool()> has_work;
    std::function<bool()> failed;
  };

  /// `restart(shard)` is called from the watchdog thread; it must return
  /// true when the shard was successfully rebuilt (resets the miss
  /// counter) and false to retry on the next tick.
  Watchdog(Options options, std::vector<Target> targets,
           std::function<bool(int)> restart);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void Start();
  /// Stops the monitor thread; idempotent, called by the engine before it
  /// tears shards down so a shutdown drain is never mistaken for a wedge.
  void Stop();

  /// Total successful restarts triggered (test / metrics hook).
  int64_t restarts() const { return restarts_.load(); }
  /// Total restart attempts that failed and were left for retry.
  int64_t failed_restarts() const { return failed_restarts_.load(); }

 private:
  void Loop();
  void Tick();

  const Options options_;
  const std::vector<Target> targets_;
  const std::function<bool(int)> restart_;

  /// Last sampled heartbeat and consecutive no-progress count per shard.
  std::vector<int64_t> last_heartbeat_;
  std::vector<int> missed_;

  std::atomic<int64_t> restarts_{0};
  std::atomic<int64_t> failed_restarts_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace cpdg::serve

#endif  // CPDG_SERVE_WATCHDOG_H_
