#include "train/prefetch.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tensor/arena.h"
#include "util/check.h"
#include "util/timer.h"

namespace cpdg::train {

namespace {

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 0) return fallback;
  return static_cast<int64_t>(parsed);
}

struct PrefetchMetrics {
  obs::Gauge& queue_depth =
      obs::MetricsRegistry::Global().gauge("train.prefetch.queue_depth");
  obs::Histogram& producer_stall = obs::MetricsRegistry::Global().histogram(
      "train.prefetch.producer_stall_seconds");
  obs::Histogram& consumer_stall = obs::MetricsRegistry::Global().histogram(
      "train.prefetch.consumer_stall_seconds");
  obs::Counter& produced =
      obs::MetricsRegistry::Global().counter("train.prefetch.produced");
  obs::Counter& discarded =
      obs::MetricsRegistry::Global().counter("train.prefetch.discarded");

  static PrefetchMetrics& Get() {
    static PrefetchMetrics* metrics = new PrefetchMetrics();
    return *metrics;
  }
};

}  // namespace

PrefetchOptions PrefetchOptions::FromEnv() {
  PrefetchOptions options;
  options.depth = EnvInt64("CPDG_PREFETCH_DEPTH", 0);
  options.workers = std::max<int64_t>(1, EnvInt64("CPDG_PREFETCH_WORKERS", 1));
  return options;
}

PrefetchPipeline::PrefetchPipeline(const PrefetchOptions& options,
                                   int64_t first, int64_t num_batches,
                                   ProduceFn produce)
    : options_(options), num_batches_(num_batches),
      produce_(std::move(produce)) {
  CPDG_CHECK(produce_ != nullptr);
  CPDG_CHECK_GE(options_.depth, 0);
  CPDG_CHECK_GE(first, 0);
  CPDG_CHECK_LE(first, num_batches);
  next_ticket_ = first;
  consume_next_ = first;
  if (options_.depth == 0) return;
  slots_.resize(static_cast<size_t>(options_.depth) + 1);
  slot_ready_.assign(slots_.size(), 0);
  int64_t n = std::max<int64_t>(1, options_.workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

PrefetchPipeline::~PrefetchPipeline() { Stop(); }

void PrefetchPipeline::WorkerLoop() {
  // Each producer thread keeps its own batch arena for the pipeline's
  // lifetime, so the prepare stage's sampling scratch recycles across the
  // batches this worker produces (see tensor/arena.h).
  tensor::ArenaScope arena_scope;
  PrefetchMetrics& metrics = PrefetchMetrics::Get();
  for (;;) {
    int64_t ticket = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      util::Timer stall;
      claimable_.wait(lock, [this] {
        return shutdown_ || next_ticket_ >= num_batches_ ||
               next_ticket_ <= consume_next_ + options_.depth;
      });
      // Only a real wait (window full) is a producer stall; instantaneous
      // claims would flood the histogram's low buckets.
      double stalled = stall.ElapsedSeconds();
      if (stalled > 0.0) metrics.producer_stall.Observe(stalled);
      if (shutdown_ || next_ticket_ >= num_batches_) return;
      ticket = next_ticket_++;
    }

    PreparedBatch batch = produce_(ticket);

    {
      std::unique_lock<std::mutex> lock(mu_);
      ++counters_.produced;
      metrics.produced.Add();
      if (shutdown_ || ticket < consume_next_) {
        // The consumer gave up on this epoch while we were producing.
        ++counters_.discarded;
        metrics.discarded.Add();
        continue;
      }
      int64_t slot = SlotOf(ticket);
      slots_[static_cast<size_t>(slot)] = std::move(batch);
      slot_ready_[static_cast<size_t>(slot)] = 1;
      ready_.notify_all();
    }
  }
}

PreparedBatch PrefetchPipeline::Next(int64_t index) {
  CPDG_CHECK_GE(index, 0);
  CPDG_CHECK_LT(index, num_batches_);
  if (options_.depth == 0) {
    CPDG_CHECK_EQ(index, consume_next_);
    consume_next_ = index + 1;
    PreparedBatch batch = produce_(index);
    ++counters_.produced;
    ++counters_.consumed;
    PrefetchMetrics::Get().produced.Add();
    return batch;
  }

  PrefetchMetrics& metrics = PrefetchMetrics::Get();
  std::unique_lock<std::mutex> lock(mu_);
  CPDG_CHECK_EQ(index, consume_next_)
      << "prefetch consumer must take batches in order";
  CPDG_CHECK(!shutdown_) << "Next() after Stop()";
  int64_t slot = SlotOf(index);
  util::Timer stall;
  ready_.wait(lock, [this, slot] {
    return slot_ready_[static_cast<size_t>(slot)] != 0;
  });
  double stalled = stall.ElapsedSeconds();
  if (stalled > 0.0) metrics.consumer_stall.Observe(stalled);

  PreparedBatch batch = std::move(slots_[static_cast<size_t>(slot)]);
  slot_ready_[static_cast<size_t>(slot)] = 0;
  slots_[static_cast<size_t>(slot)] = PreparedBatch();
  ++counters_.consumed;
  consume_next_ = index + 1;
  int64_t ready_count = 0;
  for (uint8_t r : slot_ready_) ready_count += r;
  metrics.queue_depth.Set(ready_count);
  claimable_.notify_all();
  return batch;
}

void PrefetchPipeline::Stop() {
  if (options_.depth == 0) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!shutdown_) shutdown_ = true;
    claimable_.notify_all();
    ready_.notify_all();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Workers are joined: ready-but-never-consumed slots are now discards.
  std::unique_lock<std::mutex> lock(mu_);
  PrefetchMetrics& metrics = PrefetchMetrics::Get();
  for (size_t i = 0; i < slot_ready_.size(); ++i) {
    if (slot_ready_[i] != 0) {
      slot_ready_[i] = 0;
      slots_[i] = PreparedBatch();
      ++counters_.discarded;
      metrics.discarded.Add();
    }
  }
  metrics.queue_depth.Set(0);
}

PrefetchPipeline::Counters PrefetchPipeline::counters() const {
  std::unique_lock<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace cpdg::train
