#ifndef CPDG_TRAIN_LINK_BATCH_H_
#define CPDG_TRAIN_LINK_BATCH_H_

#include <cstdint>
#include <vector>

#include "graph/temporal_graph.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace cpdg::train {

/// \brief One temporal-link-prediction batch: the event endpoints, one
/// sampled negative destination per event, and the event times. Every
/// TLP-style loop (CPDG pretext, fine-tuning, supervised TGN-family
/// training) assembles exactly this from an event batch.
struct LinkBatch {
  std::vector<graph::NodeId> srcs;
  std::vector<graph::NodeId> dsts;
  std::vector<graph::NodeId> negs;
  std::vector<double> times;

  int64_t size() const { return static_cast<int64_t>(srcs.size()); }
};

/// \brief Builds a LinkBatch from `events`, drawing one negative per event
/// via dgnn::SampleNegative (uniform over `negative_pool`, or over all
/// `num_nodes` when the pool is empty).
LinkBatch AssembleLinkBatch(const std::vector<graph::Event>& events,
                            const std::vector<graph::NodeId>& negative_pool,
                            int64_t num_nodes, Rng* rng);

/// \brief BCE-with-logits over vertically stacked logits whose first
/// `num_positive` rows are positive examples (target 1) and the remaining
/// rows negatives (target 0).
tensor::Tensor StackedBceLoss(const tensor::Tensor& logits,
                              int64_t num_positive);

/// \brief The common pos/neg special case: stacks `pos_logits` over
/// `neg_logits` and applies BCE with [1...1, 0...0] targets (Eq. 16).
tensor::Tensor LinkBceLoss(const tensor::Tensor& pos_logits,
                           const tensor::Tensor& neg_logits);

}  // namespace cpdg::train

#endif  // CPDG_TRAIN_LINK_BATCH_H_
