#include "train/checkpoint.h"

#include <vector>

#include "util/byte_codec.h"

namespace cpdg::train {

namespace {

void WriteEpoch(util::ByteWriter* w, const EpochTelemetry& e) {
  w->Pod(e.wall_clock_sec);
  w->Pod(e.sample_seconds);
  w->Pod(e.compute_seconds);
  w->Pod(e.num_batches);
  w->Pod(e.num_steps);
  w->Pod(e.mean_loss);
  w->Pod(e.mean_grad_norm_pre_clip);
  w->Pod(e.max_grad_norm_pre_clip);
  w->Pod(e.mean_grad_norm_post_clip);
}

bool ReadEpoch(util::ByteReader* r, EpochTelemetry* e) {
  return r->Pod(&e->wall_clock_sec) && r->Pod(&e->sample_seconds) &&
         r->Pod(&e->compute_seconds) && r->Pod(&e->num_batches) &&
         r->Pod(&e->num_steps) && r->Pod(&e->mean_loss) &&
         r->Pod(&e->mean_grad_norm_pre_clip) &&
         r->Pod(&e->max_grad_norm_pre_clip) &&
         r->Pod(&e->mean_grad_norm_post_clip);
}

}  // namespace

std::string EncodeProgress(const RunProgress& progress) {
  std::string out;
  util::ByteWriter w(&out);
  w.Pod(progress.mode);
  w.Pod(progress.num_epochs);
  w.Pod(progress.num_batches);
  w.Pod(progress.next_epoch);
  w.Pod(progress.next_batch);
  return out;
}

Status DecodeProgress(std::string_view bytes, RunProgress* progress) {
  util::ByteReader r(bytes);
  RunProgress p;
  if (!r.Pod(&p.mode) || !r.Pod(&p.num_epochs) || !r.Pod(&p.num_batches) ||
      !r.Pod(&p.next_epoch) || !r.Pod(&p.next_batch)) {
    return Status::InvalidArgument("truncated progress section");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing garbage in progress section");
  }
  if (p.mode != kRunModeChronological && p.mode != kRunModeSteps) {
    return Status::InvalidArgument("unknown run mode " +
                                   std::to_string(p.mode));
  }
  if (p.num_epochs < 1 || p.num_batches < 0 || p.next_epoch < 0 ||
      p.next_epoch >= p.num_epochs || p.next_batch < 0 ||
      p.next_batch > p.num_batches) {
    return Status::InvalidArgument("progress cursor out of range");
  }
  *progress = p;
  return Status::OK();
}

std::string EncodeTelemetryState(const TrainTelemetry& telemetry,
                                 const PartialEpoch& partial) {
  std::string out;
  util::ByteWriter w(&out);
  w.PodVector(telemetry.epoch_losses);
  w.Pod(static_cast<uint32_t>(telemetry.epochs.size()));
  for (const EpochTelemetry& e : telemetry.epochs) WriteEpoch(&w, e);
  w.Pod(telemetry.nonfinite_skips);
  w.Pod(telemetry.rollbacks);
  w.Pod(telemetry.checkpoint_saves);
  w.Pod(telemetry.checkpoint_failures);
  WriteEpoch(&w, partial.epoch);
  w.Pod(partial.loss_sum);
  return out;
}

Status DecodeTelemetryState(std::string_view bytes,
                            TrainTelemetry* telemetry,
                            PartialEpoch* partial) {
  util::ByteReader r(bytes);
  TrainTelemetry t;
  PartialEpoch p;
  uint32_t num_epochs = 0;
  if (!r.PodVector(&t.epoch_losses) || !r.Pod(&num_epochs)) {
    return Status::InvalidArgument("truncated telemetry section");
  }
  // Each epoch record is 9 * 8 bytes; bound before allocating.
  if (num_epochs > r.remaining() / 72) {
    return Status::InvalidArgument("corrupt telemetry epoch count");
  }
  t.epochs.resize(num_epochs);
  for (EpochTelemetry& e : t.epochs) {
    if (!ReadEpoch(&r, &e)) {
      return Status::InvalidArgument("truncated epoch telemetry");
    }
  }
  if (!r.Pod(&t.nonfinite_skips) || !r.Pod(&t.rollbacks) ||
      !r.Pod(&t.checkpoint_saves) || !r.Pod(&t.checkpoint_failures) ||
      !ReadEpoch(&r, &p.epoch) || !r.Pod(&p.loss_sum)) {
    return Status::InvalidArgument("truncated telemetry counters");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing garbage in telemetry section");
  }
  if (t.epoch_losses.size() != t.epochs.size()) {
    return Status::InvalidArgument(
        "telemetry epoch_losses / epochs count mismatch");
  }
  *telemetry = std::move(t);
  *partial = p;
  return Status::OK();
}

}  // namespace cpdg::train
