#ifndef CPDG_TRAIN_TELEMETRY_H_
#define CPDG_TRAIN_TELEMETRY_H_

#include <cstdint>
#include <vector>

#include "dgnn/trainer.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace cpdg::train {

/// \brief Per-epoch diagnostics recorded by the training runtime.
///
/// Gradient norms are only recorded for epochs where gradient clipping is
/// enabled (grad_clip > 0): the pre-clip value is the global L2 norm
/// returned by tensor::ClipGradNorm, the post-clip value is what the
/// optimizer actually stepped with (min(pre_clip, grad_clip)). A rising
/// mean_grad_norm_pre_clip with a flat post-clip norm is the signature of
/// a gradient-explosion regression.
struct EpochTelemetry {
  /// Wall-clock time of the epoch (monotonic, seconds).
  double wall_clock_sec = 0.0;
  /// Producer-side wall time spent sampling + assembling this epoch's
  /// consumed batches (the prepare stage). With prefetch enabled this
  /// overlaps compute, so sample_seconds + compute_seconds can exceed
  /// wall_clock_sec — that surplus is exactly the overlap won.
  double sample_seconds = 0.0;
  /// Consumer-side wall time in forward/backward/optimizer/commit.
  double compute_seconds = 0.0;
  /// Batches iterated, including batches that produced no optimizer step.
  int64_t num_batches = 0;
  /// Batches that produced a loss and took an optimizer step.
  int64_t num_steps = 0;
  /// Stepped-loss sum divided by num_batches (matches the historical
  /// epoch-loss bookkeeping of the hand-rolled loops).
  double mean_loss = 0.0;
  /// Mean / max global gradient L2 norm before clipping, over stepped
  /// batches.
  double mean_grad_norm_pre_clip = 0.0;
  double max_grad_norm_pre_clip = 0.0;
  /// Mean global gradient L2 norm after clipping, over stepped batches.
  double mean_grad_norm_post_clip = 0.0;
};

/// \brief Enriched training log produced by train::TrainLoop.
///
/// Extends dgnn::TrainLog so existing consumers of epoch_losses /
/// final_loss() keep working; `epochs` carries the per-epoch wall-clock,
/// batch-count and gradient-norm telemetry.
///
/// The health/checkpoint counters below are backed by the obs metrics
/// registry: the Count*() methods are the only increment path, and each
/// bumps the per-run snapshot field and the process-cumulative registry
/// counter (train.nonfinite_skips / train.rollbacks /
/// train.checkpoint_saves / train.checkpoint_failures) in one call. The
/// snapshot fields stay plain ints so checkpointing can serialize and
/// restore them; the registry counters are monotonic across the process
/// and are deliberately NOT rewound on rollback/resume.
struct TrainTelemetry : public dgnn::TrainLog {
  std::vector<EpochTelemetry> epochs;

  /// \name Health-monitor counters
  /// Batches whose loss or gradient norm was non-finite and were skipped
  /// under NonFinitePolicy::kSkipBatch.
  int64_t nonfinite_skips = 0;
  /// Times the run restored the last checkpoint and replayed under
  /// NonFinitePolicy::kRollbackToCheckpoint.
  int64_t rollbacks = 0;

  /// \name Checkpoint bookkeeping
  /// Successful periodic checkpoint publishes / failed attempts (a failed
  /// save never aborts training; the previous checkpoint stays intact).
  int64_t checkpoint_saves = 0;
  int64_t checkpoint_failures = 0;

  /// \name Prefetch-pipeline conservation accounting
  /// Batches produced / consumed / discarded by the prefetch pipeline over
  /// this Run call (every produced batch is either consumed or discarded —
  /// a mid-epoch shutdown must not leak batches). Run-local diagnostics;
  /// not checkpointed.
  int64_t prefetch_produced = 0;
  int64_t prefetch_consumed = 0;
  int64_t prefetch_discarded = 0;

  /// True when the run ended before all epochs via TrainLoop::RequestStop
  /// or TrainLoopOptions::max_batches (graceful shutdown, still OK).
  bool stopped_early = false;

  /// OK unless the run halted: non-finite loss under kHalt, a failed
  /// resume, or an exhausted rollback budget (Status::Internal).
  Status status;

  void CountNonFiniteSkip() {
    ++nonfinite_skips;
    static obs::Counter& counter =
        obs::MetricsRegistry::Global().counter("train.nonfinite_skips");
    counter.Add();
  }
  void CountRollback() {
    ++rollbacks;
    static obs::Counter& counter =
        obs::MetricsRegistry::Global().counter("train.rollbacks");
    counter.Add();
  }
  void CountCheckpointSave() {
    ++checkpoint_saves;
    static obs::Counter& counter =
        obs::MetricsRegistry::Global().counter("train.checkpoint_saves");
    counter.Add();
  }
  void CountCheckpointFailure() {
    ++checkpoint_failures;
    static obs::Counter& counter =
        obs::MetricsRegistry::Global().counter("train.checkpoint_failures");
    counter.Add();
  }

  const EpochTelemetry& final_epoch() const { return epochs.back(); }

  /// Total wall-clock across all epochs (seconds).
  double total_wall_clock_sec() const {
    double total = 0.0;
    for (const EpochTelemetry& e : epochs) total += e.wall_clock_sec;
    return total;
  }
};

}  // namespace cpdg::train

#endif  // CPDG_TRAIN_TELEMETRY_H_
