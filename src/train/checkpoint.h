#ifndef CPDG_TRAIN_CHECKPOINT_H_
#define CPDG_TRAIN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "train/telemetry.h"
#include "util/status.h"

namespace cpdg::train {

/// \name Section names of a training checkpoint (CPDGCKPT v2 container).
/// Model parameters live under tensor::kParamsSection ("params"); clients
/// of TrainLoop::RegisterCheckpointSection add their own names next to
/// these (e.g. the pre-trainer's "rng" and "evolution").
inline constexpr char kProgressSection[] = "progress";
inline constexpr char kTelemetrySection[] = "telemetry";
inline constexpr char kOptimizerSection[] = "optimizer";
inline constexpr char kMemorySection[] = "memory";

/// Run modes recorded in the progress section so a checkpoint written by
/// RunChronological cannot silently resume a RunSteps run (and vice versa).
inline constexpr uint32_t kRunModeChronological = 1;
inline constexpr uint32_t kRunModeSteps = 2;

/// \brief The batch cursor of a run: where training stops being restored
/// and starts being executed. `next_batch` counts completed batches within
/// `next_epoch`; next_batch == num_batches means "epoch finished but its
/// telemetry not yet finalized" (the save fired on the epoch's last batch).
struct RunProgress {
  uint32_t mode = 0;
  int64_t num_epochs = 0;
  /// Batches (or steps) per epoch of the run that wrote the checkpoint;
  /// validated against the resuming run's shape.
  int64_t num_batches = 0;
  int64_t next_epoch = 0;
  int64_t next_batch = 0;
};

/// \brief Mid-epoch telemetry accumulators. loss_sum is kept separately in
/// double so a resumed run replays the exact same additions (bit-exact
/// mean_loss) as an uninterrupted one.
struct PartialEpoch {
  EpochTelemetry epoch;
  double loss_sum = 0.0;
};

std::string EncodeProgress(const RunProgress& progress);
Status DecodeProgress(std::string_view bytes, RunProgress* progress);

/// Serializes completed-epoch telemetry plus the in-flight partial epoch.
/// TrainTelemetry::status and stopped_early are run-local and not stored.
std::string EncodeTelemetryState(const TrainTelemetry& telemetry,
                                 const PartialEpoch& partial);
Status DecodeTelemetryState(std::string_view bytes,
                            TrainTelemetry* telemetry, PartialEpoch* partial);

}  // namespace cpdg::train

#endif  // CPDG_TRAIN_CHECKPOINT_H_
