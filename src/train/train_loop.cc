#include "train/train_loop.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tensor/arena.h"
#include "tensor/serialization.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"

namespace cpdg::train {

namespace ts = cpdg::tensor;

namespace {

/// Global L2 gradient norm in double, used for non-finite detection when
/// clipping is off (ClipGradNorm already reports it when clipping is on).
double GradNorm(const std::vector<ts::Tensor>& params) {
  double total = 0.0;
  for (const ts::Tensor& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad();
    for (int64_t j = 0; j < p.size(); ++j) {
      total += static_cast<double>(g[j]) * g[j];
    }
  }
  return std::sqrt(total);
}

/// Rolls the consumer thread's per-batch arena counters into the metrics
/// registry after each completed batch.
void RollArenaStats() {
  ts::ArenaStats stats = ts::ArenaResetBatch();
  static obs::Counter& pool_hits =
      obs::MetricsRegistry::Global().counter("train.arena.pool_hits");
  static obs::Counter& heap_allocs =
      obs::MetricsRegistry::Global().counter("train.arena.heap_allocs");
  pool_hits.Add(stats.pool_hits);
  heap_allocs.Add(stats.heap_allocs);
}

}  // namespace

TrainLoop::TrainLoop(std::vector<tensor::Tensor> params,
                     const TrainLoopOptions& options)
    : params_(std::move(params)),
      options_(options),
      optimizer_(params_, options.learning_rate) {
  CPDG_CHECK_GE(options.epochs, 1);
  CPDG_CHECK_GE(options.checkpoint_every_batches, 0);
  CPDG_CHECK_GE(options.max_rollbacks, 0);
  CPDG_CHECK_GE(options.max_batches, 0);
}

void TrainLoop::RegisterCheckpointSection(std::string name,
                                          CheckpointClientSection section) {
  CPDG_CHECK(!name.empty());
  CPDG_CHECK(section.save != nullptr);
  CPDG_CHECK(section.restore != nullptr);
  for (const auto& [existing, unused] : checkpoint_sections_) {
    CPDG_CHECK(existing != name)
        << "duplicate checkpoint section '" << name << "'";
  }
  checkpoint_sections_.emplace_back(std::move(name), std::move(section));
}

Status TrainLoop::ResumeFrom(const std::string& path) {
  CPDG_ASSIGN_OR_RETURN(tensor::SectionReader reader,
                        tensor::SectionReader::Open(path));
  staged_resume_ =
      std::make_unique<tensor::SectionReader>(std::move(reader));
  return Status::OK();
}

TrainLoop::BatchOutcome TrainLoop::StepOnLoss(tensor::Tensor* loss,
                                              PartialEpoch* partial,
                                              TrainTelemetry* telemetry) {
  const float loss_value = loss->item();
  bool nonfinite = !std::isfinite(loss_value);
  double norm = 0.0;
  bool have_clip_norm = false;
  if (!nonfinite) {
    CPDG_TRACE_SPAN("train/backward");
    optimizer_.ZeroGrad();
    loss->Backward();
    if (options_.grad_clip > 0.0f) {
      norm = static_cast<double>(
          ts::ClipGradNorm(params_, options_.grad_clip));
      have_clip_norm = true;
    } else {
      norm = GradNorm(params_);
    }
    nonfinite = !std::isfinite(norm);
  }
  if (nonfinite) {
    switch (options_.non_finite_policy) {
      case NonFinitePolicy::kHalt:
        return BatchOutcome::kHalt;
      case NonFinitePolicy::kSkipBatch:
        telemetry->CountNonFiniteSkip();
        CPDG_LOG(Warning) << options_.log_label
                          << " non-finite loss/grad, skipping batch ("
                          << telemetry->nonfinite_skips << " skipped)";
        return BatchOutcome::kSkippedNonFinite;
      case NonFinitePolicy::kRollbackToCheckpoint:
        return BatchOutcome::kRollback;
    }
  }
  if (have_clip_norm) {
    double clipped =
        std::min(norm, static_cast<double>(options_.grad_clip));
    partial->epoch.mean_grad_norm_pre_clip += norm;
    partial->epoch.max_grad_norm_pre_clip =
        std::max(partial->epoch.max_grad_norm_pre_clip, norm);
    partial->epoch.mean_grad_norm_post_clip += clipped;
  }
  {
    CPDG_TRACE_SPAN("train/optimizer_step");
    optimizer_.Step();
  }
  partial->loss_sum += static_cast<double>(loss_value);
  ++partial->epoch.num_steps;
  return BatchOutcome::kStepped;
}

void TrainLoop::FinishEpoch(int64_t epoch_index, double loss_sum,
                            EpochTelemetry epoch,
                            TrainTelemetry* telemetry) {
  // Historical convention of the hand-rolled loops: the epoch loss is the
  // stepped-loss sum divided by the *total* batch count (batches that
  // found no anchors contribute zero).
  if (epoch.num_batches > 0) {
    epoch.mean_loss = loss_sum / static_cast<double>(epoch.num_batches);
  }
  if (epoch.num_steps > 0) {
    epoch.mean_grad_norm_pre_clip /= static_cast<double>(epoch.num_steps);
    epoch.mean_grad_norm_post_clip /= static_cast<double>(epoch.num_steps);
  }
  // Registry mirror of the per-epoch timing/throughput telemetry; the
  // EpochTelemetry snapshot above stays the per-run record.
  {
    static obs::Histogram& wall = obs::MetricsRegistry::Global().histogram(
        "train.epoch_wall_seconds");
    static obs::Histogram& sample = obs::MetricsRegistry::Global().histogram(
        "train.epoch_sample_seconds");
    static obs::Histogram& compute = obs::MetricsRegistry::Global().histogram(
        "train.epoch_compute_seconds");
    static obs::Counter& batches =
        obs::MetricsRegistry::Global().counter("train.batches");
    static obs::Counter& steps =
        obs::MetricsRegistry::Global().counter("train.steps");
    wall.Observe(epoch.wall_clock_sec);
    if (epoch.sample_seconds > 0.0) sample.Observe(epoch.sample_seconds);
    if (epoch.compute_seconds > 0.0) compute.Observe(epoch.compute_seconds);
    batches.Add(epoch.num_batches);
    steps.Add(epoch.num_steps);
  }
  telemetry->epoch_losses.push_back(epoch.mean_loss);
  CPDG_LOG(Debug) << options_.log_label << " epoch " << epoch_index
                  << " loss=" << epoch.mean_loss
                  << " grad_norm=" << epoch.mean_grad_norm_pre_clip
                  << " batches=" << epoch.num_batches
                  << " wall_ms=" << epoch.wall_clock_sec * 1e3;
  telemetry->epochs.push_back(epoch);
}

void TrainLoop::SaveCheckpoint(uint32_t mode, int64_t num_batches,
                               int64_t epoch, int64_t batches_done,
                               dgnn::DgnnEncoder* encoder,
                               TrainTelemetry* telemetry,
                               const PartialEpoch& partial) {
  CPDG_TRACE_SPAN("train/checkpoint_save");
  tensor::SectionWriter writer;
  RunProgress progress;
  progress.mode = mode;
  progress.num_epochs = options_.epochs;
  progress.num_batches = num_batches;
  progress.next_epoch = epoch;
  progress.next_batch = batches_done;
  writer.Add(kProgressSection, EncodeProgress(progress));
  writer.Add(kTelemetrySection, EncodeTelemetryState(*telemetry, partial));
  Result<std::string> params_payload = tensor::EncodeTensorList(params_);
  CPDG_CHECK(params_payload.ok()) << params_payload.status().ToString();
  writer.Add(tensor::kParamsSection, params_payload.TakeValue());
  std::string optimizer_state;
  optimizer_.SaveState(&optimizer_state);
  writer.Add(kOptimizerSection, std::move(optimizer_state));
  if (encoder != nullptr) {
    std::string memory_state;
    encoder->memory().SerializeTo(&memory_state);
    writer.Add(kMemorySection, std::move(memory_state));
  }
  for (const auto& [name, section] : checkpoint_sections_) {
    std::string payload;
    section.save(&payload);
    writer.Add(name, std::move(payload));
  }
  Status status = writer.WriteAtomic(options_.checkpoint_path);
  if (status.ok()) {
    telemetry->CountCheckpointSave();
    CPDG_LOG(Debug) << options_.log_label << " checkpoint -> "
                    << options_.checkpoint_path << " (epoch " << epoch
                    << ", batch " << batches_done << ")";
  } else {
    // A failed publish never aborts training and, thanks to the atomic
    // temp-file path, never corrupts the previous checkpoint either.
    telemetry->CountCheckpointFailure();
    CPDG_LOG(Warning) << options_.log_label
                      << " checkpoint save failed: " << status.ToString();
  }
}

void TrainLoop::MaybeCheckpoint(uint32_t mode, int64_t num_batches,
                                int64_t epoch, int64_t batches_done,
                                dgnn::DgnnEncoder* encoder,
                                TrainTelemetry* telemetry,
                                const PartialEpoch& partial) {
  if (!checkpointing_enabled()) return;
  if (++batches_since_checkpoint_ < options_.checkpoint_every_batches) {
    return;
  }
  batches_since_checkpoint_ = 0;
  SaveCheckpoint(mode, num_batches, epoch, batches_done, encoder, telemetry,
                 partial);
}

Status TrainLoop::ApplyStagedResume(uint32_t mode, int64_t num_batches,
                                    dgnn::DgnnEncoder* encoder,
                                    TrainTelemetry* telemetry,
                                    PartialEpoch* partial,
                                    int64_t* next_epoch,
                                    int64_t* next_batch) {
  CPDG_CHECK(staged_resume_ != nullptr);
  // Consume the staged reader regardless of outcome: a failed resume must
  // not silently leak into a later Run call.
  std::unique_ptr<tensor::SectionReader> reader = std::move(staged_resume_);

  // Parse and validate everything before mutating any state.
  RunProgress progress;
  CPDG_ASSIGN_OR_RETURN(std::string_view progress_bytes,
                        reader->Find(kProgressSection));
  CPDG_RETURN_NOT_OK(DecodeProgress(progress_bytes, &progress));
  if (progress.mode != mode) {
    return Status::FailedPrecondition(
        "checkpoint was written by a different run mode");
  }
  if (progress.num_epochs != options_.epochs ||
      progress.num_batches != num_batches) {
    return Status::FailedPrecondition(
        "checkpoint run shape (" + std::to_string(progress.num_epochs) +
        " epochs x " + std::to_string(progress.num_batches) +
        " batches) does not match this run (" +
        std::to_string(options_.epochs) + " x " +
        std::to_string(num_batches) + ")");
  }

  TrainTelemetry restored_telemetry;
  PartialEpoch restored_partial;
  CPDG_ASSIGN_OR_RETURN(std::string_view telemetry_bytes,
                        reader->Find(kTelemetrySection));
  CPDG_RETURN_NOT_OK(DecodeTelemetryState(telemetry_bytes,
                                          &restored_telemetry,
                                          &restored_partial));

  CPDG_ASSIGN_OR_RETURN(std::string_view params_bytes,
                        reader->Find(tensor::kParamsSection));
  CPDG_ASSIGN_OR_RETURN(std::vector<tensor::Tensor> loaded_params,
                        tensor::DecodeTensorList(params_bytes));

  CPDG_ASSIGN_OR_RETURN(std::string_view optimizer_bytes,
                        reader->Find(kOptimizerSection));
  if (encoder != nullptr && !reader->Has(kMemorySection)) {
    return Status::FailedPrecondition(
        "checkpoint has no memory section but this run has an encoder");
  }
  for (const auto& [name, unused] : checkpoint_sections_) {
    if (!reader->Has(name)) {
      return Status::FailedPrecondition(
          "checkpoint is missing client section '" + name + "'");
    }
  }

  // Commit phase. Each restore below validates its own payload fully
  // before mutating (all-or-nothing per section).
  CPDG_RETURN_NOT_OK(tensor::RestoreTensorData(params_, loaded_params));
  CPDG_RETURN_NOT_OK(optimizer_.LoadState(optimizer_bytes));
  if (encoder != nullptr) {
    CPDG_ASSIGN_OR_RETURN(std::string_view memory_bytes,
                          reader->Find(kMemorySection));
    CPDG_RETURN_NOT_OK(encoder->memory().DeserializeFrom(memory_bytes));
  }
  for (const auto& [name, section] : checkpoint_sections_) {
    CPDG_ASSIGN_OR_RETURN(std::string_view bytes, reader->Find(name));
    Status status = section.restore(bytes);
    if (!status.ok()) {
      return Status(status.code(), "restoring checkpoint section '" + name +
                                       "': " + status.message());
    }
  }

  *telemetry = std::move(restored_telemetry);
  *partial = restored_partial;
  *next_epoch = progress.next_epoch;
  *next_batch = progress.next_batch;
  CPDG_LOG(Info) << options_.log_label << " resumed at epoch "
                 << progress.next_epoch << ", batch " << progress.next_batch
                 << " (" << telemetry->epochs.size()
                 << " completed epochs restored)";
  return Status::OK();
}

Status TrainLoop::Rollback(uint32_t mode, int64_t num_batches,
                           dgnn::DgnnEncoder* encoder,
                           TrainTelemetry* telemetry, PartialEpoch* partial,
                           int64_t* next_epoch, int64_t* next_batch) {
  if (!checkpointing_enabled()) {
    return Status::Internal(
        "non-finite loss under kRollbackToCheckpoint, but periodic "
        "checkpointing is off (set checkpoint_path/checkpoint_every_"
        "batches)");
  }
  if (rollbacks_this_run_ >= options_.max_rollbacks) {
    return Status::Internal(
        "non-finite loss persisted after " +
        std::to_string(rollbacks_this_run_) +
        " rollbacks; giving up (max_rollbacks)");
  }
  Status staged = ResumeFrom(options_.checkpoint_path);
  if (!staged.ok()) {
    return Status::Internal("rollback failed to read checkpoint: " +
                            staged.message());
  }
  // The restore rewinds telemetry to the checkpoint's snapshot, but the
  // health counters describe what happened in *this* process — rolling
  // back must not erase the record of skips, saves and prior rollbacks.
  const int64_t prior_skips = telemetry->nonfinite_skips;
  const int64_t prior_rollbacks = telemetry->rollbacks;
  const int64_t prior_saves = telemetry->checkpoint_saves;
  const int64_t prior_failures = telemetry->checkpoint_failures;
  CPDG_RETURN_NOT_OK(ApplyStagedResume(mode, num_batches, encoder, telemetry,
                                       partial, next_epoch, next_batch));
  telemetry->nonfinite_skips = prior_skips;
  telemetry->rollbacks = prior_rollbacks;
  telemetry->checkpoint_saves = prior_saves;
  telemetry->checkpoint_failures = prior_failures;
  ++rollbacks_this_run_;
  telemetry->CountRollback();
  CPDG_LOG(Warning) << options_.log_label
                    << " non-finite loss: rolled back to checkpoint (epoch "
                    << *next_epoch << ", batch " << *next_batch << ")";
  return Status::OK();
}

PrefetchOptions TrainLoop::ResolvedPrefetch() const {
  PrefetchOptions env = PrefetchOptions::FromEnv();
  PrefetchOptions out;
  out.depth = options_.prefetch_depth >= 0 ? options_.prefetch_depth
                                           : env.depth;
  out.workers = options_.prefetch_workers >= 1 ? options_.prefetch_workers
                                               : env.workers;
  return out;
}

TrainTelemetry TrainLoop::RunChronological(dgnn::DgnnEncoder* encoder,
                                           const graph::GraphStore& graph,
                                           int64_t batch_size,
                                           const ChronoBatchFn& batch_fn) {
  CPDG_CHECK(batch_fn != nullptr);
  return RunChronologicalPrepared(
      encoder, graph, batch_size, /*prepare_fn=*/nullptr,
      [&batch_fn](const BatchContext& ctx, const graph::EventBatch& batch,
                  std::any& /*prepared*/) { return batch_fn(ctx, batch); });
}

TrainTelemetry TrainLoop::RunChronologicalPrepared(
    dgnn::DgnnEncoder* encoder, const graph::GraphStore& graph,
    int64_t batch_size, const ChronoPrepareFn& prepare_fn,
    const PreparedChronoBatchFn& batch_fn) {
  CPDG_CHECK(batch_fn != nullptr);
  CPDG_CHECK_GT(batch_size, 0);
  TrainTelemetry telemetry;
  const int64_t num_events = graph.num_events();
  // Same boundary math as ChronologicalBatcher: batch i covers events
  // [i*batch_size, min((i+1)*batch_size, num_events)) — random access by
  // index is what lets producers fetch their own tickets.
  const int64_t num_batches = (num_events + batch_size - 1) / batch_size;
  const PrefetchOptions prefetch = ResolvedPrefetch();

  // Intra-batch tensor temporaries recycle through the batch arena for the
  // whole run (see tensor/arena.h).
  tensor::ArenaScope arena_scope;

  stop_requested_ = false;
  batches_run_ = 0;
  batches_since_checkpoint_ = 0;
  rollbacks_this_run_ = 0;

  PartialEpoch partial;
  int64_t start_epoch = 0;
  int64_t start_batch = 0;
  if (staged_resume_ != nullptr) {
    Status status =
        ApplyStagedResume(kRunModeChronological, num_batches, encoder,
                          &telemetry, &partial, &start_epoch, &start_batch);
    if (!status.ok()) {
      telemetry.status = std::move(status);
      return telemetry;
    }
  }

  BatchContext ctx;
  ctx.num_epochs = options_.epochs;
  ctx.num_batches = num_batches;
  int64_t epoch = start_epoch;
  while (epoch < options_.epochs) {
    ctx.epoch = epoch;
    ctx.final_epoch = (epoch == options_.epochs - 1);
    // A mid-epoch (re-)entry keeps the restored memory and partial
    // telemetry and starts the pipeline at the saved cursor; a fresh
    // epoch resets both, exactly as an uninterrupted run would.
    const bool mid_epoch = (epoch == start_epoch && start_batch > 0);
    if (!mid_epoch) {
      if (encoder != nullptr) encoder->memory().Reset();
      partial = PartialEpoch();
    }
    const int64_t first = mid_epoch ? start_batch : 0;

    // Producer stage: a pure function of the batch index. All randomness
    // comes from the (epoch, index)-derived stream, so the result is
    // independent of worker assignment and production order.
    auto produce = [this, &graph, &prepare_fn, batch_size, num_events, ctx,
                    epoch](int64_t index) {
      PreparedBatch out;
      util::Timer sample_timer;
      const int64_t begin = index * batch_size;
      const int64_t end = std::min(begin + batch_size, num_events);
      out.events.first_event_index = begin;
      graph.ReadEvents(begin, end, &out.events.events);
      if (prepare_fn != nullptr) {
        CPDG_TRACE_SPAN("train/prepare");
        BatchContext prepare_ctx = ctx;
        prepare_ctx.batch_index = index;
        Rng rng = Rng::ForSubstream(options_.prepare_stream_seed,
                                    static_cast<uint64_t>(epoch),
                                    static_cast<uint64_t>(index));
        out.payload = prepare_fn(prepare_ctx, out.events, &rng);
      }
      out.sample_seconds = sample_timer.ElapsedSeconds();
      return out;
    };
    PrefetchPipeline pipeline(prefetch, first, num_batches, produce);
    // Called on every exit path (return, rollback, epoch end) before
    // `telemetry` is read or returned: Stop() joins the workers and the
    // conservation counters roll up into the run telemetry. (The pipeline
    // destructor still joins on paths that abort via CPDG_CHECK.)
    auto harvest = [&pipeline, &telemetry] {
      pipeline.Stop();
      PrefetchPipeline::Counters c = pipeline.counters();
      telemetry.prefetch_produced += c.produced;
      telemetry.prefetch_consumed += c.consumed;
      telemetry.prefetch_discarded += c.discarded;
    };

    util::Timer timer;
    bool rolled_back = false;
    for (int64_t index = first; index < num_batches; ++index) {
      PreparedBatch prepared = pipeline.Next(index);
      ctx.batch_index = index;
      util::Timer compute_timer;
      if (encoder != nullptr) encoder->BeginBatch();
      std::optional<tensor::Tensor> loss;
      {
        // Covers the client's compute stage (assembly too on the
        // non-prepared path).
        CPDG_TRACE_SPAN("train/forward");
        loss = batch_fn(ctx, prepared.events, prepared.payload);
      }
      BatchOutcome outcome = BatchOutcome::kNoLoss;
      if (loss.has_value()) {
        outcome = StepOnLoss(&*loss, &partial, &telemetry);
      }
      if (outcome == BatchOutcome::kHalt) {
        partial.epoch.wall_clock_sec += timer.ElapsedSeconds();
        telemetry.status = Status::Internal(
            "non-finite loss at epoch " + std::to_string(epoch) +
            ", batch " + std::to_string(ctx.batch_index));
        harvest();
        return telemetry;
      }
      if (outcome == BatchOutcome::kRollback) {
        harvest();
        Status status = Rollback(kRunModeChronological, num_batches, encoder,
                                 &telemetry, &partial, &epoch, &start_batch);
        if (!status.ok()) {
          telemetry.status = std::move(status);
          return telemetry;
        }
        start_epoch = epoch;
        rolled_back = true;
        break;
      }
      if (encoder != nullptr) encoder->CommitBatch(prepared.events.events);
      ++partial.epoch.num_batches;
      partial.epoch.sample_seconds += prepared.sample_seconds;
      partial.epoch.compute_seconds += compute_timer.ElapsedSeconds();
      RollArenaStats();
      if (batch_end_hook_) batch_end_hook_(ctx);
      MaybeCheckpoint(kRunModeChronological, num_batches, epoch,
                      partial.epoch.num_batches, encoder, &telemetry,
                      partial);
      ++batches_run_;
      if (stop_requested_ ||
          (options_.max_batches > 0 && batches_run_ >= options_.max_batches)) {
        partial.epoch.wall_clock_sec += timer.ElapsedSeconds();
        telemetry.stopped_early = true;
        harvest();
        return telemetry;
      }
    }
    if (rolled_back) continue;  // already harvested on the rollback path
    partial.epoch.wall_clock_sec += timer.ElapsedSeconds();
    harvest();
    FinishEpoch(epoch, partial.loss_sum, partial.epoch, &telemetry);
    ++epoch;
    start_batch = 0;
  }
  return telemetry;
}

TrainTelemetry TrainLoop::RunSteps(int64_t steps_per_epoch,
                                   const StepFn& step_fn) {
  CPDG_CHECK(step_fn != nullptr);
  CPDG_CHECK_GE(steps_per_epoch, 0);
  TrainTelemetry telemetry;
  tensor::ArenaScope arena_scope;

  stop_requested_ = false;
  batches_run_ = 0;
  batches_since_checkpoint_ = 0;
  rollbacks_this_run_ = 0;

  PartialEpoch partial;
  int64_t start_epoch = 0;
  int64_t start_batch = 0;
  if (staged_resume_ != nullptr) {
    Status status = ApplyStagedResume(kRunModeSteps, steps_per_epoch,
                                      /*encoder=*/nullptr, &telemetry,
                                      &partial, &start_epoch, &start_batch);
    if (!status.ok()) {
      telemetry.status = std::move(status);
      return telemetry;
    }
  }

  BatchContext ctx;
  ctx.num_epochs = options_.epochs;
  ctx.num_batches = steps_per_epoch;
  int64_t epoch = start_epoch;
  while (epoch < options_.epochs) {
    ctx.epoch = epoch;
    ctx.final_epoch = (epoch == options_.epochs - 1);
    const bool mid_epoch = (epoch == start_epoch && start_batch > 0);
    if (!mid_epoch) partial = PartialEpoch();

    util::Timer timer;
    bool rolled_back = false;
    for (int64_t step = mid_epoch ? start_batch : 0; step < steps_per_epoch;
         ++step) {
      ctx.batch_index = step;
      std::optional<tensor::Tensor> loss;
      {
        CPDG_TRACE_SPAN("train/forward");
        loss = step_fn(ctx);
      }
      BatchOutcome outcome = BatchOutcome::kNoLoss;
      if (loss.has_value()) {
        outcome = StepOnLoss(&*loss, &partial, &telemetry);
      }
      if (outcome == BatchOutcome::kHalt) {
        partial.epoch.wall_clock_sec += timer.ElapsedSeconds();
        telemetry.status = Status::Internal(
            "non-finite loss at epoch " + std::to_string(epoch) + ", step " +
            std::to_string(step));
        return telemetry;
      }
      if (outcome == BatchOutcome::kRollback) {
        Status status =
            Rollback(kRunModeSteps, steps_per_epoch, /*encoder=*/nullptr,
                     &telemetry, &partial, &epoch, &start_batch);
        if (!status.ok()) {
          telemetry.status = std::move(status);
          return telemetry;
        }
        start_epoch = epoch;
        rolled_back = true;
        break;
      }
      ++partial.epoch.num_batches;
      RollArenaStats();
      if (batch_end_hook_) batch_end_hook_(ctx);
      MaybeCheckpoint(kRunModeSteps, steps_per_epoch, epoch,
                      partial.epoch.num_batches, /*encoder=*/nullptr,
                      &telemetry, partial);
      ++batches_run_;
      if (stop_requested_ ||
          (options_.max_batches > 0 && batches_run_ >= options_.max_batches)) {
        partial.epoch.wall_clock_sec += timer.ElapsedSeconds();
        telemetry.stopped_early = true;
        return telemetry;
      }
    }
    if (rolled_back) continue;
    partial.epoch.wall_clock_sec += timer.ElapsedSeconds();
    FinishEpoch(epoch, partial.loss_sum, partial.epoch, &telemetry);
    ++epoch;
    start_batch = 0;
  }
  return telemetry;
}

}  // namespace cpdg::train
