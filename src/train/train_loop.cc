#include "train/train_loop.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"

namespace cpdg::train {

namespace ts = cpdg::tensor;

TrainLoop::TrainLoop(std::vector<tensor::Tensor> params,
                     const TrainLoopOptions& options)
    : params_(std::move(params)),
      options_(options),
      optimizer_(params_, options.learning_rate) {
  CPDG_CHECK_GE(options.epochs, 1);
}

void TrainLoop::StepOnLoss(tensor::Tensor* loss, EpochTelemetry* epoch,
                           double* loss_sum) {
  optimizer_.ZeroGrad();
  loss->Backward();
  if (options_.grad_clip > 0.0f) {
    double norm = static_cast<double>(
        ts::ClipGradNorm(params_, options_.grad_clip));
    double clipped =
        std::min(norm, static_cast<double>(options_.grad_clip));
    epoch->mean_grad_norm_pre_clip += norm;
    epoch->max_grad_norm_pre_clip =
        std::max(epoch->max_grad_norm_pre_clip, norm);
    epoch->mean_grad_norm_post_clip += clipped;
  }
  optimizer_.Step();
  *loss_sum += static_cast<double>(loss->item());
  ++epoch->num_steps;
}

void TrainLoop::FinishEpoch(int64_t epoch_index, double loss_sum,
                            EpochTelemetry epoch,
                            TrainTelemetry* telemetry) {
  // Historical convention of the hand-rolled loops: the epoch loss is the
  // stepped-loss sum divided by the *total* batch count (batches that
  // found no anchors contribute zero).
  if (epoch.num_batches > 0) {
    epoch.mean_loss = loss_sum / static_cast<double>(epoch.num_batches);
  }
  if (epoch.num_steps > 0) {
    epoch.mean_grad_norm_pre_clip /= static_cast<double>(epoch.num_steps);
    epoch.mean_grad_norm_post_clip /= static_cast<double>(epoch.num_steps);
  }
  telemetry->epoch_losses.push_back(epoch.mean_loss);
  CPDG_LOG(Debug) << options_.log_label << " epoch " << epoch_index
                  << " loss=" << epoch.mean_loss
                  << " grad_norm=" << epoch.mean_grad_norm_pre_clip
                  << " batches=" << epoch.num_batches
                  << " wall_ms=" << epoch.wall_clock_sec * 1e3;
  telemetry->epochs.push_back(epoch);
}

TrainTelemetry TrainLoop::RunChronological(dgnn::DgnnEncoder* encoder,
                                           const graph::TemporalGraph& graph,
                                           int64_t batch_size,
                                           const ChronoBatchFn& batch_fn) {
  CPDG_CHECK(batch_fn != nullptr);
  TrainTelemetry telemetry;
  // One batcher for the whole run; Reset() rewinds it each epoch.
  graph::ChronologicalBatcher batcher(&graph, batch_size);
  const int64_t num_batches = batcher.num_batches();

  BatchContext ctx;
  ctx.num_epochs = options_.epochs;
  ctx.num_batches = num_batches;
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    ctx.epoch = epoch;
    ctx.final_epoch = (epoch == options_.epochs - 1);
    if (encoder != nullptr) encoder->memory().Reset();
    batcher.Reset();

    util::Timer timer;
    EpochTelemetry et;
    double loss_sum = 0.0;
    graph::EventBatch batch;
    while (batcher.Next(&batch)) {
      ctx.batch_index = et.num_batches;
      if (encoder != nullptr) encoder->BeginBatch();
      std::optional<tensor::Tensor> loss = batch_fn(ctx, batch);
      if (loss.has_value()) StepOnLoss(&*loss, &et, &loss_sum);
      if (encoder != nullptr) encoder->CommitBatch(batch.events);
      ++et.num_batches;
      if (batch_end_hook_) batch_end_hook_(ctx);
    }
    et.wall_clock_sec = timer.ElapsedSeconds();
    FinishEpoch(epoch, loss_sum, et, &telemetry);
  }
  return telemetry;
}

TrainTelemetry TrainLoop::RunSteps(int64_t steps_per_epoch,
                                   const StepFn& step_fn) {
  CPDG_CHECK(step_fn != nullptr);
  CPDG_CHECK_GE(steps_per_epoch, 0);
  TrainTelemetry telemetry;

  BatchContext ctx;
  ctx.num_epochs = options_.epochs;
  ctx.num_batches = steps_per_epoch;
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    ctx.epoch = epoch;
    ctx.final_epoch = (epoch == options_.epochs - 1);

    util::Timer timer;
    EpochTelemetry et;
    double loss_sum = 0.0;
    for (int64_t step = 0; step < steps_per_epoch; ++step) {
      ctx.batch_index = step;
      std::optional<tensor::Tensor> loss = step_fn(ctx);
      if (loss.has_value()) StepOnLoss(&*loss, &et, &loss_sum);
      ++et.num_batches;
      if (batch_end_hook_) batch_end_hook_(ctx);
    }
    et.wall_clock_sec = timer.ElapsedSeconds();
    FinishEpoch(epoch, loss_sum, et, &telemetry);
  }
  return telemetry;
}

}  // namespace cpdg::train
