#include "train/link_batch.h"

#include <algorithm>

#include "dgnn/trainer.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tensor/losses.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace cpdg::train {

namespace ts = cpdg::tensor;

LinkBatch AssembleLinkBatch(const std::vector<graph::Event>& events,
                            const std::vector<graph::NodeId>& negative_pool,
                            int64_t num_nodes, Rng* rng) {
  CPDG_CHECK(rng != nullptr);
  CPDG_TRACE_SPAN("train/batch_assembly");
  static obs::Counter& assembled =
      obs::MetricsRegistry::Global().counter("train.batch_assembly.events");
  assembled.Add(static_cast<int64_t>(events.size()));
  LinkBatch out;
  out.srcs.reserve(events.size());
  out.dsts.reserve(events.size());
  out.negs.reserve(events.size());
  out.times.reserve(events.size());
  for (const graph::Event& e : events) {
    out.srcs.push_back(e.src);
    out.dsts.push_back(e.dst);
    out.negs.push_back(
        dgnn::SampleNegative(negative_pool, num_nodes, e.dst, rng));
    out.times.push_back(e.time);
  }
  return out;
}

tensor::Tensor StackedBceLoss(const tensor::Tensor& logits,
                              int64_t num_positive) {
  int64_t n = logits.rows();
  CPDG_CHECK_GE(num_positive, 0);
  CPDG_CHECK_LE(num_positive, n);
  std::vector<float> target_data(static_cast<size_t>(n), 0.0f);
  std::fill(target_data.begin(), target_data.begin() + num_positive, 1.0f);
  ts::Tensor targets = ts::Tensor::FromVector(n, 1, std::move(target_data));
  return ts::BceWithLogitsLoss(logits, targets);
}

tensor::Tensor LinkBceLoss(const tensor::Tensor& pos_logits,
                           const tensor::Tensor& neg_logits) {
  ts::Tensor logits = ts::ConcatRows({pos_logits, neg_logits});
  return StackedBceLoss(logits, pos_logits.rows());
}

}  // namespace cpdg::train
