#ifndef CPDG_TRAIN_TRAIN_LOOP_H_
#define CPDG_TRAIN_TRAIN_LOOP_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dgnn/encoder.h"
#include "graph/batching.h"
#include "graph/temporal_graph.h"
#include "tensor/optim.h"
#include "train/telemetry.h"

namespace cpdg::train {

/// \brief Knobs of the shared training runtime.
struct TrainLoopOptions {
  int64_t epochs = 1;
  float learning_rate = 1e-3f;
  /// Global gradient-norm clip applied after every backward pass;
  /// <= 0 disables clipping (and gradient-norm telemetry).
  float grad_clip = 0.0f;
  /// Prefix of the per-epoch debug log line.
  std::string log_label = "train";
};

/// \brief Position of the current batch within the run, handed to batch
/// callbacks and hooks.
struct BatchContext {
  int64_t epoch = 0;
  int64_t num_epochs = 1;
  /// 0-based batch index within the current epoch.
  int64_t batch_index = 0;
  /// Batches per epoch (ChronologicalBatcher::num_batches() for
  /// chronological runs, steps_per_epoch for step runs).
  int64_t num_batches = 0;
  bool final_epoch = false;
};

/// \brief Computes the loss of one chronological event batch. Returning
/// nullopt skips the optimizer step for this batch (the batch still
/// advances encoder memory and counts toward telemetry) — used by
/// objectives that can find no anchors in a batch.
using ChronoBatchFn = std::function<std::optional<tensor::Tensor>(
    const BatchContext& ctx, const graph::EventBatch& batch)>;

/// \brief Computes the loss of one step of a data-free (non-streaming)
/// loop, e.g. static-GNN sampled batches or a full-batch head epoch.
using StepFn =
    std::function<std::optional<tensor::Tensor>(const BatchContext& ctx)>;

/// \brief Observer invoked after each batch completes (optimizer stepped
/// and, for chronological runs, the batch committed to encoder memory).
/// CPDG's uniform memory checkpointing is implemented as this hook.
using BatchHook = std::function<void(const BatchContext& ctx)>;

/// \brief The shared epoch/batch driver every training entry point in the
/// repo runs on: CPDG pre-training and fine-tuning, the supervised
/// TGN-family trainer, the SSL baselines, the static-GNN loops and the
/// node-classification head.
///
/// The loop owns the Adam optimizer over `params`, the
/// ZeroGrad -> Backward -> ClipGradNorm -> Step sequence, the per-epoch
/// encoder-memory reset and per-batch BeginBatch/CommitBatch lifecycle
/// (chronological runs), and telemetry (per-epoch wall-clock, batch
/// counts, mean loss, gradient norms). Call sites supply only the
/// objective as a batch callback. Centralizing the iteration here is what
/// lets batching, instrumentation and (later) parallel negative sampling /
/// prefetching land in one place.
class TrainLoop {
 public:
  TrainLoop(std::vector<tensor::Tensor> params,
            const TrainLoopOptions& options);

  /// Registers a hook run after every completed batch.
  void set_batch_end_hook(BatchHook hook) {
    batch_end_hook_ = std::move(hook);
  }

  /// \brief Chronological event-stream training over `graph`: one
  /// ChronologicalBatcher is constructed up front and Reset() per epoch;
  /// when `encoder` is non-null its memory is reset at each epoch start
  /// and every batch is wrapped in BeginBatch / CommitBatch (the TGN
  /// within-batch protocol).
  TrainTelemetry RunChronological(dgnn::DgnnEncoder* encoder,
                                  const graph::TemporalGraph& graph,
                                  int64_t batch_size,
                                  const ChronoBatchFn& batch_fn);

  /// \brief Step-based training: `steps_per_epoch` invocations of
  /// `step_fn` per epoch with no event stream or encoder lifecycle.
  TrainTelemetry RunSteps(int64_t steps_per_epoch, const StepFn& step_fn);

  const TrainLoopOptions& options() const { return options_; }
  const std::vector<tensor::Tensor>& params() const { return params_; }
  tensor::Adam& optimizer() { return optimizer_; }

 private:
  /// Backward + clip + step for one produced loss; accumulates epoch
  /// telemetry.
  void StepOnLoss(tensor::Tensor* loss, EpochTelemetry* epoch,
                  double* loss_sum);

  /// Finalizes one epoch's telemetry and emits the debug log line.
  void FinishEpoch(int64_t epoch_index, double loss_sum,
                   EpochTelemetry epoch, TrainTelemetry* telemetry);

  std::vector<tensor::Tensor> params_;
  TrainLoopOptions options_;
  tensor::Adam optimizer_;
  BatchHook batch_end_hook_;
};

}  // namespace cpdg::train

#endif  // CPDG_TRAIN_TRAIN_LOOP_H_
