#ifndef CPDG_TRAIN_TRAIN_LOOP_H_
#define CPDG_TRAIN_TRAIN_LOOP_H_

#include <any>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dgnn/encoder.h"
#include "graph/batching.h"
#include "graph/graph_store.h"
#include "tensor/checkpoint_container.h"
#include "tensor/optim.h"
#include "train/checkpoint.h"
#include "train/prefetch.h"
#include "train/telemetry.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpdg::train {

/// \brief What the health monitor does when a batch produces a non-finite
/// loss or gradient norm.
enum class NonFinitePolicy {
  /// Stop the run; TrainTelemetry::status carries Status::Internal.
  kHalt,
  /// Drop the batch without stepping (the batch still advances encoder
  /// memory and counts toward telemetry) and keep going; counted in
  /// TrainTelemetry::nonfinite_skips.
  kSkipBatch,
  /// Restore the last checkpoint written to checkpoint_path and replay
  /// from its cursor; counted in TrainTelemetry::rollbacks. Requires
  /// periodic checkpointing to be on; halts once max_rollbacks is spent
  /// (a deterministic blow-up would otherwise loop forever).
  kRollbackToCheckpoint,
};

/// \brief Knobs of the shared training runtime.
struct TrainLoopOptions {
  int64_t epochs = 1;
  float learning_rate = 1e-3f;
  /// Global gradient-norm clip applied after every backward pass;
  /// <= 0 disables clipping (and gradient-norm telemetry).
  float grad_clip = 0.0f;
  /// Prefix of the per-epoch debug log line.
  std::string log_label = "train";

  /// \name Crash safety
  /// When non-empty and checkpoint_every_batches > 0, full training state
  /// (params, optimizer moments, encoder memory, telemetry, batch cursor
  /// and registered client sections) is published atomically to this path
  /// every checkpoint_every_batches completed batches. A failed save is
  /// logged and counted but never aborts training.
  std::string checkpoint_path;
  int64_t checkpoint_every_batches = 0;

  /// \name Health monitor
  NonFinitePolicy non_finite_policy = NonFinitePolicy::kHalt;
  /// Rollback budget per Run call under kRollbackToCheckpoint.
  int64_t max_rollbacks = 3;

  /// Graceful stop after this many batches executed by this Run call
  /// (restored batches do not count); 0 disables. The run returns with
  /// stopped_early = true and an OK status — combined with
  /// checkpoint_path this simulates a mid-run crash in tests.
  int64_t max_batches = 0;

  /// \name Prefetch pipeline
  /// Depth (batches prepared ahead) and producer-thread count of the
  /// prepared-batch pipeline used by chronological runs. Negative values
  /// (the default) defer to CPDG_PREFETCH_DEPTH / CPDG_PREFETCH_WORKERS
  /// (defaults: depth 0 = inline, 1 worker). Results are bit-identical at
  /// any depth/worker combination — see DESIGN.md §13.
  int64_t prefetch_depth = -1;
  int64_t prefetch_workers = -1;

  /// Base seed of the per-(epoch, batch_index) prepare RNG streams
  /// (Rng::ForSubstream). Clients whose prepare stage draws randomness
  /// (negative sampling, subgraph draws) set this once per run from their
  /// own RNG so the streams are reproducible yet run-specific.
  uint64_t prepare_stream_seed = 0;
};

/// \brief Position of the current batch within the run, handed to batch
/// callbacks and hooks.
struct BatchContext {
  int64_t epoch = 0;
  int64_t num_epochs = 1;
  /// 0-based batch index within the current epoch.
  int64_t batch_index = 0;
  /// Batches per epoch (ChronologicalBatcher::num_batches() for
  /// chronological runs, steps_per_epoch for step runs).
  int64_t num_batches = 0;
  bool final_epoch = false;
};

/// \brief Computes the loss of one chronological event batch. Returning
/// nullopt skips the optimizer step for this batch (the batch still
/// advances encoder memory and counts toward telemetry) — used by
/// objectives that can find no anchors in a batch.
using ChronoBatchFn = std::function<std::optional<tensor::Tensor>(
    const BatchContext& ctx, const graph::EventBatch& batch)>;

/// \brief Producer-side stage of a pipelined chronological batch: all
/// sampling and assembly work that needs only const graph reads plus the
/// per-batch RNG stream. Runs on prefetch workers when prefetching is
/// enabled, so it must not touch encoder memory, parameters, or any other
/// mutable training state; everything it computes travels to the compute
/// stage in the returned payload.
using ChronoPrepareFn = std::function<std::any(
    const BatchContext& ctx, const graph::EventBatch& batch, Rng* rng)>;

/// \brief Consumer-side stage of a pipelined chronological batch: consumes
/// the prepare payload and computes the loss on the main thread. Same
/// nullopt-skips-step contract as ChronoBatchFn.
using PreparedChronoBatchFn = std::function<std::optional<tensor::Tensor>(
    const BatchContext& ctx, const graph::EventBatch& batch,
    std::any& prepared)>;

/// \brief Computes the loss of one step of a data-free (non-streaming)
/// loop, e.g. static-GNN sampled batches or a full-batch head epoch.
using StepFn =
    std::function<std::optional<tensor::Tensor>(const BatchContext& ctx)>;

/// \brief Observer invoked after each batch completes (optimizer stepped
/// and, for chronological runs, the batch committed to encoder memory).
/// CPDG's uniform memory checkpointing is implemented as this hook.
using BatchHook = std::function<void(const BatchContext& ctx)>;

/// \brief State contributed to (and restored from) training checkpoints by
/// a TrainLoop client — state the loop cannot know about, e.g. the
/// pre-trainer's RNG stream and evolution snapshots. `save` appends the
/// payload to its argument; `restore` must validate before mutating.
struct CheckpointClientSection {
  std::function<void(std::string* out)> save;
  std::function<Status(std::string_view bytes)> restore;
};

/// \brief The shared epoch/batch driver every training entry point in the
/// repo runs on: CPDG pre-training and fine-tuning, the supervised
/// TGN-family trainer, the SSL baselines, the static-GNN loops and the
/// node-classification head.
///
/// The loop owns the Adam optimizer over `params`, the
/// ZeroGrad -> Backward -> ClipGradNorm -> Step sequence, the per-epoch
/// encoder-memory reset and per-batch BeginBatch/CommitBatch lifecycle
/// (chronological runs), and telemetry (per-epoch wall-clock, batch
/// counts, mean loss, gradient norms). Call sites supply only the
/// objective as a batch callback. Centralizing the iteration here is what
/// lets batching, instrumentation and (later) parallel negative sampling /
/// prefetching land in one place.
///
/// \par Crash safety
/// With checkpoint_path set, the loop periodically publishes its complete
/// state through the atomic temp-file-plus-rename path, and ResumeFrom()
/// stages a previously written checkpoint: the next Run call restores all
/// state, fast-forwards the chronological batcher to the saved cursor and
/// continues, producing results bit-identical to an uninterrupted run.
class TrainLoop {
 public:
  TrainLoop(std::vector<tensor::Tensor> params,
            const TrainLoopOptions& options);

  /// Registers a hook run after every completed batch.
  void set_batch_end_hook(BatchHook hook) {
    batch_end_hook_ = std::move(hook);
  }

  /// \brief Registers client state saved into every checkpoint under
  /// `name` and restored from it on resume. Must be registered (same
  /// names) before both the saving and the resuming Run call.
  void RegisterCheckpointSection(std::string name,
                                 CheckpointClientSection section);

  /// \brief Stages the checkpoint at `path` for the next Run call, which
  /// restores every section and continues from the saved batch cursor.
  /// Fails fast on unreadable/corrupt containers; cross-checks against
  /// the run shape (mode, epochs, batches) happen inside Run and surface
  /// through TrainTelemetry::status.
  Status ResumeFrom(const std::string& path);

  /// Requests a graceful stop after the current batch; the run returns
  /// with stopped_early = true. Safe to call from batch callbacks/hooks.
  void RequestStop() { stop_requested_ = true; }

  /// \brief Chronological event-stream training over `graph`: one
  /// ChronologicalBatcher is constructed up front and Reset() per epoch;
  /// when `encoder` is non-null its memory is reset at each epoch start
  /// and every batch is wrapped in BeginBatch / CommitBatch (the TGN
  /// within-batch protocol).
  TrainTelemetry RunChronological(dgnn::DgnnEncoder* encoder,
                                  const graph::GraphStore& graph,
                                  int64_t batch_size,
                                  const ChronoBatchFn& batch_fn);

  /// \brief Pipelined chronological training: `prepare_fn` (sampling +
  /// batch assembly; may be null) runs through the prefetch pipeline —
  /// inline at depth 0, on producer threads at depth > 0 — while
  /// `batch_fn` consumes payloads in batch order on this thread. Batch
  /// boundaries and results are identical to RunChronological; per-batch
  /// RNG streams (Rng::ForSubstream over prepare_stream_seed) make the
  /// loss sequence bit-identical at every depth/worker setting.
  TrainTelemetry RunChronologicalPrepared(
      dgnn::DgnnEncoder* encoder, const graph::GraphStore& graph,
      int64_t batch_size, const ChronoPrepareFn& prepare_fn,
      const PreparedChronoBatchFn& batch_fn);

  /// \brief Step-based training: `steps_per_epoch` invocations of
  /// `step_fn` per epoch with no event stream or encoder lifecycle.
  TrainTelemetry RunSteps(int64_t steps_per_epoch, const StepFn& step_fn);

  const TrainLoopOptions& options() const { return options_; }
  const std::vector<tensor::Tensor>& params() const { return params_; }
  tensor::Adam& optimizer() { return optimizer_; }

 private:
  enum class BatchOutcome { kStepped, kNoLoss, kSkippedNonFinite, kHalt,
                            kRollback };

  /// Health-checked backward + clip + step for one produced loss;
  /// accumulates epoch telemetry on a successful step.
  BatchOutcome StepOnLoss(tensor::Tensor* loss, PartialEpoch* partial,
                          TrainTelemetry* telemetry);

  /// Finalizes one epoch's telemetry and emits the debug log line.
  void FinishEpoch(int64_t epoch_index, double loss_sum,
                   EpochTelemetry epoch, TrainTelemetry* telemetry);

  bool checkpointing_enabled() const {
    return !options_.checkpoint_path.empty() &&
           options_.checkpoint_every_batches > 0;
  }

  /// Effective pipeline knobs: explicit options win, otherwise the
  /// CPDG_PREFETCH_* environment.
  PrefetchOptions ResolvedPrefetch() const;

  /// Publishes full state with the cursor after `batches_done` completed
  /// batches of `epoch`. Failures are logged and counted, not fatal.
  void SaveCheckpoint(uint32_t mode, int64_t num_batches, int64_t epoch,
                      int64_t batches_done, dgnn::DgnnEncoder* encoder,
                      TrainTelemetry* telemetry, const PartialEpoch& partial);

  /// Called after every completed batch; saves when the cadence is due.
  void MaybeCheckpoint(uint32_t mode, int64_t num_batches, int64_t epoch,
                       int64_t batches_done, dgnn::DgnnEncoder* encoder,
                       TrainTelemetry* telemetry,
                       const PartialEpoch& partial);

  /// Validates the staged checkpoint against the run shape, then restores
  /// every section (params, optimizer, memory, telemetry, clients) and
  /// outputs the batch cursor. All-or-nothing up to the per-section
  /// restore contracts. Consumes staged_resume_.
  Status ApplyStagedResume(uint32_t mode, int64_t num_batches,
                           dgnn::DgnnEncoder* encoder,
                           TrainTelemetry* telemetry, PartialEpoch* partial,
                           int64_t* next_epoch, int64_t* next_batch);

  /// kRollbackToCheckpoint: re-stages checkpoint_path and applies it.
  Status Rollback(uint32_t mode, int64_t num_batches,
                  dgnn::DgnnEncoder* encoder, TrainTelemetry* telemetry,
                  PartialEpoch* partial, int64_t* next_epoch,
                  int64_t* next_batch);

  std::vector<tensor::Tensor> params_;
  TrainLoopOptions options_;
  tensor::Adam optimizer_;
  BatchHook batch_end_hook_;
  std::vector<std::pair<std::string, CheckpointClientSection>>
      checkpoint_sections_;
  std::unique_ptr<tensor::SectionReader> staged_resume_;
  bool stop_requested_ = false;
  /// Batches executed by the current Run call (max_batches budget).
  int64_t batches_run_ = 0;
  int64_t batches_since_checkpoint_ = 0;
  int64_t rollbacks_this_run_ = 0;
};

}  // namespace cpdg::train

#endif  // CPDG_TRAIN_TRAIN_LOOP_H_
