#ifndef CPDG_TRAIN_PREFETCH_H_
#define CPDG_TRAIN_PREFETCH_H_

#include <any>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/batching.h"

namespace cpdg::train {

/// \brief Knobs of the prefetching batch pipeline.
struct PrefetchOptions {
  /// Batches prepared ahead of the one being trained. 0 = inline: no
  /// worker threads, each batch is prepared synchronously right before its
  /// compute (the default; identical thread structure to the pre-pipeline
  /// loop).
  int64_t depth = 0;
  /// Producer threads when depth > 0.
  int64_t workers = 1;

  /// Reads CPDG_PREFETCH_DEPTH (default 0) and CPDG_PREFETCH_WORKERS
  /// (default 1); negative/garbage values fall back to the defaults.
  static PrefetchOptions FromEnv();
};

/// \brief One produced batch: the raw events, the client's prepared
/// payload (sampled subgraphs, assembled link batch, ...) and the
/// producer-side wall time spent preparing it.
struct PreparedBatch {
  graph::EventBatch events;
  std::any payload;
  double sample_seconds = 0.0;
};

/// \brief Prepares batch `batch_index`; must be a pure function of the
/// index (graph reads + the index-derived RNG stream only), so the result
/// is independent of which worker runs it and when.
using ProduceFn = std::function<PreparedBatch(int64_t batch_index)>;

/// \brief Bounded prefetch queue between sampler/assembly producers and
/// the training consumer.
///
/// Tickets are batch indices in [first, num_batches). Workers claim the
/// lowest unclaimed ticket whose slot fits in the window
/// [consumer, consumer + depth], produce it outside the lock, and publish
/// it into a ring slot; the consumer takes batches strictly in index
/// order, so training observes the exact serial batch sequence no matter
/// how production interleaved. Determinism is the producer's contract:
/// ProduceFn must derive all randomness from the batch index (see
/// Rng::ForSubstream), which this class neither adds to nor reorders.
///
/// With depth == 0 the pipeline spawns no threads and Next() simply runs
/// ProduceFn inline, making the serial path and the prefetched path share
/// one code shape.
///
/// Observability: train.prefetch.queue_depth (gauge, ready batches at each
/// consume), train.prefetch.producer_stall_seconds /
/// train.prefetch.consumer_stall_seconds (histograms) and
/// train.prefetch.produced / train.prefetch.discarded counters.
class PrefetchPipeline {
 public:
  /// Begins producing tickets [first, num_batches) immediately when
  /// depth > 0.
  PrefetchPipeline(const PrefetchOptions& options, int64_t first,
                   int64_t num_batches, ProduceFn produce);

  /// Stops and joins workers; safe if Stop() already ran.
  ~PrefetchPipeline();

  PrefetchPipeline(const PrefetchPipeline&) = delete;
  PrefetchPipeline& operator=(const PrefetchPipeline&) = delete;

  /// \brief Returns batch `index`, blocking until it is ready. Must be
  /// called from one consumer thread with strictly increasing indices
  /// starting at `first`.
  PreparedBatch Next(int64_t index);

  /// \brief Idempotent shutdown: wakes and joins all workers. In-flight
  /// produce calls finish; their results (and any ready-but-unconsumed
  /// slots) are counted as discarded. Used for mid-epoch exits (rollback,
  /// halt, early stop).
  void Stop();

  /// Batch-conservation accounting; every produced batch is either
  /// consumed or discarded (produced == consumed + discarded once
  /// stopped).
  struct Counters {
    int64_t produced = 0;
    int64_t consumed = 0;
    int64_t discarded = 0;
  };
  Counters counters() const;

 private:
  void WorkerLoop();
  int64_t SlotOf(int64_t index) const {
    return index % static_cast<int64_t>(slots_.size());
  }

  const PrefetchOptions options_;
  const int64_t num_batches_;
  const ProduceFn produce_;

  mutable std::mutex mu_;
  std::condition_variable claimable_;  // producers: window advanced
  std::condition_variable ready_;      // consumer: a slot was published
  int64_t next_ticket_ = 0;   // lowest unclaimed ticket
  int64_t consume_next_ = 0;  // index the consumer will ask for next
  bool shutdown_ = false;
  std::vector<PreparedBatch> slots_;
  std::vector<uint8_t> slot_ready_;
  Counters counters_;
  std::vector<std::thread> workers_;
};

}  // namespace cpdg::train

#endif  // CPDG_TRAIN_PREFETCH_H_
