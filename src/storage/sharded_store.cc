#include "storage/sharded_store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "util/byte_codec.h"
#include "util/check.h"

namespace cpdg::storage {
namespace {

using graph::Event;
using graph::NeighborScratch;
using graph::NeighborSpan;
using graph::NodeId;
using graph::TemporalNeighbor;

// Flush threshold for the builder's event buffer: large enough to amortize
// write() syscalls, small enough to keep streaming memory bounded.
constexpr size_t kBuilderFlushBytes = 256 * 1024;

const TemporalNeighbor* LowerBoundByTime(const TemporalNeighbor* begin,
                                         const TemporalNeighbor* end,
                                         double time) {
  return std::lower_bound(begin, end, time,
                          [](const TemporalNeighbor& n, double t) {
                            return n.time < t;
                          });
}

Status ValidateEvent(const Event& e, int64_t num_nodes) {
  if (e.src < 0 || e.src >= num_nodes || e.dst < 0 || e.dst >= num_nodes) {
    return Status::InvalidArgument(
        "event references node id outside [0, num_nodes)");
  }
  return Status::OK();
}

}  // namespace

StoreOptions StoreOptions::FromEnv() {
  StoreOptions opts;
  if (const char* v = std::getenv("CPDG_STORE_SHARDS")) {
    long n = std::strtol(v, nullptr, 10);
    if (n >= 1 && n <= 1024) opts.shard_count = static_cast<uint32_t>(n);
  }
  if (const char* v = std::getenv("CPDG_STORE_VERIFY")) {
    opts.verify_checksums = std::strtol(v, nullptr, 10) != 0;
  }
  return opts;
}

// ---------------------------------------------------------------------------
// EventLogBuilder
// ---------------------------------------------------------------------------

EventLogBuilder::EventLogBuilder(std::string dir, int64_t num_nodes,
                                 StoreOptions options)
    : EventLogBuilder(std::move(dir), num_nodes, options, /*generation=*/0,
                      /*next_delta_seq=*/0) {}

EventLogBuilder::EventLogBuilder(std::string dir, int64_t num_nodes,
                                 StoreOptions options, int64_t generation,
                                 int64_t next_delta_seq)
    : dir_(std::move(dir)),
      num_nodes_(num_nodes),
      options_(options),
      generation_(generation),
      next_delta_seq_(next_delta_seq) {
  if (num_nodes_ <= 0) {
    open_status_ = Status::InvalidArgument("num_nodes must be positive");
    return;
  }
  if (options_.shard_count == 0) {
    open_status_ = Status::InvalidArgument("shard_count must be >= 1");
    return;
  }
  std::error_code ec;  // best effort; Open below reports failures
  std::filesystem::create_directories(dir_, ec);
  open_status_ = events_sink_.Open(EventsPath(dir_, generation_));
  if (!open_status_.ok()) return;

  FileHeader header;
  header.kind = static_cast<uint32_t>(FileKind::kEvents);
  header.shard_index = 0;
  header.shard_count = options_.shard_count;
  header.num_nodes = num_nodes_;
  open_status_ = events_sink_.Append(&header, sizeof(header));
  if (!open_status_.ok()) return;

  degree_counts_.assign(static_cast<size_t>(num_nodes_), 0);
  buffer_.reserve(kBuilderFlushBytes + sizeof(Event));
}

EventLogBuilder::~EventLogBuilder() = default;

Status EventLogBuilder::Add(const Event& event) {
  return AddBatch(&event, 1);
}

Status EventLogBuilder::AddBatch(const Event* events, int64_t count) {
  CPDG_RETURN_NOT_OK(open_status_);
  if (finished_) {
    return Status::FailedPrecondition("builder already finished");
  }
  for (int64_t i = 0; i < count; ++i) {
    const Event& e = events[i];
    CPDG_RETURN_NOT_OK(ValidateEvent(e, num_nodes_));
    if (count_ > 0 && e.time < last_time_) {
      return Status::InvalidArgument(
          "streamed events must have non-decreasing time (got " +
          std::to_string(e.time) + " after " + std::to_string(last_time_) +
          ")");
    }
    if (count_ == 0) min_time_ = e.time;
    last_time_ = e.time;
    max_time_ = e.time;
    ++degree_counts_[static_cast<size_t>(e.src)];
    ++degree_counts_[static_cast<size_t>(e.dst)];
    buffer_.append(reinterpret_cast<const char*>(&e), sizeof(Event));
    ++count_;
    if (buffer_.size() >= kBuilderFlushBytes) {
      CPDG_RETURN_NOT_OK(FlushBuffer());
    }
  }
  return Status::OK();
}

Status EventLogBuilder::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  payload_crc_ = util::Crc32(buffer_.data(), buffer_.size(), payload_crc_);
  Status st = events_sink_.Append(buffer_.data(), buffer_.size());
  if (!st.ok()) open_status_ = st;
  buffer_.clear();
  return st;
}

Status EventLogBuilder::Finish() {
  CPDG_RETURN_NOT_OK(open_status_);
  if (finished_) {
    return Status::FailedPrecondition("builder already finished");
  }
  finished_ = true;
  CPDG_RETURN_NOT_OK(FlushBuffer());

  FileFooter footer;
  footer.record_count = count_;
  footer.aux_count = 0;
  footer.min_time = min_time_;
  footer.max_time = max_time_;
  footer.payload_crc = payload_crc_;
  CPDG_RETURN_NOT_OK(events_sink_.Append(&footer, sizeof(footer)));
  CPDG_RETURN_NOT_OK(events_sink_.Commit());

  CPDG_RETURN_NOT_OK(BuildAdjacencyShards());

  Manifest manifest;
  manifest.generation = generation_;
  manifest.shard_count = options_.shard_count;
  manifest.num_nodes = num_nodes_;
  manifest.delta_start = next_delta_seq_;
  manifest.delta_count = 0;
  return WriteManifest(dir_, manifest);
}

Status EventLogBuilder::BuildAdjacencyShards() {
  // Re-read the just-committed events file through the page cache instead
  // of holding 10^7 events in memory: the adjacency scatter is the only
  // second pass the format needs.
  CPDG_ASSIGN_OR_RETURN(MappedFile events_file,
                        MappedFile::Open(EventsPath(dir_, generation_)));
  const int64_t expect_size =
      static_cast<int64_t>(sizeof(FileHeader) + sizeof(FileFooter)) +
      count_ * static_cast<int64_t>(sizeof(Event));
  if (events_file.size() != expect_size) {
    return Status::IoError("events file size mismatch after commit");
  }
  const Event* events =
      reinterpret_cast<const Event*>(events_file.data() + sizeof(FileHeader));

  const uint32_t K = options_.shard_count;
  struct ShardBuild {
    MappedTempFile file;
    int64_t* offsets = nullptr;
    TemporalNeighbor* neighbors = nullptr;
    int64_t local_nodes = 0;
    int64_t payload_size = 0;
  };
  std::vector<ShardBuild> builds(K);

  for (uint32_t k = 0; k < K; ++k) {
    ShardBuild& b = builds[k];
    b.local_nodes = LocalNodeCount(num_nodes_, K, k);
    int64_t entries = 0;
    for (int64_t local = 0; local < b.local_nodes; ++local) {
      entries += degree_counts_[static_cast<size_t>(
          local * static_cast<int64_t>(K) + k)];
    }
    b.payload_size =
        (b.local_nodes + 1) * static_cast<int64_t>(sizeof(int64_t)) +
        entries * static_cast<int64_t>(sizeof(TemporalNeighbor));
    const int64_t file_size =
        static_cast<int64_t>(sizeof(FileHeader) + sizeof(FileFooter)) +
        b.payload_size;
    CPDG_ASSIGN_OR_RETURN(
        b.file, MappedTempFile::Create(AdjacencyPath(dir_, generation_, k),
                                       file_size));

    FileHeader header;
    header.kind = static_cast<uint32_t>(FileKind::kAdjacency);
    header.shard_index = k;
    header.shard_count = K;
    header.num_nodes = num_nodes_;
    std::memcpy(b.file.data(), &header, sizeof(header));

    b.offsets = reinterpret_cast<int64_t*>(b.file.data() + sizeof(FileHeader));
    b.neighbors = reinterpret_cast<TemporalNeighbor*>(
        b.file.data() + sizeof(FileHeader) +
        (b.local_nodes + 1) * static_cast<int64_t>(sizeof(int64_t)));
    b.offsets[0] = 0;
    for (int64_t local = 0; local < b.local_nodes; ++local) {
      b.offsets[local + 1] =
          b.offsets[local] + degree_counts_[static_cast<size_t>(
                                 local * static_cast<int64_t>(K) + k)];
    }
  }

  // CSR scatter in one chronological pass — the same construction order as
  // TemporalGraph::Create, which is what makes per-node runs bit-identical
  // across backends and shard counts.
  std::vector<int64_t> cursor(static_cast<size_t>(num_nodes_));
  for (int64_t v = 0; v < num_nodes_; ++v) {
    const uint32_t k = static_cast<uint32_t>(v % static_cast<int64_t>(K));
    cursor[static_cast<size_t>(v)] =
        builds[k].offsets[v / static_cast<int64_t>(K)];
  }
  for (int64_t idx = 0; idx < count_; ++idx) {
    const Event& e = events[idx];
    ShardBuild& bs = builds[static_cast<uint32_t>(
        e.src % static_cast<int64_t>(K))];
    bs.neighbors[cursor[static_cast<size_t>(e.src)]++] =
        TemporalNeighbor{e.dst, e.time, idx};
    ShardBuild& bd = builds[static_cast<uint32_t>(
        e.dst % static_cast<int64_t>(K))];
    bd.neighbors[cursor[static_cast<size_t>(e.dst)]++] =
        TemporalNeighbor{e.src, e.time, idx};
  }

  for (uint32_t k = 0; k < K; ++k) {
    ShardBuild& b = builds[k];
    FileFooter footer;
    footer.record_count = b.offsets[b.local_nodes];
    footer.aux_count = b.local_nodes;
    footer.min_time = min_time_;
    footer.max_time = max_time_;
    footer.payload_crc = util::Crc32(b.file.data() + sizeof(FileHeader),
                                     static_cast<size_t>(b.payload_size));
    std::memcpy(b.file.data() + b.file.size() - sizeof(FileFooter), &footer,
                sizeof(footer));
    CPDG_RETURN_NOT_OK(b.file.Publish());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ShardedGraphStore
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ShardedGraphStore>> ShardedGraphStore::Open(
    const std::string& dir, StoreOptions options) {
  std::unique_ptr<ShardedGraphStore> store(new ShardedGraphStore());
  store->dir_ = dir;
  store->options_ = options;
  CPDG_RETURN_NOT_OK(store->LoadFromDisk());
  return store;
}

Result<std::unique_ptr<ShardedGraphStore>> ShardedGraphStore::Build(
    const std::string& dir, int64_t num_nodes, std::vector<Event> events,
    StoreOptions options) {
  // Same stable chronological sort as TemporalGraph::Create.
  std::stable_sort(
      events.begin(), events.end(),
      [](const Event& a, const Event& b) { return a.time < b.time; });
  EventLogBuilder builder(dir, num_nodes, options);
  CPDG_RETURN_NOT_OK(
      builder.AddBatch(events.data(), static_cast<int64_t>(events.size())));
  CPDG_RETURN_NOT_OK(builder.Finish());
  return Open(dir, options);
}

Status ShardedGraphStore::LoadFromDisk() {
  CPDG_ASSIGN_OR_RETURN(manifest_, ReadManifest(dir_));
  num_nodes_ = manifest_.num_nodes;

  const std::string events_path = EventsPath(dir_, manifest_.generation);
  CPDG_ASSIGN_OR_RETURN(events_file_, MappedFile::Open(events_path));
  CPDG_ASSIGN_OR_RETURN(
      ParsedFile events,
      ParseStoreFile(events_file_, FileKind::kEvents, events_path,
                     options_.verify_checksums));
  if (events.header->num_nodes != num_nodes_ ||
      events.header->shard_count != manifest_.shard_count) {
    return Status::IoError("events file metadata disagrees with manifest: " +
                           events_path);
  }
  if (events.payload_size !=
      events.footer->record_count * static_cast<int64_t>(sizeof(Event))) {
    return Status::IoError("events file truncated: " + events_path);
  }
  base_events_ = reinterpret_cast<const Event*>(events.payload);
  base_count_ = events.footer->record_count;
  base_min_time_ = events.footer->min_time;
  base_max_time_ = events.footer->max_time;

  shards_.clear();
  shards_.resize(manifest_.shard_count);
  int64_t total_entries = 0;
  for (uint32_t k = 0; k < manifest_.shard_count; ++k) {
    const std::string path = AdjacencyPath(dir_, manifest_.generation, k);
    Shard& shard = shards_[k];
    CPDG_ASSIGN_OR_RETURN(shard.file, MappedFile::Open(path));
    CPDG_ASSIGN_OR_RETURN(
        ParsedFile adj,
        ParseStoreFile(shard.file, FileKind::kAdjacency, path,
                       options_.verify_checksums));
    shard.local_nodes = LocalNodeCount(num_nodes_, manifest_.shard_count, k);
    if (adj.header->shard_index != k ||
        adj.header->shard_count != manifest_.shard_count ||
        adj.header->num_nodes != num_nodes_ ||
        adj.footer->aux_count != shard.local_nodes) {
      return Status::IoError("adjacency shard metadata mismatch: " + path);
    }
    const int64_t offsets_bytes =
        (shard.local_nodes + 1) * static_cast<int64_t>(sizeof(int64_t));
    if (adj.payload_size !=
        offsets_bytes + adj.footer->record_count *
                            static_cast<int64_t>(sizeof(TemporalNeighbor))) {
      return Status::IoError("adjacency shard truncated: " + path);
    }
    shard.offsets = reinterpret_cast<const int64_t*>(adj.payload);
    shard.neighbors =
        reinterpret_cast<const TemporalNeighbor*>(adj.payload + offsets_bytes);
    if (shard.offsets[0] != 0 ||
        shard.offsets[shard.local_nodes] != adj.footer->record_count) {
      return Status::IoError("adjacency shard offsets corrupt: " + path);
    }
    total_entries += adj.footer->record_count;
  }
  if (total_entries != 2 * base_count_) {
    return Status::IoError(
        "adjacency shards disagree with event count in " + dir_);
  }

  delta_events_.clear();
  delta_adj_.clear();
  live_max_time_ = base_max_time_;
  for (int64_t seq = manifest_.delta_start;
       seq < manifest_.delta_start + manifest_.delta_count; ++seq) {
    CPDG_RETURN_NOT_OK(LoadDeltaFile(seq));
  }
  has_delta_.store(!delta_events_.empty(), std::memory_order_release);
  return Status::OK();
}

Status ShardedGraphStore::LoadDeltaFile(int64_t seq) {
  const std::string path = DeltaPath(dir_, seq);
  CPDG_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  // Deltas are small; always CRC them regardless of verify_checksums.
  CPDG_ASSIGN_OR_RETURN(
      ParsedFile parsed,
      ParseStoreFile(file, FileKind::kDelta, path, /*verify_crc=*/true));
  if (parsed.header->num_nodes != num_nodes_) {
    return Status::IoError("delta file metadata mismatch: " + path);
  }
  if (parsed.payload_size !=
      parsed.footer->record_count * static_cast<int64_t>(sizeof(Event))) {
    return Status::IoError("delta file truncated: " + path);
  }
  const Event* events = reinterpret_cast<const Event*>(parsed.payload);
  for (int64_t i = 0; i < parsed.footer->record_count; ++i) {
    const Event& e = events[i];
    CPDG_RETURN_NOT_OK(ValidateEvent(e, num_nodes_));
    if (e.time < live_max_time_) {
      return Status::IoError("delta file breaks chronological order: " + path);
    }
    const int64_t idx = base_count_ + static_cast<int64_t>(delta_events_.size());
    delta_events_.push_back(e);
    delta_adj_[e.src].push_back(TemporalNeighbor{e.dst, e.time, idx});
    delta_adj_[e.dst].push_back(TemporalNeighbor{e.src, e.time, idx});
    live_max_time_ = e.time;
  }
  return Status::OK();
}

int64_t ShardedGraphStore::num_events() const {
  if (!has_delta_.load(std::memory_order_acquire)) return base_count_;
  std::shared_lock lock(mu_);
  return base_count_ + static_cast<int64_t>(delta_events_.size());
}

int64_t ShardedGraphStore::delta_event_count() const {
  std::shared_lock lock(mu_);
  return static_cast<int64_t>(delta_events_.size());
}

double ShardedGraphStore::min_time() const {
  if (base_count_ > 0) return base_min_time_;
  if (!has_delta_.load(std::memory_order_acquire)) return 0.0;
  std::shared_lock lock(mu_);
  return delta_events_.empty() ? 0.0 : delta_events_.front().time;
}

double ShardedGraphStore::max_time() const {
  if (!has_delta_.load(std::memory_order_acquire)) return base_max_time_;
  std::shared_lock lock(mu_);
  return live_max_time_;
}

Event ShardedGraphStore::EventAt(int64_t index) const {
  CPDG_CHECK_GE(index, 0);
  if (index < base_count_) return base_events_[index];
  std::shared_lock lock(mu_);
  CPDG_CHECK_LT(index,
                base_count_ + static_cast<int64_t>(delta_events_.size()));
  return delta_events_[static_cast<size_t>(index - base_count_)];
}

void ShardedGraphStore::ReadEvents(int64_t begin, int64_t end,
                                   std::vector<Event>* out) const {
  CPDG_CHECK_GE(begin, 0);
  CPDG_CHECK_LE(begin, end);
  out->clear();
  out->reserve(static_cast<size_t>(end - begin));
  const int64_t base_end = std::min(end, base_count_);
  if (begin < base_end) {
    out->insert(out->end(), base_events_ + begin, base_events_ + base_end);
  }
  if (end > base_count_) {
    std::shared_lock lock(mu_);
    CPDG_CHECK_LE(end,
                  base_count_ + static_cast<int64_t>(delta_events_.size()));
    const int64_t d_begin = std::max<int64_t>(0, begin - base_count_);
    out->insert(out->end(), delta_events_.begin() + d_begin,
                delta_events_.begin() + (end - base_count_));
  } else {
    CPDG_CHECK_LE(end, base_count_);
  }
}

NeighborSpan ShardedGraphStore::BaseNeighbors(NodeId node, double time) const {
  const Shard& shard = shards_[static_cast<size_t>(
      node % static_cast<int64_t>(manifest_.shard_count))];
  const int64_t local = node / static_cast<int64_t>(manifest_.shard_count);
  const TemporalNeighbor* begin = shard.neighbors + shard.offsets[local];
  const TemporalNeighbor* end = shard.neighbors + shard.offsets[local + 1];
  const TemporalNeighbor* cut = LowerBoundByTime(begin, end, time);
  return NeighborSpan{begin, cut - begin};
}

NeighborSpan ShardedGraphStore::NeighborsBefore(NodeId node, double time,
                                                NeighborScratch* scratch) const {
  CPDG_CHECK_GE(node, 0);
  CPDG_CHECK_LT(node, num_nodes_);
  NeighborSpan base = BaseNeighbors(node, time);
  if (!has_delta_.load(std::memory_order_acquire)) return base;

  std::shared_lock lock(mu_);
  auto it = delta_adj_.find(node);
  if (it == delta_adj_.end()) return base;
  const std::vector<TemporalNeighbor>& delta = it->second;
  const TemporalNeighbor* cut =
      LowerBoundByTime(delta.data(), delta.data() + delta.size(), time);
  const int64_t extra = cut - delta.data();
  if (extra == 0) return base;

  // Delta times are >= every base time, so concatenation preserves the
  // chronological order the contract requires.
  CPDG_CHECK(scratch != nullptr)
      << "NeighborScratch required to merge appended events";
  std::vector<TemporalNeighbor>& buf = scratch->buffer();
  buf.assign(base.begin(), base.end());
  buf.insert(buf.end(), delta.data(), cut);
  return NeighborSpan{buf.data(), static_cast<int64_t>(buf.size())};
}

int64_t ShardedGraphStore::Degree(NodeId node) const {
  CPDG_CHECK_GE(node, 0);
  CPDG_CHECK_LT(node, num_nodes_);
  const Shard& shard = shards_[static_cast<size_t>(
      node % static_cast<int64_t>(manifest_.shard_count))];
  const int64_t local = node / static_cast<int64_t>(manifest_.shard_count);
  int64_t degree = shard.offsets[local + 1] - shard.offsets[local];
  if (has_delta_.load(std::memory_order_acquire)) {
    std::shared_lock lock(mu_);
    auto it = delta_adj_.find(node);
    if (it != delta_adj_.end()) {
      degree += static_cast<int64_t>(it->second.size());
    }
  }
  return degree;
}

int64_t ShardedGraphStore::LowerBoundEvent(double t) const {
  const Event* cut = std::lower_bound(
      base_events_, base_events_ + base_count_, t,
      [](const Event& e, double time) { return e.time < time; });
  int64_t index = cut - base_events_;
  if (index < base_count_ || !has_delta_.load(std::memory_order_acquire)) {
    return index;
  }
  std::shared_lock lock(mu_);
  auto it = std::lower_bound(
      delta_events_.begin(), delta_events_.end(), t,
      [](const Event& e, double time) { return e.time < time; });
  return base_count_ + (it - delta_events_.begin());
}

Status ShardedGraphStore::Append(const std::vector<Event>& events) {
  if (events.empty()) return Status::OK();
  std::lock_guard<std::mutex> append_lock(append_mu_);

  // Writers are serialized by append_mu_, so reading the delta tail state
  // without mu_ is safe here.
  double tail_time = live_max_time_;
  if (base_count_ == 0 && delta_events_.empty()) {
    tail_time = events.front().time;
  }
  for (const Event& e : events) {
    CPDG_RETURN_NOT_OK(ValidateEvent(e, num_nodes_));
    if (e.time < tail_time) {
      return Status::InvalidArgument(
          "appended events must be chronological and >= max_time()");
    }
    tail_time = e.time;
  }

  // Durability point: the delta file is published before it becomes
  // visible, so a crash after this block replays the same state on Open.
  const int64_t seq = manifest_.delta_start + manifest_.delta_count;
  util::AtomicFileSink sink;
  CPDG_RETURN_NOT_OK(sink.Open(DeltaPath(dir_, seq)));
  FileHeader header;
  header.kind = static_cast<uint32_t>(FileKind::kDelta);
  header.shard_index = 0;
  header.shard_count = manifest_.shard_count;
  header.num_nodes = num_nodes_;
  CPDG_RETURN_NOT_OK(sink.Append(&header, sizeof(header)));
  CPDG_RETURN_NOT_OK(
      sink.Append(events.data(), events.size() * sizeof(Event)));
  FileFooter footer;
  footer.record_count = static_cast<int64_t>(events.size());
  footer.min_time = events.front().time;
  footer.max_time = events.back().time;
  footer.payload_crc =
      util::Crc32(events.data(), events.size() * sizeof(Event));
  CPDG_RETURN_NOT_OK(sink.Append(&footer, sizeof(footer)));
  CPDG_RETURN_NOT_OK(sink.Commit());

  Manifest updated = manifest_;
  updated.delta_count += 1;
  CPDG_RETURN_NOT_OK(WriteManifest(dir_, updated));

  // Visibility point: in-flight readers drain against the old state, new
  // reads see the appended suffix.
  std::unique_lock<std::shared_mutex> lock(mu_);
  manifest_ = updated;
  for (const Event& e : events) {
    const int64_t idx =
        base_count_ + static_cast<int64_t>(delta_events_.size());
    delta_events_.push_back(e);
    delta_adj_[e.src].push_back(TemporalNeighbor{e.dst, e.time, idx});
    delta_adj_[e.dst].push_back(TemporalNeighbor{e.src, e.time, idx});
    live_max_time_ = std::max(live_max_time_, e.time);
  }
  if (base_count_ == 0 && delta_events_.size() == events.size()) {
    live_max_time_ = events.back().time;
  }
  has_delta_.store(true, std::memory_order_release);
  return Status::OK();
}

Status ShardedGraphStore::Compact() {
  std::lock_guard<std::mutex> append_lock(append_mu_);
  const Manifest old = manifest_;
  const int64_t new_generation = old.generation + 1;
  const int64_t new_delta_start = old.delta_start + old.delta_count;

  // Rebuild runs against stable state: base files are immutable and the
  // delta tail only changes under append_mu_, which we hold. Readers keep
  // querying the old state until the swap below.
  EventLogBuilder builder(dir_, num_nodes_, options_, new_generation,
                          new_delta_start);
  constexpr int64_t kChunk = 1 << 16;
  for (int64_t at = 0; at < base_count_; at += kChunk) {
    CPDG_RETURN_NOT_OK(builder.AddBatch(
        base_events_ + at, std::min(kChunk, base_count_ - at)));
  }
  CPDG_RETURN_NOT_OK(builder.AddBatch(
      delta_events_.data(), static_cast<int64_t>(delta_events_.size())));
  CPDG_RETURN_NOT_OK(builder.Finish());  // publishes the new manifest

  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    CPDG_RETURN_NOT_OK(LoadFromDisk());
  }

  // The old generation is unreferenced now; removal is best effort (a
  // crash here just leaves garbage files a later compaction ignores).
  ::unlink(EventsPath(dir_, old.generation).c_str());
  for (uint32_t k = 0; k < old.shard_count; ++k) {
    ::unlink(AdjacencyPath(dir_, old.generation, k).c_str());
  }
  for (int64_t seq = old.delta_start;
       seq < old.delta_start + old.delta_count; ++seq) {
    ::unlink(DeltaPath(dir_, seq).c_str());
  }
  return Status::OK();
}

}  // namespace cpdg::storage
