#ifndef CPDG_STORAGE_EVENT_LOG_H_
#define CPDG_STORAGE_EVENT_LOG_H_

#include <cstdint>
#include <string>
#include <type_traits>

#include "util/status.h"

namespace cpdg::storage {

/// \file On-disk event-log format shared by the sharded graph store.
///
/// Every store file is
///
///     FileHeader (64 B) | payload | FileFooter (40 B)
///
/// with the counts, time span and payload CRC32 in the *footer* so that
/// streaming writers (util::AtomicFileSink) never have to seek back — a
/// 10^7-event log is written in one forward pass. Files are published via
/// the util/atomic_file temp+rename path, so readers only ever observe
/// complete files; torn or corrupted files are rejected by header/footer
/// validation plus an optional full-payload CRC check.
///
/// Payloads by kind:
///  - kEvents / kDelta: `record_count` raw graph::Event records (32 B each)
///    in chronological order. A delta file is an events file that holds an
///    appended suffix of the log.
///  - kAdjacency (shard k of K): `aux_count + 1` int64 CSR offsets followed
///    by `record_count` raw graph::TemporalNeighbor records (24 B each),
///    time-sorted within each node. Shard k owns the nodes with
///    id % K == k; node id maps to local slot id / K.

inline constexpr uint64_t kFileMagic = 0x524F545347445043ull;  // "CPDGSTOR"
inline constexpr uint32_t kFooterMagic = 0x52544630u;          // "0FTR"
inline constexpr uint32_t kFormatVersion = 1;

enum class FileKind : uint32_t {
  kEvents = 1,
  kAdjacency = 2,
  kDelta = 3,
};

struct FileHeader {
  uint64_t magic = kFileMagic;
  uint32_t version = kFormatVersion;
  uint32_t kind = 0;
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  int64_t num_nodes = 0;
  uint8_t reserved[32] = {};
};

struct FileFooter {
  /// Events/delta: event records. Adjacency: neighbor entries.
  int64_t record_count = 0;
  /// Adjacency: number of node slots local to the shard; 0 otherwise.
  int64_t aux_count = 0;
  double min_time = 0.0;
  double max_time = 0.0;
  /// CRC32 (util::Crc32) of the payload bytes between header and footer.
  uint32_t payload_crc = 0;
  uint32_t footer_magic = kFooterMagic;
};

static_assert(std::is_trivially_copyable_v<FileHeader> &&
                  sizeof(FileHeader) == 64,
              "FileHeader is the on-disk preamble; changing it requires a "
              "format version bump");
static_assert(std::is_trivially_copyable_v<FileFooter> &&
                  sizeof(FileFooter) == 40,
              "FileFooter is the on-disk trailer; changing it requires a "
              "format version bump");

/// \brief Read-only memory mapping of a whole file. Movable, non-copyable;
/// unmaps on destruction. Pointers into the mapping stay valid for the
/// lifetime of the MappedFile.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  static Result<MappedFile> Open(const std::string& path);

  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  int64_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

 private:
  void* data_ = nullptr;
  int64_t size_ = 0;
};

/// \brief A fixed-size temp file mapped read-write, for writers that fill
/// their payload by random access (the adjacency builder's CSR scatter)
/// and then publish atomically. If never published, the destructor
/// discards the temp file.
class MappedTempFile {
 public:
  MappedTempFile() = default;
  ~MappedTempFile();
  MappedTempFile(MappedTempFile&& other) noexcept;
  MappedTempFile& operator=(MappedTempFile&& other) noexcept;
  MappedTempFile(const MappedTempFile&) = delete;
  MappedTempFile& operator=(const MappedTempFile&) = delete;

  /// Creates `path` + ".tmp" of exactly `size` bytes, mapped read-write.
  static Result<MappedTempFile> Create(const std::string& path, int64_t size);

  uint8_t* data() { return static_cast<uint8_t*>(data_); }
  int64_t size() const { return size_; }

  /// msync + util::AtomicPublishTempFile (fault-injection aware) over the
  /// target path. The mapping is released regardless of the outcome.
  Status Publish();

 private:
  std::string path_;
  std::string tmp_;
  void* data_ = nullptr;
  int64_t size_ = 0;
};

/// \brief Borrowed view of a validated store file: header / payload /
/// footer pointers into a MappedFile's mapping.
struct ParsedFile {
  const FileHeader* header = nullptr;
  const uint8_t* payload = nullptr;
  int64_t payload_size = 0;
  const FileFooter* footer = nullptr;
};

/// \brief Validates framing: minimum size, header magic/version/kind,
/// footer magic, and (when `verify_crc`) the payload CRC32. Kind-specific
/// payload-size consistency is the caller's job. Returns IoError with the
/// offending detail on any mismatch.
Result<ParsedFile> ParseStoreFile(const MappedFile& file, FileKind expected,
                                  const std::string& path, bool verify_crc);

/// Store directory layout. Generation G is the compaction epoch; delta
/// files use a monotonic sequence number that survives compaction so stale
/// files can never be mistaken for live ones.
std::string ManifestPath(const std::string& dir);
std::string EventsPath(const std::string& dir, int64_t generation);
std::string AdjacencyPath(const std::string& dir, int64_t generation,
                          uint32_t shard);
std::string DeltaPath(const std::string& dir, int64_t seq);

/// \brief The store's root metadata, published last (atomically) so it is
/// the commit point of every build / append / compaction.
struct Manifest {
  int64_t generation = 0;
  uint32_t shard_count = 1;
  int64_t num_nodes = 0;
  /// Live delta files are DeltaPath(dir, s) for
  /// s in [delta_start, delta_start + delta_count).
  int64_t delta_start = 0;
  int64_t delta_count = 0;
};

Status WriteManifest(const std::string& dir, const Manifest& manifest);
Result<Manifest> ReadManifest(const std::string& dir);

/// Number of node slots shard `k` of `K` owns out of `num_nodes` ids
/// (the ids congruent to k mod K).
int64_t LocalNodeCount(int64_t num_nodes, uint32_t shard_count, uint32_t k);

}  // namespace cpdg::storage

#endif  // CPDG_STORAGE_EVENT_LOG_H_
