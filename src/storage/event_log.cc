#include "storage/event_log.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/atomic_file.h"
#include "util/byte_codec.h"

namespace cpdg::storage {
namespace {

constexpr int64_t kFramingSize =
    static_cast<int64_t>(sizeof(FileHeader) + sizeof(FileFooter));

// Manifest serialization preamble ("CPDGMANI" + version).
constexpr uint64_t kManifestMagic = 0x494E414D47445043ull;

std::string ErrnoMessage(const char* op, const std::string& path) {
  return std::string(op) + " failed for " + path + ": " +
         std::strerror(errno);
}

}  // namespace

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, static_cast<size_t>(size_));
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, static_cast<size_t>(size_));
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status err = Status::IoError(ErrnoMessage("fstat", path));
    ::close(fd);
    return err;
  }
  MappedFile f;
  f.size_ = static_cast<int64_t>(st.st_size);
  if (f.size_ > 0) {
    void* p = ::mmap(nullptr, static_cast<size_t>(f.size_), PROT_READ,
                     MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      Status err = Status::IoError(ErrnoMessage("mmap", path));
      ::close(fd);
      return err;
    }
    f.data_ = p;
  }
  ::close(fd);
  return f;
}

MappedTempFile::~MappedTempFile() {
  if (data_ != nullptr) {
    ::munmap(data_, static_cast<size_t>(size_));
    ::unlink(tmp_.c_str());
  }
}

MappedTempFile::MappedTempFile(MappedTempFile&& other) noexcept
    : path_(std::move(other.path_)),
      tmp_(std::move(other.tmp_)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedTempFile& MappedTempFile::operator=(MappedTempFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(data_, static_cast<size_t>(size_));
      ::unlink(tmp_.c_str());
    }
    path_ = std::move(other.path_);
    tmp_ = std::move(other.tmp_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

Result<MappedTempFile> MappedTempFile::Create(const std::string& path,
                                              int64_t size) {
  if (size <= 0) return Status::InvalidArgument("mapped file size must be > 0");
  MappedTempFile f;
  f.path_ = path;
  f.tmp_ = path + ".tmp";
  f.size_ = size;
  int fd = ::open(f.tmp_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", f.tmp_));
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    Status err = Status::IoError(ErrnoMessage("ftruncate", f.tmp_));
    ::close(fd);
    ::unlink(f.tmp_.c_str());
    return err;
  }
  void* p = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ | PROT_WRITE,
                   MAP_SHARED, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) {
    Status err = Status::IoError(ErrnoMessage("mmap", f.tmp_));
    ::unlink(f.tmp_.c_str());
    return err;
  }
  f.data_ = p;
  return f;
}

Status MappedTempFile::Publish() {
  if (data_ == nullptr) {
    return Status::FailedPrecondition("mapped temp file not open");
  }
  int rc = ::msync(data_, static_cast<size_t>(size_), MS_SYNC);
  ::munmap(data_, static_cast<size_t>(size_));
  data_ = nullptr;
  if (rc != 0) {
    Status err = Status::IoError(ErrnoMessage("msync", tmp_));
    ::unlink(tmp_.c_str());
    return err;
  }
  return util::AtomicPublishTempFile(path_, tmp_);
}

Result<ParsedFile> ParseStoreFile(const MappedFile& file, FileKind expected,
                                  const std::string& path, bool verify_crc) {
  if (file.size() < kFramingSize) {
    return Status::IoError("store file truncated (" +
                           std::to_string(file.size()) + " bytes): " + path);
  }
  ParsedFile parsed;
  parsed.header = reinterpret_cast<const FileHeader*>(file.data());
  parsed.payload = file.data() + sizeof(FileHeader);
  parsed.payload_size = file.size() - kFramingSize;
  parsed.footer = reinterpret_cast<const FileFooter*>(
      file.data() + file.size() - static_cast<int64_t>(sizeof(FileFooter)));

  if (parsed.header->magic != kFileMagic) {
    return Status::IoError("bad store file magic: " + path);
  }
  if (parsed.header->version != kFormatVersion) {
    return Status::IoError("unsupported store format version " +
                           std::to_string(parsed.header->version) + ": " +
                           path);
  }
  if (parsed.header->kind != static_cast<uint32_t>(expected)) {
    return Status::IoError("store file kind mismatch (got " +
                           std::to_string(parsed.header->kind) + "): " + path);
  }
  if (parsed.footer->footer_magic != kFooterMagic) {
    return Status::IoError("bad store file footer (truncated write?): " +
                           path);
  }
  if (parsed.footer->record_count < 0 || parsed.footer->aux_count < 0) {
    return Status::IoError("negative record count in store footer: " + path);
  }
  if (verify_crc) {
    uint32_t crc = util::Crc32(parsed.payload,
                               static_cast<size_t>(parsed.payload_size));
    if (crc != parsed.footer->payload_crc) {
      return Status::IoError("payload CRC mismatch (corrupted file): " + path);
    }
  }
  return parsed;
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/manifest.bin";
}

std::string EventsPath(const std::string& dir, int64_t generation) {
  return dir + "/events.g" + std::to_string(generation) + ".bin";
}

std::string AdjacencyPath(const std::string& dir, int64_t generation,
                          uint32_t shard) {
  return dir + "/adj.g" + std::to_string(generation) + ".s" +
         std::to_string(shard) + ".bin";
}

std::string DeltaPath(const std::string& dir, int64_t seq) {
  return dir + "/delta." + std::to_string(seq) + ".bin";
}

Status WriteManifest(const std::string& dir, const Manifest& manifest) {
  std::string body;
  util::ByteWriter w(&body);
  w.Pod(kManifestMagic);
  w.Pod(kFormatVersion);
  w.Pod(manifest.generation);
  w.Pod(manifest.shard_count);
  w.Pod(manifest.num_nodes);
  w.Pod(manifest.delta_start);
  w.Pod(manifest.delta_count);
  uint32_t crc = util::Crc32(body.data(), body.size());
  util::ByteWriter(&body).Pod(crc);
  return util::AtomicWriteFile(ManifestPath(dir), body);
}

Result<Manifest> ReadManifest(const std::string& dir) {
  const std::string path = ManifestPath(dir);
  std::string body;
  CPDG_RETURN_NOT_OK(util::ReadFileToString(path, &body));
  if (body.size() < sizeof(uint32_t)) {
    return Status::IoError("manifest truncated: " + path);
  }
  const size_t crc_pos = body.size() - sizeof(uint32_t);
  uint32_t want_crc = 0;
  std::memcpy(&want_crc, body.data() + crc_pos, sizeof(uint32_t));
  if (util::Crc32(body.data(), crc_pos) != want_crc) {
    return Status::IoError("manifest CRC mismatch: " + path);
  }

  util::ByteReader r(std::string_view(body).substr(0, crc_pos));
  uint64_t magic = 0;
  uint32_t version = 0;
  Manifest m;
  bool ok = r.Pod(&magic) && r.Pod(&version) && r.Pod(&m.generation) &&
            r.Pod(&m.shard_count) && r.Pod(&m.num_nodes) &&
            r.Pod(&m.delta_start) && r.Pod(&m.delta_count);
  if (!ok || !r.AtEnd() || magic != kManifestMagic ||
      version != kFormatVersion) {
    return Status::IoError("malformed manifest: " + path);
  }
  if (m.shard_count == 0 || m.num_nodes <= 0 || m.generation < 0 ||
      m.delta_start < 0 || m.delta_count < 0) {
    return Status::IoError("manifest fields out of range: " + path);
  }
  return m;
}

int64_t LocalNodeCount(int64_t num_nodes, uint32_t shard_count, uint32_t k) {
  const int64_t K = static_cast<int64_t>(shard_count);
  const int64_t kk = static_cast<int64_t>(k);
  if (kk >= num_nodes) return 0;
  return (num_nodes - kk + K - 1) / K;
}

}  // namespace cpdg::storage
