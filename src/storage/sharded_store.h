#ifndef CPDG_STORAGE_SHARDED_STORE_H_
#define CPDG_STORAGE_SHARDED_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph_store.h"
#include "storage/event_log.h"
#include "util/atomic_file.h"
#include "util/status.h"

namespace cpdg::storage {

/// \brief Store-wide configuration, overridable from the environment:
///   CPDG_STORE_SHARDS  number of hash partitions a build produces (>= 1)
///   CPDG_STORE_VERIFY  0 disables the full payload CRC check on open
///                      (structural validation always runs)
struct StoreOptions {
  uint32_t shard_count = 1;
  bool verify_checksums = true;

  static StoreOptions FromEnv();
};

/// \brief Streaming writer that turns a chronological event stream into a
/// complete on-disk store: one events log (streamed through
/// util::AtomicFileSink in a single forward pass), K CSR adjacency shards
/// (built by mmap scatter, identical ordering to TemporalGraph::Create),
/// and the manifest, which is published last and atomically — the commit
/// point. A crash anywhere before Finish() returns leaves either no store
/// or the previous complete store.
///
/// Events must arrive with non-decreasing time; ties keep arrival order
/// (exactly the stable sort the in-memory backend applies), which is what
/// makes the two backends bit-identical.
class EventLogBuilder {
 public:
  /// Prepares a build of generation 0 in `dir` (created if missing).
  EventLogBuilder(std::string dir, int64_t num_nodes, StoreOptions options);
  ~EventLogBuilder();
  EventLogBuilder(const EventLogBuilder&) = delete;
  EventLogBuilder& operator=(const EventLogBuilder&) = delete;

  Status Add(const graph::Event& event);
  Status AddBatch(const graph::Event* events, int64_t count);

  /// Writes adjacency shards + manifest. No Add() calls may follow.
  Status Finish();

  int64_t events_written() const { return count_; }

 private:
  friend class ShardedGraphStore;

  /// Compaction rebuilds into a later generation with the delta sequence
  /// preserved; the public constructor pins generation 0.
  EventLogBuilder(std::string dir, int64_t num_nodes, StoreOptions options,
                  int64_t generation, int64_t next_delta_seq);

  Status FlushBuffer();
  Status BuildAdjacencyShards();

  std::string dir_;
  int64_t num_nodes_;
  StoreOptions options_;
  int64_t generation_;
  int64_t next_delta_seq_;

  util::AtomicFileSink events_sink_;
  Status open_status_;
  std::string buffer_;
  std::vector<int64_t> degree_counts_;
  int64_t count_ = 0;
  double min_time_ = 0.0;
  double max_time_ = 0.0;
  double last_time_ = 0.0;
  uint32_t payload_crc_ = 0;
  bool finished_ = false;
};

/// \brief Memory-mapped, hash-partitioned graph store: the
/// production-scale GraphStore backend.
///
/// Node id `v` is owned by shard `v % shard_count` at local slot
/// `v / shard_count`, so routing is O(1) and deterministic; the event log
/// itself is global and chronological, so event indices are identical
/// across shard counts. All queries return results bit-identical to an
/// in-memory TemporalGraph over the same events (pinned by
/// tests/storage_test.cc), which is what lets samplers, training, and
/// serving switch backends freely.
///
/// \par Concurrency
/// Readers never block each other. Append() publishes a durable delta file
/// and then makes the new events visible under a writer lock; in-flight
/// reads continue against the pre-append state. Compact() folds base +
/// deltas into a new generation and swaps mappings under the writer lock —
/// the one operation that invalidates outstanding NeighborSpans (callers
/// must not hold spans across Compact()).
class ShardedGraphStore : public graph::GraphStore {
 public:
  /// Opens the store persisted in `dir` (manifest + current generation +
  /// live delta files). Fails with IoError on any torn, truncated, or
  /// corrupt file.
  static Result<std::unique_ptr<ShardedGraphStore>> Open(
      const std::string& dir, StoreOptions options = StoreOptions::FromEnv());

  /// Builds a store in `dir` from an (unsorted) event vector and opens it.
  /// Sorting matches TemporalGraph::Create exactly (stable on time ties).
  static Result<std::unique_ptr<ShardedGraphStore>> Build(
      const std::string& dir, int64_t num_nodes, std::vector<graph::Event> events,
      StoreOptions options = StoreOptions::FromEnv());

  // GraphStore interface.
  int64_t num_nodes() const override { return num_nodes_; }
  int64_t num_events() const override;
  double min_time() const override;
  double max_time() const override;
  graph::Event EventAt(int64_t index) const override;
  void ReadEvents(int64_t begin, int64_t end,
                  std::vector<graph::Event>* out) const override;
  graph::NeighborSpan NeighborsBefore(
      graph::NodeId node, double time,
      graph::NeighborScratch* scratch) const override;
  int64_t Degree(graph::NodeId node) const override;
  int64_t LowerBoundEvent(double t) const override;

  /// \brief Appends events to the log. Times must be non-decreasing and
  /// >= max_time(). The batch is first persisted as a delta file (the
  /// durability point), then made visible to queries atomically.
  Status Append(const std::vector<graph::Event>& events);

  /// \brief Folds the base generation and all deltas into a new generation
  /// and drops the delta files. Blocks queries for the duration and
  /// invalidates outstanding NeighborSpans.
  Status Compact();

  uint32_t shard_count() const { return manifest_.shard_count; }
  int64_t generation() const { return manifest_.generation; }
  /// Events in the compacted base / in not-yet-compacted deltas.
  int64_t base_event_count() const { return base_count_; }
  int64_t delta_event_count() const;

 protected:
  std::string_view store_name() const override { return "ShardedGraphStore"; }

 private:
  ShardedGraphStore() = default;

  /// (Re)loads manifest, base mappings, and delta files from dir_.
  Status LoadFromDisk();
  Status LoadDeltaFile(int64_t seq);

  graph::NeighborSpan BaseNeighbors(graph::NodeId node, double time) const;

  std::string dir_;
  StoreOptions options_;
  Manifest manifest_;
  int64_t num_nodes_ = 0;

  // Base generation, immutable between Compact() calls.
  MappedFile events_file_;
  const graph::Event* base_events_ = nullptr;
  int64_t base_count_ = 0;
  double base_min_time_ = 0.0;
  double base_max_time_ = 0.0;
  struct Shard {
    MappedFile file;
    const int64_t* offsets = nullptr;  // local slot count + 1 entries
    const graph::TemporalNeighbor* neighbors = nullptr;
    int64_t local_nodes = 0;
  };
  std::vector<Shard> shards_;

  // Delta state: events appended since the last compaction, mirrored into
  // a per-node index. Guarded by mu_; has_delta_ lets the hot read path
  // skip the lock entirely while the store has no pending delta.
  // append_mu_ serializes writers (Append/Compact) so the slow disk work
  // happens outside mu_ and readers only wait for the in-memory swap.
  mutable std::mutex append_mu_;
  mutable std::shared_mutex mu_;
  std::atomic<bool> has_delta_{false};
  std::vector<graph::Event> delta_events_;
  std::unordered_map<graph::NodeId, std::vector<graph::TemporalNeighbor>>
      delta_adj_;
  double live_max_time_ = 0.0;
};

}  // namespace cpdg::storage

#endif  // CPDG_STORAGE_SHARDED_STORE_H_
