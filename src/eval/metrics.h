#ifndef CPDG_EVAL_METRICS_H_
#define CPDG_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace cpdg::eval {

/// \brief A scored binary example.
struct ScoredLabel {
  double score = 0.0;
  int32_t label = 0;  // 0 or 1
};

/// \brief ROC-AUC via the Mann-Whitney U statistic (ties get half credit).
/// Returns 0.5 when either class is absent.
double RocAuc(const std::vector<ScoredLabel>& samples);

/// \brief Average precision (area under the precision-recall curve,
/// computed as the mean of precision at each positive in score-descending
/// order, ties broken deterministically). Returns 0 when no positives.
double AveragePrecision(const std::vector<ScoredLabel>& samples);

/// \brief Accuracy at a 0.5 threshold; convenience for tests.
double AccuracyAtHalf(const std::vector<ScoredLabel>& samples);

}  // namespace cpdg::eval

#endif  // CPDG_EVAL_METRICS_H_
