#include "eval/evaluators.h"

#include <algorithm>
#include <cmath>

#include "dgnn/trainer.h"
#include "tensor/losses.h"
#include "tensor/nn.h"
#include "tensor/ops.h"
#include "train/train_loop.h"
#include "util/check.h"

namespace cpdg::eval {

namespace ts = cpdg::tensor;

std::unordered_set<NodeId> CollectNodes(const std::vector<Event>& events) {
  std::unordered_set<NodeId> nodes;
  for (const Event& e : events) {
    nodes.insert(e.src);
    nodes.insert(e.dst);
  }
  return nodes;
}

LinkPredictionMetrics EvaluateDynamicLinkPrediction(
    dgnn::DgnnEncoder* encoder, const ScoreFn& score,
    const std::vector<Event>& test_events,
    const std::vector<NodeId>& negative_pool, int64_t batch_size, Rng* rng,
    const std::unordered_set<NodeId>* inductive_seen) {
  CPDG_CHECK(encoder != nullptr);
  CPDG_CHECK(rng != nullptr);
  CPDG_CHECK_GT(batch_size, 0);

  std::vector<ScoredLabel> samples;
  int64_t num_nodes = encoder->memory().num_nodes();

  for (size_t start = 0; start < test_events.size();
       start += static_cast<size_t>(batch_size)) {
    size_t end = std::min(test_events.size(),
                          start + static_cast<size_t>(batch_size));
    std::vector<Event> batch(test_events.begin() + start,
                             test_events.begin() + end);

    std::vector<NodeId> srcs, dsts, negs;
    std::vector<double> times;
    for (const Event& e : batch) {
      bool scored = true;
      if (inductive_seen != nullptr) {
        scored = inductive_seen->count(e.src) == 0 ||
                 inductive_seen->count(e.dst) == 0;
      }
      if (!scored) continue;
      srcs.push_back(e.src);
      dsts.push_back(e.dst);
      negs.push_back(
          dgnn::SampleNegative(negative_pool, num_nodes, e.dst, rng));
      times.push_back(e.time);
    }

    encoder->BeginBatch();
    if (!srcs.empty()) {
      ts::Tensor pos = ts::Sigmoid(score(srcs, dsts, times));
      ts::Tensor neg = ts::Sigmoid(score(srcs, negs, times));
      for (int64_t i = 0; i < pos.rows(); ++i) {
        samples.push_back({static_cast<double>(pos.at(i, 0)), 1});
        samples.push_back({static_cast<double>(neg.at(i, 0)), 0});
      }
    } else {
      // Still flush so CommitBatch below observes consistent state.
      std::vector<NodeId> touched;
      for (const Event& e : batch) {
        touched.push_back(e.src);
        touched.push_back(e.dst);
      }
      ts::Tensor unused = encoder->ComputeUpdatedStates(touched);
      (void)unused;
    }
    encoder->CommitBatch(batch);
  }

  LinkPredictionMetrics metrics;
  metrics.num_scored_events = static_cast<int64_t>(samples.size()) / 2;
  if (!samples.empty()) {
    metrics.auc = RocAuc(samples);
    metrics.ap = AveragePrecision(samples);
  }
  return metrics;
}

NodeClassificationMetrics EvaluateDynamicNodeClassification(
    dgnn::DgnnEncoder* encoder, const EmbedFn& embed,
    const std::vector<Event>& events, double train_end_time,
    double test_start_time, int64_t batch_size, int64_t head_epochs,
    float head_lr, Rng* rng) {
  CPDG_CHECK(encoder != nullptr);
  CPDG_CHECK(rng != nullptr);
  CPDG_CHECK_GT(batch_size, 0);

  // Pass 1: stream events, collecting detached embeddings of labeled
  // source nodes at event time.
  std::vector<std::vector<float>> features;
  std::vector<int32_t> labels;
  std::vector<double> sample_times;
  int64_t feat_dim = 0;

  for (size_t start = 0; start < events.size();
       start += static_cast<size_t>(batch_size)) {
    size_t end =
        std::min(events.size(), start + static_cast<size_t>(batch_size));
    std::vector<Event> batch(events.begin() + start, events.begin() + end);

    std::vector<NodeId> labeled_nodes;
    std::vector<double> labeled_times;
    std::vector<int32_t> labeled_labels;
    for (const Event& e : batch) {
      if (e.label >= 0) {
        labeled_nodes.push_back(e.src);
        labeled_times.push_back(e.time);
        labeled_labels.push_back(e.label);
      }
    }

    encoder->BeginBatch();
    if (!labeled_nodes.empty()) {
      ts::Tensor z = embed(labeled_nodes, labeled_times);
      feat_dim = z.cols();
      for (int64_t i = 0; i < z.rows(); ++i) {
        std::vector<float> row(static_cast<size_t>(feat_dim));
        for (int64_t c = 0; c < feat_dim; ++c) row[c] = z.at(i, c);
        features.push_back(std::move(row));
        labels.push_back(labeled_labels[static_cast<size_t>(i)]);
        sample_times.push_back(labeled_times[static_cast<size_t>(i)]);
      }
    } else {
      std::vector<NodeId> touched;
      for (const Event& e : batch) {
        touched.push_back(e.src);
        touched.push_back(e.dst);
      }
      ts::Tensor unused = encoder->ComputeUpdatedStates(touched);
      (void)unused;
    }
    encoder->CommitBatch(batch);
  }

  NodeClassificationMetrics metrics;
  if (features.empty() || feat_dim == 0) return metrics;

  // Split chronologically.
  std::vector<int64_t> train_idx, test_idx;
  for (size_t i = 0; i < features.size(); ++i) {
    if (sample_times[i] < train_end_time) {
      train_idx.push_back(static_cast<int64_t>(i));
    } else if (sample_times[i] >= test_start_time) {
      test_idx.push_back(static_cast<int64_t>(i));
    }
  }
  metrics.num_train_samples = static_cast<int64_t>(train_idx.size());
  metrics.num_test_samples = static_cast<int64_t>(test_idx.size());
  if (train_idx.empty() || test_idx.empty()) return metrics;

  // Labels are heavily imbalanced (state flips are rare); oversample
  // positives in the head's training set so the logistic head does not
  // collapse onto the majority class.
  {
    std::vector<int64_t> pos;
    for (int64_t i : train_idx) {
      if (labels[static_cast<size_t>(i)] == 1) pos.push_back(i);
    }
    if (!pos.empty()) {
      int64_t num_neg = static_cast<int64_t>(train_idx.size()) -
                        static_cast<int64_t>(pos.size());
      int64_t target_pos = num_neg / 3;  // aim for >= 25% positives
      Rng os_rng = rng->Split();
      while (static_cast<int64_t>(pos.size()) < target_pos &&
             !pos.empty()) {
        train_idx.push_back(pos[os_rng.NextBounded(pos.size())]);
        pos.push_back(train_idx.back());
      }
    }
  }

  // Standardize features with the training window's statistics: streamed
  // embeddings drift over time (memory keeps accumulating), and without
  // normalization the head's decision boundary goes stale by test time.
  std::vector<double> feat_mean(static_cast<size_t>(feat_dim), 0.0);
  std::vector<double> feat_std(static_cast<size_t>(feat_dim), 0.0);
  for (int64_t i : train_idx) {
    const auto& row = features[static_cast<size_t>(i)];
    for (int64_t c = 0; c < feat_dim; ++c) feat_mean[c] += row[c];
  }
  for (int64_t c = 0; c < feat_dim; ++c) {
    feat_mean[c] /= static_cast<double>(train_idx.size());
  }
  for (int64_t i : train_idx) {
    const auto& row = features[static_cast<size_t>(i)];
    for (int64_t c = 0; c < feat_dim; ++c) {
      double d = row[c] - feat_mean[c];
      feat_std[c] += d * d;
    }
  }
  for (int64_t c = 0; c < feat_dim; ++c) {
    feat_std[c] = std::sqrt(feat_std[c] /
                            static_cast<double>(train_idx.size()));
    if (feat_std[c] < 1e-6) feat_std[c] = 1.0;
  }

  auto build = [&](const std::vector<int64_t>& idx, ts::Tensor* x,
                   ts::Tensor* y) {
    int64_t n = static_cast<int64_t>(idx.size());
    std::vector<float> xd(static_cast<size_t>(n * feat_dim));
    std::vector<float> yd(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const auto& row = features[static_cast<size_t>(idx[i])];
      for (int64_t c = 0; c < feat_dim; ++c) {
        xd[static_cast<size_t>(i * feat_dim + c)] = static_cast<float>(
            (row[static_cast<size_t>(c)] - feat_mean[static_cast<size_t>(c)]) /
            feat_std[static_cast<size_t>(c)]);
      }
      yd[static_cast<size_t>(i)] =
          static_cast<float>(labels[static_cast<size_t>(idx[i])]);
    }
    *x = ts::Tensor::FromVector(n, feat_dim, std::move(xd));
    *y = ts::Tensor::FromVector(n, 1, std::move(yd));
  };
  ts::Tensor x_train, y_train, x_test, y_test;
  build(train_idx, &x_train, &y_train);
  build(test_idx, &x_test, &y_test);

  // Logistic head trained full-batch on frozen embeddings (the decoder of
  // the dynamic node classification protocol). One full-batch step per
  // epoch; no gradient clipping (grad_clip <= 0).
  Rng head_rng = rng->Split();
  ts::Mlp head({feat_dim, feat_dim / 2 > 0 ? feat_dim / 2 : 1, 1}, &head_rng);
  train::TrainLoopOptions head_options;
  head_options.epochs = head_epochs;
  head_options.learning_rate = head_lr;
  head_options.log_label = "node-cls head";
  train::TrainLoop head_loop(head.Parameters(), head_options);
  metrics.head_log = head_loop.RunSteps(
      1, [&](const train::BatchContext&) -> std::optional<ts::Tensor> {
        ts::Tensor logits = head.Forward(x_train);
        return ts::BceWithLogitsLoss(logits, y_train);
      });

  ts::Tensor probs = ts::Sigmoid(head.Forward(x_test));
  std::vector<ScoredLabel> samples;
  for (int64_t i = 0; i < probs.rows(); ++i) {
    samples.push_back({static_cast<double>(probs.at(i, 0)),
                       labels[static_cast<size_t>(test_idx[i])]});
  }
  metrics.auc = RocAuc(samples);
  return metrics;
}

}  // namespace cpdg::eval
