#ifndef CPDG_EVAL_EVALUATORS_H_
#define CPDG_EVAL_EVALUATORS_H_

#include <functional>
#include <unordered_set>
#include <vector>

#include "dgnn/encoder.h"
#include "eval/metrics.h"
#include "graph/temporal_graph.h"
#include "tensor/tensor.h"
#include "train/telemetry.h"
#include "util/rng.h"

namespace cpdg::eval {

using graph::Event;
using graph::NodeId;

/// \brief Scores a batch of (src, dst) pairs at the given times, returning
/// logits [n,1]. Implementations wrap (encoder, decoder[, EIE fusion]).
using ScoreFn = std::function<tensor::Tensor(
    const std::vector<NodeId>& srcs, const std::vector<NodeId>& dsts,
    const std::vector<double>& times)>;

/// \brief Embeds a batch of nodes at the given times, [n, d].
using EmbedFn = std::function<tensor::Tensor(
    const std::vector<NodeId>& nodes, const std::vector<double>& times)>;

struct LinkPredictionMetrics {
  double auc = 0.5;
  double ap = 0.0;
  int64_t num_scored_events = 0;
};

/// \brief Dynamic link prediction evaluation: walks `test_events`
/// chronologically in batches; for each event samples one negative
/// destination from `negative_pool` and scores (src,dst) vs (src,neg).
/// All events are committed into the encoder memory so later test events
/// see earlier ones — the standard TGN streaming protocol.
///
/// When `inductive_seen` is non-null, only events with at least one
/// endpoint absent from that set are *scored* (all events still advance
/// memory); this is the paper's inductive setting (Table IX).
LinkPredictionMetrics EvaluateDynamicLinkPrediction(
    dgnn::DgnnEncoder* encoder, const ScoreFn& score,
    const std::vector<Event>& test_events,
    const std::vector<NodeId>& negative_pool, int64_t batch_size, Rng* rng,
    const std::unordered_set<NodeId>* inductive_seen = nullptr);

struct NodeClassificationMetrics {
  double auc = 0.5;
  int64_t num_train_samples = 0;
  int64_t num_test_samples = 0;
  /// Training trace of the logistic head (one full-batch step per epoch).
  train::TrainTelemetry head_log;
};

/// \brief Dynamic node classification (Table VII): replays `events`
/// chronologically through the encoder, collecting (embedding, label)
/// pairs for every labeled event; trains a logistic head on samples with
/// time < train_end_time and reports ROC-AUC on samples with
/// time >= test_start_time.
NodeClassificationMetrics EvaluateDynamicNodeClassification(
    dgnn::DgnnEncoder* encoder, const EmbedFn& embed,
    const std::vector<Event>& events, double train_end_time,
    double test_start_time, int64_t batch_size, int64_t head_epochs,
    float head_lr, Rng* rng);

/// \brief Endpoints of all events, for building inductive "seen" sets.
std::unordered_set<NodeId> CollectNodes(const std::vector<Event>& events);

}  // namespace cpdg::eval

#endif  // CPDG_EVAL_EVALUATORS_H_
