#include "eval/metrics.h"

#include <algorithm>

namespace cpdg::eval {

double RocAuc(const std::vector<ScoredLabel>& samples) {
  std::vector<ScoredLabel> sorted = samples;
  std::sort(sorted.begin(), sorted.end(),
            [](const ScoredLabel& a, const ScoredLabel& b) {
              return a.score < b.score;
            });
  int64_t num_pos = 0, num_neg = 0;
  for (const auto& s : sorted) {
    if (s.label == 1) {
      ++num_pos;
    } else {
      ++num_neg;
    }
  }
  if (num_pos == 0 || num_neg == 0) return 0.5;

  // Sum of positive ranks with average ranks for ties.
  double rank_sum = 0.0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j < sorted.size() && sorted[j].score == sorted[i].score) ++j;
    // Ranks are 1-based; tied block [i, j) all get the average rank.
    double avg_rank = (static_cast<double>(i + 1) + static_cast<double>(j)) /
                      2.0;
    for (size_t k = i; k < j; ++k) {
      if (sorted[k].label == 1) rank_sum += avg_rank;
    }
    i = j;
  }
  double u = rank_sum - static_cast<double>(num_pos) *
                            (static_cast<double>(num_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

double AveragePrecision(const std::vector<ScoredLabel>& samples) {
  std::vector<ScoredLabel> sorted = samples;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ScoredLabel& a, const ScoredLabel& b) {
                     return a.score > b.score;
                   });
  int64_t num_pos = 0;
  for (const auto& s : sorted) num_pos += (s.label == 1) ? 1 : 0;
  if (num_pos == 0) return 0.0;

  double ap = 0.0;
  int64_t tp = 0;
  for (size_t k = 0; k < sorted.size(); ++k) {
    if (sorted[k].label == 1) {
      ++tp;
      ap += static_cast<double>(tp) / static_cast<double>(k + 1);
    }
  }
  return ap / static_cast<double>(num_pos);
}

double AccuracyAtHalf(const std::vector<ScoredLabel>& samples) {
  if (samples.empty()) return 0.0;
  int64_t correct = 0;
  for (const auto& s : samples) {
    int32_t pred = s.score >= 0.5 ? 1 : 0;
    if (pred == s.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

}  // namespace cpdg::eval
