#include "dgnn/encoder.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tensor/losses.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace cpdg::dgnn {

namespace ts = cpdg::tensor;

const char* EncoderTypeName(EncoderType type) {
  switch (type) {
    case EncoderType::kJodie:
      return "JODIE";
    case EncoderType::kDyRep:
      return "DyRep";
    case EncoderType::kTgn:
      return "TGN";
  }
  return "?";
}

EncoderConfig EncoderConfig::Preset(EncoderType type, int64_t num_nodes) {
  EncoderConfig c;
  c.num_nodes = num_nodes;
  switch (type) {
    case EncoderType::kJodie:
      c.message = MessageFunctionType::kIdentity;
      c.aggregator = AggregatorType::kLast;
      c.updater = MemoryUpdaterType::kRnn;
      c.embedding = EmbeddingType::kTimeProjection;
      break;
    case EncoderType::kDyRep:
      c.message = MessageFunctionType::kAttention;
      c.aggregator = AggregatorType::kLast;
      c.updater = MemoryUpdaterType::kRnn;
      c.embedding = EmbeddingType::kIdentity;
      break;
    case EncoderType::kTgn:
      c.message = MessageFunctionType::kIdentity;
      c.aggregator = AggregatorType::kLast;
      c.updater = MemoryUpdaterType::kGru;
      c.embedding = EmbeddingType::kAttention;
      break;
  }
  return c;
}

int64_t DgnnEncoder::message_dim() const {
  // Raw message layout: [s_self || other_repr || x_other || phi(dt)]
  // (Eq. 2, with the sender's static features appended so memory can
  // record *which* neighbor it interacted with). The MLP message function
  // compresses that to memory_dim.
  int64_t raw = 3 * config_.memory_dim + config_.time_dim;
  return config_.message == MessageFunctionType::kMlp ? config_.memory_dim
                                                      : raw;
}

DgnnEncoder::DgnnEncoder(const EncoderConfig& config,
                         const graph::GraphStore* graph, Rng* rng)
    : config_(config),
      graph_(graph),
      memory_(config.num_nodes, config.memory_dim),
      rng_(rng) {
  CPDG_CHECK(graph != nullptr);
  CPDG_CHECK(rng != nullptr);
  CPDG_CHECK_LE(graph->num_nodes(), config.num_nodes);

  time_encoder_ = std::make_unique<ts::TimeEncoder>(config_.time_dim, rng);
  RegisterModule(time_encoder_.get());

  node_features_ = RegisterParameter(
      ts::Tensor::RandomNormal(config_.num_nodes, config_.memory_dim, 0.1f,
                               rng));

  int64_t raw_msg = 3 * config_.memory_dim + config_.time_dim;
  if (config_.message == MessageFunctionType::kMlp) {
    message_mlp_ = std::make_unique<ts::Mlp>(
        std::vector<int64_t>{raw_msg, config_.memory_dim}, rng);
    RegisterModule(message_mlp_.get());
  }
  if (config_.message == MessageFunctionType::kAttention) {
    // DyRep-style attention over the sender's temporal neighborhood.
    // Queries/keys carry [state || static features || time encoding].
    int64_t qk = 2 * config_.memory_dim + config_.time_dim;
    message_attention_ = std::make_unique<ts::GroupedAttentionLayer>(
        qk, qk, config_.memory_dim, config_.memory_dim, rng);
    RegisterModule(message_attention_.get());
  }

  if (config_.updater == MemoryUpdaterType::kGru) {
    gru_updater_ = std::make_unique<ts::GruCell>(message_dim(),
                                                 config_.memory_dim, rng);
    RegisterModule(gru_updater_.get());
  } else {
    rnn_updater_ = std::make_unique<ts::RnnCell>(message_dim(),
                                                 config_.memory_dim, rng);
    RegisterModule(rnn_updater_.get());
  }

  switch (config_.embedding) {
    case EmbeddingType::kAttention: {
      int64_t qk = 2 * config_.memory_dim + config_.time_dim;
      embed_attention_ = std::make_unique<ts::GroupedAttentionLayer>(
          qk, qk, config_.embed_dim, config_.embed_dim, rng);
      RegisterModule(embed_attention_.get());
      embed_merge_ = std::make_unique<ts::Linear>(
          config_.embed_dim + 2 * config_.memory_dim, config_.embed_dim,
          rng);
      RegisterModule(embed_merge_.get());
      break;
    }
    case EmbeddingType::kTimeProjection: {
      jodie_projection_ =
          RegisterParameter(ts::Tensor::Zeros(1, config_.memory_dim));
      embed_output_ = std::make_unique<ts::Linear>(2 * config_.memory_dim,
                                                   config_.embed_dim, rng);
      RegisterModule(embed_output_.get());
      break;
    }
    case EmbeddingType::kIdentity: {
      embed_output_ = std::make_unique<ts::Linear>(2 * config_.memory_dim,
                                                   config_.embed_dim, rng);
      RegisterModule(embed_output_.get());
      break;
    }
  }
}

void DgnnEncoder::AttachGraph(const graph::GraphStore* graph) {
  CPDG_CHECK(graph != nullptr);
  CPDG_CHECK_LE(graph->num_nodes(), config_.num_nodes);
  graph_ = graph;
  memory_.Reset();
  updated_states_.clear();
}

void DgnnEncoder::BeginBatch() { updated_states_.clear(); }

tensor::Tensor DgnnEncoder::NodeFeatures(
    const std::vector<NodeId>& nodes) const {
  std::vector<int64_t> idx(nodes.begin(), nodes.end());
  return ts::Gather(node_features_, idx);
}

tensor::Tensor DgnnEncoder::AttentionNeighborSummary(
    const std::vector<NodeId>& others, const std::vector<double>& times) {
  int64_t n = static_cast<int64_t>(others.size());
  int64_t g = config_.num_neighbors;
  sampler::NeighborBatch nb = sampler::SampleNeighborBatch(
      *graph_, others, times, g, sampler::NeighborStrategy::kMostRecent,
      rng_);

  // Query: [s_j || x_j || phi(0)] from stored (pre-update) states.
  ts::Tensor q_states = memory_.GetStates(others);
  ts::Tensor q_time = time_encoder_->Forward(std::vector<double>(
      static_cast<size_t>(n), 0.0));
  ts::Tensor query =
      ts::Concat(ts::Concat(q_states, NodeFeatures(others)), q_time);

  // Candidates: [s_u || phi(t - t_u)]; padding slots use node 0's layout
  // but are masked out via `valid`.
  std::vector<NodeId> cand_nodes(nb.nodes.size());
  std::vector<double> cand_dts(nb.nodes.size());
  for (size_t s = 0; s < nb.nodes.size(); ++s) {
    cand_nodes[s] = nb.valid[s] ? nb.nodes[s] : 0;
    cand_dts[s] =
        nb.valid[s] ? (times[s / static_cast<size_t>(g)] - nb.times[s]) : 0.0;
  }
  ts::Tensor c_states = memory_.GetStates(cand_nodes);
  ts::Tensor c_time = time_encoder_->Forward(cand_dts);
  ts::Tensor candidates =
      ts::Concat(ts::Concat(c_states, NodeFeatures(cand_nodes)), c_time);

  return message_attention_->Forward(query, candidates, g, nb.valid);
}

tensor::Tensor DgnnEncoder::UpdateStates(
    const std::vector<NodeId>& flush_nodes) {
  CPDG_CHECK(!flush_nodes.empty());
  int64_t n = static_cast<int64_t>(flush_nodes.size());

  ts::Tensor self_states = memory_.GetStates(flush_nodes);

  ts::Tensor messages;
  if (config_.aggregator == AggregatorType::kLast) {
    // Batched fast path: only the most recent pending message matters.
    std::vector<NodeId> others(flush_nodes.size());
    std::vector<double> msg_times(flush_nodes.size());
    std::vector<double> deltas(flush_nodes.size());
    for (size_t i = 0; i < flush_nodes.size(); ++i) {
      const auto& pending = memory_.Pending(flush_nodes[i]);
      CPDG_CHECK(!pending.empty());
      const Memory::RawMessage& last = pending.back();
      others[i] = last.other;
      msg_times[i] = last.time;
      deltas[i] = last.time - memory_.LastUpdate(flush_nodes[i]);
      if (deltas[i] < 0.0) deltas[i] = 0.0;
    }
    ts::Tensor other_repr;
    if (config_.message == MessageFunctionType::kAttention) {
      other_repr = AttentionNeighborSummary(others, msg_times);
    } else {
      other_repr = memory_.GetStates(others);
    }
    ts::Tensor phi = time_encoder_->Forward(deltas);
    messages = ts::Concat(
        ts::Concat(ts::Concat(self_states, other_repr),
                   NodeFeatures(others)),
        phi);
  } else {
    // Mean aggregation: per-node average over all pending messages.
    std::vector<ts::Tensor> rows;
    rows.reserve(flush_nodes.size());
    for (size_t i = 0; i < flush_nodes.size(); ++i) {
      rows.push_back(
          BuildAggregatedMessage(flush_nodes[i], memory_.Pending(
                                                      flush_nodes[i])));
    }
    messages = ts::ConcatRows(rows);
  }

  if (config_.message == MessageFunctionType::kMlp) {
    messages = message_mlp_->Forward(messages);
  }

  ts::Tensor updated;
  if (config_.updater == MemoryUpdaterType::kGru) {
    updated = gru_updater_->Forward(messages, self_states);
  } else {
    updated = rnn_updater_->Forward(messages, self_states);
  }
  CPDG_CHECK_EQ(updated.rows(), n);
  return updated;
}

tensor::Tensor DgnnEncoder::BuildAggregatedMessage(
    NodeId node, const std::vector<Memory::RawMessage>& pending) {
  CPDG_CHECK(!pending.empty());
  std::vector<NodeId> self(pending.size(), node);
  std::vector<NodeId> others(pending.size());
  std::vector<double> deltas(pending.size());
  double last_update = memory_.LastUpdate(node);
  for (size_t i = 0; i < pending.size(); ++i) {
    others[i] = pending[i].other;
    deltas[i] = std::max(0.0, pending[i].time - last_update);
  }
  ts::Tensor self_states = memory_.GetStates(self);
  ts::Tensor other_states = memory_.GetStates(others);
  ts::Tensor phi = time_encoder_->Forward(deltas);
  ts::Tensor rows = ts::Concat(
      ts::Concat(ts::Concat(self_states, other_states),
                 NodeFeatures(others)),
      phi);
  return ts::ColMean(rows);  // Eq. (3) with mean aggregation
}

void DgnnEncoder::FlushNodes(const std::vector<NodeId>& nodes) {
  CPDG_TRACE_SPAN("dgnn/memory_flush");
  // Split uncached nodes into those with pending messages (need the
  // differentiable update path) and those without (plain leaf states).
  std::vector<NodeId> to_update;
  std::vector<NodeId> plain;
  std::unordered_set<NodeId, std::hash<NodeId>, std::equal_to<NodeId>,
                     ts::ArenaAllocator<NodeId>>
      dedup;
  for (NodeId v : nodes) {
    if (updated_states_.count(v) != 0 || !dedup.insert(v).second) continue;
    if (memory_.HasPending(v)) {
      to_update.push_back(v);
    } else {
      plain.push_back(v);
    }
  }
  if (!to_update.empty()) {
    static obs::Counter& state_updates =
        obs::MetricsRegistry::Global().counter("dgnn.memory.state_updates");
    state_updates.Add(static_cast<int64_t>(to_update.size()));
    ts::Tensor updated = UpdateStates(to_update);
    for (size_t i = 0; i < to_update.size(); ++i) {
      updated_states_.emplace(
          to_update[i],
          ts::SliceRows(updated, static_cast<int64_t>(i), 1));
    }
  }
  if (!plain.empty()) {
    ts::Tensor states = memory_.GetStates(plain);
    for (size_t i = 0; i < plain.size(); ++i) {
      updated_states_.emplace(
          plain[i], ts::SliceRows(states, static_cast<int64_t>(i), 1));
    }
  }
}

tensor::Tensor DgnnEncoder::NodeState(NodeId node) {
  auto it = updated_states_.find(node);
  if (it == updated_states_.end()) {
    FlushNodes({node});
    it = updated_states_.find(node);
  }
  return it->second;
}

tensor::Tensor DgnnEncoder::ComputeUpdatedStates(
    const std::vector<NodeId>& nodes) {
  CPDG_CHECK(!nodes.empty());
  FlushNodes(nodes);
  std::vector<ts::Tensor> rows;
  rows.reserve(nodes.size());
  for (NodeId v : nodes) rows.push_back(NodeState(v));
  return ts::ConcatRows(rows);
}

tensor::Tensor DgnnEncoder::ComputeEmbeddings(
    const std::vector<NodeId>& nodes, const std::vector<double>& times) {
  CPDG_CHECK(!nodes.empty());
  CPDG_CHECK_EQ(nodes.size(), times.size());
  int64_t n = static_cast<int64_t>(nodes.size());

  ts::Tensor root_states = ComputeUpdatedStates(nodes);

  switch (config_.embedding) {
    case EmbeddingType::kAttention: {
      int64_t g = config_.num_neighbors;
      sampler::NeighborBatch nb = sampler::SampleNeighborBatch(
          *graph_, nodes, times, g, sampler::NeighborStrategy::kMostRecent,
          rng_);
      // Neighbor candidate states are read from memory storage as leaves:
      // gradients still reach the attention projections, the merge layer
      // and the time encoder; the flush path of the *root* nodes trains
      // the message/updater parameters (TGN's within-batch protocol).
      std::vector<NodeId> cand_nodes(nb.nodes.size());
      std::vector<double> cand_dts(nb.nodes.size());
      for (size_t s = 0; s < nb.nodes.size(); ++s) {
        cand_nodes[s] = nb.valid[s] ? nb.nodes[s] : 0;
        cand_dts[s] = nb.valid[s]
                          ? (times[s / static_cast<size_t>(g)] - nb.times[s])
                          : 0.0;
      }
      ts::Tensor c_states = memory_.GetStates(cand_nodes);
      ts::Tensor c_time = time_encoder_->Forward(cand_dts);
      ts::Tensor candidates =
          ts::Concat(ts::Concat(c_states, NodeFeatures(cand_nodes)), c_time);

      ts::Tensor root_feats = NodeFeatures(nodes);
      ts::Tensor root_aug = ts::Concat(root_states, root_feats);
      ts::Tensor q_time = time_encoder_->Forward(
          std::vector<double>(static_cast<size_t>(n), 0.0));
      ts::Tensor query = ts::Concat(root_aug, q_time);

      ts::Tensor att =
          embed_attention_->Forward(query, candidates, g, nb.valid);
      return ts::Tanh(
          embed_merge_->Forward(ts::Concat(att, root_aug)));
    }
    case EmbeddingType::kTimeProjection: {
      // JODIE: z = Linear((1 + dt * w) ∘ s).
      std::vector<float> dts(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        double dt = times[static_cast<size_t>(i)] -
                    memory_.LastUpdate(nodes[static_cast<size_t>(i)]);
        dts[static_cast<size_t>(i)] =
            static_cast<float>(std::max(0.0, dt));
      }
      ts::Tensor dt_col = ts::Tensor::FromVector(n, 1, std::move(dts));
      ts::Tensor factor =
          ts::AddScalar(ts::MatMul(dt_col, jodie_projection_), 1.0f);
      ts::Tensor projected = ts::Mul(root_states, factor);
      // JODIE pairs the projected dynamic embedding with the node's
      // static embedding.
      return embed_output_->Forward(
          ts::Concat(projected, NodeFeatures(nodes)));
    }
    case EmbeddingType::kIdentity: {
      return embed_output_->Forward(
          ts::Concat(root_states, NodeFeatures(nodes)));
    }
  }
  CPDG_CHECK(false) << "unreachable";
  return root_states;
}

void DgnnEncoder::CommitBatch(const std::vector<graph::Event>& events) {
  CPDG_TRACE_SPAN("dgnn/memory_commit");
  static obs::Counter& messages = obs::MetricsRegistry::Global().counter(
      "dgnn.memory.messages_enqueued");
  messages.Add(2 * static_cast<int64_t>(events.size()));
  // Persist flushed states (detached) and consume their pending messages.
  for (auto& [node, state] : updated_states_) {
    if (memory_.HasPending(node)) {
      memory_.SetStates({node}, state);
      memory_.ClearPending(node);
    }
  }
  updated_states_.clear();

  // Enqueue this batch's interactions for both endpoints. The message's
  // delta is computed lazily at flush time from last_update, so order
  // matters: enqueue first, then advance last_update.
  for (const graph::Event& e : events) {
    memory_.EnqueueMessage(e.src, Memory::RawMessage{e.dst, e.time});
    memory_.EnqueueMessage(e.dst, Memory::RawMessage{e.src, e.time});
  }
  for (const graph::Event& e : events) {
    memory_.SetLastUpdate(e.src, e.time);
    memory_.SetLastUpdate(e.dst, e.time);
  }
}

void DgnnEncoder::ReplayEvents(const std::vector<graph::Event>& events,
                               int64_t batch_size) {
  CPDG_CHECK_GT(batch_size, 0);
  for (size_t start = 0; start < events.size();
       start += static_cast<size_t>(batch_size)) {
    size_t end = std::min(events.size(), start + static_cast<size_t>(
                                                     batch_size));
    std::vector<graph::Event> batch(events.begin() + start,
                                    events.begin() + end);
    BeginBatch();
    std::vector<NodeId> touched;
    for (const graph::Event& e : batch) {
      touched.push_back(e.src);
      touched.push_back(e.dst);
    }
    FlushNodes(touched);
    CommitBatch(batch);
  }
}

LinkPredictor::LinkPredictor(int64_t embed_dim, int64_t hidden_dim, Rng* rng) {
  mlp_ = std::make_unique<ts::Mlp>(
      std::vector<int64_t>{2 * embed_dim, hidden_dim, 1}, rng);
  RegisterModule(mlp_.get());
}

tensor::Tensor LinkPredictor::ForwardLogits(const tensor::Tensor& z_src,
                                            const tensor::Tensor& z_dst) const {
  return mlp_->Forward(ts::Concat(z_src, z_dst));
}

}  // namespace cpdg::dgnn
