#include "dgnn/trainer.h"

#include "graph/batching.h"
#include "tensor/losses.h"
#include "tensor/optim.h"
#include "util/check.h"
#include "util/logging.h"

namespace cpdg::dgnn {

namespace ts = cpdg::tensor;

NodeId SampleNegative(const std::vector<NodeId>& pool, int64_t num_nodes,
                      NodeId positive, Rng* rng) {
  CPDG_CHECK(rng != nullptr);
  for (int attempt = 0; attempt < 8; ++attempt) {
    NodeId cand;
    if (pool.empty()) {
      cand = static_cast<NodeId>(
          rng->NextBounded(static_cast<uint64_t>(num_nodes)));
    } else {
      cand = pool[rng->NextBounded(pool.size())];
    }
    if (cand != positive) return cand;
  }
  return positive;  // degenerate pool; accept the collision
}

TrainLog TrainLinkPrediction(DgnnEncoder* encoder, LinkPredictor* decoder,
                             const graph::TemporalGraph& graph,
                             const TlpTrainOptions& options, Rng* rng) {
  CPDG_CHECK(encoder != nullptr);
  CPDG_CHECK(decoder != nullptr);
  CPDG_CHECK(rng != nullptr);

  std::vector<ts::Tensor> params = decoder->Parameters();
  if (options.train_encoder) {
    std::vector<ts::Tensor> enc = encoder->Parameters();
    params.insert(params.end(), enc.begin(), enc.end());
  }
  ts::Adam optimizer(params, options.learning_rate);

  TrainLog log;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    encoder->memory().Reset();
    graph::ChronologicalBatcher batcher(&graph, options.batch_size);
    graph::EventBatch batch;
    double epoch_loss = 0.0;
    int64_t batches = 0;
    while (batcher.Next(&batch)) {
      std::vector<NodeId> srcs, dsts, negs;
      std::vector<double> times;
      srcs.reserve(batch.events.size());
      for (const graph::Event& e : batch.events) {
        srcs.push_back(e.src);
        dsts.push_back(e.dst);
        negs.push_back(SampleNegative(options.negative_pool,
                                      graph.num_nodes(), e.dst, rng));
        times.push_back(e.time);
      }

      encoder->BeginBatch();
      ts::Tensor z_src = encoder->ComputeEmbeddings(srcs, times);
      ts::Tensor z_dst = encoder->ComputeEmbeddings(dsts, times);
      ts::Tensor z_neg = encoder->ComputeEmbeddings(negs, times);

      ts::Tensor pos_logits = decoder->ForwardLogits(z_src, z_dst);
      ts::Tensor neg_logits = decoder->ForwardLogits(z_src, z_neg);
      int64_t n = pos_logits.rows();
      ts::Tensor logits = ts::ConcatRows({pos_logits, neg_logits});
      std::vector<float> targets(static_cast<size_t>(2 * n), 0.0f);
      std::fill(targets.begin(), targets.begin() + n, 1.0f);
      ts::Tensor target_tensor =
          ts::Tensor::FromVector(2 * n, 1, std::move(targets));
      ts::Tensor loss = ts::BceWithLogitsLoss(logits, target_tensor);

      optimizer.ZeroGrad();
      loss.Backward();
      ts::ClipGradNorm(params, options.grad_clip);
      optimizer.Step();

      encoder->CommitBatch(batch.events);
      epoch_loss += loss.item();
      ++batches;
    }
    if (batches > 0) epoch_loss /= static_cast<double>(batches);
    log.epoch_losses.push_back(epoch_loss);
    CPDG_LOG(Debug) << "TLP epoch " << epoch << " loss=" << epoch_loss;
  }
  return log;
}

}  // namespace cpdg::dgnn
