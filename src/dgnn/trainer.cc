#include "dgnn/trainer.h"

#include "train/link_batch.h"
#include "train/train_loop.h"
#include "util/check.h"

namespace cpdg::dgnn {

namespace ts = cpdg::tensor;

NodeId SampleNegative(const std::vector<NodeId>& pool, int64_t num_nodes,
                      NodeId positive, Rng* rng) {
  CPDG_CHECK(rng != nullptr);
  for (int attempt = 0; attempt < 8; ++attempt) {
    NodeId cand;
    if (pool.empty()) {
      cand = static_cast<NodeId>(
          rng->NextBounded(static_cast<uint64_t>(num_nodes)));
    } else {
      cand = pool[rng->NextBounded(pool.size())];
    }
    if (cand != positive) return cand;
  }
  return positive;  // degenerate pool; accept the collision
}

TrainLog TrainLinkPrediction(DgnnEncoder* encoder, LinkPredictor* decoder,
                             const graph::GraphStore& graph,
                             const TlpTrainOptions& options, Rng* rng,
                             train::TrainTelemetry* telemetry) {
  CPDG_CHECK(encoder != nullptr);
  CPDG_CHECK(decoder != nullptr);
  CPDG_CHECK(rng != nullptr);

  std::vector<ts::Tensor> params = decoder->Parameters();
  if (options.train_encoder) {
    std::vector<ts::Tensor> enc = encoder->Parameters();
    params.insert(params.end(), enc.begin(), enc.end());
  }

  train::TrainLoopOptions loop_options;
  loop_options.epochs = options.epochs;
  loop_options.learning_rate = options.learning_rate;
  loop_options.grad_clip = options.grad_clip;
  loop_options.log_label = "TLP";
  // Negative draws move onto per-(epoch, batch) streams so prefetch workers
  // can assemble batches ahead of the consumer without reordering draws.
  loop_options.prepare_stream_seed = rng->NextUint64();
  train::TrainLoop loop(std::move(params), loop_options);

  train::TrainTelemetry result = loop.RunChronologicalPrepared(
      encoder, graph, options.batch_size,
      [&](const train::BatchContext&, const graph::EventBatch& batch,
          Rng* batch_rng) -> std::any {
        return train::AssembleLinkBatch(batch.events, options.negative_pool,
                                        graph.num_nodes(), batch_rng);
      },
      [&](const train::BatchContext&, const graph::EventBatch&,
          std::any& prepared) -> std::optional<ts::Tensor> {
        const train::LinkBatch& lb =
            *std::any_cast<train::LinkBatch>(&prepared);
        ts::Tensor z_src = encoder->ComputeEmbeddings(lb.srcs, lb.times);
        ts::Tensor z_dst = encoder->ComputeEmbeddings(lb.dsts, lb.times);
        ts::Tensor z_neg = encoder->ComputeEmbeddings(lb.negs, lb.times);
        ts::Tensor pos_logits = decoder->ForwardLogits(z_src, z_dst);
        ts::Tensor neg_logits = decoder->ForwardLogits(z_src, z_neg);
        return train::LinkBceLoss(pos_logits, neg_logits);
      });
  if (telemetry != nullptr) *telemetry = result;
  return result;
}

}  // namespace cpdg::dgnn
