#ifndef CPDG_DGNN_MEMORY_H_
#define CPDG_DGNN_MEMORY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/temporal_graph.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace cpdg::dgnn {

using graph::NodeId;

/// \brief The DGNN memory M of Sec. III-B: one compressed state vector
/// s_i^t per node, the node's last-update timestamp, and a buffer of raw
/// (not yet flushed) interaction messages.
///
/// States are stored detached from any computation graph; the encoder
/// re-attaches them as leaf tensors when it processes a batch, exactly as
/// TGN detaches memory between batches. New nodes start from the zero
/// vector (the paper's initialization).
class Memory {
 public:
  Memory(int64_t num_nodes, int64_t dim);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t dim() const { return dim_; }

  /// \brief Monotonic mutation counter: bumped by every state-changing call
  /// (SetStates, SetLastUpdate, EnqueueMessage, ClearPending, Reset,
  /// RestoreFlat, DeserializeFrom). Two reads at the same version are
  /// guaranteed to observe identical memory, so derived artifacts — the
  /// serving engine's node-embedding cache in particular — can be keyed on
  /// (node, version) and invalidated by comparing versions instead of
  /// diffing states. Const accessors never bump it.
  uint64_t version() const { return version_; }

  /// Resets all states to zero and clears timestamps and pending messages.
  void Reset();

  /// \brief Raw (undirected) interaction message enqueued at event time and
  /// flushed through Msg/Agg/Mem the next time the node is touched.
  struct RawMessage {
    NodeId other = -1;
    double time = 0.0;
  };

  /// Gathers states for `nodes` into a detached [n, dim] leaf tensor.
  tensor::Tensor GetStates(const std::vector<NodeId>& nodes) const;

  /// Writes row i of `states` into node `nodes[i]`'s slot (data copy only).
  void SetStates(const std::vector<NodeId>& nodes,
                 const tensor::Tensor& states);

  /// Direct read access to one node's state.
  const float* StateData(NodeId node) const;

  double LastUpdate(NodeId node) const;
  void SetLastUpdate(NodeId node, double time);

  void EnqueueMessage(NodeId node, RawMessage message);
  bool HasPending(NodeId node) const;
  const std::vector<RawMessage>& Pending(NodeId node) const;
  void ClearPending(NodeId node);

  /// \brief Flat copy of all states (num_nodes * dim, row-major); the
  /// memory checkpoint S^l stored during pre-training for EIE (Eq. 18).
  std::vector<float> SnapshotFlat() const;

  /// \brief Restores states from a flat snapshot (timestamps/pending are
  /// untouched).
  void RestoreFlat(const std::vector<float>& snapshot);

  /// L2 norm of the full state matrix; used by tests and diagnostics.
  double StateNorm() const;

  /// \brief Appends the complete memory to `out`: states, last-update
  /// timestamps AND the pending raw-message queues. Unlike SnapshotFlat
  /// (which EIE uses for state-only snapshots), this captures everything a
  /// crash-safe resume needs — unflushed messages change the next batch's
  /// Msg/Agg/Mem flush, so dropping them would break bit-exact resume.
  void SerializeTo(std::string* out) const;

  /// \brief Restores state written by SerializeTo. Validates the node
  /// count and dimension against this memory before mutating anything
  /// (all-or-nothing); corrupt input fails with a descriptive Status.
  Status DeserializeFrom(std::string_view bytes);

 private:
  int64_t num_nodes_;
  int64_t dim_;
  uint64_t version_ = 0;
  std::vector<float> states_;       // num_nodes * dim
  std::vector<double> last_update_;  // num_nodes
  std::vector<std::vector<RawMessage>> pending_;  // num_nodes
};

}  // namespace cpdg::dgnn

#endif  // CPDG_DGNN_MEMORY_H_
