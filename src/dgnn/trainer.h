#ifndef CPDG_DGNN_TRAINER_H_
#define CPDG_DGNN_TRAINER_H_

#include <vector>

#include "dgnn/encoder.h"
#include "graph/graph_store.h"
#include "util/rng.h"

namespace cpdg::train {
struct TrainTelemetry;
}  // namespace cpdg::train

namespace cpdg::dgnn {

/// \brief Options for temporal-link-prediction training, used both as the
/// task-supervised pre-training of the DyRep/JODIE/TGN baselines and as
/// the downstream fine-tuning objective.
struct TlpTrainOptions {
  int64_t epochs = 1;
  int64_t batch_size = 200;
  float learning_rate = 1e-3f;
  float grad_clip = 5.0f;
  /// Nodes eligible as sampled negatives; empty means all graph nodes.
  /// For bipartite interaction graphs this should be the item universe.
  std::vector<NodeId> negative_pool;
  /// If false, encoder parameters are frozen and only the decoder trains
  /// (used by probes and some ablations).
  bool train_encoder = true;
};

/// \brief Per-epoch training diagnostics.
struct TrainLog {
  std::vector<double> epoch_losses;
  double final_loss() const {
    return epoch_losses.empty() ? 0.0 : epoch_losses.back();
  }
};

/// \brief Samples a negative destination (uniform over the pool) different
/// from `positive` when possible.
NodeId SampleNegative(const std::vector<NodeId>& pool, int64_t num_nodes,
                      NodeId positive, Rng* rng);

/// \brief Trains encoder + decoder on the temporal link prediction task
/// (Eq. 15-16): chronological batches, one sampled negative per event.
/// The encoder's memory is reset at the start of every epoch. Runs on the
/// shared train::TrainLoop runtime; pass `telemetry` to additionally
/// receive the enriched per-epoch diagnostics (wall-clock, batch counts,
/// gradient norms).
TrainLog TrainLinkPrediction(DgnnEncoder* encoder, LinkPredictor* decoder,
                             const graph::GraphStore& graph,
                             const TlpTrainOptions& options, Rng* rng,
                             train::TrainTelemetry* telemetry = nullptr);

}  // namespace cpdg::dgnn

#endif  // CPDG_DGNN_TRAINER_H_
