#ifndef CPDG_DGNN_ENCODER_H_
#define CPDG_DGNN_ENCODER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dgnn/memory.h"
#include "graph/batching.h"
#include "graph/graph_store.h"
#include "sampler/samplers.h"
#include "tensor/arena.h"
#include "tensor/nn.h"
#include "util/rng.h"

namespace cpdg::dgnn {

/// \brief Implementation choices for the four pluggable components of the
/// generic DGNN paradigm (Table III of the paper).
enum class MessageFunctionType { kIdentity, kMlp, kAttention };
enum class AggregatorType { kLast, kMean };
enum class MemoryUpdaterType { kGru, kRnn };
enum class EmbeddingType { kAttention, kTimeProjection, kIdentity };

/// \brief Named encoder presets matching Table III.
enum class EncoderType { kJodie, kDyRep, kTgn };

const char* EncoderTypeName(EncoderType type);

/// \brief Hyper-parameters of a DGNN encoder instance.
struct EncoderConfig {
  int64_t num_nodes = 0;
  int64_t memory_dim = 32;
  int64_t embed_dim = 32;
  int64_t time_dim = 8;
  /// Temporal neighbors attended over by the embedding module.
  int64_t num_neighbors = 10;
  MessageFunctionType message = MessageFunctionType::kIdentity;
  AggregatorType aggregator = AggregatorType::kLast;
  MemoryUpdaterType updater = MemoryUpdaterType::kGru;
  EmbeddingType embedding = EmbeddingType::kAttention;

  /// Preset for one of the three paper encoders (Table III):
  ///  - JODIE: identity message, RNN memory, time-projection embedding.
  ///  - DyRep: attention message, RNN memory, identity embedding.
  ///  - TGN:   identity message, last aggregation, GRU memory, attention
  ///    embedding.
  static EncoderConfig Preset(EncoderType type, int64_t num_nodes);
};

/// \brief The generic memory-based DGNN encoder of Sec. III-B.
///
/// The encoder follows TGN's training protocol: interactions enqueue raw
/// messages; when a node is next touched, its pending messages are flushed
/// through the (differentiable) Message -> Aggregate -> MemoryUpdate path
/// (Eqs. 2-4) and the refreshed state feeds the embedding module (Eq. 1).
/// Gradients flow through the within-batch flush; committed states are
/// stored detached.
///
/// Typical batch loop:
///   encoder.BeginBatch();
///   Tensor z_src = encoder.ComputeEmbeddings(srcs, ts);
///   Tensor z_dst = encoder.ComputeEmbeddings(dsts, ts);
///   ... loss.Backward(); optimizer.Step(); ...
///   encoder.CommitBatch(batch_events);
///
/// \par Read-only (serving) protocol
/// `BeginBatch()` + `ComputeEmbeddings()` *without* a following
/// `CommitBatch()` is a pure read of the persistent state: pending
/// messages are flushed into the per-batch cache only, and nothing is
/// written back to `memory()` (its `version()` does not change). Given
/// frozen parameters and a fixed memory version the result is a
/// deterministic, bit-reproducible function of (nodes, times) — each
/// output row depends only on its own query — which is what
/// `serve::ServingEngine` builds its embedding cache and batch coalescing
/// on. Wrap serving forwards in `tensor::InferenceModeGuard` so no
/// autograd graph is retained.
class DgnnEncoder : public tensor::Module {
 public:
  DgnnEncoder(const EncoderConfig& config, const graph::GraphStore* graph,
              Rng* rng);

  const EncoderConfig& config() const { return config_; }
  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }

  /// \brief Points the encoder at a different temporal graph (e.g. the
  /// downstream graph during fine-tuning) and resets the memory. The graph
  /// must have num_nodes <= config.num_nodes.
  void AttachGraph(const graph::GraphStore* graph);

  /// \brief Clears per-batch caches; call before the first
  /// ComputeEmbeddings of each batch.
  void BeginBatch();

  /// \brief Temporal embeddings z_i^t (Eq. 1) for the queried nodes, as a
  /// [n, embed_dim] tensor attached to the autograd graph. Pending
  /// messages of every touched node (queries and sampled neighbors) are
  /// flushed first; flush results are cached for the rest of the batch.
  tensor::Tensor ComputeEmbeddings(const std::vector<NodeId>& nodes,
                                   const std::vector<double>& times);

  /// \brief Memory states s_i^t for the queried nodes after flushing
  /// pending messages, [n, memory_dim]. This is what the contrastive
  /// readouts of Eqs. (9)-(13) pool over.
  tensor::Tensor ComputeUpdatedStates(const std::vector<NodeId>& nodes);

  /// \brief Static (learnable) feature rows of `nodes`, [n, memory_dim].
  /// Real deployments of JODIE/TGN feed node features or one-hot static
  /// embeddings next to the dynamic memory; without any identity signal,
  /// structurally isomorphic nodes would be indistinguishable.
  tensor::Tensor NodeFeatures(const std::vector<NodeId>& nodes) const;

  /// \brief Persists this batch's flushed states (detached) into memory,
  /// then enqueues the batch's events as raw messages for both endpoints
  /// and advances last-update times.
  void CommitBatch(const std::vector<graph::Event>& events);

  /// \brief Convenience: run BeginBatch + CommitBatch over all events of
  /// the attached graph without training, so that memory reflects graph
  /// history (used before evaluation on warm memory).
  void ReplayEvents(const std::vector<graph::Event>& events,
                    int64_t batch_size);

 private:
  /// Returns the (possibly flush-updated) state row of `node` as a [1,dim]
  /// tensor on the current batch graph.
  tensor::Tensor NodeState(NodeId node);

  /// Flushes pending messages for all uncached nodes in `nodes`.
  void FlushNodes(const std::vector<NodeId>& nodes);

  /// Builds the aggregated message matrix for `flush_nodes` (each has
  /// pending messages) and returns Mem(s^-, m̄) rows, [n, memory_dim].
  tensor::Tensor UpdateStates(const std::vector<NodeId>& flush_nodes);

  /// Message content for one (node, messages) pair: returns the [1,msg_dim]
  /// aggregated message tensor.
  tensor::Tensor BuildAggregatedMessage(NodeId node,
                                        const std::vector<Memory::RawMessage>&
                                            messages);

  /// Attention-based neighbor summary of `others` at `times` (DyRep's
  /// attention message function), [n, memory_dim].
  tensor::Tensor AttentionNeighborSummary(const std::vector<NodeId>& others,
                                          const std::vector<double>& times);

  int64_t message_dim() const;

  EncoderConfig config_;
  const graph::GraphStore* graph_;
  Memory memory_;
  Rng* rng_;

  // Parameterized components.
  std::unique_ptr<tensor::TimeEncoder> time_encoder_;
  std::unique_ptr<tensor::Mlp> message_mlp_;  // only for kMlp messages
  std::unique_ptr<tensor::GroupedAttentionLayer> message_attention_;
  std::unique_ptr<tensor::GruCell> gru_updater_;
  std::unique_ptr<tensor::RnnCell> rnn_updater_;
  std::unique_ptr<tensor::GroupedAttentionLayer> embed_attention_;
  std::unique_ptr<tensor::Linear> embed_merge_;
  tensor::Tensor jodie_projection_;  // [1, memory_dim] for time projection
  std::unique_ptr<tensor::Linear> embed_output_;
  tensor::Tensor node_features_;  // [num_nodes, memory_dim] static features

  // Per-batch cache of flushed state rows. The map's node and bucket
  // allocations ride the batch arena (one insert per flushed node per
  // batch; cleared every BeginBatch/CommitBatch).
  std::unordered_map<NodeId, tensor::Tensor, std::hash<NodeId>,
                     std::equal_to<NodeId>,
                     tensor::ArenaAllocator<
                         std::pair<const NodeId, tensor::Tensor>>>
      updated_states_;
};

/// \brief Temporal link prediction decoder (Eq. 15):
/// y = sigmoid(MLP(z_i || z_j)); exposed as logits for BCE-with-logits.
class LinkPredictor : public tensor::Module {
 public:
  LinkPredictor(int64_t embed_dim, int64_t hidden_dim, Rng* rng);

  /// [n, d] x [n, d] -> logits [n, 1].
  tensor::Tensor ForwardLogits(const tensor::Tensor& z_src,
                               const tensor::Tensor& z_dst) const;

 private:
  std::unique_ptr<tensor::Mlp> mlp_;
};

}  // namespace cpdg::dgnn

#endif  // CPDG_DGNN_ENCODER_H_
