#include "dgnn/memory.h"

#include <cmath>

#include "util/byte_codec.h"
#include "util/check.h"

namespace cpdg::dgnn {

Memory::Memory(int64_t num_nodes, int64_t dim)
    : num_nodes_(num_nodes), dim_(dim) {
  CPDG_CHECK_GT(num_nodes, 0);
  CPDG_CHECK_GT(dim, 0);
  states_.assign(static_cast<size_t>(num_nodes * dim), 0.0f);
  last_update_.assign(static_cast<size_t>(num_nodes), 0.0);
  pending_.resize(static_cast<size_t>(num_nodes));
}

void Memory::Reset() {
  ++version_;
  std::fill(states_.begin(), states_.end(), 0.0f);
  std::fill(last_update_.begin(), last_update_.end(), 0.0);
  for (auto& p : pending_) p.clear();
}

tensor::Tensor Memory::GetStates(const std::vector<NodeId>& nodes) const {
  CPDG_CHECK(!nodes.empty());
  std::vector<float> data(nodes.size() * static_cast<size_t>(dim_));
  for (size_t i = 0; i < nodes.size(); ++i) {
    NodeId v = nodes[i];
    CPDG_CHECK_GE(v, 0);
    CPDG_CHECK_LT(v, num_nodes_);
    std::copy(states_.begin() + v * dim_, states_.begin() + (v + 1) * dim_,
              data.begin() + static_cast<int64_t>(i) * dim_);
  }
  return tensor::Tensor::FromVector(static_cast<int64_t>(nodes.size()), dim_,
                                    std::move(data));
}

void Memory::SetStates(const std::vector<NodeId>& nodes,
                       const tensor::Tensor& states) {
  CPDG_CHECK_EQ(states.rows(), static_cast<int64_t>(nodes.size()));
  CPDG_CHECK_EQ(states.cols(), dim_);
  ++version_;
  const float* src = states.data();
  for (size_t i = 0; i < nodes.size(); ++i) {
    NodeId v = nodes[i];
    CPDG_CHECK_GE(v, 0);
    CPDG_CHECK_LT(v, num_nodes_);
    std::copy(src + static_cast<int64_t>(i) * dim_,
              src + static_cast<int64_t>(i + 1) * dim_,
              states_.begin() + v * dim_);
  }
}

const float* Memory::StateData(NodeId node) const {
  CPDG_CHECK_GE(node, 0);
  CPDG_CHECK_LT(node, num_nodes_);
  return states_.data() + node * dim_;
}

double Memory::LastUpdate(NodeId node) const {
  CPDG_CHECK_GE(node, 0);
  CPDG_CHECK_LT(node, num_nodes_);
  return last_update_[static_cast<size_t>(node)];
}

void Memory::SetLastUpdate(NodeId node, double time) {
  CPDG_CHECK_GE(node, 0);
  CPDG_CHECK_LT(node, num_nodes_);
  ++version_;
  last_update_[static_cast<size_t>(node)] = time;
}

void Memory::EnqueueMessage(NodeId node, RawMessage message) {
  CPDG_CHECK_GE(node, 0);
  CPDG_CHECK_LT(node, num_nodes_);
  ++version_;
  pending_[static_cast<size_t>(node)].push_back(message);
}

bool Memory::HasPending(NodeId node) const {
  CPDG_CHECK_GE(node, 0);
  CPDG_CHECK_LT(node, num_nodes_);
  return !pending_[static_cast<size_t>(node)].empty();
}

const std::vector<Memory::RawMessage>& Memory::Pending(NodeId node) const {
  CPDG_CHECK_GE(node, 0);
  CPDG_CHECK_LT(node, num_nodes_);
  return pending_[static_cast<size_t>(node)];
}

void Memory::ClearPending(NodeId node) {
  CPDG_CHECK_GE(node, 0);
  CPDG_CHECK_LT(node, num_nodes_);
  ++version_;
  pending_[static_cast<size_t>(node)].clear();
}

std::vector<float> Memory::SnapshotFlat() const { return states_; }

void Memory::RestoreFlat(const std::vector<float>& snapshot) {
  CPDG_CHECK_EQ(snapshot.size(), states_.size());
  ++version_;
  states_ = snapshot;
}

void Memory::SerializeTo(std::string* out) const {
  util::ByteWriter w(out);
  w.Pod(num_nodes_);
  w.Pod(dim_);
  w.PodVector(states_);
  w.PodVector(last_update_);
  for (const std::vector<RawMessage>& queue : pending_) {
    w.Pod(static_cast<uint64_t>(queue.size()));
    for (const RawMessage& m : queue) {
      w.Pod(static_cast<int64_t>(m.other));
      w.Pod(m.time);
    }
  }
}

Status Memory::DeserializeFrom(std::string_view bytes) {
  util::ByteReader r(bytes);
  int64_t num_nodes = 0, dim = 0;
  if (!r.Pod(&num_nodes) || !r.Pod(&dim)) {
    return Status::InvalidArgument("truncated memory header");
  }
  if (num_nodes != num_nodes_ || dim != dim_) {
    return Status::FailedPrecondition(
        "memory checkpoint is " + std::to_string(num_nodes) + "x" +
        std::to_string(dim) + ", this memory is " +
        std::to_string(num_nodes_) + "x" + std::to_string(dim_));
  }
  std::vector<float> states;
  std::vector<double> last_update;
  if (!r.PodVector(&states) || !r.PodVector(&last_update)) {
    return Status::InvalidArgument("truncated memory payload");
  }
  if (states.size() != states_.size() ||
      last_update.size() != last_update_.size()) {
    return Status::InvalidArgument("memory payload size mismatch");
  }
  std::vector<std::vector<RawMessage>> pending(
      static_cast<size_t>(num_nodes_));
  for (int64_t v = 0; v < num_nodes_; ++v) {
    uint64_t count = 0;
    if (!r.Pod(&count)) {
      return Status::InvalidArgument("truncated pending-message count");
    }
    // Each message costs 16 bytes; bound before allocating.
    if (count > r.remaining() / 16) {
      return Status::InvalidArgument("corrupt pending-message count");
    }
    std::vector<RawMessage>& queue = pending[static_cast<size_t>(v)];
    queue.resize(static_cast<size_t>(count));
    for (RawMessage& m : queue) {
      int64_t other = 0;
      if (!r.Pod(&other) || !r.Pod(&m.time)) {
        return Status::InvalidArgument("truncated pending message");
      }
      if (other < 0 || other >= num_nodes_) {
        return Status::InvalidArgument("pending message references node " +
                                       std::to_string(other));
      }
      m.other = static_cast<NodeId>(other);
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing garbage in memory payload");
  }
  // Everything validated; commit (all-or-nothing).
  ++version_;
  states_ = std::move(states);
  last_update_ = std::move(last_update);
  pending_ = std::move(pending);
  return Status::OK();
}

double Memory::StateNorm() const {
  double acc = 0.0;
  for (float v : states_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

}  // namespace cpdg::dgnn
