#ifndef CPDG_BENCH_COMMON_EXPERIMENT_H_
#define CPDG_BENCH_COMMON_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/evolution.h"
#include "core/pretrainer.h"
#include "data/transfer.h"
#include "dgnn/encoder.h"
#include "util/stats.h"

namespace cpdg::bench {

/// \brief Global knobs for the benchmark suite, overridable via
/// environment variables so the full paper sweep can be scaled up or down
/// without recompiling:
///   CPDG_SEEDS        number of random seeds per cell (default 3)
///   CPDG_EVENT_SCALE  multiplies all dataset event counts (default 1.0)
///   CPDG_EPOCHS       pre-train/fine-tune epochs (default 2)
///   CPDG_CHECKPOINT_DIR    directory for per-cell CPDG pre-training
///                          checkpoints (default: off). Cells whose
///                          checkpoint file already exists resume from it.
///   CPDG_CHECKPOINT_EVERY  checkpoint cadence in batches (default 50,
///                          used only when the directory is set)
///
/// Seed aggregation (RunLinkPredictionSeeds / RunNodeClassificationSeeds)
/// fans the per-seed cells out over util::ThreadPool::Global(), whose size
/// is controlled by CPDG_NUM_THREADS (default: hardware concurrency; 1 =
/// fully serial). Results are merged in seed order, so aggregates are
/// bitwise identical at any thread count.
struct ExperimentScale {
  int64_t num_seeds = 3;
  double event_scale = 1.0;
  int64_t pretrain_epochs = 3;
  int64_t finetune_epochs = 3;
  int64_t batch_size = 200;
  float learning_rate = 5e-3f;
  int64_t memory_dim = 32;
  int64_t embed_dim = 32;
  int64_t time_dim = 8;
  int64_t num_neighbors = 10;

  /// Opt-in crash safety for the long pre-training stage: when non-empty,
  /// each CPDG cell checkpoints to
  /// `<checkpoint_dir>/<dataset>_<cell tag>_<config fingerprint>.ckpt`
  /// every `checkpoint_every_batches` batches and resumes from an existing
  /// file (the fingerprint covers backbone/contrast/beta/lr so differently
  /// configured cells never share a file).
  std::string checkpoint_dir;
  int64_t checkpoint_every_batches = 50;

  static ExperimentScale FromEnv();
};

/// \brief Applies the event scale to a universe spec.
data::UniverseSpec ScaleSpec(data::UniverseSpec spec, double event_scale);

/// \brief All eleven methods of the paper's comparison (Sec. V-B) plus the
/// "no pre-train" control used by the inductive study.
enum class MethodId {
  kGraphSage,
  kGin,
  kGat,
  kDgi,
  kGptGnn,
  kDyRep,
  kJodie,
  kTgn,
  kDdgcl,
  kSelfRgnn,
  kCpdg,
};

const char* MethodName(MethodId id);

/// \brief Fully specifies one method variant, including the CPDG ablation
/// and EIE knobs used by Tables VIII/X and Figures 5/6.
struct MethodSpec {
  MethodId id = MethodId::kCpdg;
  /// Backbone for dynamic methods (DyRep/JODIE/TGN rows use their own
  /// names; CPDG/DDGCL/SelfRGNN default to the TGN backbone).
  dgnn::EncoderType backbone = dgnn::EncoderType::kTgn;
  /// If false, skip pre-training entirely (the "No Pre-train" rows).
  bool pretrain = true;

  /// \name CPDG-specific knobs
  /// @{
  bool cpdg_use_temporal_contrast = true;
  bool cpdg_use_structural_contrast = true;
  bool cpdg_use_eie = true;
  core::EieVariant eie_variant = core::EieVariant::kGru;
  float beta = 0.5f;
  /// @}

  /// Convenience constructors for common rows.
  static MethodSpec Baseline(MethodId id);
  static MethodSpec BaselineWithBackbone(MethodId id,
                                         dgnn::EncoderType backbone);
  static MethodSpec Cpdg(dgnn::EncoderType backbone = dgnn::EncoderType::kTgn);
};

struct LinkPredResult {
  double auc = 0.5;
  double ap = 0.0;
};

/// \brief Runs one (method, dataset, seed) cell end to end:
/// pre-train on dataset.pretrain_graph, fine-tune on the downstream train
/// graph, evaluate AUC/AP on the downstream test events (validation events
/// only advance memory). With `inductive`, only test events touching a
/// node unseen in downstream training are scored (Table IX).
LinkPredResult RunLinkPrediction(const MethodSpec& spec,
                                 const data::TransferDataset& dataset,
                                 const ExperimentScale& scale, uint64_t seed,
                                 bool inductive = false);

/// \brief Runs one dynamic-node-classification cell (Table VII): the same
/// pre-train + fine-tune pipeline, then a logistic head over streamed
/// embeddings of labeled events; returns test ROC-AUC.
double RunNodeClassification(const MethodSpec& spec,
                             const data::TransferDataset& dataset,
                             const ExperimentScale& scale, uint64_t seed);

/// \brief Aggregates a cell over `scale.num_seeds` seeds.
struct AggregatedResult {
  RunningStats auc;
  RunningStats ap;
};

AggregatedResult RunLinkPredictionSeeds(const MethodSpec& spec,
                                        const data::TransferDataset& dataset,
                                        const ExperimentScale& scale,
                                        bool inductive = false);

RunningStats RunNodeClassificationSeeds(const MethodSpec& spec,
                                        const data::TransferDataset& dataset,
                                        const ExperimentScale& scale);

}  // namespace cpdg::bench

#endif  // CPDG_BENCH_COMMON_EXPERIMENT_H_
