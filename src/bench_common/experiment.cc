#include "bench_common/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/finetuner.h"
#include "dgnn/trainer.h"
#include "eval/evaluators.h"
#include "obs/profiler.h"
#include "ssl/ssl_baselines.h"
#include "static_gnn/static_gnn.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace cpdg::bench {

namespace ts = cpdg::tensor;
using graph::Event;
using graph::NodeId;

ExperimentScale ExperimentScale::FromEnv() {
  ExperimentScale s;
  if (const char* v = std::getenv("CPDG_SEEDS")) {
    s.num_seeds = std::max(1L, std::atol(v));
  }
  if (const char* v = std::getenv("CPDG_EVENT_SCALE")) {
    double x = std::atof(v);
    if (x > 0.0) s.event_scale = x;
  }
  if (const char* v = std::getenv("CPDG_EPOCHS")) {
    long e = std::max(1L, std::atol(v));
    s.pretrain_epochs = e;
    s.finetune_epochs = e;
  }
  if (const char* v = std::getenv("CPDG_LR")) {
    double lr = std::atof(v);
    if (lr > 0.0) s.learning_rate = static_cast<float>(lr);
  }
  if (const char* v = std::getenv("CPDG_CHECKPOINT_DIR")) {
    s.checkpoint_dir = v;
  }
  if (const char* v = std::getenv("CPDG_CHECKPOINT_EVERY")) {
    long every = std::atol(v);
    if (every > 0) s.checkpoint_every_batches = every;
  }
  return s;
}

data::UniverseSpec ScaleSpec(data::UniverseSpec spec, double event_scale) {
  for (data::FieldSpec& f : spec.fields) {
    f.num_events_early = std::max<int64_t>(
        500, static_cast<int64_t>(f.num_events_early * event_scale));
    f.num_events_late = std::max<int64_t>(
        500, static_cast<int64_t>(f.num_events_late * event_scale));
  }
  return spec;
}

const char* MethodName(MethodId id) {
  switch (id) {
    case MethodId::kGraphSage:
      return "GraphSAGE";
    case MethodId::kGin:
      return "GIN";
    case MethodId::kGat:
      return "GAT";
    case MethodId::kDgi:
      return "DGI";
    case MethodId::kGptGnn:
      return "GPT-GNN";
    case MethodId::kDyRep:
      return "DyRep";
    case MethodId::kJodie:
      return "JODIE";
    case MethodId::kTgn:
      return "TGN";
    case MethodId::kDdgcl:
      return "DDGCL";
    case MethodId::kSelfRgnn:
      return "SelfRGNN";
    case MethodId::kCpdg:
      return "CPDG";
  }
  return "?";
}

MethodSpec MethodSpec::Baseline(MethodId id) {
  MethodSpec spec;
  spec.id = id;
  switch (id) {
    case MethodId::kDyRep:
      spec.backbone = dgnn::EncoderType::kDyRep;
      break;
    case MethodId::kJodie:
      spec.backbone = dgnn::EncoderType::kJodie;
      break;
    default:
      spec.backbone = dgnn::EncoderType::kTgn;
      break;
  }
  return spec;
}

MethodSpec MethodSpec::BaselineWithBackbone(MethodId id,
                                            dgnn::EncoderType backbone) {
  MethodSpec spec = Baseline(id);
  spec.backbone = backbone;
  return spec;
}

MethodSpec MethodSpec::Cpdg(dgnn::EncoderType backbone) {
  MethodSpec spec;
  spec.id = MethodId::kCpdg;
  spec.backbone = backbone;
  return spec;
}

namespace {

/// Dataset names are display strings ("Beauty/time+field") — flatten them
/// to a safe checkpoint file-name component.
std::string SanitizeFileComponent(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-';
    if (!safe) c = '_';
  }
  return out;
}

bool IsStaticMethod(MethodId id) {
  switch (id) {
    case MethodId::kGraphSage:
    case MethodId::kGin:
    case MethodId::kGat:
    case MethodId::kDgi:
    case MethodId::kGptGnn:
      return true;
    default:
      return false;
  }
}

dgnn::EncoderConfig MakeEncoderConfig(const MethodSpec& spec,
                                      const data::TransferDataset& dataset,
                                      const ExperimentScale& scale) {
  dgnn::EncoderConfig config =
      dgnn::EncoderConfig::Preset(spec.backbone, dataset.num_nodes);
  config.memory_dim = scale.memory_dim;
  config.embed_dim = scale.embed_dim;
  config.time_dim = scale.time_dim;
  config.num_neighbors = scale.num_neighbors;
  return config;
}

/// Shared dynamic pipeline: pre-train (per method), fine-tune, and return
/// (encoder, fine-tuned model, checkpoints) ready for evaluation.
struct DynamicPipeline {
  std::unique_ptr<dgnn::DgnnEncoder> encoder;
  std::unique_ptr<core::FineTunedModel> model;
  core::EvolutionCheckpoints checkpoints;
};

/// Surfaces a training run's telemetry in bench output: final-epoch loss,
/// gradient norms around clipping, batch count and total wall-clock.
void LogTelemetry(const char* label, const train::TrainTelemetry& telemetry) {
  if (!telemetry.status.ok()) {
    CPDG_LOG(Warning) << label
                      << ": run halted: " << telemetry.status.ToString();
  }
  if (telemetry.epochs.empty()) return;
  const train::EpochTelemetry& last = telemetry.epochs.back();
  CPDG_LOG(Info) << label << ": epochs=" << telemetry.epochs.size()
                 << " final_loss=" << last.mean_loss
                 << " grad_norm_pre_clip=" << last.mean_grad_norm_pre_clip
                 << " grad_norm_post_clip=" << last.mean_grad_norm_post_clip
                 << " batches_per_epoch=" << last.num_batches
                 << " wall_s=" << telemetry.total_wall_clock_sec();
  if (telemetry.nonfinite_skips > 0 || telemetry.rollbacks > 0 ||
      telemetry.checkpoint_saves > 0 || telemetry.checkpoint_failures > 0) {
    CPDG_LOG(Info) << label << ": health: nonfinite_skips="
                   << telemetry.nonfinite_skips
                   << " rollbacks=" << telemetry.rollbacks
                   << " checkpoint_saves=" << telemetry.checkpoint_saves
                   << " checkpoint_failures="
                   << telemetry.checkpoint_failures;
  }
}

/// `cell_tag` uniquely identifies the (task, seed) cell; with
/// scale.checkpoint_dir set it names the CPDG pre-training checkpoint
/// (together with the dataset name and a method-config fingerprint) so
/// that concurrent seed cells and differently configured methods never
/// share a file and an aborted sweep resumes per cell.
DynamicPipeline RunDynamicPipeline(const MethodSpec& spec,
                                   const data::TransferDataset& dataset,
                                   const ExperimentScale& scale, Rng* rng,
                                   const std::string& cell_tag) {
  CPDG_TRACE_SPAN("bench/pipeline");
  DynamicPipeline out;
  dgnn::EncoderConfig config = MakeEncoderConfig(spec, dataset, scale);
  Rng enc_rng = rng->Split();
  out.encoder = std::make_unique<dgnn::DgnnEncoder>(
      config, &dataset.pretrain_graph, &enc_rng);

  bool eie = false;
  if (spec.pretrain) {
    CPDG_TRACE_SPAN("bench/pretrain");
    switch (spec.id) {
      case MethodId::kDyRep:
      case MethodId::kJodie:
      case MethodId::kTgn: {
        // Task-supervised pre-training: temporal link prediction.
        Rng dec_rng = rng->Split();
        dgnn::LinkPredictor pre_decoder(config.embed_dim, scale.embed_dim,
                                        &dec_rng);
        dgnn::TlpTrainOptions opts;
        opts.epochs = scale.pretrain_epochs;
        opts.batch_size = scale.batch_size;
        opts.learning_rate = scale.learning_rate;
        opts.negative_pool = dataset.pretrain_negative_pool;
        dgnn::TrainLinkPrediction(out.encoder.get(), &pre_decoder,
                                  dataset.pretrain_graph, opts, rng);
        break;
      }
      case MethodId::kDdgcl: {
        ssl::SslTrainOptions opts;
        opts.epochs = scale.pretrain_epochs;
        opts.batch_size = scale.batch_size;
        opts.learning_rate = scale.learning_rate;
        ssl::PretrainDdgcl(out.encoder.get(), dataset.pretrain_graph, opts,
                           rng);
        break;
      }
      case MethodId::kSelfRgnn: {
        ssl::SslTrainOptions opts;
        opts.epochs = scale.pretrain_epochs;
        opts.batch_size = scale.batch_size;
        opts.learning_rate = scale.learning_rate;
        ssl::PretrainSelfRgnn(out.encoder.get(), dataset.pretrain_graph,
                              opts, rng);
        break;
      }
      case MethodId::kCpdg: {
        core::CpdgConfig config_cpdg;
        config_cpdg.beta = spec.beta;
        config_cpdg.use_temporal_contrast = spec.cpdg_use_temporal_contrast;
        config_cpdg.use_structural_contrast =
            spec.cpdg_use_structural_contrast;
        config_cpdg.epochs = scale.pretrain_epochs;
        config_cpdg.batch_size = scale.batch_size;
        config_cpdg.learning_rate = scale.learning_rate;
        config_cpdg.negative_pool = dataset.pretrain_negative_pool;
        if (!scale.checkpoint_dir.empty()) {
          // The file name fingerprints everything that shapes the
          // pre-training trajectory but is NOT caught by the resume
          // validation (run shape and parameter shapes are); without it,
          // e.g. the contrast ablations would silently resume each
          // other's checkpoints.
          char cfg[96];
          std::snprintf(cfg, sizeof(cfg), "bb%d_tc%d_sc%d_b%g_lr%g",
                        static_cast<int>(spec.backbone),
                        config_cpdg.use_temporal_contrast ? 1 : 0,
                        config_cpdg.use_structural_contrast ? 1 : 0,
                        static_cast<double>(config_cpdg.beta),
                        static_cast<double>(config_cpdg.learning_rate));
          config_cpdg.checkpoint_path =
              scale.checkpoint_dir + "/" +
              SanitizeFileComponent(dataset.name) + "_" + cell_tag + "_" +
              cfg + ".ckpt";
          config_cpdg.checkpoint_every_batches =
              scale.checkpoint_every_batches;
          config_cpdg.resume = true;
        }
        Rng dec_rng = rng->Split();
        dgnn::LinkPredictor pre_decoder(config.embed_dim, scale.embed_dim,
                                        &dec_rng);
        core::CpdgPretrainer pretrainer(config_cpdg, rng);
        core::PretrainResult result = pretrainer.Pretrain(
            out.encoder.get(), &pre_decoder, dataset.pretrain_graph);
        LogTelemetry("CPDG pretrain", result.log);
        out.checkpoints = std::move(result.checkpoints);
        eie = spec.cpdg_use_eie;
        break;
      }
      default:
        CPDG_CHECK(false) << "static method in dynamic pipeline";
    }
  }

  // Downstream fine-tuning (full fine-tuning; optionally EIE-enhanced).
  CPDG_TRACE_SPAN("bench/finetune");
  out.encoder->AttachGraph(&dataset.downstream_train_graph);
  core::FineTuneConfig ft;
  ft.train.epochs = scale.finetune_epochs;
  ft.train.batch_size = scale.batch_size;
  ft.train.learning_rate = scale.learning_rate;
  ft.train.negative_pool = dataset.downstream_negative_pool;
  ft.use_eie = eie && !out.checkpoints.empty();
  ft.eie_variant = spec.eie_variant;
  ft.eie_dim = scale.embed_dim;
  ft.decoder_hidden = scale.embed_dim;
  train::TrainTelemetry finetune_telemetry;
  out.model = std::make_unique<core::FineTunedModel>(core::FineTuneLinkPrediction(
      out.encoder.get(), dataset.downstream_train_graph, ft,
      out.checkpoints.empty() ? nullptr : &out.checkpoints, rng,
      &finetune_telemetry));
  LogTelemetry("fine-tune", finetune_telemetry);
  return out;
}

LinkPredResult EvaluateDynamic(DynamicPipeline* pipeline,
                               const data::TransferDataset& dataset,
                               const ExperimentScale& scale, Rng* rng,
                               bool inductive) {
  CPDG_TRACE_SPAN("bench/eval");
  eval::ScoreFn score = [&](const std::vector<NodeId>& srcs,
                            const std::vector<NodeId>& dsts,
                            const std::vector<double>& times) {
    return pipeline->model->ScoreLogits(pipeline->encoder.get(), srcs, dsts,
                                        times);
  };
  // Validation events advance memory only (no model selection here: all
  // methods use fixed hyper-parameters).
  eval::EvaluateDynamicLinkPrediction(
      pipeline->encoder.get(), score, dataset.downstream_val_events,
      dataset.downstream_negative_pool, scale.batch_size, rng);

  std::unordered_set<NodeId> seen;
  if (inductive) {
    seen = eval::CollectNodes(dataset.downstream_train_graph.events());
    for (const Event& e : dataset.downstream_val_events) {
      // Validation nodes are also "seen" by test time.
      seen.insert(e.src);
      seen.insert(e.dst);
    }
  }
  eval::LinkPredictionMetrics metrics = eval::EvaluateDynamicLinkPrediction(
      pipeline->encoder.get(), score, dataset.downstream_test_events,
      dataset.downstream_negative_pool, scale.batch_size, rng,
      inductive ? &seen : nullptr);
  return {metrics.auc, metrics.ap};
}

LinkPredResult RunStaticLinkPrediction(const MethodSpec& spec,
                                       const data::TransferDataset& dataset,
                                       const ExperimentScale& scale,
                                       Rng* rng, bool inductive) {
  static_gnn::StaticGnnEncoder::Config config;
  switch (spec.id) {
    case MethodId::kGraphSage:
    case MethodId::kDgi:
    case MethodId::kGptGnn:
      config.type = static_gnn::StaticGnnType::kGraphSage;
      break;
    case MethodId::kGat:
      config.type = static_gnn::StaticGnnType::kGat;
      break;
    case MethodId::kGin:
      config.type = static_gnn::StaticGnnType::kGin;
      break;
    default:
      CPDG_CHECK(false) << "dynamic method in static pipeline";
  }
  config.num_nodes = dataset.num_nodes;
  config.feature_dim = scale.embed_dim;
  config.hidden_dim = scale.embed_dim;
  config.embed_dim = scale.embed_dim;
  // Static encoders sample a full two-hop tree per query (n*g*g feature
  // gathers); cap the fan-out so the baselines stay CPU-cheap.
  config.num_neighbors = std::min<int64_t>(5, scale.num_neighbors);

  Rng enc_rng = rng->Split();
  static_gnn::StaticGnnEncoder encoder(config, &enc_rng);

  double inf = std::numeric_limits<double>::infinity();
  graph::StaticSnapshot pre_snapshot =
      graph::StaticSnapshot::FromTemporalGraph(dataset.pretrain_graph, inf);
  encoder.AttachSnapshot(&pre_snapshot);

  static_gnn::StaticTrainOptions pre_opts;
  pre_opts.steps = 60 * scale.pretrain_epochs;
  pre_opts.learning_rate = scale.learning_rate;
  pre_opts.negative_pool = dataset.pretrain_negative_pool;
  if (spec.pretrain) {
    switch (spec.id) {
      case MethodId::kDgi: {
        std::vector<NodeId> train_nodes =
            dataset.pretrain_graph.NodesBefore(inf);
        static_gnn::TrainDgi(&encoder, train_nodes, pre_opts, rng);
        break;
      }
      case MethodId::kGptGnn:
        static_gnn::TrainGptGnn(&encoder, dataset.pretrain_graph.events(),
                                pre_opts, rng);
        break;
      default: {
        Rng dec_rng = rng->Split();
        ts::Mlp pre_decoder({2 * config.embed_dim, config.embed_dim, 1},
                            &dec_rng);
        static_gnn::TrainLinkPredictionStatic(
            &encoder, &pre_decoder, dataset.pretrain_graph.events(),
            pre_opts, rng);
        break;
      }
    }
  }

  // Fine-tune with a fresh decoder on the downstream snapshot.
  graph::StaticSnapshot down_snapshot =
      graph::StaticSnapshot::FromTemporalGraph(
          dataset.downstream_train_graph, inf);
  encoder.AttachSnapshot(&down_snapshot);
  Rng dec_rng = rng->Split();
  ts::Mlp decoder({2 * config.embed_dim, config.embed_dim, 1}, &dec_rng);
  static_gnn::StaticTrainOptions ft_opts;
  ft_opts.steps = 60 * scale.finetune_epochs;
  ft_opts.learning_rate = scale.learning_rate;
  ft_opts.negative_pool = dataset.downstream_negative_pool;
  static_gnn::TrainLinkPredictionStatic(
      &encoder, &decoder, dataset.downstream_train_graph.events(), ft_opts,
      rng);

  // Evaluate on test events with static embeddings.
  std::unordered_set<NodeId> seen;
  if (inductive) {
    seen = eval::CollectNodes(dataset.downstream_train_graph.events());
    for (const Event& e : dataset.downstream_val_events) {
      seen.insert(e.src);
      seen.insert(e.dst);
    }
  }
  std::vector<eval::ScoredLabel> samples;
  const auto& tests = dataset.downstream_test_events;
  for (size_t start = 0; start < tests.size();
       start += static_cast<size_t>(scale.batch_size)) {
    size_t end = std::min(tests.size(),
                          start + static_cast<size_t>(scale.batch_size));
    std::vector<NodeId> srcs, dsts, negs;
    for (size_t i = start; i < end; ++i) {
      const Event& e = tests[i];
      if (inductive && seen.count(e.src) != 0 && seen.count(e.dst) != 0) {
        continue;
      }
      srcs.push_back(e.src);
      dsts.push_back(e.dst);
      negs.push_back(dgnn::SampleNegative(dataset.downstream_negative_pool,
                                          dataset.num_nodes, e.dst, rng));
    }
    if (srcs.empty()) continue;
    ts::Tensor z_src = encoder.ComputeEmbeddings(srcs, rng);
    ts::Tensor z_dst = encoder.ComputeEmbeddings(dsts, rng);
    ts::Tensor z_neg = encoder.ComputeEmbeddings(negs, rng);
    ts::Tensor pos = ts::Sigmoid(
        static_gnn::StaticEdgeLogits(decoder, z_src, z_dst));
    ts::Tensor neg = ts::Sigmoid(
        static_gnn::StaticEdgeLogits(decoder, z_src, z_neg));
    for (int64_t i = 0; i < pos.rows(); ++i) {
      samples.push_back({static_cast<double>(pos.at(i, 0)), 1});
      samples.push_back({static_cast<double>(neg.at(i, 0)), 0});
    }
  }
  LinkPredResult result;
  if (!samples.empty()) {
    result.auc = eval::RocAuc(samples);
    result.ap = eval::AveragePrecision(samples);
  }
  return result;
}

}  // namespace

LinkPredResult RunLinkPrediction(const MethodSpec& spec,
                                 const data::TransferDataset& dataset,
                                 const ExperimentScale& scale, uint64_t seed,
                                 bool inductive) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 17);
  if (IsStaticMethod(spec.id)) {
    return RunStaticLinkPrediction(spec, dataset, scale, &rng, inductive);
  }
  std::string cell_tag =
      std::string(inductive ? "lpind_s" : "lp_s") + std::to_string(seed);
  DynamicPipeline pipeline =
      RunDynamicPipeline(spec, dataset, scale, &rng, cell_tag);
  return EvaluateDynamic(&pipeline, dataset, scale, &rng, inductive);
}

double RunNodeClassification(const MethodSpec& spec,
                             const data::TransferDataset& dataset,
                             const ExperimentScale& scale, uint64_t seed) {
  CPDG_CHECK(!IsStaticMethod(spec.id));
  Rng rng(seed * 0xD1B54A32D192ED03ULL + 29);
  DynamicPipeline pipeline = RunDynamicPipeline(
      spec, dataset, scale, &rng, "nc_s" + std::to_string(seed));

  // Stream all downstream events (train + val + test) from a fresh memory
  // and classify labeled events with a logistic head.
  std::vector<Event> all_events = dataset.downstream_train_graph.events();
  double train_end = all_events.empty()
                         ? 0.0
                         : all_events.back().time + 1e-9;
  all_events.insert(all_events.end(), dataset.downstream_val_events.begin(),
                    dataset.downstream_val_events.end());
  double test_start = dataset.downstream_test_events.empty()
                          ? train_end
                          : dataset.downstream_test_events.front().time;
  all_events.insert(all_events.end(),
                    dataset.downstream_test_events.begin(),
                    dataset.downstream_test_events.end());

  pipeline.encoder->memory().Reset();
  dgnn::DgnnEncoder* encoder = pipeline.encoder.get();
  core::FineTunedModel* model = pipeline.model.get();
  eval::EmbedFn embed = [encoder, model](const std::vector<NodeId>& nodes,
                                         const std::vector<double>& times) {
    return model->Embed(encoder, nodes, times);
  };
  eval::NodeClassificationMetrics metrics =
      eval::EvaluateDynamicNodeClassification(
          encoder, embed, all_events, train_end, test_start,
          scale.batch_size, /*head_epochs=*/120, /*head_lr=*/1e-2f, &rng);
  return metrics.auc;
}

AggregatedResult RunLinkPredictionSeeds(const MethodSpec& spec,
                                        const data::TransferDataset& dataset,
                                        const ExperimentScale& scale,
                                        bool inductive) {
  // Seed-level fan-out: every cell derives its entire stream from
  // Rng(seed * const + offset), so cells are independent and can run on
  // any worker. Results are collected per seed and merged into the
  // RunningStats in seed order, making the aggregate bitwise identical at
  // any thread count.
  std::vector<LinkPredResult> results(static_cast<size_t>(scale.num_seeds));
  util::ThreadPool::Global().ParallelFor(
      0, scale.num_seeds, /*grain=*/1, [&](int64_t lo, int64_t hi) {
        for (int64_t s = lo; s < hi; ++s) {
          results[static_cast<size_t>(s)] =
              RunLinkPrediction(spec, dataset, scale, 1000 + s, inductive);
        }
      });
  AggregatedResult agg;
  for (const LinkPredResult& r : results) {
    agg.auc.Add(r.auc);
    agg.ap.Add(r.ap);
  }
  return agg;
}

RunningStats RunNodeClassificationSeeds(const MethodSpec& spec,
                                        const data::TransferDataset& dataset,
                                        const ExperimentScale& scale) {
  // Same seed fan-out and seed-order merge as RunLinkPredictionSeeds.
  std::vector<double> aucs(static_cast<size_t>(scale.num_seeds));
  util::ThreadPool::Global().ParallelFor(
      0, scale.num_seeds, /*grain=*/1, [&](int64_t lo, int64_t hi) {
        for (int64_t s = lo; s < hi; ++s) {
          aucs[static_cast<size_t>(s)] =
              RunNodeClassification(spec, dataset, scale, 2000 + s);
        }
      });
  RunningStats stats;
  for (double auc : aucs) stats.Add(auc);
  return stats;
}

}  // namespace cpdg::bench
