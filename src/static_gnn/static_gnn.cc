#include "static_gnn/static_gnn.h"

#include <algorithm>

#include "tensor/losses.h"
#include "tensor/ops.h"
#include "train/link_batch.h"
#include "train/train_loop.h"
#include "util/check.h"

namespace cpdg::static_gnn {

namespace ts = cpdg::tensor;

const char* StaticGnnTypeName(StaticGnnType type) {
  switch (type) {
    case StaticGnnType::kGraphSage:
      return "GraphSAGE";
    case StaticGnnType::kGat:
      return "GAT";
    case StaticGnnType::kGin:
      return "GIN";
  }
  return "?";
}

StaticGnnEncoder::StaticGnnEncoder(const Config& config, Rng* rng)
    : config_(config) {
  CPDG_CHECK_GT(config.num_nodes, 0);
  features_ = RegisterParameter(ts::Tensor::RandomNormal(
      config.num_nodes, config.feature_dim, 0.1f, rng));

  int64_t dims[3] = {config.feature_dim, config.hidden_dim, config.embed_dim};
  for (int layer = 0; layer < 2; ++layer) {
    int64_t in = dims[layer], out = dims[layer + 1];
    switch (config_.type) {
      case StaticGnnType::kGraphSage:
        // W on [h_self || mean(h_nbr)].
        sage_linears_.push_back(
            std::make_unique<ts::Linear>(2 * in, out, rng));
        RegisterModule(sage_linears_.back().get());
        break;
      case StaticGnnType::kGat:
        gat_layers_.push_back(std::make_unique<ts::GroupedAttentionLayer>(
            in, in, out, out, rng));
        RegisterModule(gat_layers_.back().get());
        break;
      case StaticGnnType::kGin:
        gin_mlps_.push_back(std::make_unique<ts::Mlp>(
            std::vector<int64_t>{in, out, out}, rng));
        RegisterModule(gin_mlps_.back().get());
        break;
    }
  }
}

void StaticGnnEncoder::AttachSnapshot(const StaticSnapshot* snapshot) {
  CPDG_CHECK(snapshot != nullptr);
  CPDG_CHECK_LE(snapshot->num_nodes(), config_.num_nodes);
  snapshot_ = snapshot;
}

tensor::Tensor StaticGnnEncoder::Features(
    const std::vector<NodeId>& nodes) const {
  std::vector<int64_t> idx(nodes.begin(), nodes.end());
  return ts::Gather(features_, idx);
}

tensor::Tensor StaticGnnEncoder::Aggregate(
    int layer, const tensor::Tensor& self, const tensor::Tensor& neighbors,
    const std::vector<uint8_t>& valid) const {
  int64_t n = self.rows();
  int64_t g = config_.num_neighbors;
  CPDG_CHECK_EQ(neighbors.rows(), n * g);

  switch (config_.type) {
    case StaticGnnType::kGraphSage: {
      ts::Tensor mean = ts::GroupedMean(neighbors, g, valid);  // [n, d]
      ts::Tensor h = sage_linears_[static_cast<size_t>(layer)]->Forward(
          ts::Concat(self, mean));
      return ts::Relu(h);
    }
    case StaticGnnType::kGat: {
      ts::Tensor att = gat_layers_[static_cast<size_t>(layer)]->Forward(
          self, neighbors, g, valid);
      return ts::Relu(att);
    }
    case StaticGnnType::kGin: {
      // (1+eps) h_self + sum(h_nbr) with eps = 0, then MLP. The sum is
      // the masked mean rescaled by the neighbor count (here all-or-none
      // since sampling is with replacement).
      ts::Tensor sum = ts::MulScalar(ts::GroupedMean(neighbors, g, valid),
                                     static_cast<float>(g));
      return gin_mlps_[static_cast<size_t>(layer)]->Forward(
          ts::Add(self, sum));
    }
  }
  (void)n;
  CPDG_CHECK(false) << "unreachable";
  return self;
}

tensor::Tensor StaticGnnEncoder::ComputeEmbeddings(
    const std::vector<NodeId>& nodes, Rng* rng) const {
  CPDG_CHECK(snapshot_ != nullptr) << "AttachSnapshot before embedding";
  CPDG_CHECK(rng != nullptr);
  CPDG_CHECK(!nodes.empty());
  int64_t g = config_.num_neighbors;
  int64_t n = static_cast<int64_t>(nodes.size());

  // Sample the two-hop tree: hop1 neighbors of roots, hop2 neighbors of
  // hop1 nodes. Padding slots reuse node 0 but are masked via `valid`.
  auto sample_hop = [&](const std::vector<NodeId>& roots,
                        std::vector<NodeId>* out,
                        std::vector<uint8_t>* valid) {
    out->assign(roots.size() * static_cast<size_t>(g), 0);
    valid->assign(roots.size() * static_cast<size_t>(g), 0);
    for (size_t i = 0; i < roots.size(); ++i) {
      auto view = snapshot_->Neighbors(roots[i]);
      if (view.empty()) continue;
      for (int64_t j = 0; j < g; ++j) {
        size_t slot = i * static_cast<size_t>(g) + static_cast<size_t>(j);
        (*out)[slot] =
            view[static_cast<int64_t>(rng->NextBounded(
                static_cast<uint64_t>(view.count)))];
        (*valid)[slot] = 1;
      }
    }
  };

  std::vector<NodeId> hop1, hop2;
  std::vector<uint8_t> valid1, valid2;
  sample_hop(nodes, &hop1, &valid1);
  sample_hop(hop1, &hop2, &valid2);

  // Layer 1: update hop1 features from hop2, and root features from raw
  // hop1 features... following the standard two-layer scheme:
  //   h1(hop1) = Agg1(x(hop1), x(hop2))
  //   h2(root) = Agg2(Agg1(x(root), x(hop1)), h1(hop1))
  ts::Tensor x_root = Features(nodes);
  ts::Tensor x_hop1 = Features(hop1);
  ts::Tensor x_hop2 = Features(hop2);

  ts::Tensor h_root_l1 = Aggregate(0, x_root, x_hop1, valid1);
  ts::Tensor h_hop1_l1 = Aggregate(0, x_hop1, x_hop2, valid2);
  ts::Tensor z = Aggregate(1, h_root_l1, h_hop1_l1, valid1);
  CPDG_CHECK_EQ(z.rows(), n);
  return z;
}

tensor::Tensor StaticEdgeLogits(const tensor::Mlp& decoder,
                                const tensor::Tensor& z_src,
                                const tensor::Tensor& z_dst) {
  return decoder.Forward(ts::Concat(z_src, z_dst));
}

namespace {

/// Draws a batch of positive events and matched negatives.
void SampleEdgeBatch(const std::vector<graph::Event>& events,
                     const StaticTrainOptions& options, int64_t num_nodes,
                     Rng* rng, std::vector<NodeId>* srcs,
                     std::vector<NodeId>* dsts, std::vector<NodeId>* negs) {
  int64_t b = std::min<int64_t>(options.batch_size,
                                static_cast<int64_t>(events.size()));
  for (int64_t i = 0; i < b; ++i) {
    const graph::Event& e = events[rng->NextBounded(events.size())];
    srcs->push_back(e.src);
    dsts->push_back(e.dst);
    NodeId neg;
    if (options.negative_pool.empty()) {
      neg = static_cast<NodeId>(
          rng->NextBounded(static_cast<uint64_t>(num_nodes)));
    } else {
      neg = options.negative_pool[rng->NextBounded(
          options.negative_pool.size())];
    }
    negs->push_back(neg);
  }
}

/// Shared RunSteps wrapper for the static loops: runs `options.steps`
/// sampled-batch steps and returns the mean loss of the last 10 steps
/// (the historical convergence proxy these loops report).
double RunStaticSteps(std::vector<ts::Tensor> params,
                      const StaticTrainOptions& options, const char* label,
                      const std::function<ts::Tensor()>& loss_fn) {
  train::TrainLoopOptions loop_options;
  loop_options.learning_rate = options.learning_rate;
  loop_options.grad_clip = options.grad_clip;
  loop_options.log_label = label;

  double recent = 0.0;
  int64_t recent_count = 0;
  train::TrainLoop loop(std::move(params), loop_options);
  loop.RunSteps(options.steps,
                [&](const train::BatchContext& ctx)
                    -> std::optional<ts::Tensor> {
                  ts::Tensor loss = loss_fn();
                  if (ctx.batch_index >= options.steps - 10) {
                    recent += static_cast<double>(loss.item());
                    ++recent_count;
                  }
                  return loss;
                });
  return recent_count > 0 ? recent / static_cast<double>(recent_count) : 0.0;
}

}  // namespace

double TrainLinkPredictionStatic(StaticGnnEncoder* encoder,
                                 tensor::Mlp* decoder,
                                 const std::vector<graph::Event>&
                                     positive_events,
                                 const StaticTrainOptions& options,
                                 Rng* rng) {
  CPDG_CHECK(encoder != nullptr);
  CPDG_CHECK(decoder != nullptr);
  CPDG_CHECK(!positive_events.empty());

  std::vector<ts::Tensor> params = encoder->Parameters();
  std::vector<ts::Tensor> dec = decoder->Parameters();
  params.insert(params.end(), dec.begin(), dec.end());

  return RunStaticSteps(std::move(params), options, "static-LP", [&]() {
    std::vector<NodeId> srcs, dsts, negs;
    SampleEdgeBatch(positive_events, options,
                    encoder->config().num_nodes, rng, &srcs, &dsts, &negs);
    ts::Tensor z_src = encoder->ComputeEmbeddings(srcs, rng);
    ts::Tensor z_dst = encoder->ComputeEmbeddings(dsts, rng);
    ts::Tensor z_neg = encoder->ComputeEmbeddings(negs, rng);
    ts::Tensor pos_logits = StaticEdgeLogits(*decoder, z_src, z_dst);
    ts::Tensor neg_logits = StaticEdgeLogits(*decoder, z_src, z_neg);
    return train::LinkBceLoss(pos_logits, neg_logits);
  });
}

double TrainDgi(StaticGnnEncoder* encoder,
                const std::vector<NodeId>& train_nodes,
                const StaticTrainOptions& options, Rng* rng) {
  CPDG_CHECK(encoder != nullptr);
  CPDG_CHECK(!train_nodes.empty());

  // Bilinear discriminator D(h, s) = h W s^T.
  Rng init_rng = rng->Split();
  ts::Tensor w = ts::Tensor::XavierUniform(encoder->config().embed_dim,
                                           encoder->config().embed_dim,
                                           &init_rng, true);
  std::vector<ts::Tensor> params = encoder->Parameters();
  params.push_back(w);

  return RunStaticSteps(std::move(params), options, "DGI", [&]() {
    int64_t b = std::min<int64_t>(options.batch_size,
                                  static_cast<int64_t>(train_nodes.size()));
    std::vector<NodeId> nodes;
    // Corrupted view: embeddings of a *shuffled* node set play the role of
    // DGI's feature-shuffled graph.
    std::vector<NodeId> corrupt;
    for (int64_t i = 0; i < b; ++i) {
      nodes.push_back(train_nodes[rng->NextBounded(train_nodes.size())]);
      corrupt.push_back(train_nodes[rng->NextBounded(train_nodes.size())]);
    }
    ts::Tensor h = encoder->ComputeEmbeddings(nodes, rng);
    ts::Tensor h_corrupt = encoder->ComputeEmbeddings(corrupt, rng);
    ts::Tensor summary = ts::Sigmoid(ts::ColMean(h));  // [1, d]
    ts::Tensor ws = ts::MatMul(w, ts::Transpose(summary));  // [d, 1]
    ts::Tensor pos_logits = ts::MatMul(h, ws);               // [b, 1]
    ts::Tensor neg_logits = ts::MatMul(h_corrupt, ws);
    return train::LinkBceLoss(pos_logits, neg_logits);
  });
}

double TrainGptGnn(StaticGnnEncoder* encoder,
                   const std::vector<graph::Event>& events,
                   const StaticTrainOptions& options, Rng* rng) {
  CPDG_CHECK(encoder != nullptr);
  CPDG_CHECK(!events.empty());

  // Edge-generation head + attribute-generation head.
  Rng init_rng = rng->Split();
  ts::Mlp edge_head({2 * encoder->config().embed_dim,
                     encoder->config().embed_dim, 1},
                    &init_rng);
  ts::Mlp attr_head({encoder->config().embed_dim,
                     encoder->config().feature_dim},
                    &init_rng);
  std::vector<ts::Tensor> params = encoder->Parameters();
  for (ts::Mlp* head : {&edge_head, &attr_head}) {
    std::vector<ts::Tensor> p = head->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }

  return RunStaticSteps(std::move(params), options, "GPT-GNN", [&]() {
    std::vector<NodeId> srcs, dsts, negs;
    SampleEdgeBatch(events, options, encoder->config().num_nodes, rng, &srcs,
                    &dsts, &negs);
    ts::Tensor z_src = encoder->ComputeEmbeddings(srcs, rng);
    ts::Tensor z_dst = encoder->ComputeEmbeddings(dsts, rng);
    ts::Tensor z_neg = encoder->ComputeEmbeddings(negs, rng);

    // Edge generation: discriminate held-out edges from negatives.
    ts::Tensor pos_logits = StaticEdgeLogits(edge_head, z_src, z_dst);
    ts::Tensor neg_logits = StaticEdgeLogits(edge_head, z_src, z_neg);
    ts::Tensor edge_loss = train::LinkBceLoss(pos_logits, neg_logits);

    // Attribute generation: reconstruct the (detached) input features of
    // the source nodes from their embeddings.
    ts::Tensor target_attr = encoder->Features(srcs).Detach();
    ts::Tensor attr_loss =
        ts::MseLoss(attr_head.Forward(z_src), target_attr);

    return ts::Add(edge_loss, attr_loss);
  });
}

}  // namespace cpdg::static_gnn
