#ifndef CPDG_STATIC_GNN_STATIC_GNN_H_
#define CPDG_STATIC_GNN_STATIC_GNN_H_

#include <memory>
#include <vector>

#include "graph/temporal_graph.h"
#include "tensor/nn.h"
#include "util/rng.h"

namespace cpdg::static_gnn {

using graph::NodeId;
using graph::StaticSnapshot;

/// \brief The three task-supervised static GNN baselines of Sec. V-B.
enum class StaticGnnType { kGraphSage, kGat, kGin };

const char* StaticGnnTypeName(StaticGnnType type);

/// \brief Two-layer static GNN over a graph snapshot with neighbor
/// sampling.
///
/// The paper's datasets carry no input node features, so the encoder owns
/// a trainable per-node embedding table used as layer-0 features (the
/// standard featureless-graph setup). Aggregation follows the baseline
/// family: mean-concat (GraphSAGE), attention (GAT), or sum-MLP (GIN).
class StaticGnnEncoder : public tensor::Module {
 public:
  struct Config {
    StaticGnnType type = StaticGnnType::kGraphSage;
    int64_t num_nodes = 0;
    int64_t feature_dim = 32;
    int64_t hidden_dim = 32;
    int64_t embed_dim = 32;
    int64_t num_neighbors = 5;
  };

  StaticGnnEncoder(const Config& config, Rng* rng);

  const Config& config() const { return config_; }

  /// Points the encoder at the snapshot it should aggregate over.
  void AttachSnapshot(const StaticSnapshot* snapshot);

  /// \brief Two-hop sampled-aggregation embeddings, [n, embed_dim].
  /// Neighbor sampling uses `rng` (uniform over snapshot neighbors).
  tensor::Tensor ComputeEmbeddings(const std::vector<NodeId>& nodes,
                                   Rng* rng) const;

  /// Raw layer-0 feature rows for `nodes` (trainable table lookups).
  tensor::Tensor Features(const std::vector<NodeId>& nodes) const;

  /// The trainable feature table, exposed for DGI-style corruption.
  const tensor::Tensor& feature_table() const { return features_; }

 private:
  /// One aggregation layer: inputs [n, in] for roots and [n*g, in] for
  /// sampled neighbor features (valid mask for padding).
  tensor::Tensor Aggregate(int layer, const tensor::Tensor& self,
                           const tensor::Tensor& neighbors,
                           const std::vector<uint8_t>& valid) const;

  Config config_;
  const StaticSnapshot* snapshot_ = nullptr;
  tensor::Tensor features_;  // [num_nodes, feature_dim]
  // Per-layer parameters (layer 0: feature_dim -> hidden, 1: -> embed).
  std::vector<std::unique_ptr<tensor::Linear>> sage_linears_;
  std::vector<std::unique_ptr<tensor::GroupedAttentionLayer>> gat_layers_;
  std::vector<std::unique_ptr<tensor::Mlp>> gin_mlps_;
};

/// \brief Self-supervised / pre-training strategies for static GNNs.
///
/// Together with plain link-prediction pre-training these cover the static
/// baselines of Sec. V-B:
///  - TrainLinkPredictionStatic: GraphSAGE / GAT / GIN pre-training task;
///  - TrainDgi: Deep Graph Infomax (local-global mutual information);
///  - TrainGptGnn: generative pre-training (edge + attribute generation).
struct StaticTrainOptions {
  int64_t steps = 300;
  int64_t batch_size = 128;
  float learning_rate = 1e-3f;
  float grad_clip = 5.0f;
  std::vector<NodeId> negative_pool;
};

/// \brief Link-prediction training on a snapshot: positive pairs are drawn
/// from `positive_events`, negatives uniformly from the pool. Trains
/// encoder + decoder in place; returns the mean loss of the last 10 steps.
double TrainLinkPredictionStatic(StaticGnnEncoder* encoder,
                                 tensor::Mlp* decoder,
                                 const std::vector<graph::Event>&
                                     positive_events,
                                 const StaticTrainOptions& options, Rng* rng);

/// \brief DGI pre-training: maximizes agreement between node embeddings
/// and the graph summary while discriminating against embeddings computed
/// from row-shuffled (corrupted) features.
double TrainDgi(StaticGnnEncoder* encoder, const std::vector<NodeId>&
                    train_nodes,
                const StaticTrainOptions& options, Rng* rng);

/// \brief GPT-GNN-style generative pre-training: masked edge generation
/// (score held-out neighbors against negatives) plus attribute generation
/// (reconstruct the node's own input features from its embedding).
double TrainGptGnn(StaticGnnEncoder* encoder,
                   const std::vector<graph::Event>& events,
                   const StaticTrainOptions& options, Rng* rng);

/// \brief Edge scorer head shared by the static pipelines:
/// logits = MLP([z_u || z_v]).
tensor::Tensor StaticEdgeLogits(const tensor::Mlp& decoder,
                                const tensor::Tensor& z_src,
                                const tensor::Tensor& z_dst);

}  // namespace cpdg::static_gnn

#endif  // CPDG_STATIC_GNN_STATIC_GNN_H_
