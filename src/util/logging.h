#ifndef CPDG_UTIL_LOGGING_H_
#define CPDG_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace cpdg {

/// \brief Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

#define CPDG_LOG(level)                                              \
  ::cpdg::internal::LogMessage(::cpdg::LogLevel::k##level, __FILE__, \
                               __LINE__)

}  // namespace cpdg

#endif  // CPDG_UTIL_LOGGING_H_
