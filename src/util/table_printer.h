#ifndef CPDG_UTIL_TABLE_PRINTER_H_
#define CPDG_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace cpdg {

/// \brief Renders aligned ASCII tables, used by the benchmark harness to
/// print paper-style result tables.
///
/// Usage:
///   TablePrinter t({"Method", "AUC", "AP"});
///   t.AddRow({"TGN", "0.8589±0.0025", "0.8533±0.0016"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Adds a horizontal separator row.
  void AddSeparator();

  /// Writes the table with column alignment and separators.
  void Print(std::ostream& os) const;

  /// \brief Formats "mean±std" with 4 decimal places, matching the paper's
  /// result style.
  static std::string FormatMeanStd(double mean, double stddev);

  /// \brief Formats a floating point value with the given precision.
  static std::string FormatFloat(double value, int precision = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace cpdg

#endif  // CPDG_UTIL_TABLE_PRINTER_H_
