#ifndef CPDG_UTIL_FAULT_INJECTION_H_
#define CPDG_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <optional>

namespace cpdg::util {

/// \brief Test-only fault injection consulted by the atomic-file layer
/// (util::AtomicWriteFile). Arms simulated storage failures so the
/// fault-tolerance suite can prove that a crash or corruption at any point
/// of a checkpoint save leaves either the old file or the new file fully
/// intact, never torn state.
///
/// Faults are installed either with an RAII FaultInjector::Scope (tests) or
/// via environment variables read once at first use (whole-process runs):
///   CPDG_FAULT_CRASH_AFTER_BYTES  stop the payload write after N bytes and
///                                 fail the save, as if the process died
///   CPDG_FAULT_FAIL_RENAME=1      fail the final publish rename
///   CPDG_FAULT_BITFLIP_BYTE       XOR payload byte N (mod size) with
///                                 CPDG_FAULT_BITFLIP_MASK (default 0x01)
///                                 before it reaches the disk — silent
///                                 corruption the CRC layer must catch
///
/// Serving-path faults (consumed one-shot through the Consume* methods, so
/// a single injected fault fires exactly once no matter how many shard
/// executors race on it):
///   CPDG_FAULT_SERVE_STALL_MS     the next serving executor batch stalls
///                                 for N ms — a wedged shard the watchdog
///                                 must detect and restart
///   CPDG_FAULT_SERVE_REPLAY_FAIL=1  the next shard advance-replay fails,
///                                 leaving that shard behind the fleet's
///                                 memory version until it is restarted
///   CPDG_FAULT_SERVE_RELOAD_CORRUPT=N  the next N shard checkpoint
///                                 reloads fail as if the artifact were
///                                 corrupt (restart retry drill)
///
/// The injector is never consulted on read paths of the storage layer;
/// corruption testing of loads is done by mutating the file directly.
class FaultInjector {
 public:
  struct Config {
    /// >= 0: the payload write stops after this many bytes and the save
    /// fails with IoError, leaving a partial temp file behind.
    int64_t crash_after_bytes = -1;
    /// Fail the temp -> target rename (crash between write and publish).
    bool fail_rename = false;
    /// >= 0: flip bits of the payload byte at this offset (mod payload
    /// size) on its way to disk; the save itself reports success.
    int64_t bitflip_byte = -1;
    uint8_t bitflip_mask = 0x01;
    /// > 0: the next serving executor batch sleeps this long (one-shot).
    int64_t serve_stall_millis = 0;
    /// The next shard advance-replay reports failure (one-shot).
    bool serve_replay_fail = false;
    /// > 0: the next N shard checkpoint reloads fail with IoError.
    int64_t serve_reload_corrupt = 0;
  };

  /// \brief RAII installer; the previous config (or inactivity) is
  /// restored on destruction, so scopes nest.
  class Scope {
   public:
    explicit Scope(const Config& config);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    std::optional<Config> previous_;
  };

  /// Process-wide injector; initialized from the CPDG_FAULT_* environment
  /// variables on first access.
  static FaultInjector& Instance();

  /// Snapshot of the armed config, or nullopt when no fault is armed.
  std::optional<Config> active() const;

  /// \brief One-shot serving faults: each Consume* atomically disarms the
  /// fault it returns, so exactly one of any number of racing shard
  /// executors observes it. Returns 0/false when the fault is not armed.
  int64_t ConsumeServeStallMillis();
  bool ConsumeServeReplayFail();
  /// Decrements the reload-corruption budget; true while budget remains.
  bool ConsumeServeReloadCorrupt();

 private:
  FaultInjector();

  void Install(const std::optional<Config>& config);

  mutable std::mutex mu_;
  std::optional<Config> config_;
};

}  // namespace cpdg::util

#endif  // CPDG_UTIL_FAULT_INJECTION_H_
