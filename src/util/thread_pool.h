#ifndef CPDG_UTIL_THREAD_POOL_H_
#define CPDG_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cpdg::util {

/// \brief Fixed-size worker pool with a deterministic data-parallel
/// primitive.
///
/// The determinism contract: ParallelFor splits [begin, end) into chunks of
/// exactly `grain` elements (the last chunk may be shorter). Chunk
/// boundaries depend only on (begin, end, grain) — never on the worker
/// count or on scheduling — so any kernel where each chunk owns a disjoint
/// slice of its output produces bitwise-identical results at every thread
/// count, including the fully serial fallback. Chunks are assigned to
/// workers statically (chunk c runs on participant c mod Q, where
/// Q = min(P, num_chunks) — regions with fewer chunks than threads enroll
/// only as many participants as there are chunks, so surplus workers never
/// join the completion barrier); there is no work stealing.
///
/// Nested ParallelFor calls (from inside a chunk body) degrade to the
/// serial fallback on the calling thread, so parallel outer loops (e.g.
/// per-seed benchmark cells) can freely invoke parallel tensor kernels
/// without deadlock; the inner kernels run serially inside each worker.
class ThreadPool {
 public:
  /// Total parallelism including the calling thread: a pool of size P
  /// spawns P-1 worker threads and the caller executes the first stripe.
  /// num_threads == 1 spawns nothing and runs everything serially.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// \brief Invokes fn(chunk_begin, chunk_end) for every grain-sized chunk
  /// of [begin, end). Blocks until all chunks have run. The serial fallback
  /// iterates the identical chunk sequence in order, so per-chunk
  /// reductions merge identically at any thread count.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// \brief Process-wide pool used by the tensor kernels and the seed
  /// fan-out; sized by DefaultNumThreads() on first use.
  static ThreadPool& Global();

  /// \brief Replaces the global pool with one of the given size. Intended
  /// for benchmarks that sweep thread counts; must not be called while
  /// parallel work is in flight.
  static void SetGlobalNumThreads(int num_threads);

  /// \brief CPDG_NUM_THREADS environment knob if set (>= 1; 1 means fully
  /// serial), otherwise std::thread::hardware_concurrency().
  static int DefaultNumThreads();

 private:
  /// Shared state of one in-flight ParallelFor region.
  struct Region {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    int64_t begin = 0;
    int64_t grain = 0;
    int64_t num_chunks = 0;
    int64_t end = 0;
    int participants = 0;
    std::atomic<int> remaining{0};
  };

  void WorkerLoop(int worker_id);
  static void RunStripe(const Region& region, int participant);

  const int num_threads_;
  std::vector<std::thread> workers_;

  /// Serializes concurrent ParallelFor launches from distinct threads.
  std::mutex launch_mu_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Region* region_ = nullptr;  // guarded by mu_
  uint64_t region_gen_ = 0;   // guarded by mu_
  bool stop_ = false;         // guarded by mu_
};

}  // namespace cpdg::util

#endif  // CPDG_UTIL_THREAD_POOL_H_
