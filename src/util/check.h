#ifndef CPDG_UTIL_CHECK_H_
#define CPDG_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace cpdg::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "CPDG_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::abort();
}

/// Builds the optional streamed message for a failed check.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace cpdg::internal

/// \brief Aborts with a message if the condition is false.
///
/// Used for programming-error invariants (index bounds, shape mismatches in
/// internal code paths). User-facing fallible operations return Status
/// instead.
#define CPDG_CHECK(cond)                                                 \
  if (cond) {                                                            \
  } else                                                                 \
    ::cpdg::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define CPDG_CHECK_EQ(a, b) CPDG_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define CPDG_CHECK_NE(a, b) CPDG_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define CPDG_CHECK_LT(a, b) CPDG_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define CPDG_CHECK_LE(a, b) CPDG_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define CPDG_CHECK_GT(a, b) CPDG_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define CPDG_CHECK_GE(a, b) CPDG_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // CPDG_UTIL_CHECK_H_
