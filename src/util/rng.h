#ifndef CPDG_UTIL_RNG_H_
#define CPDG_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace cpdg {

/// \brief Deterministic 64-bit PRNG (SplitMix64 core, PCG-style output).
///
/// Every stochastic component of the library takes an explicit Rng so that
/// runs are bit-reproducible for a given seed, independent of call order in
/// unrelated components. The generator is small enough to copy freely.
class Rng {
 public:
  /// Constructs a generator from a seed; identical seeds give identical
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {
    // Warm up so that low-entropy seeds (0, 1, 2, ...) diverge immediately.
    NextUint64();
    NextUint64();
  }

  /// \brief Next raw 64-bit value (SplitMix64).
  uint64_t NextUint64() {
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// \brief Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// \brief Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    CPDG_CHECK_GT(bound, 0u);
    // Rejection-free modulo bias is negligible for our bounds (<< 2^32),
    // but use Lemire's multiply-shift to avoid it anyway.
    unsigned __int128 m =
        static_cast<unsigned __int128>(NextUint64()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  /// \brief Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi) {
    CPDG_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// \brief Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// \brief Standard normal sample (Box-Muller, one value per call).
  double NextGaussian();

  /// \brief Bernoulli(p) sample.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// \brief Exponential(rate) sample; rate > 0.
  double NextExponential(double rate);

  /// \brief Poisson(mean) sample via inversion (suitable for small means).
  int NextPoisson(double mean);

  /// \brief Samples an index in [0, weights.size()) proportionally to
  /// weights. Weights must be non-negative with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

  /// \brief Zipf-like sample over [0, n): P(i) proportional to
  /// 1/(i+1)^exponent. Used for power-law item popularity.
  size_t NextZipf(size_t n, double exponent);

  /// \brief Fisher-Yates shuffles the vector in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = NextBounded(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Derives an independent child generator; useful for splitting a
  /// seed across components without correlating their streams.
  Rng Split() { return Rng(NextUint64() ^ 0xD1B54A32D192ED03ULL); }

  /// \brief Derives the generator for substream (a, b) of `seed` without
  /// advancing any other generator. Used by the prefetching train loop to
  /// give batch (epoch=a, batch_index=b) its own stream: the stream depends
  /// only on the coordinates, never on which worker thread produced the
  /// batch or in what order batches were prepared, which is what makes
  /// prefetched runs bit-identical to serial ones.
  static Rng ForSubstream(uint64_t seed, uint64_t a, uint64_t b) {
    // Two rounds of the SplitMix64 finalizer over (seed, a, b); the odd
    // multiplicative constants decorrelate neighbouring coordinates.
    uint64_t z = seed ^ (a + 1) * 0xD1B54A32D192ED03ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z ^= (b + 1) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return Rng(z ^ (z >> 31));
  }

  /// \brief Complete generator state, checkpointable so a resumed training
  /// run draws the identical stream an uninterrupted run would have. The
  /// Box-Muller cache is part of the state: NextGaussian emits values in
  /// pairs and the spare must survive a checkpoint boundary.
  struct State {
    uint64_t state = 0;
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };

  State GetState() const {
    return {state_, has_cached_gaussian_, cached_gaussian_};
  }

  void SetState(const State& s) {
    state_ = s.state;
    has_cached_gaussian_ = s.has_cached_gaussian;
    cached_gaussian_ = s.cached_gaussian;
  }

 private:
  uint64_t state_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace cpdg

#endif  // CPDG_UTIL_RNG_H_
