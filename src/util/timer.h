#ifndef CPDG_UTIL_TIMER_H_
#define CPDG_UTIL_TIMER_H_

#include <chrono>

namespace cpdg::util {

/// \brief Monotonic wall-clock stopwatch. Backs the training-runtime
/// telemetry (per-epoch wall time) and is safe against system clock
/// adjustments, unlike std::chrono::system_clock.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}

  /// Restarts the stopwatch from now.
  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction / the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Milliseconds elapsed since construction / the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cpdg::util

#endif  // CPDG_UTIL_TIMER_H_
