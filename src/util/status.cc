#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace cpdg {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result::ValueOrDie on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace cpdg
