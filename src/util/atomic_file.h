#ifndef CPDG_UTIL_ATOMIC_FILE_H_
#define CPDG_UTIL_ATOMIC_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace cpdg::util {

/// \brief Writes `payload` to `path` atomically: the bytes are written to a
/// sibling temp file (`path` + ".tmp"), fsync'd, and renamed over the
/// target, with the containing directory fsync'd after the rename. Readers
/// therefore observe either the previous complete file or the new complete
/// file — never a torn mixture — and a crash at any point of the save
/// leaves the previous file untouched.
///
/// This is the single choke point every checkpoint/CSV writer in the repo
/// routes through; util::FaultInjector hooks into it to simulate
/// crash-after-N-bytes, failed renames and silent bit flips for the
/// fault-tolerance suite.
Status AtomicWriteFile(const std::string& path, std::string_view payload);

/// \brief Streaming variant of AtomicWriteFile for payloads too large to
/// materialize in memory (the storage event logs stream 10^7 events through
/// this). Bytes are appended to `path` + ".tmp"; Commit() fsyncs and
/// renames over the target, so readers still only ever observe a complete
/// file. Abort() (implicit in the destructor if never committed) discards
/// the temp file.
///
/// The same util::FaultInjector hooks as AtomicWriteFile apply:
/// crash-after-N-bytes (cumulative across Append calls, leaves a partial
/// temp file and fails), bit flips (the byte at the configured absolute
/// file offset is flipped in transit; the write still "succeeds"), and
/// failed renames at Commit().
class AtomicFileSink {
 public:
  AtomicFileSink() = default;
  ~AtomicFileSink();
  AtomicFileSink(const AtomicFileSink&) = delete;
  AtomicFileSink& operator=(const AtomicFileSink&) = delete;

  /// Creates/truncates the temp file. The fault configuration is captured
  /// here, once, like AtomicWriteFile does.
  Status Open(const std::string& path);

  /// Appends raw bytes; fails if not open or after a failed Append.
  Status Append(const void* data, size_t size);

  /// Total bytes appended so far (the offset the next Append writes at).
  int64_t bytes_written() const { return written_; }

  /// Fsync + rename + directory fsync. The sink is closed afterwards
  /// regardless of the outcome.
  Status Commit();

  /// Closes and unlinks the temp file; no-op if not open.
  void Abort();

 private:
  std::string path_;
  std::string tmp_;
  int fd_ = -1;
  int64_t written_ = 0;
  bool failed_ = false;
  // Captured fault config (empty string state encoded via fd_ < 0).
  bool has_fault_ = false;
  int64_t fault_crash_after_bytes_ = -1;
  int64_t fault_bitflip_byte_ = -1;
  uint8_t fault_bitflip_mask_ = 0;
  bool fault_fail_rename_ = false;
};

/// \brief Publishes an existing fully-written temp file over `path` with
/// the same durability and fault-injection semantics as the tail of
/// AtomicWriteFile: fsync(tmp), optional injected bit flip / rename
/// failure, rename, directory fsync. Used by writers that build their
/// payload in place via mmap (the storage adjacency shards) and therefore
/// cannot stream through AtomicFileSink.
Status AtomicPublishTempFile(const std::string& path, const std::string& tmp);

/// \brief Reads a whole file into `out`. Returns IoError if the file
/// cannot be opened or read.
Status ReadFileToString(const std::string& path, std::string* out);

/// \brief True if `path` exists (stat succeeds).
bool FileExists(const std::string& path);

}  // namespace cpdg::util

#endif  // CPDG_UTIL_ATOMIC_FILE_H_
