#ifndef CPDG_UTIL_ATOMIC_FILE_H_
#define CPDG_UTIL_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace cpdg::util {

/// \brief Writes `payload` to `path` atomically: the bytes are written to a
/// sibling temp file (`path` + ".tmp"), fsync'd, and renamed over the
/// target, with the containing directory fsync'd after the rename. Readers
/// therefore observe either the previous complete file or the new complete
/// file — never a torn mixture — and a crash at any point of the save
/// leaves the previous file untouched.
///
/// This is the single choke point every checkpoint/CSV writer in the repo
/// routes through; util::FaultInjector hooks into it to simulate
/// crash-after-N-bytes, failed renames and silent bit flips for the
/// fault-tolerance suite.
Status AtomicWriteFile(const std::string& path, std::string_view payload);

/// \brief Reads a whole file into `out`. Returns IoError if the file
/// cannot be opened or read.
Status ReadFileToString(const std::string& path, std::string* out);

/// \brief True if `path` exists (stat succeeds).
bool FileExists(const std::string& path);

}  // namespace cpdg::util

#endif  // CPDG_UTIL_ATOMIC_FILE_H_
