#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "util/check.h"

namespace cpdg::util {
namespace {

/// True on pool worker threads, and on the calling thread while it executes
/// its own stripe: any ParallelFor issued from such a context runs serially
/// inline instead of re-entering the pool.
thread_local bool tls_inside_parallel_region = false;

std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  CPDG_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunStripe(const Region& region, int participant) {
  for (int64_t c = participant; c < region.num_chunks;
       c += region.participants) {
    int64_t chunk_begin = region.begin + c * region.grain;
    int64_t chunk_end = std::min(region.end, chunk_begin + region.grain);
    (*region.fn)(chunk_begin, chunk_end);
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  CPDG_CHECK_GE(grain, 1);
  if (end <= begin) return;
  int64_t num_chunks = (end - begin + grain - 1) / grain;

  // Serial fallback: single-threaded pool, a single chunk, or a nested call
  // from inside a running region. Iterates the identical chunk sequence so
  // per-chunk results (and any per-chunk reductions the caller merges) are
  // bitwise identical to the parallel path.
  if (num_threads_ == 1 || num_chunks == 1 || tls_inside_parallel_region) {
    for (int64_t c = 0; c < num_chunks; ++c) {
      int64_t chunk_begin = begin + c * grain;
      fn(chunk_begin, std::min(end, chunk_begin + grain));
    }
    return;
  }

  std::lock_guard<std::mutex> launch_lk(launch_mu_);
  Region region;
  region.fn = &fn;
  region.begin = begin;
  region.end = end;
  region.grain = grain;
  region.num_chunks = num_chunks;
  // Regions with fewer chunks than threads enroll only as many
  // participants as there are chunks: surplus workers wake, see they have
  // no stripe, and go back to sleep without joining the completion
  // barrier. Chunk boundaries are untouched, so results are unchanged —
  // this only trims dispatch latency for small regions.
  region.participants = static_cast<int>(
      std::min<int64_t>(num_threads_, num_chunks));
  region.remaining.store(region.participants, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    region_ = &region;
    ++region_gen_;
  }
  work_cv_.notify_all();

  tls_inside_parallel_region = true;
  RunStripe(region, 0);
  tls_inside_parallel_region = false;

  if (region.remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return region.remaining.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    region_ = nullptr;
  }
}

void ThreadPool::WorkerLoop(int worker_id) {
  tls_inside_parallel_region = true;
  uint64_t seen_gen = 0;
  while (true) {
    Region* region = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return stop_ || (region_ != nullptr && region_gen_ != seen_gen);
      });
      if (stop_) return;
      region = region_;
      seen_gen = region_gen_;
      // Workers beyond the participant count own no chunks and must not
      // touch the completion barrier. Decided under the lock: once it is
      // released the caller may finish the region and destroy it, so a
      // non-participant must never dereference the pointer again.
      if (worker_id >= region->participants) continue;
    }
    RunStripe(*region, worker_id);
    if (region->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  std::unique_ptr<ThreadPool>& slot = GlobalSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(DefaultNumThreads());
  return *slot;
}

void ThreadPool::SetGlobalNumThreads(int num_threads) {
  CPDG_CHECK_GE(num_threads, 1);
  std::unique_ptr<ThreadPool>& slot = GlobalSlot();
  slot = std::make_unique<ThreadPool>(num_threads);
}

int ThreadPool::DefaultNumThreads() {
  if (const char* v = std::getenv("CPDG_NUM_THREADS")) {
    long n = std::atol(v);
    if (n >= 1) return static_cast<int>(std::min<long>(n, 256));
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace cpdg::util
