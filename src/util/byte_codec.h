#ifndef CPDG_UTIL_BYTE_CODEC_H_
#define CPDG_UTIL_BYTE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace cpdg::util {

/// \file Little helpers shared by every checkpoint serializer: an appending
/// POD/vector payload writer, a bounds-checked reader that degrades to a
/// sticky failure bit instead of crashing on corrupt input, and the CRC32
/// (IEEE 802.3) used to checksum checkpoint sections.

/// \brief CRC32 (polynomial 0xEDB88320, the zlib/IEEE one) of `size` bytes.
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

/// \brief Appends trivially-copyable values and flat vectors to a byte
/// string. The layout is raw little-endian PODs with no padding; readers
/// must consume fields in the identical order.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_->append(reinterpret_cast<const char*>(&v), sizeof(T));
  }

  /// Writes a u64 element count followed by the raw elements.
  template <typename T>
  void PodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Pod(static_cast<uint64_t>(v.size()));
    out_->append(reinterpret_cast<const char*>(v.data()),
                 v.size() * sizeof(T));
  }

  /// Writes a u32 length followed by the bytes.
  void String(std::string_view s) {
    Pod(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

 private:
  std::string* out_;
};

/// \brief Bounds-checked sequential reader over a byte buffer. Every
/// accessor returns false (and leaves the output untouched) once the input
/// is exhausted or a length field exceeds the remaining bytes, so corrupt
/// checkpoints surface as a clean failure instead of an over-allocation or
/// an out-of-bounds read.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  bool Pod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (failed_ || bytes_.size() - pos_ < sizeof(T)) return Fail();
    std::memcpy(v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Reads a u64 count + elements written by ByteWriter::PodVector. The
  /// count is validated against the remaining input *before* allocating,
  /// so a corrupt header cannot trigger a huge allocation.
  template <typename T>
  bool PodVector(std::vector<T>* v) {
    uint64_t count = 0;
    if (!Pod(&count)) return false;
    if (count > (bytes_.size() - pos_) / sizeof(T)) return Fail();
    v->resize(static_cast<size_t>(count));
    std::memcpy(v->data(), bytes_.data() + pos_,
                static_cast<size_t>(count) * sizeof(T));
    pos_ += static_cast<size_t>(count) * sizeof(T);
    return true;
  }

  bool String(std::string* s) {
    uint32_t len = 0;
    if (!Pod(&len)) return false;
    if (len > bytes_.size() - pos_) return Fail();
    s->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  /// Raw view of the next `size` bytes without copying.
  bool Bytes(size_t size, std::string_view* out) {
    if (failed_ || bytes_.size() - pos_ < size) return Fail();
    *out = bytes_.substr(pos_, size);
    pos_ += size;
    return true;
  }

  bool Skip(size_t size) {
    if (failed_ || bytes_.size() - pos_ < size) return Fail();
    pos_ += size;
    return true;
  }

  /// True when every input byte has been consumed (no trailing garbage).
  bool AtEnd() const { return !failed_ && pos_ == bytes_.size(); }
  bool failed() const { return failed_; }
  size_t remaining() const { return failed_ ? 0 : bytes_.size() - pos_; }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace cpdg::util

#endif  // CPDG_UTIL_BYTE_CODEC_H_
