#ifndef CPDG_UTIL_STATS_H_
#define CPDG_UTIL_STATS_H_

#include <cmath>
#include <vector>

#include "util/check.h"

namespace cpdg {

/// \brief Accumulates samples and reports mean / (sample) standard
/// deviation. Used to aggregate metric values over random seeds.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  int64_t count() const { return n_; }
  double mean() const { return mean_; }

  /// Sample standard deviation; 0 for fewer than two samples.
  double stddev() const {
    if (n_ < 2) return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
  }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// \brief Mean of a vector; requires non-empty input.
inline double Mean(const std::vector<double>& v) {
  CPDG_CHECK(!v.empty());
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// \brief Sample standard deviation of a vector (0 if size < 2).
inline double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

}  // namespace cpdg

#endif  // CPDG_UTIL_STATS_H_
