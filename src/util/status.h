#ifndef CPDG_UTIL_STATUS_H_
#define CPDG_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace cpdg {

/// \brief Error categories used across the library.
///
/// The library does not throw exceptions across public API boundaries;
/// fallible operations return a Status (or Result<T>), following the
/// Arrow/RocksDB idiom.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kNotImplemented,
  kIoError,
  kDeadlineExceeded,
  kUnavailable,
  kResourceExhausted,
};

/// \brief Name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// \brief Lightweight success/error value.
///
/// A default-constructed Status is OK and carries no message. Error
/// statuses carry a code and a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief A value-or-error holder, analogous to arrow::Result<T>.
///
/// Access the value only after checking ok(); ValueOrDie() aborts on error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : value_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  T& value() { return std::get<T>(value_); }
  const T& value() const { return std::get<T>(value_); }

  /// \brief Returns the value; aborts with the error message if not ok.
  T& ValueOrDie();

  /// \brief Moves the value out of the result.
  T TakeValue() { return std::move(std::get<T>(value_)); }

 private:
  std::variant<T, Status> value_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
T& Result<T>::ValueOrDie() {
  if (!ok()) internal::DieOnBadResult(status());
  return std::get<T>(value_);
}

/// \brief Propagates a non-OK Status from the evaluated expression.
#define CPDG_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::cpdg::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// \brief Assigns the value of a Result expression or propagates its error.
#define CPDG_ASSIGN_OR_RETURN(lhs, rexpr) \
  CPDG_ASSIGN_OR_RETURN_IMPL_(CPDG_CONCAT_(_cpdg_res_, __LINE__), lhs, rexpr)
#define CPDG_CONCAT_INNER_(a, b) a##b
#define CPDG_CONCAT_(a, b) CPDG_CONCAT_INNER_(a, b)
#define CPDG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = tmp.TakeValue()

}  // namespace cpdg

#endif  // CPDG_UTIL_STATUS_H_
