#include "util/fault_injection.h"

#include <cstdlib>

namespace cpdg::util {

FaultInjector::FaultInjector() {
  Config config;
  bool armed = false;
  if (const char* v = std::getenv("CPDG_FAULT_CRASH_AFTER_BYTES")) {
    config.crash_after_bytes = std::atol(v);
    armed = true;
  }
  if (const char* v = std::getenv("CPDG_FAULT_FAIL_RENAME")) {
    if (v[0] == '1') {
      config.fail_rename = true;
      armed = true;
    }
  }
  if (const char* v = std::getenv("CPDG_FAULT_BITFLIP_BYTE")) {
    config.bitflip_byte = std::atol(v);
    armed = true;
  }
  if (const char* v = std::getenv("CPDG_FAULT_BITFLIP_MASK")) {
    config.bitflip_mask = static_cast<uint8_t>(std::strtoul(v, nullptr, 0));
  }
  if (const char* v = std::getenv("CPDG_FAULT_SERVE_STALL_MS")) {
    config.serve_stall_millis = std::atol(v);
    armed = true;
  }
  if (const char* v = std::getenv("CPDG_FAULT_SERVE_REPLAY_FAIL")) {
    if (v[0] == '1') {
      config.serve_replay_fail = true;
      armed = true;
    }
  }
  if (const char* v = std::getenv("CPDG_FAULT_SERVE_RELOAD_CORRUPT")) {
    config.serve_reload_corrupt = std::atol(v);
    armed = true;
  }
  if (armed) config_ = config;
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

std::optional<FaultInjector::Config> FaultInjector::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

int64_t FaultInjector::ConsumeServeStallMillis() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.has_value() || config_->serve_stall_millis <= 0) return 0;
  int64_t millis = config_->serve_stall_millis;
  config_->serve_stall_millis = 0;
  return millis;
}

bool FaultInjector::ConsumeServeReplayFail() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.has_value() || !config_->serve_replay_fail) return false;
  config_->serve_replay_fail = false;
  return true;
}

bool FaultInjector::ConsumeServeReloadCorrupt() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.has_value() || config_->serve_reload_corrupt <= 0) {
    return false;
  }
  --config_->serve_reload_corrupt;
  return true;
}

void FaultInjector::Install(const std::optional<Config>& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
}

FaultInjector::Scope::Scope(const Config& config) {
  FaultInjector& injector = FaultInjector::Instance();
  previous_ = injector.active();
  injector.Install(config);
}

FaultInjector::Scope::~Scope() {
  FaultInjector::Instance().Install(previous_);
}

}  // namespace cpdg::util
