#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace cpdg {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CPDG_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CPDG_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_sep = [&]() {
    os << "+";
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) os << "-";
      os << "+";
    }
    os << "\n";
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      for (size_t i = row[c].size(); i < widths[c]; ++i) os << " ";
      os << " |";
    }
    os << "\n";
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_sep();
    } else {
      print_row(row);
    }
  }
  print_sep();
}

std::string TablePrinter::FormatMeanStd(double mean, double stddev) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f±%.4f", mean, stddev);
  return buf;
}

std::string TablePrinter::FormatFloat(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace cpdg
