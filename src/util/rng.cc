#include "util/rng.h"

#include <cmath>

namespace cpdg {

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform on two uniforms, avoiding log(0).
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextExponential(double rate) {
  CPDG_CHECK_GT(rate, 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

int Rng::NextPoisson(double mean) {
  CPDG_CHECK_GE(mean, 0.0);
  if (mean <= 0.0) return 0;
  // Knuth's inversion; fine for the small means used by the generators.
  double l = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > l && k < 10000);
  return k - 1;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  CPDG_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CPDG_CHECK_GE(w, 0.0);
    total += w;
  }
  CPDG_CHECK_GT(total, 0.0);
  double x = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::NextZipf(size_t n, double exponent) {
  CPDG_CHECK_GT(n, 0u);
  // Rejection-free inversion over the (approximate) normalized CDF would
  // need a precomputed table; n is small in our generators, so build the
  // weights directly. Callers that need many samples should cache a
  // std::vector<double> and call NextWeighted instead.
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  return NextWeighted(weights);
}

}  // namespace cpdg
