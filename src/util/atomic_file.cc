#include "util/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/fault_injection.h"

namespace cpdg::util {
namespace {

std::string ErrnoMessage(const char* op, const std::string& path) {
  return std::string(op) + " failed for " + path + ": " +
         std::strerror(errno);
}

/// Directory part of `path` ("." when there is no separator), for the
/// post-rename directory fsync that makes the new directory entry durable.
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view payload) {
  const std::string tmp = path + ".tmp";
  std::optional<FaultInjector::Config> fault =
      FaultInjector::Instance().active();

  // A bit-flip fault corrupts the bytes on their way to disk; the save
  // itself still "succeeds", as real silent corruption would.
  std::string flipped;
  if (fault.has_value() && fault->bitflip_byte >= 0 && !payload.empty()) {
    flipped.assign(payload.data(), payload.size());
    flipped[static_cast<size_t>(fault->bitflip_byte) % flipped.size()] ^=
        static_cast<char>(fault->bitflip_mask);
    payload = flipped;
  }

  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", tmp));

  if (fault.has_value() && fault->crash_after_bytes >= 0 &&
      static_cast<size_t>(fault->crash_after_bytes) < payload.size()) {
    // Simulated mid-write crash: persist only the prefix and fail, leaving
    // the partial temp file behind exactly as a dead process would.
    Status st = WriteAll(fd, payload.data(),
                         static_cast<size_t>(fault->crash_after_bytes), tmp);
    ::close(fd);
    if (!st.ok()) return st;
    return Status::IoError("injected crash after " +
                           std::to_string(fault->crash_after_bytes) +
                           " bytes writing " + tmp);
  }

  // On any failure below the process is still alive (unlike the simulated
  // crash above), so clean up the temp file instead of littering the
  // checkpoint directory.
  Status st = WriteAll(fd, payload.data(), payload.size(), tmp);
  if (!st.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::fsync(fd) != 0) {
    Status err = Status::IoError(ErrnoMessage("fsync", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return err;
  }
  if (::close(fd) != 0) {
    Status err = Status::IoError(ErrnoMessage("close", tmp));
    ::unlink(tmp.c_str());
    return err;
  }

  if (fault.has_value() && fault->fail_rename) {
    ::unlink(tmp.c_str());
    return Status::IoError("injected rename failure publishing " + path);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status err = Status::IoError(ErrnoMessage("rename", tmp));
    ::unlink(tmp.c_str());
    return err;
  }

  // Make the rename durable. Best effort: some filesystems refuse to open
  // directories for fsync; the data itself is already synced.
  int dfd = ::open(DirName(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

AtomicFileSink::~AtomicFileSink() { Abort(); }

Status AtomicFileSink::Open(const std::string& path) {
  if (fd_ >= 0) return Status::FailedPrecondition("sink already open");
  path_ = path;
  tmp_ = path + ".tmp";
  written_ = 0;
  failed_ = false;

  std::optional<FaultInjector::Config> fault =
      FaultInjector::Instance().active();
  has_fault_ = fault.has_value();
  if (has_fault_) {
    fault_crash_after_bytes_ = fault->crash_after_bytes;
    fault_bitflip_byte_ = fault->bitflip_byte;
    fault_bitflip_mask_ = static_cast<uint8_t>(fault->bitflip_mask);
    fault_fail_rename_ = fault->fail_rename;
  }

  fd_ = ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return Status::IoError(ErrnoMessage("open", tmp_));
  return Status::OK();
}

Status AtomicFileSink::Append(const void* data, size_t size) {
  if (fd_ < 0 || failed_) {
    return Status::FailedPrecondition("sink not open or already failed");
  }
  const char* bytes = static_cast<const char*>(data);

  // A bit-flip fault corrupts the byte at the configured absolute file
  // offset on its way to disk; the append still "succeeds", as real silent
  // corruption would.
  std::string flipped;
  if (has_fault_ && fault_bitflip_byte_ >= written_ &&
      fault_bitflip_byte_ < written_ + static_cast<int64_t>(size)) {
    flipped.assign(bytes, size);
    flipped[static_cast<size_t>(fault_bitflip_byte_ - written_)] ^=
        static_cast<char>(fault_bitflip_mask_);
    bytes = flipped.data();
  }

  if (has_fault_ && fault_crash_after_bytes_ >= 0 &&
      fault_crash_after_bytes_ < written_ + static_cast<int64_t>(size)) {
    // Simulated mid-write crash: persist only the prefix and fail, leaving
    // the partial temp file behind exactly as a dead process would.
    const size_t prefix =
        static_cast<size_t>(std::max<int64_t>(0, fault_crash_after_bytes_ -
                                                     written_));
    Status st = WriteAll(fd_, bytes, prefix, tmp_);
    ::close(fd_);
    fd_ = -1;
    failed_ = true;
    if (!st.ok()) return st;
    return Status::IoError("injected crash after " +
                           std::to_string(fault_crash_after_bytes_) +
                           " bytes writing " + tmp_);
  }

  Status st = WriteAll(fd_, bytes, size, tmp_);
  if (!st.ok()) {
    failed_ = true;
    return st;
  }
  written_ += static_cast<int64_t>(size);
  return Status::OK();
}

Status AtomicFileSink::Commit() {
  if (fd_ < 0 || failed_) {
    return Status::FailedPrecondition("sink not open or already failed");
  }
  if (::fsync(fd_) != 0) {
    Status err = Status::IoError(ErrnoMessage("fsync", tmp_));
    Abort();
    return err;
  }
  if (::close(fd_) != 0) {
    Status err = Status::IoError(ErrnoMessage("close", tmp_));
    fd_ = -1;
    ::unlink(tmp_.c_str());
    return err;
  }
  fd_ = -1;

  if (has_fault_ && fault_fail_rename_) {
    ::unlink(tmp_.c_str());
    return Status::IoError("injected rename failure publishing " + path_);
  }
  if (::rename(tmp_.c_str(), path_.c_str()) != 0) {
    Status err = Status::IoError(ErrnoMessage("rename", tmp_));
    ::unlink(tmp_.c_str());
    return err;
  }
  int dfd = ::open(DirName(path_).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

void AtomicFileSink::Abort() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::unlink(tmp_.c_str());
  }
}

Status AtomicPublishTempFile(const std::string& path, const std::string& tmp) {
  std::optional<FaultInjector::Config> fault =
      FaultInjector::Instance().active();

  int fd = ::open(tmp.c_str(), O_RDWR);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", tmp));

  // Mirror AtomicWriteFile's silent-corruption fault: flip one byte of the
  // already-written payload before it is published.
  if (fault.has_value() && fault->bitflip_byte >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      off_t off = static_cast<off_t>(fault->bitflip_byte %
                                     static_cast<int64_t>(st.st_size));
      unsigned char b = 0;
      if (::pread(fd, &b, 1, off) == 1) {
        b ^= static_cast<unsigned char>(fault->bitflip_mask);
        (void)!::pwrite(fd, &b, 1, off);
      }
    }
  }

  if (::fsync(fd) != 0) {
    Status err = Status::IoError(ErrnoMessage("fsync", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return err;
  }
  if (::close(fd) != 0) {
    Status err = Status::IoError(ErrnoMessage("close", tmp));
    ::unlink(tmp.c_str());
    return err;
  }

  if (fault.has_value() && fault->fail_rename) {
    ::unlink(tmp.c_str());
    return Status::IoError("injected rename failure publishing " + path);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status err = Status::IoError(ErrnoMessage("rename", tmp));
    ::unlink(tmp.c_str());
    return err;
  }
  int dfd = ::open(DirName(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed: " + path);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace cpdg::util
