#include "util/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/fault_injection.h"

namespace cpdg::util {
namespace {

std::string ErrnoMessage(const char* op, const std::string& path) {
  return std::string(op) + " failed for " + path + ": " +
         std::strerror(errno);
}

/// Directory part of `path` ("." when there is no separator), for the
/// post-rename directory fsync that makes the new directory entry durable.
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view payload) {
  const std::string tmp = path + ".tmp";
  std::optional<FaultInjector::Config> fault =
      FaultInjector::Instance().active();

  // A bit-flip fault corrupts the bytes on their way to disk; the save
  // itself still "succeeds", as real silent corruption would.
  std::string flipped;
  if (fault.has_value() && fault->bitflip_byte >= 0 && !payload.empty()) {
    flipped.assign(payload.data(), payload.size());
    flipped[static_cast<size_t>(fault->bitflip_byte) % flipped.size()] ^=
        static_cast<char>(fault->bitflip_mask);
    payload = flipped;
  }

  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", tmp));

  if (fault.has_value() && fault->crash_after_bytes >= 0 &&
      static_cast<size_t>(fault->crash_after_bytes) < payload.size()) {
    // Simulated mid-write crash: persist only the prefix and fail, leaving
    // the partial temp file behind exactly as a dead process would.
    Status st = WriteAll(fd, payload.data(),
                         static_cast<size_t>(fault->crash_after_bytes), tmp);
    ::close(fd);
    if (!st.ok()) return st;
    return Status::IoError("injected crash after " +
                           std::to_string(fault->crash_after_bytes) +
                           " bytes writing " + tmp);
  }

  // On any failure below the process is still alive (unlike the simulated
  // crash above), so clean up the temp file instead of littering the
  // checkpoint directory.
  Status st = WriteAll(fd, payload.data(), payload.size(), tmp);
  if (!st.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::fsync(fd) != 0) {
    Status err = Status::IoError(ErrnoMessage("fsync", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return err;
  }
  if (::close(fd) != 0) {
    Status err = Status::IoError(ErrnoMessage("close", tmp));
    ::unlink(tmp.c_str());
    return err;
  }

  if (fault.has_value() && fault->fail_rename) {
    ::unlink(tmp.c_str());
    return Status::IoError("injected rename failure publishing " + path);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status err = Status::IoError(ErrnoMessage("rename", tmp));
    ::unlink(tmp.c_str());
    return err;
  }

  // Make the rename durable. Best effort: some filesystems refuse to open
  // directories for fsync; the data itself is already synced.
  int dfd = ::open(DirName(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed: " + path);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace cpdg::util
