#ifndef CPDG_TENSOR_SIMD_INTERNAL_H_
#define CPDG_TENSOR_SIMD_INTERNAL_H_

// Backend seam for the elementwise primitives in simd.h. Every function is
// lane-independent IEEE mul/add/div arithmetic (never fused), so the AVX2
// forms are bitwise identical to the scalar loops; dispatch picks a speed,
// not a numeric profile.

#include <cstdint>

namespace cpdg::tensor::simd_internal {

/// Function table one backend exports; simd.cc routes the public API
/// through the table matching the active mode.
struct ElementwiseKernels {
  void (*add)(const float* a, const float* b, float* o, int64_t n);
  void (*sub)(const float* a, const float* b, float* o, int64_t n);
  void (*mul)(const float* a, const float* b, float* o, int64_t n);
  void (*div)(const float* a, const float* b, float* o, int64_t n);
  void (*accumulate)(float* g, const float* d, int64_t n);
  void (*accumulate_product)(float* g, const float* d, const float* x,
                             int64_t n);
  void (*accumulate_quotient)(float* g, const float* d, const float* x,
                              int64_t n);
  void (*negate)(const float* a, float* o, int64_t n);
  void (*scale)(const float* a, float s, float* o, int64_t n);
  void (*accumulate_scaled)(float* g, const float* d, float s, int64_t n);
};

const ElementwiseKernels& ScalarElementwise();

#ifdef CPDG_HAVE_AVX2_KERNELS
const ElementwiseKernels& Avx2Elementwise();
#endif

}  // namespace cpdg::tensor::simd_internal

#endif  // CPDG_TENSOR_SIMD_INTERNAL_H_
