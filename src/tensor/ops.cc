#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"
#include "tensor/simd.h"
#include "util/thread_pool.h"

namespace cpdg::tensor {
namespace {

// Minimum per-chunk element count for parallel kernels. Chunk boundaries
// depend only on this grain (never on the worker count), and every chunk
// owns a disjoint slice of its output, so parallel results are bitwise
// identical to serial ones.
constexpr int64_t kElementGrain = 1 << 14;

// Serial cutoff: ops whose total scalar work is below this never touch the
// pool — dispatch (mutex + condvar wakeups) costs more than the op itself,
// which showed up as sub-1.0x "speedups" on small full-cell batches. The
// elementwise bodies are chunk-shape independent, so results are bitwise
// identical on either side of the cutoff (pinned by GemmTest).
constexpr int64_t kMinParallelWork = 1 << 16;

// Splits a flat element range into grain-sized chunks. Only ranges that
// actually fan out over the pool get a trace span: sub-cutoff tensors run
// serially on a fast path that must stay span-free (the encoder issues
// thousands of tiny elementwise ops per batch).
void ParallelElems(int64_t n, const std::function<void(int64_t, int64_t)>& fn) {
  if (n < kMinParallelWork) {
    if (n > 0) fn(0, n);
    return;
  }
  CPDG_TRACE_SPAN("tensor/elementwise");
  util::ThreadPool::Global().ParallelFor(0, n, kElementGrain, fn);
}

// Splits a row range into chunks covering roughly kElementGrain scalar
// operations each; `row_cost` is the per-row operation count.
void ParallelRows(int64_t rows, int64_t row_cost,
                  const std::function<void(int64_t, int64_t)>& fn) {
  if (rows * row_cost < kMinParallelWork) {
    if (rows > 0) fn(0, rows);
    return;
  }
  CPDG_TRACE_SPAN("tensor/rowwise");
  int64_t grain =
      std::max<int64_t>(1, kElementGrain / std::max<int64_t>(1, row_cost));
  util::ThreadPool::Global().ParallelFor(0, rows, grain, fn);
}

// Shapes are equal, or b is a [1, cols] row broadcast over a's rows.
enum class BroadcastKind { kSame, kRow };

BroadcastKind CheckBinaryShapes(const Tensor& a, const Tensor& b) {
  CPDG_CHECK_EQ(a.cols(), b.cols());
  if (a.rows() == b.rows()) return BroadcastKind::kSame;
  CPDG_CHECK_EQ(b.rows(), 1)
      << "binary op requires equal shapes or a [1,cols] second operand";
  return BroadcastKind::kRow;
}

// Accumulates dout (shape [n,d]) into b.grad where b may be [1,d]
// row-broadcast.
void AccumulateBroadcast(const Tensor& b, const float* dout, int64_t n,
                         int64_t d, BroadcastKind kind) {
  float* gb = b.grad();
  if (kind == BroadcastKind::kSame) {
    ParallelElems(n * d, [gb, dout](int64_t lo, int64_t hi) {
      simd::Accumulate(gb + lo, dout + lo, hi - lo);
    });
  } else {
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t c = 0; c < d; ++c) gb[c] += dout[r * d + c];
    }
  }
}

// Generic elementwise unary op: forward computes f(x), backward multiplies
// the upstream grad with dfdx evaluated from (x, y).
template <typename Fwd, typename Bwd>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Bwd bwd, const char* name) {
  Tensor out = Tensor::MakeOpResult(
      a.rows(), a.cols(), {a},
      [a, bwd](Tensor& self) mutable {
        const float* dout = self.grad();
        const float* x = a.data();
        const float* y = self.data();
        float* gx = a.grad();
        ParallelElems(a.size(), [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) gx[i] += dout[i] * bwd(x[i], y[i]);
        });
      },
      name);
  const float* x = a.data();
  float* y = out.data();
  ParallelElems(a.size(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) y[i] = fwd(x[i]);
  });
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  BroadcastKind kind = CheckBinaryShapes(a, b);
  int64_t n = a.rows(), d = a.cols();
  Tensor out = Tensor::MakeOpResult(
      n, d, {a, b},
      [a, b, n, d, kind](Tensor& self) mutable {
        const float* dout = self.grad();
        if (a.requires_grad()) {
          float* ga = a.grad();
          ParallelElems(n * d, [ga, dout](int64_t lo, int64_t hi) {
            simd::Accumulate(ga + lo, dout + lo, hi - lo);
          });
        }
        if (b.requires_grad()) AccumulateBroadcast(b, dout, n, d, kind);
      },
      "add");
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  if (kind == BroadcastKind::kSame) {
    ParallelElems(n * d, [&](int64_t lo, int64_t hi) {
      simd::Add(pa + lo, pb + lo, po + lo, hi - lo);
    });
  } else {
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t c = 0; c < d; ++c) po[r * d + c] = pa[r * d + c] + pb[c];
    }
  }
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  BroadcastKind kind = CheckBinaryShapes(a, b);
  int64_t n = a.rows(), d = a.cols();
  Tensor out = Tensor::MakeOpResult(
      n, d, {a, b},
      [a, b, n, d, kind](Tensor& self) mutable {
        const float* dout = self.grad();
        if (a.requires_grad()) {
          float* ga = a.grad();
          ParallelElems(n * d, [ga, dout](int64_t lo, int64_t hi) {
            simd::Accumulate(ga + lo, dout + lo, hi - lo);
          });
        }
        if (b.requires_grad()) {
          // Negated upstream gradient for the subtrahend.
          std::vector<float> neg(static_cast<size_t>(n * d));
          ParallelElems(n * d, [&](int64_t lo, int64_t hi) {
            simd::Negate(dout + lo, neg.data() + lo, hi - lo);
          });
          AccumulateBroadcast(b, neg.data(), n, d, kind);
        }
      },
      "sub");
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  if (kind == BroadcastKind::kSame) {
    ParallelElems(n * d, [&](int64_t lo, int64_t hi) {
      simd::Sub(pa + lo, pb + lo, po + lo, hi - lo);
    });
  } else {
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t c = 0; c < d; ++c) po[r * d + c] = pa[r * d + c] - pb[c];
    }
  }
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  BroadcastKind kind = CheckBinaryShapes(a, b);
  int64_t n = a.rows(), d = a.cols();
  Tensor out = Tensor::MakeOpResult(
      n, d, {a, b},
      [a, b, n, d, kind](Tensor& self) mutable {
        const float* dout = self.grad();
        const float* pa = a.data();
        const float* pb = b.data();
        if (a.requires_grad()) {
          float* ga = a.grad();
          if (kind == BroadcastKind::kSame) {
            ParallelElems(n * d, [&](int64_t lo, int64_t hi) {
              simd::AccumulateProduct(ga + lo, dout + lo, pb + lo, hi - lo);
            });
          } else {
            for (int64_t r = 0; r < n; ++r) {
              for (int64_t c = 0; c < d; ++c) {
                ga[r * d + c] += dout[r * d + c] * pb[c];
              }
            }
          }
        }
        if (b.requires_grad()) {
          // d(a*b)/db = a, so scale by a before (possibly) reducing rows.
          std::vector<float> scaled(static_cast<size_t>(n * d));
          ParallelElems(n * d, [&](int64_t lo, int64_t hi) {
            simd::Mul(dout + lo, pa + lo, scaled.data() + lo, hi - lo);
          });
          AccumulateBroadcast(b, scaled.data(), n, d, kind);
        }
      },
      "mul");
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  if (kind == BroadcastKind::kSame) {
    ParallelElems(n * d, [&](int64_t lo, int64_t hi) {
      simd::Mul(pa + lo, pb + lo, po + lo, hi - lo);
    });
  } else {
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t c = 0; c < d; ++c) po[r * d + c] = pa[r * d + c] * pb[c];
    }
  }
  return out;
}

Tensor Div(const Tensor& a, const Tensor& b) {
  CPDG_CHECK_EQ(a.rows(), b.rows());
  CPDG_CHECK_EQ(a.cols(), b.cols());
  int64_t n = a.size();
  Tensor out = Tensor::MakeOpResult(
      a.rows(), a.cols(), {a, b},
      [a, b, n](Tensor& self) mutable {
        const float* dout = self.grad();
        const float* pa = a.data();
        const float* pb = b.data();
        if (a.requires_grad()) {
          float* ga = a.grad();
          ParallelElems(n, [&](int64_t lo, int64_t hi) {
            simd::AccumulateQuotient(ga + lo, dout + lo, pb + lo, hi - lo);
          });
        }
        if (b.requires_grad()) {
          float* gb = b.grad();
          ParallelElems(n, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
              gb[i] += -dout[i] * pa[i] / (pb[i] * pb[i]);
            }
          });
        }
      },
      "div");
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelElems(n, [&](int64_t lo, int64_t hi) {
    simd::Div(pa + lo, pb + lo, po + lo, hi - lo);
  });
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; },
      "add_scalar");
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x * s; }, [s](float, float) { return s; },
      "mul_scalar");
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CPDG_CHECK_EQ(a.cols(), b.rows());
  int64_t m = a.rows(), k = a.cols(), n = b.cols();
  CPDG_TRACE_SPAN("tensor/matmul_fwd");
  {
    static obs::Counter& calls =
        obs::MetricsRegistry::Global().counter("tensor.matmul.calls");
    static obs::Counter& flops =
        obs::MetricsRegistry::Global().counter("tensor.matmul.fwd_flops");
    calls.Add();
    flops.Add(2 * m * k * n);
  }
  // int8 serving path: inside inference mode, a product whose rhs is a
  // registered frozen weight runs the quantized kernel (quant.h). Gated on
  // inference mode because the quantized op records no usable backward.
  if (InferenceModeEnabled()) {
    if (const QuantizedMatrix* bq = ActiveQuantizedWeight(b.data())) {
      CPDG_CHECK_EQ(bq->rows, n);
      CPDG_CHECK_EQ(bq->cols, k);
      static obs::Counter& int8_calls =
          obs::MetricsRegistry::Global().counter("tensor.matmul.int8_calls");
      int8_calls.Add();
      Tensor out = Tensor::MakeOpResult(m, n, {a, b}, {}, "matmul_int8");
      QuantGemmTransposedB(a.data(), m, k, *bq, out.data());
      return out;
    }
  }
  Tensor out = Tensor::MakeOpResult(
      m, n, {a, b},
      [a, b, m, k, n](Tensor& self) mutable {
        CPDG_TRACE_SPAN("tensor/matmul_bwd");
        // Each backward product does the same 2*m*k*n multiply-adds as the
        // forward; counted separately so traces and bench GFLOPS agree.
        static obs::Counter& bwd_flops =
            obs::MetricsRegistry::Global().counter("tensor.matmul.bwd_flops");
        const float* dout = self.grad();
        if (a.requires_grad()) {
          // dA[m,k] += dOut[m,n] · Bᵀ[n,k]; Bᵀ is B with swapped strides.
          bwd_flops.Add(2 * m * k * n);
          GemmAccumulate({dout, m, n, n, 1}, {b.data(), n, k, 1, n},
                         a.grad());
        }
        if (b.requires_grad()) {
          // dB[k,n] += Aᵀ[k,m] · dOut[m,n].
          bwd_flops.Add(2 * m * k * n);
          GemmAccumulate({a.data(), k, m, 1, k}, {dout, m, n, n, 1},
                         b.grad());
        }
      },
      "matmul");
  // Out starts zeroed, so the accumulating GEMM computes A·B exactly.
  GemmAccumulate({a.data(), m, k, k, 1}, {b.data(), k, n, n, 1}, out.data());
  return out;
}

Tensor Transpose(const Tensor& a) {
  int64_t m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeOpResult(
      n, m, {a},
      [a, m, n](Tensor& self) mutable {
        const float* dout = self.grad();
        float* ga = a.grad();
        for (int64_t i = 0; i < m; ++i) {
          for (int64_t j = 0; j < n; ++j) ga[i * n + j] += dout[j * m + i];
        }
      },
      "transpose");
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  }
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        // Numerically stable logistic.
        if (x >= 0.0f) {
          float z = std::exp(-x);
          return 1.0f / (1.0f + z);
        }
        float z = std::exp(x);
        return z / (1.0f + z);
      },
      [](float, float y) { return y * (1.0f - y); }, "sigmoid");
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; }, "tanh");
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; }, "relu");
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; }, "exp");
}

Tensor Log(const Tensor& a, float eps) {
  return UnaryOp(
      a, [eps](float x) { return std::log(std::max(x, eps)); },
      [eps](float x, float) { return 1.0f / std::max(x, eps); }, "log");
}

Tensor Sqrt(const Tensor& a, float eps) {
  return UnaryOp(
      a, [eps](float x) { return std::sqrt(std::max(x, eps)); },
      [eps](float x, float y) {
        (void)x;
        return 0.5f / std::max(y, eps);
      },
      "sqrt");
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; }, "square");
}

Tensor Cos(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::cos(x); },
      [](float x, float) { return -std::sin(x); }, "cos");
}

Tensor Sin(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::sin(x); },
      [](float x, float) { return std::cos(x); }, "sin");
}

Tensor Sum(const Tensor& a) {
  int64_t n = a.size();
  Tensor out = Tensor::MakeOpResult(
      1, 1, {a},
      [a, n](Tensor& self) mutable {
        float g = self.grad()[0];
        float* ga = a.grad();
        for (int64_t i = 0; i < n; ++i) ga[i] += g;
      },
      "sum");
  const float* pa = a.data();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += pa[i];
  out.data()[0] = static_cast<float>(acc);
  return out;
}

Tensor Mean(const Tensor& a) {
  int64_t n = a.size();
  Tensor out = Tensor::MakeOpResult(
      1, 1, {a},
      [a, n](Tensor& self) mutable {
        float g = self.grad()[0] / static_cast<float>(n);
        float* ga = a.grad();
        for (int64_t i = 0; i < n; ++i) ga[i] += g;
      },
      "mean");
  const float* pa = a.data();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += pa[i];
  out.data()[0] = static_cast<float>(acc / static_cast<double>(n));
  return out;
}

Tensor RowSum(const Tensor& a) {
  int64_t n = a.rows(), d = a.cols();
  Tensor out = Tensor::MakeOpResult(
      n, 1, {a},
      [a, n, d](Tensor& self) mutable {
        const float* dout = self.grad();
        float* ga = a.grad();
        ParallelRows(n, d, [&](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            for (int64_t c = 0; c < d; ++c) ga[r * d + c] += dout[r];
          }
        });
      },
      "row_sum");
  const float* pa = a.data();
  float* po = out.data();
  // Rows are independent reductions, so row-granular chunks keep the
  // per-row accumulation order fixed at any thread count.
  ParallelRows(n, d, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      double acc = 0.0;
      for (int64_t c = 0; c < d; ++c) acc += pa[r * d + c];
      po[r] = static_cast<float>(acc);
    }
  });
  return out;
}

Tensor ColMean(const Tensor& a) {
  int64_t n = a.rows(), d = a.cols();
  Tensor out = Tensor::MakeOpResult(
      1, d, {a},
      [a, n, d](Tensor& self) mutable {
        const float* dout = self.grad();
        float* ga = a.grad();
        float inv = 1.0f / static_cast<float>(n);
        for (int64_t r = 0; r < n; ++r) {
          for (int64_t c = 0; c < d; ++c) ga[r * d + c] += dout[c] * inv;
        }
      },
      "col_mean");
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t c = 0; c < d; ++c) {
    double acc = 0.0;
    for (int64_t r = 0; r < n; ++r) acc += pa[r * d + c];
    po[c] = static_cast<float>(acc / static_cast<double>(n));
  }
  return out;
}

Tensor Concat(const Tensor& a, const Tensor& b) {
  CPDG_CHECK_EQ(a.rows(), b.rows());
  int64_t n = a.rows(), da = a.cols(), db = b.cols();
  Tensor out = Tensor::MakeOpResult(
      n, da + db, {a, b},
      [a, b, n, da, db](Tensor& self) mutable {
        const float* dout = self.grad();
        int64_t d = da + db;
        if (a.requires_grad()) {
          float* ga = a.grad();
          for (int64_t r = 0; r < n; ++r) {
            for (int64_t c = 0; c < da; ++c) ga[r * da + c] += dout[r * d + c];
          }
        }
        if (b.requires_grad()) {
          float* gb = b.grad();
          for (int64_t r = 0; r < n; ++r) {
            for (int64_t c = 0; c < db; ++c) {
              gb[r * db + c] += dout[r * d + da + c];
            }
          }
        }
      },
      "concat");
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  int64_t d = da + db;
  for (int64_t r = 0; r < n; ++r) {
    std::copy(pa + r * da, pa + (r + 1) * da, po + r * d);
    std::copy(pb + r * db, pb + (r + 1) * db, po + r * d + da);
  }
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  CPDG_CHECK(!parts.empty());
  int64_t d = parts[0].cols();
  int64_t total = 0;
  for (const Tensor& p : parts) {
    CPDG_CHECK_EQ(p.cols(), d);
    total += p.rows();
  }
  TensorVector parents(parts.begin(), parts.end());
  Tensor out = Tensor::MakeOpResult(
      total, d, std::move(parents),
      [parts, d](Tensor& self) mutable {
        const float* dout = self.grad();
        int64_t offset = 0;
        for (Tensor& p : const_cast<std::vector<Tensor>&>(parts)) {
          int64_t rows = p.rows();
          if (p.requires_grad()) {
            float* gp = p.grad();
            for (int64_t i = 0; i < rows * d; ++i) {
              gp[i] += dout[offset * d + i];
            }
          }
          offset += rows;
        }
      },
      "concat_rows");
  float* po = out.data();
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    std::copy(p.data(), p.data() + p.size(), po + offset);
    offset += p.size();
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t len) {
  CPDG_CHECK_GE(start, 0);
  CPDG_CHECK_GT(len, 0);
  CPDG_CHECK_LE(start + len, a.rows());
  int64_t d = a.cols();
  Tensor out = Tensor::MakeOpResult(
      len, d, {a},
      [a, start, len, d](Tensor& self) mutable {
        const float* dout = self.grad();
        float* ga = a.grad();
        for (int64_t i = 0; i < len * d; ++i) {
          ga[start * d + i] += dout[i];
        }
      },
      "slice_rows");
  std::copy(a.data() + start * d, a.data() + (start + len) * d, out.data());
  return out;
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  CPDG_CHECK_GE(start, 0);
  CPDG_CHECK_GT(len, 0);
  CPDG_CHECK_LE(start + len, a.cols());
  int64_t n = a.rows(), d = a.cols();
  Tensor out = Tensor::MakeOpResult(
      n, len, {a},
      [a, start, len, n, d](Tensor& self) mutable {
        const float* dout = self.grad();
        float* ga = a.grad();
        for (int64_t r = 0; r < n; ++r) {
          for (int64_t c = 0; c < len; ++c) {
            ga[r * d + start + c] += dout[r * len + c];
          }
        }
      },
      "slice_cols");
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t r = 0; r < n; ++r) {
    std::copy(pa + r * d + start, pa + r * d + start + len, po + r * len);
  }
  return out;
}

Tensor RepeatRows(const Tensor& a, int64_t n) {
  CPDG_CHECK_EQ(a.rows(), 1);
  CPDG_CHECK_GT(n, 0);
  int64_t d = a.cols();
  Tensor out = Tensor::MakeOpResult(
      n, d, {a},
      [a, n, d](Tensor& self) mutable {
        const float* dout = self.grad();
        float* ga = a.grad();
        for (int64_t r = 0; r < n; ++r) {
          for (int64_t c = 0; c < d; ++c) ga[c] += dout[r * d + c];
        }
      },
      "repeat_rows");
  float* po = out.data();
  for (int64_t r = 0; r < n; ++r) {
    std::copy(a.data(), a.data() + d, po + r * d);
  }
  return out;
}

Tensor Gather(const Tensor& table, const std::vector<int64_t>& indices) {
  CPDG_CHECK(!indices.empty());
  int64_t n = table.rows(), d = table.cols();
  for (int64_t idx : indices) {
    CPDG_CHECK_GE(idx, 0);
    CPDG_CHECK_LT(idx, n);
  }
  int64_t m = static_cast<int64_t>(indices.size());
  Tensor out = Tensor::MakeOpResult(
      m, d, {table},
      [table, indices, d](Tensor& self) mutable {
        const float* dout = self.grad();
        float* gt = table.grad();
        for (size_t i = 0; i < indices.size(); ++i) {
          int64_t row = indices[i];
          for (int64_t c = 0; c < d; ++c) {
            gt[row * d + c] += dout[static_cast<int64_t>(i) * d + c];
          }
        }
      },
      "gather");
  const float* pt = table.data();
  float* po = out.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    std::copy(pt + indices[i] * d, pt + (indices[i] + 1) * d,
              po + static_cast<int64_t>(i) * d);
  }
  return out;
}

Tensor Softmax(const Tensor& a) {
  int64_t n = a.rows(), d = a.cols();
  Tensor out = Tensor::MakeOpResult(
      n, d, {a},
      [a, n, d](Tensor& self) mutable {
        const float* dout = self.grad();
        const float* y = self.data();
        float* ga = a.grad();
        ParallelRows(n, 2 * d, [&](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            // dL/dx_i = y_i * (dL/dy_i - sum_j y_j dL/dy_j)
            double dot = 0.0;
            for (int64_t c = 0; c < d; ++c) {
              dot += static_cast<double>(y[r * d + c]) * dout[r * d + c];
            }
            for (int64_t c = 0; c < d; ++c) {
              ga[r * d + c] += y[r * d + c] *
                               (dout[r * d + c] - static_cast<float>(dot));
            }
          }
        });
      },
      "softmax");
  const float* pa = a.data();
  float* po = out.data();
  ParallelRows(n, 3 * d, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      float mx = pa[r * d];
      for (int64_t c = 1; c < d; ++c) mx = std::max(mx, pa[r * d + c]);
      double sum = 0.0;
      for (int64_t c = 0; c < d; ++c) {
        po[r * d + c] = std::exp(pa[r * d + c] - mx);
        sum += po[r * d + c];
      }
      float inv = static_cast<float>(1.0 / sum);
      for (int64_t c = 0; c < d; ++c) po[r * d + c] *= inv;
    }
  });
  return out;
}

Tensor L2NormalizeRows(const Tensor& a, float eps) {
  int64_t n = a.rows(), d = a.cols();
  // Composition: x / max(||x||, eps), expressed with primitives so the
  // backward pass comes for free.
  Tensor sq = Square(a);
  Tensor norms = Sqrt(RowSum(sq), eps * eps);  // [n,1]
  // Broadcast divide by expanding norms to [n,d] via matmul with ones row.
  Tensor ones_row = Tensor::Ones(1, d);
  Tensor expanded = MatMul(norms, ones_row);  // [n,d]
  (void)n;
  return Div(a, expanded);
}

Tensor Dropout(const Tensor& a, float p, Rng* rng, bool training) {
  if (!training || p <= 0.0f) return a;
  CPDG_CHECK_LT(p, 1.0f);
  CPDG_CHECK(rng != nullptr);
  int64_t n = a.size();
  auto mask = std::make_shared<std::vector<float>>(static_cast<size_t>(n));
  float scale = 1.0f / (1.0f - p);
  for (int64_t i = 0; i < n; ++i) {
    (*mask)[i] = rng->NextBernoulli(p) ? 0.0f : scale;
  }
  Tensor out = Tensor::MakeOpResult(
      a.rows(), a.cols(), {a},
      [a, mask, n](Tensor& self) mutable {
        const float* dout = self.grad();
        float* ga = a.grad();
        for (int64_t i = 0; i < n; ++i) ga[i] += dout[i] * (*mask)[i];
      },
      "dropout");
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] * (*mask)[i];
  return out;
}

Tensor GroupedAttention(const Tensor& queries, const Tensor& keys,
                        const Tensor& values, int64_t group,
                        const std::vector<uint8_t>& valid) {
  int64_t n = queries.rows();
  int64_t dq = queries.cols();
  int64_t dv = values.cols();
  CPDG_CHECK_GT(group, 0);
  CPDG_CHECK_EQ(keys.rows(), n * group);
  CPDG_CHECK_EQ(values.rows(), n * group);
  CPDG_CHECK_EQ(keys.cols(), dq);
  CPDG_CHECK_EQ(static_cast<int64_t>(valid.size()), n * group);

  // Attention weights are needed by the backward pass; share them between
  // the forward computation and the closure.
  auto alpha = std::make_shared<std::vector<float>>(
      static_cast<size_t>(n * group), 0.0f);
  float scale = 1.0f / std::sqrt(static_cast<float>(dq));

  Tensor out = Tensor::MakeOpResult(
      n, dv, {queries, keys, values},
      [queries, keys, values, group, valid, alpha, n, dq, dv,
       scale](Tensor& self) mutable {
        const float* dout = self.grad();
        const float* q = queries.data();
        const float* k = keys.data();
        const float* v = values.data();
        float* gq = queries.requires_grad() ? queries.grad() : nullptr;
        float* gk = keys.requires_grad() ? keys.grad() : nullptr;
        float* gv = values.requires_grad() ? values.grad() : nullptr;
        std::vector<float> dalpha(static_cast<size_t>(group));
        std::vector<float> dscore(static_cast<size_t>(group));
        for (int64_t i = 0; i < n; ++i) {
          const float* dout_i = dout + i * dv;
          // dalpha_j = dout_i . v_ij ; dv_ij = alpha_j * dout_i
          double alpha_dot = 0.0;
          for (int64_t j = 0; j < group; ++j) {
            int64_t row = i * group + j;
            if (!valid[row]) {
              dalpha[j] = 0.0f;
              continue;
            }
            double dot = 0.0;
            const float* vrow = v + row * dv;
            for (int64_t c = 0; c < dv; ++c) dot += dout_i[c] * vrow[c];
            dalpha[j] = static_cast<float>(dot);
            alpha_dot += (*alpha)[row] * dot;
            if (gv != nullptr) {
              float a = (*alpha)[row];
              float* gvrow = gv + row * dv;
              for (int64_t c = 0; c < dv; ++c) gvrow[c] += a * dout_i[c];
            }
          }
          // Softmax backward: ds_j = alpha_j * (dalpha_j - sum_k alpha_k
          // dalpha_k)
          for (int64_t j = 0; j < group; ++j) {
            int64_t row = i * group + j;
            dscore[j] = valid[row]
                            ? (*alpha)[row] *
                                  (dalpha[j] - static_cast<float>(alpha_dot))
                            : 0.0f;
          }
          for (int64_t j = 0; j < group; ++j) {
            int64_t row = i * group + j;
            if (!valid[row] || dscore[j] == 0.0f) continue;
            float ds = dscore[j] * scale;
            const float* krow = k + row * dq;
            const float* qrow = q + i * dq;
            if (gq != nullptr) {
              float* gqrow = gq + i * dq;
              for (int64_t c = 0; c < dq; ++c) gqrow[c] += ds * krow[c];
            }
            if (gk != nullptr) {
              float* gkrow = gk + row * dq;
              for (int64_t c = 0; c < dq; ++c) gkrow[c] += ds * qrow[c];
            }
          }
        }
      },
      "grouped_attention");

  const float* q = queries.data();
  const float* k = keys.data();
  const float* v = values.data();
  float* po = out.data();
  std::vector<float> scores(static_cast<size_t>(group));
  for (int64_t i = 0; i < n; ++i) {
    const float* qrow = q + i * dq;
    bool any = false;
    float mx = -1e30f;
    for (int64_t j = 0; j < group; ++j) {
      int64_t row = i * group + j;
      if (!valid[row]) continue;
      any = true;
      double dot = 0.0;
      const float* krow = k + row * dq;
      for (int64_t c = 0; c < dq; ++c) dot += qrow[c] * krow[c];
      scores[j] = static_cast<float>(dot) * scale;
      mx = std::max(mx, scores[j]);
    }
    if (!any) continue;  // Output stays zero; no gradients flow.
    double sum = 0.0;
    for (int64_t j = 0; j < group; ++j) {
      int64_t row = i * group + j;
      if (!valid[row]) continue;
      float e = std::exp(scores[j] - mx);
      (*alpha)[row] = e;
      sum += e;
    }
    float inv = static_cast<float>(1.0 / sum);
    float* orow = po + i * dv;
    for (int64_t j = 0; j < group; ++j) {
      int64_t row = i * group + j;
      if (!valid[row]) continue;
      (*alpha)[row] *= inv;
      float a = (*alpha)[row];
      const float* vrow = v + row * dv;
      for (int64_t c = 0; c < dv; ++c) orow[c] += a * vrow[c];
    }
  }
  return out;
}

Tensor GroupedMean(const Tensor& values, int64_t group,
                   const std::vector<uint8_t>& valid) {
  CPDG_CHECK_GT(group, 0);
  CPDG_CHECK_EQ(values.rows() % group, 0);
  int64_t n = values.rows() / group;
  int64_t d = values.cols();
  CPDG_CHECK_EQ(static_cast<int64_t>(valid.size()), values.rows());

  auto inv_counts =
      std::make_shared<std::vector<float>>(static_cast<size_t>(n), 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    int64_t cnt = 0;
    for (int64_t j = 0; j < group; ++j) cnt += valid[i * group + j];
    (*inv_counts)[static_cast<size_t>(i)] =
        cnt > 0 ? 1.0f / static_cast<float>(cnt) : 0.0f;
  }

  Tensor out = Tensor::MakeOpResult(
      n, d, {values},
      [values, group, valid, inv_counts, n, d](Tensor& self) mutable {
        const float* dout = self.grad();
        float* gv = values.grad();
        for (int64_t i = 0; i < n; ++i) {
          float inv = (*inv_counts)[static_cast<size_t>(i)];
          if (inv == 0.0f) continue;
          for (int64_t j = 0; j < group; ++j) {
            int64_t row = i * group + j;
            if (!valid[row]) continue;
            for (int64_t c = 0; c < d; ++c) {
              gv[row * d + c] += dout[i * d + c] * inv;
            }
          }
        }
      },
      "grouped_mean");

  const float* pv = values.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    float inv = (*inv_counts)[static_cast<size_t>(i)];
    if (inv == 0.0f) continue;
    for (int64_t j = 0; j < group; ++j) {
      int64_t row = i * group + j;
      if (!valid[row]) continue;
      for (int64_t c = 0; c < d; ++c) po[i * d + c] += pv[row * d + c] * inv;
    }
  }
  return out;
}

}  // namespace cpdg::tensor
