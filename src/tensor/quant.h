#ifndef CPDG_TENSOR_QUANT_H_
#define CPDG_TENSOR_QUANT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cpdg::tensor {

/// \file int8 quantized inference path for frozen encoders (DESIGN.md §14).
///
/// Scheme: symmetric per-row int8. Each row r of a float matrix gets one
/// scale s_r = maxabs_r / 127 (0 for an all-zero row) and is stored as
/// q = clamp(lrintf(v * (127 / maxabs_r)), -127, 127), so v ≈ q * s_r with
/// |v - q*s_r| <= s_r / 2. Frozen weights are quantized once at checkpoint
/// load as their *transpose* (QuantizeTransposeInt8), which makes the
/// per-row scale a per-output-column scale and turns the inference product
/// A[m,k] · B[k,n] into contiguous row-dot-row int8 products against
/// Bᵀ[n,k]. Activations are quantized per row on the fly inside
/// QuantGemmTransposedB.
///
/// Determinism contract: the int8×int8→int32 accumulation is exact integer
/// arithmetic, so it is associative and every backend / thread count /
/// tile order produces the same int32 accumulators by construction. The
/// only float steps — quantization and the dequant epilogue
/// c += (s_a * s_b) * float(acc) — live in shared driver code compiled
/// once, so the scalar, AVX2, and AVX-VNNI backends are bitwise identical,
/// as are runs at any thread count (pinned by QuantTest).
///
/// Storage vs compute layout: quantized values live on the int8 grid
/// [-127, 127] (that bound is what makes _mm256_madd_epi16 saturation-free
/// and the int32 accumulators exact), but the scalar/AVX2 kernel operands
/// are kept pre-sign-extended as int16. Widening int8 lanes inside the
/// inner loop costs a shuffle-port op per 16 lanes on AVX2 — measured, it
/// caps the kernel below fp32 GEMM throughput; pre-widened operands leave
/// the loop with nothing but loads and multiply-adds.
///
/// AVX-VNNI packed layout: vpdpbusd does 4 u8×s8 MACs per int32 lane —
/// double the int16 rate and 4x the fp32 FMA rate — but wants (a) an
/// unsigned left operand and (b) the 4 k-values of each output column
/// adjacent in one lane. So weights additionally carry a lane-interleaved
/// pack ([col-block of 8][k-quad][8 lanes][4 bytes], zero-padded) and a
/// per-column bias 128·Σ_p b[j][p]; activations are quantized as
/// u8 = q + 128 and the driver epilogue subtracts the bias:
/// Σ (q_a+128)·b = Σ q_a·b + 128·Σ b exactly in int32 for k < ~66k.
/// Lanes then hold whole column sums — no horizontal reductions at all.
/// The grid values are identical, so cross-backend bitwise parity holds.

/// \brief A per-row-scale symmetric int8-grid matrix: element (r, c) is
/// values[r * cols + c] and dequantizes to values[r*cols+c] * scales[r].
struct QuantizedMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t kpad = 0;  ///< cols rounded up to the dpbusd quad (4)
  std::vector<int8_t> values;  ///< row-major [rows, cols], the compact form
  /// The same integers pre-sign-extended for the scalar/AVX2 microkernel
  /// (file comment); values[i] == wide[i] always.
  std::vector<int16_t> wide;
  /// AVX-VNNI lane-interleaved pack (file comment): ceil(rows/8) blocks of
  /// kpad*8 bytes; block jb, k-quad kb, lane l, byte t holds
  /// values[(jb*8+l)*cols + kb*4+t], zero beyond rows/cols. Built
  /// unconditionally (load-time cost only) so its layout is testable on
  /// any machine.
  std::vector<int8_t> packed;
  std::vector<int32_t> bias;  ///< [rows]: 128 * Σ_c values[r*cols+c]
  std::vector<float> scales;  ///< [rows]
};

/// \brief Per-row symmetric int8 quantization of a row-major float matrix.
QuantizedMatrix QuantizeRowsInt8(const float* src, int64_t rows,
                                 int64_t cols);

/// \brief Quantizes the *transpose* of a row-major [rows, cols] matrix:
/// the result has rows' = cols, cols' = rows and one scale per original
/// column. This is the storage layout for frozen weights (see file
/// comment).
QuantizedMatrix QuantizeTransposeInt8(const float* src, int64_t rows,
                                      int64_t cols);

/// \brief Quantized inference product: C[m, n] += dequant(Aq · Btqᵀ),
/// where `bt` holds Bᵀ as [n, k] int8 rows (QuantizeTransposeInt8 of a
/// [k, n] weight) and A's rows are quantized on the fly. C is row-major
/// with leading dimension n. Deterministic per the file contract: bitwise
/// identical across backends and thread counts.
void QuantGemmTransposedB(const float* a, int64_t m, int64_t k,
                          const QuantizedMatrix& bt, float* c);

/// \name Tile constants
/// kQuantMR rows per backend strip call (the driver's unit of thread
/// fan-out); kQuantNR is the B-panel width of the AVX2 register tile.
/// Integer accumulation is exact, so unlike the fp32 GEMM constants these
/// are tunable without recapturing goldens.
/// @{
inline constexpr int64_t kQuantMR = 4;
inline constexpr int64_t kQuantNR = 4;
/// @}

/// \brief Frozen-weight registry for one model replica: maps a parameter
/// tensor's float data pointer to its pre-quantized transpose. Built once
/// at checkpoint load; immutable afterwards, so concurrent readers need no
/// locking.
class QuantizedParamSet {
 public:
  /// Quantizes the transpose of the row-major [rows, cols] weight and
  /// registers it under its data pointer (the identity ops.cc MatMul uses
  /// to recognize a frozen weight as the rhs operand).
  void AddWeight(const float* data, int64_t rows, int64_t cols);

  /// The quantized transpose registered for `data`, or nullptr.
  const QuantizedMatrix* Find(const float* data) const;

  bool empty() const { return weights_.empty(); }
  int64_t weight_count() const {
    return static_cast<int64_t>(weights_.size());
  }
  /// int8 payload bytes held (scales excluded); for logs and metrics.
  int64_t quantized_bytes() const;

 private:
  std::unordered_map<const float*, QuantizedMatrix> weights_;
};

/// \brief True while a QuantModeGuard with a non-empty set is active on
/// the calling thread.
bool QuantModeEnabled();

/// \brief The active set's quantized transpose for `data`, or nullptr when
/// no guard is active / the pointer is not a registered frozen weight.
const QuantizedMatrix* ActiveQuantizedWeight(const float* data);

/// \brief Scoped int8 execution mode, mirroring InferenceModeGuard: while
/// a guard is alive on the current thread, MatMul answers products whose
/// rhs is a registered frozen weight through the int8 path. Only consulted
/// inside inference mode (the quant path has no backward), and only on the
/// guarded thread — pool workers inside a kernel fan-out never re-dispatch.
/// Pass nullptr to run a scope explicitly in fp32. Guards nest; the
/// referenced set must outlive the guard.
class QuantModeGuard {
 public:
  explicit QuantModeGuard(const QuantizedParamSet* set);
  ~QuantModeGuard();

  QuantModeGuard(const QuantModeGuard&) = delete;
  QuantModeGuard& operator=(const QuantModeGuard&) = delete;

 private:
  const QuantizedParamSet* prev_;
};

}  // namespace cpdg::tensor

#endif  // CPDG_TENSOR_QUANT_H_
