#include "tensor/optim.h"

#include <cmath>

#include "util/check.h"

namespace cpdg::tensor {

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  for (Tensor& p : params_) {
    CPDG_CHECK(p.defined());
    CPDG_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ != 0.0f) {
    velocity_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
      velocity_[i].assign(static_cast<size_t>(params_[i].size()), 0.0f);
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad();
    int64_t n = p.size();
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j] + weight_decay_ * w[j];
      if (momentum_ != 0.0f) {
        velocity_[i][static_cast<size_t>(j)] =
            momentum_ * velocity_[i][static_cast<size_t>(j)] + grad;
        grad = velocity_[i][static_cast<size_t>(j)];
      }
      w[j] -= lr_ * grad;
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(static_cast<size_t>(params_[i].size()), 0.0f);
    v_[i].assign(static_cast<size_t>(params_[i].size()), 0.0f);
  }
}

void Adam::Step() {
  ++t_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad();
    int64_t n = p.size();
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j] + weight_decay_ * w[j];
      size_t sj = static_cast<size_t>(j);
      m_[i][sj] = beta1_ * m_[i][sj] + (1.0f - beta1_) * grad;
      v_[i][sj] = beta2_ * v_[i][sj] + (1.0f - beta2_) * grad * grad;
      float m_hat = m_[i][sj] / bc1;
      float v_hat = v_[i][sj] / bc2;
      w[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  CPDG_CHECK_GT(max_norm, 0.0f);
  double total = 0.0;
  for (const Tensor& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad();
    for (int64_t j = 0; j < p.size(); ++j) {
      total += static_cast<double>(g[j]) * g[j];
    }
  }
  float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    float scale = max_norm / norm;
    for (const Tensor& p : params) {
      if (!p.has_grad()) continue;
      float* g = const_cast<Tensor&>(p).grad();
      for (int64_t j = 0; j < p.size(); ++j) g[j] *= scale;
    }
  }
  return norm;
}

}  // namespace cpdg::tensor
