#include "tensor/optim.h"

#include <cmath>

#include "util/byte_codec.h"
#include "util/check.h"

namespace cpdg::tensor {
namespace {

/// Per-parameter moment buffers are stored as (u64 count, floats); restore
/// validates every size against the live parameter list before any buffer
/// is replaced.
void WriteMoments(util::ByteWriter* w,
                  const std::vector<std::vector<float>>& moments) {
  w->Pod(static_cast<uint32_t>(moments.size()));
  for (const std::vector<float>& m : moments) w->PodVector(m);
}

Status ReadMoments(util::ByteReader* r, const std::vector<Tensor>& params,
                   const char* what,
                   std::vector<std::vector<float>>* out) {
  uint32_t count = 0;
  if (!r->Pod(&count)) {
    return Status::InvalidArgument(std::string("truncated ") + what +
                                   " buffer count");
  }
  if (count != params.size()) {
    return Status::FailedPrecondition(
        std::string(what) + " state has " + std::to_string(count) +
        " buffers, optimizer has " + std::to_string(params.size()) +
        " parameters");
  }
  std::vector<std::vector<float>> moments(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r->PodVector(&moments[i])) {
      return Status::InvalidArgument(std::string("truncated ") + what +
                                     " buffer " + std::to_string(i));
    }
    if (moments[i].size() != static_cast<size_t>(params[i].size())) {
      return Status::FailedPrecondition(
          std::string(what) + " buffer " + std::to_string(i) + " has " +
          std::to_string(moments[i].size()) + " elements, parameter has " +
          std::to_string(params[i].size()));
    }
  }
  *out = std::move(moments);
  return Status::OK();
}

}  // namespace

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  for (Tensor& p : params_) {
    CPDG_CHECK(p.defined());
    CPDG_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

void Optimizer::SaveState(std::string* out) const { (void)out; }

Status Optimizer::LoadState(std::string_view blob) {
  if (!blob.empty()) {
    return Status::InvalidArgument(
        "stateless optimizer given a non-empty state blob");
  }
  return Status::OK();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ != 0.0f) {
    velocity_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
      velocity_[i].assign(static_cast<size_t>(params_[i].size()), 0.0f);
    }
  }
}

void Sgd::SaveState(std::string* out) const {
  util::ByteWriter w(out);
  w.Pod(static_cast<uint8_t>(velocity_.empty() ? 0 : 1));
  if (!velocity_.empty()) WriteMoments(&w, velocity_);
}

Status Sgd::LoadState(std::string_view blob) {
  util::ByteReader r(blob);
  uint8_t has_velocity = 0;
  if (!r.Pod(&has_velocity)) {
    return Status::InvalidArgument("truncated SGD state");
  }
  if ((has_velocity != 0) != !velocity_.empty()) {
    return Status::FailedPrecondition(
        "SGD momentum configuration differs from the checkpoint");
  }
  std::vector<std::vector<float>> velocity;
  if (has_velocity != 0) {
    CPDG_RETURN_NOT_OK(ReadMoments(&r, params_, "SGD velocity", &velocity));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing garbage in SGD state");
  }
  velocity_ = std::move(velocity);
  return Status::OK();
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad();
    int64_t n = p.size();
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j] + weight_decay_ * w[j];
      if (momentum_ != 0.0f) {
        velocity_[i][static_cast<size_t>(j)] =
            momentum_ * velocity_[i][static_cast<size_t>(j)] + grad;
        grad = velocity_[i][static_cast<size_t>(j)];
      }
      w[j] -= lr_ * grad;
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(static_cast<size_t>(params_[i].size()), 0.0f);
    v_[i].assign(static_cast<size_t>(params_[i].size()), 0.0f);
  }
}

void Adam::SaveState(std::string* out) const {
  util::ByteWriter w(out);
  w.Pod(t_);
  WriteMoments(&w, m_);
  WriteMoments(&w, v_);
}

Status Adam::LoadState(std::string_view blob) {
  util::ByteReader r(blob);
  int64_t t = 0;
  if (!r.Pod(&t) || t < 0) {
    return Status::InvalidArgument("truncated or corrupt Adam step count");
  }
  std::vector<std::vector<float>> m, v;
  CPDG_RETURN_NOT_OK(ReadMoments(&r, params_, "Adam first-moment", &m));
  CPDG_RETURN_NOT_OK(ReadMoments(&r, params_, "Adam second-moment", &v));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing garbage in Adam state");
  }
  // Everything validated; commit (all-or-nothing).
  t_ = t;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

void Adam::Step() {
  ++t_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad();
    int64_t n = p.size();
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j] + weight_decay_ * w[j];
      size_t sj = static_cast<size_t>(j);
      m_[i][sj] = beta1_ * m_[i][sj] + (1.0f - beta1_) * grad;
      v_[i][sj] = beta2_ * v_[i][sj] + (1.0f - beta2_) * grad * grad;
      float m_hat = m_[i][sj] / bc1;
      float v_hat = v_[i][sj] / bc2;
      w[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  CPDG_CHECK_GT(max_norm, 0.0f);
  double total = 0.0;
  for (const Tensor& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad();
    for (int64_t j = 0; j < p.size(); ++j) {
      total += static_cast<double>(g[j]) * g[j];
    }
  }
  float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    float scale = max_norm / norm;
    for (const Tensor& p : params) {
      if (!p.has_grad()) continue;
      float* g = const_cast<Tensor&>(p).grad();
      for (int64_t j = 0; j < p.size(); ++j) g[j] *= scale;
    }
  }
  return norm;
}

}  // namespace cpdg::tensor
