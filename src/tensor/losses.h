#ifndef CPDG_TENSOR_LOSSES_H_
#define CPDG_TENSOR_LOSSES_H_

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace cpdg::tensor {

/// \file Loss functions used by the pre-training objectives.
///
/// All losses are compositions of the differentiable primitives in ops.h,
/// so their backward passes are derived automatically.

/// \brief Mean binary cross-entropy on logits; `targets` holds 0/1 values
/// and must match the logits shape. Implements Eq. (16)'s per-pair terms.
Tensor BceWithLogitsLoss(const Tensor& logits, const Tensor& targets);

/// \brief Triplet margin loss with Euclidean distance (Eq. 11 / Eq. 14):
/// mean(max(d(anchor, positive) - d(anchor, negative) + margin, 0)).
Tensor TripletMarginLoss(const Tensor& anchor, const Tensor& positive,
                         const Tensor& negative, float margin);

/// \brief Mean squared error.
Tensor MseLoss(const Tensor& prediction, const Tensor& target);

/// \brief Per-row Euclidean distance ||a_i - b_i||_2 -> [n,1].
Tensor RowEuclideanDistance(const Tensor& a, const Tensor& b);

}  // namespace cpdg::tensor

#endif  // CPDG_TENSOR_LOSSES_H_
