#include "tensor/tensor.h"

#include <atomic>
#include <cmath>
#include <sstream>

namespace cpdg::tensor {
namespace {

std::atomic<int64_t> g_live_tensors{0};

// Monotone epoch for Backward()'s visitation stamps. fetch_add gives
// concurrent Backward() calls (the seed fan-out trains per-seed graphs on
// pool workers) disjoint epochs over their disjoint node sets.
std::atomic<uint64_t> g_backward_epoch{0};

std::shared_ptr<TensorImpl> NewImpl(int64_t rows, int64_t cols) {
  CPDG_CHECK_GT(rows, 0);
  CPDG_CHECK_GT(cols, 0);
  // allocate_shared puts the control block and the node in one arena block;
  // live-count bookkeeping lives in the TensorImpl ctor/dtor.
  auto impl = std::allocate_shared<TensorImpl>(ArenaAllocator<TensorImpl>());
  impl->rows = rows;
  impl->cols = cols;
  return impl;
}

}  // namespace

TensorImpl::TensorImpl() {
  g_live_tensors.fetch_add(1, std::memory_order_relaxed);
}

TensorImpl::~TensorImpl() {
  g_live_tensors.fetch_sub(1, std::memory_order_relaxed);
}

int64_t LiveTensorCount() {
  return g_live_tensors.load(std::memory_order_relaxed);
}

Tensor Tensor::Zeros(int64_t rows, int64_t cols, bool requires_grad) {
  return Full(rows, cols, 0.0f, requires_grad);
}

Tensor Tensor::Ones(int64_t rows, int64_t cols, bool requires_grad) {
  return Full(rows, cols, 1.0f, requires_grad);
}

Tensor Tensor::Full(int64_t rows, int64_t cols, float value,
                    bool requires_grad) {
  auto impl = NewImpl(rows, cols);
  impl->data.assign(static_cast<size_t>(rows * cols), value);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(int64_t rows, int64_t cols,
                          std::vector<float> values, bool requires_grad) {
  CPDG_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  auto impl = NewImpl(rows, cols);
  impl->data.assign(values.begin(), values.end());
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::RandomUniform(int64_t rows, int64_t cols, float limit,
                             Rng* rng, bool requires_grad) {
  CPDG_CHECK(rng != nullptr);
  auto impl = NewImpl(rows, cols);
  impl->data.resize(static_cast<size_t>(rows * cols));
  for (float& v : impl->data) {
    v = static_cast<float>(rng->NextUniform(-limit, limit));
  }
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::XavierUniform(int64_t rows, int64_t cols, Rng* rng,
                             bool requires_grad) {
  float limit =
      std::sqrt(6.0f / static_cast<float>(rows + cols));
  return RandomUniform(rows, cols, limit, rng, requires_grad);
}

Tensor Tensor::RandomNormal(int64_t rows, int64_t cols, float stddev,
                            Rng* rng, bool requires_grad) {
  CPDG_CHECK(rng != nullptr);
  auto impl = NewImpl(rows, cols);
  impl->data.resize(static_cast<size_t>(rows * cols));
  for (float& v : impl->data) {
    v = static_cast<float>(rng->NextGaussian()) * stddev;
  }
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

namespace {
// Thread-local so a serving thread's inference mode never leaks into
// training batches running on other threads (including pool workers).
thread_local bool t_inference_mode = false;
}  // namespace

bool InferenceModeEnabled() { return t_inference_mode; }

InferenceModeGuard::InferenceModeGuard() : prev_(t_inference_mode) {
  t_inference_mode = true;
}

InferenceModeGuard::~InferenceModeGuard() { t_inference_mode = prev_; }

Tensor Tensor::MakeOpResult(int64_t rows, int64_t cols, TensorVector parents,
                            BackwardFn backward_fn, const char* op_name) {
  auto impl = NewImpl(rows, cols);
  impl->data.assign(static_cast<size_t>(rows * cols), 0.0f);
  bool any_grad = false;
  for (const Tensor& p : parents) {
    CPDG_CHECK(p.defined());
    any_grad = any_grad || p.requires_grad();
  }
  if (t_inference_mode) any_grad = false;
  impl->requires_grad = any_grad;
  if (any_grad) {
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(backward_fn);
  }
  impl->op_name = op_name;
  return Tensor(std::move(impl));
}

int64_t Tensor::rows() const {
  CPDG_CHECK(defined());
  return impl_->rows;
}

int64_t Tensor::cols() const {
  CPDG_CHECK(defined());
  return impl_->cols;
}

float* Tensor::data() {
  CPDG_CHECK(defined());
  return impl_->data.data();
}

const float* Tensor::data() const {
  CPDG_CHECK(defined());
  return impl_->data.data();
}

float Tensor::at(int64_t r, int64_t c) const {
  CPDG_CHECK(defined());
  CPDG_CHECK_GE(r, 0);
  CPDG_CHECK_LT(r, impl_->rows);
  CPDG_CHECK_GE(c, 0);
  CPDG_CHECK_LT(c, impl_->cols);
  return impl_->data[static_cast<size_t>(r * impl_->cols + c)];
}

void Tensor::set(int64_t r, int64_t c, float v) {
  CPDG_CHECK(defined());
  CPDG_CHECK_GE(r, 0);
  CPDG_CHECK_LT(r, impl_->rows);
  CPDG_CHECK_GE(c, 0);
  CPDG_CHECK_LT(c, impl_->cols);
  impl_->data[static_cast<size_t>(r * impl_->cols + c)] = v;
}

float Tensor::item() const {
  CPDG_CHECK(defined());
  CPDG_CHECK_EQ(impl_->rows, 1);
  CPDG_CHECK_EQ(impl_->cols, 1);
  return impl_->data[0];
}

bool Tensor::requires_grad() const {
  CPDG_CHECK(defined());
  return impl_->requires_grad;
}

void Tensor::set_requires_grad(bool v) {
  CPDG_CHECK(defined());
  impl_->requires_grad = v;
}

float* Tensor::grad() const {
  CPDG_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad.data();
}

bool Tensor::has_grad() const {
  CPDG_CHECK(defined());
  return !impl_->grad.empty();
}

void Tensor::ZeroGrad() {
  CPDG_CHECK(defined());
  if (!impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

void Tensor::Backward() {
  CPDG_CHECK(defined());
  CPDG_CHECK(impl_->requires_grad)
      << "Backward() on a tensor that does not require grad";

  // Build reverse topological order with an explicit stack (graphs can be
  // thousands of nodes deep within a training batch). Visitation is an
  // epoch stamp on the node rather than a hash set: the set would pay one
  // heap allocation per visited node, per batch.
  const uint64_t epoch =
      g_backward_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  std::vector<Tensor, ArenaAllocator<Tensor>> topo;
  struct Frame {
    Tensor node;
    size_t next_parent;
  };
  std::vector<Frame, ArenaAllocator<Frame>> stack;
  stack.push_back({*this, 0});
  impl_->visit_mark = epoch;
  while (!stack.empty()) {
    Frame& top = stack.back();
    auto& parents = top.node.impl()->parents;
    if (top.next_parent < parents.size()) {
      Tensor parent = parents[top.next_parent++];
      TensorImpl* pimpl = parent.impl();
      if (parent.requires_grad() && pimpl->visit_mark != epoch) {
        pimpl->visit_mark = epoch;
        stack.push_back({std::move(parent), 0});
      }
    } else {
      topo.push_back(top.node);
      stack.pop_back();
    }
  }

  // Seed with ones and run backward functions in reverse topo order
  // (topo is post-order, so iterate from the back).
  impl_->EnsureGrad();
  std::fill(impl_->grad.begin(), impl_->grad.end(), 1.0f);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    TensorImpl* node = it->impl();
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(*it);
    }
  }
}

Tensor Tensor::Detach() const {
  CPDG_CHECK(defined());
  auto impl = NewImpl(impl_->rows, impl_->cols);
  impl->data = impl_->data;
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor Tensor::Clone() const { return Detach(); }

void Tensor::CopyDataFrom(const Tensor& src) {
  CPDG_CHECK(defined());
  CPDG_CHECK(src.defined());
  CPDG_CHECK_EQ(rows(), src.rows());
  CPDG_CHECK_EQ(cols(), src.cols());
  impl_->data = src.impl_->data;
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor[null]";
  std::ostringstream os;
  os << "Tensor[" << impl_->rows << "x" << impl_->cols << ", op="
     << impl_->op_name;
  if (impl_->requires_grad) os << ", requires_grad";
  os << "]";
  return os.str();
}

}  // namespace cpdg::tensor
