#ifndef CPDG_TENSOR_SERIALIZATION_H_
#define CPDG_TENSOR_SERIALIZATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "tensor/nn.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace cpdg::tensor {

/// \file Binary checkpointing of module parameters.
///
/// Writers emit the version-2 CPDGCKPT container (see
/// tensor/checkpoint_container.h) with the tensor list in a
/// CRC32-checksummed "params" section, published atomically (temp file +
/// fsync + rename) so a crash mid-save can never destroy the previous
/// checkpoint. The loader also accepts legacy version-1 files
///   magic "CPDGCKPT" | version u32 = 1 | tensor count u32 |
///   per tensor: rows i64, cols i64, rows*cols f32 payload
/// with hardened parsing: tensor shapes are bounded against the remaining
/// file size before any allocation and trailing garbage is rejected.
///
/// Loading validates shapes against the target module, so a checkpoint can
/// only be restored into an architecturally identical model — the same
/// contract as Module::CopyParametersFrom, but across processes. This is
/// how a pre-trained CPDG encoder is shipped to downstream fine-tuning
/// jobs, and full-training-state checkpoints (train/checkpoint.h) reuse
/// the same "params" payload encoding for their module-parameter section.

/// \brief Name of the container section holding the tensor list.
inline constexpr char kParamsSection[] = "params";

/// \brief Writes all parameters of `module` to `path` (atomic overwrite).
Status SaveParameters(const Module& module, const std::string& path);

/// \brief Restores parameters saved by SaveParameters into `module`.
/// Fails without modifying anything if the tensor count or any shape
/// disagrees (all-or-nothing, for v1 and v2 files alike).
Status LoadParameters(Module* module, const std::string& path);

/// \brief Lower-level variants operating on explicit tensor lists.
Status SaveTensors(const std::vector<Tensor>& tensors,
                   const std::string& path);
Result<std::vector<Tensor>> LoadTensors(const std::string& path);

/// \brief Encodes a tensor list as the "params" section payload:
/// count u32, then per tensor rows i64, cols i64, f32 data.
Result<std::string> EncodeTensorList(const std::vector<Tensor>& tensors);

/// \brief Decodes an EncodeTensorList payload with bounds-checked shapes;
/// rejects trailing garbage.
Result<std::vector<Tensor>> DecodeTensorList(std::string_view payload);

/// \brief Validates `loaded` against `params` (count + shapes) and then
/// copies data in; the all-or-nothing core of LoadParameters, shared with
/// the training-state resume path.
Status RestoreTensorData(std::vector<Tensor> params,
                         const std::vector<Tensor>& loaded);

}  // namespace cpdg::tensor

#endif  // CPDG_TENSOR_SERIALIZATION_H_
