#ifndef CPDG_TENSOR_SERIALIZATION_H_
#define CPDG_TENSOR_SERIALIZATION_H_

#include <string>
#include <vector>

#include "tensor/nn.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace cpdg::tensor {

/// \file Binary checkpointing of module parameters.
///
/// The on-disk format is a small self-describing container:
///   magic "CPDGCKPT" | version u32 | tensor count u32 |
///   per tensor: rows i64, cols i64, rows*cols f32 payload.
/// Loading validates shapes against the target module, so a checkpoint can
/// only be restored into an architecturally identical model — the same
/// contract as Module::CopyParametersFrom, but across processes. This is
/// how a pre-trained CPDG encoder is shipped to downstream fine-tuning
/// jobs.

/// \brief Writes all parameters of `module` to `path` (overwrites).
Status SaveParameters(const Module& module, const std::string& path);

/// \brief Restores parameters saved by SaveParameters into `module`.
/// Fails without modifying anything if the tensor count or any shape
/// disagrees.
Status LoadParameters(Module* module, const std::string& path);

/// \brief Lower-level variants operating on explicit tensor lists.
Status SaveTensors(const std::vector<Tensor>& tensors,
                   const std::string& path);
Result<std::vector<Tensor>> LoadTensors(const std::string& path);

}  // namespace cpdg::tensor

#endif  // CPDG_TENSOR_SERIALIZATION_H_
