#include "tensor/losses.h"

namespace cpdg::tensor {

Tensor BceWithLogitsLoss(const Tensor& logits, const Tensor& targets) {
  CPDG_CHECK_EQ(logits.rows(), targets.rows());
  CPDG_CHECK_EQ(logits.cols(), targets.cols());
  // -(y*log(p) + (1-y)*log(1-p)) with clamped logs for stability.
  Tensor p = Sigmoid(logits);
  Tensor log_p = Log(p, 1e-7f);
  Tensor log_1mp = Log(Sub(Tensor::Ones(p.rows(), p.cols()), p), 1e-7f);
  Tensor ones = Tensor::Ones(targets.rows(), targets.cols());
  Tensor term = Add(Mul(targets, log_p), Mul(Sub(ones, targets), log_1mp));
  return Neg(Mean(term));
}

Tensor RowEuclideanDistance(const Tensor& a, const Tensor& b) {
  Tensor diff = Sub(a, b);
  return Sqrt(RowSum(Square(diff)), 1e-12f);
}

Tensor TripletMarginLoss(const Tensor& anchor, const Tensor& positive,
                         const Tensor& negative, float margin) {
  Tensor d_pos = RowEuclideanDistance(anchor, positive);
  Tensor d_neg = RowEuclideanDistance(anchor, negative);
  Tensor hinge = Relu(AddScalar(Sub(d_pos, d_neg), margin));
  return Mean(hinge);
}

Tensor MseLoss(const Tensor& prediction, const Tensor& target) {
  return Mean(Square(Sub(prediction, target)));
}

}  // namespace cpdg::tensor
