#ifndef CPDG_TENSOR_SIMD_H_
#define CPDG_TENSOR_SIMD_H_

#include <cstdint>

namespace cpdg::tensor::simd {

/// \brief Instruction-set backend for the dense kernels (GEMM microkernel
/// and the vectorized elementwise primitives below).
///
/// Numeric contract: both backends implement the exact same per-element
/// arithmetic — lane-independent mul/add for the elementwise primitives and
/// correctly-rounded fused multiply-add (`std::fmaf` == `vfmaddps` per
/// lane) for the GEMM accumulation chains — so results are bitwise
/// identical regardless of which backend runs. Backend selection therefore
/// affects speed only, never values, and goldens captured on one machine
/// hold on every machine.
enum class Mode {
  kScalar,  ///< Portable C++ (std::fmaf chains); runs everywhere.
  kAvx2,    ///< AVX2 + FMA intrinsics; requires hardware and build support.
};

/// \brief Backend in use, resolved once on first call: the `CPDG_SIMD` env
/// override (`auto` / `scalar` / `avx2`) intersected with build- and
/// runtime-CPU support. `avx2` requested on an unsupported machine warns
/// and falls back to scalar.
Mode ActiveMode();

/// Short lowercase name ("scalar", "avx2") for logs and bench JSON.
const char* ModeName(Mode m);

/// \brief True when the AVX2 kernels were compiled in and the running CPU
/// reports AVX2 + FMA.
bool Avx2Supported();

/// \brief True when the AVX-VNNI int8 kernels were compiled in and the
/// running CPU reports AVX-VNNI (the VEX-encoded vpdpwssd). A sub-variant
/// of AVX2 mode used only by the quantized inference path (tensor/quant.h)
/// — integer accumulation is exact, so the variant choice can never show
/// in output bits and needs no Mode of its own.
bool AvxVnniSupported();

/// \brief Test hook: makes AvxVnniSupported() report false so parity tests
/// can pin the AVX2 int16 backend on VNNI hardware. Pass false to restore
/// the real CPU answer.
void DisableAvxVnniForTest(bool disabled);

/// \brief Test hook: pins the active mode, bypassing the env resolution.
/// Forcing kAvx2 on a machine without support is a fatal error.
void ForceModeForTest(Mode m);

/// \brief Test hook: reverts ForceModeForTest to the env/auto resolution.
void ResetModeForTest();

/// \name Vectorized elementwise primitives
///
/// Drop-in bodies for the hot ParallelElems chunks in ops.cc. Each is
/// plain lane-independent IEEE arithmetic (separate multiply and add — no
/// contraction), so the vectorized forms are bitwise identical to the
/// scalar loops they replace at every size and alignment.
/// @{
void Add(const float* a, const float* b, float* o, int64_t n);
void Sub(const float* a, const float* b, float* o, int64_t n);
void Mul(const float* a, const float* b, float* o, int64_t n);
void Div(const float* a, const float* b, float* o, int64_t n);
/// g[i] += d[i]
void Accumulate(float* g, const float* d, int64_t n);
/// g[i] += d[i] * x[i]  (multiply then add; not fused)
void AccumulateProduct(float* g, const float* d, const float* x, int64_t n);
/// g[i] += d[i] / x[i]
void AccumulateQuotient(float* g, const float* d, const float* x, int64_t n);
/// o[i] = -a[i]
void Negate(const float* a, float* o, int64_t n);
/// o[i] = a[i] * s
void Scale(const float* a, float s, float* o, int64_t n);
/// g[i] += d[i] * s  (multiply then add; not fused)
void AccumulateScaled(float* g, const float* d, float s, int64_t n);
/// @}

}  // namespace cpdg::tensor::simd

#endif  // CPDG_TENSOR_SIMD_H_
