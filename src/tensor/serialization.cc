#include "tensor/serialization.h"

#include <cstdint>
#include <cstring>

#include "tensor/checkpoint_container.h"
#include "util/atomic_file.h"
#include "util/byte_codec.h"

namespace cpdg::tensor {
namespace {

/// Upper bound on a single tensor's element count accepted from disk; the
/// per-tensor payload is additionally bounded by the remaining input, so
/// this only caps pathological rows*cols overflow.
constexpr int64_t kMaxTensorElems = int64_t{1} << 40;

Result<std::vector<Tensor>> ParseTensorList(util::ByteReader* r,
                                            uint32_t count,
                                            bool reject_trailing) {
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int64_t rows = 0, cols = 0;
    if (!r->Pod(&rows) || !r->Pod(&cols) || rows <= 0 || cols <= 0) {
      return Status::InvalidArgument("truncated or corrupt tensor header");
    }
    // Bound rows*cols against the remaining bytes *before* allocating, so
    // a corrupt header cannot trigger a multi-GB allocation attempt.
    if (rows > kMaxTensorElems / cols ||
        static_cast<uint64_t>(rows * cols) >
            r->remaining() / sizeof(float)) {
      return Status::InvalidArgument(
          "tensor " + std::to_string(i) + " claims shape " +
          std::to_string(rows) + "x" + std::to_string(cols) +
          " exceeding the remaining payload");
    }
    std::vector<float> data(static_cast<size_t>(rows * cols));
    std::string_view raw;
    r->Bytes(data.size() * sizeof(float), &raw);
    std::memcpy(data.data(), raw.data(), raw.size());
    tensors.push_back(Tensor::FromVector(rows, cols, std::move(data)));
  }
  if (reject_trailing && !r->AtEnd()) {
    return Status::InvalidArgument("trailing garbage after last tensor");
  }
  return tensors;
}

}  // namespace

Result<std::string> EncodeTensorList(const std::vector<Tensor>& tensors) {
  std::string payload;
  util::ByteWriter w(&payload);
  w.Pod(static_cast<uint32_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    if (!t.defined()) return Status::InvalidArgument("undefined tensor");
    w.Pod(static_cast<int64_t>(t.rows()));
    w.Pod(static_cast<int64_t>(t.cols()));
    payload.append(reinterpret_cast<const char*>(t.data()),
                   static_cast<size_t>(t.size()) * sizeof(float));
  }
  return payload;
}

Result<std::vector<Tensor>> DecodeTensorList(std::string_view payload) {
  util::ByteReader r(payload);
  uint32_t count = 0;
  if (!r.Pod(&count)) {
    return Status::InvalidArgument("truncated tensor-list header");
  }
  return ParseTensorList(&r, count, /*reject_trailing=*/true);
}

Status SaveTensors(const std::vector<Tensor>& tensors,
                   const std::string& path) {
  CPDG_ASSIGN_OR_RETURN(std::string payload, EncodeTensorList(tensors));
  SectionWriter writer;
  writer.Add(kParamsSection, std::move(payload));
  return writer.WriteAtomic(path);
}

Result<std::vector<Tensor>> LoadTensors(const std::string& path) {
  std::string bytes;
  CPDG_RETURN_NOT_OK(util::ReadFileToString(path, &bytes));

  // Both versions share the magic; dispatch on the version field.
  util::ByteReader header(bytes);
  std::string_view magic;
  if (!header.Bytes(sizeof(kCheckpointMagic), &magic) ||
      std::memcmp(magic.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0) {
    return Status::InvalidArgument("bad checkpoint magic in " + path);
  }
  uint32_t version = 0;
  if (!header.Pod(&version)) {
    return Status::InvalidArgument("truncated checkpoint header in " + path);
  }

  if (version == kCheckpointVersionV1) {
    uint32_t count = 0;
    if (!header.Pod(&count)) {
      return Status::InvalidArgument("truncated checkpoint header in " +
                                     path);
    }
    return ParseTensorList(&header, count, /*reject_trailing=*/true);
  }
  if (version == kCheckpointVersionV2) {
    CPDG_ASSIGN_OR_RETURN(SectionReader reader,
                          SectionReader::FromBytes(std::move(bytes), path));
    CPDG_ASSIGN_OR_RETURN(std::string_view payload,
                          reader.Find(kParamsSection));
    return DecodeTensorList(payload);
  }
  return Status::InvalidArgument("unsupported checkpoint version " +
                                 std::to_string(version) + " in " + path);
}

Status RestoreTensorData(std::vector<Tensor> params,
                         const std::vector<Tensor>& loaded) {
  if (params.size() != loaded.size()) {
    return Status::FailedPrecondition(
        "checkpoint has " + std::to_string(loaded.size()) +
        " tensors, module has " + std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i].rows() != loaded[i].rows() ||
        params[i].cols() != loaded[i].cols()) {
      return Status::FailedPrecondition("shape mismatch at tensor " +
                                        std::to_string(i));
    }
  }
  // All shapes verified; only now mutate (all-or-nothing contract).
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].CopyDataFrom(loaded[i]);
  }
  return Status::OK();
}

Status SaveParameters(const Module& module, const std::string& path) {
  return SaveTensors(module.Parameters(), path);
}

Status LoadParameters(Module* module, const std::string& path) {
  if (module == nullptr) return Status::InvalidArgument("null module");
  CPDG_ASSIGN_OR_RETURN(std::vector<Tensor> loaded, LoadTensors(path));
  return RestoreTensorData(module->Parameters(), loaded);
}

}  // namespace cpdg::tensor
