#include "tensor/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace cpdg::tensor {
namespace {

constexpr char kMagic[8] = {'C', 'P', 'D', 'G', 'C', 'K', 'P', 'T'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return in.good();
}

}  // namespace

Status SaveTensors(const std::vector<Tensor>& tensors,
                   const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint32_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    if (!t.defined()) return Status::InvalidArgument("undefined tensor");
    WritePod(out, static_cast<int64_t>(t.rows()));
    WritePod(out, static_cast<int64_t>(t.cols()));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
  }
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<Tensor>> LoadTensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad checkpoint magic in " + path);
  }
  uint32_t version = 0, count = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadPod(in, &count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int64_t rows = 0, cols = 0;
    if (!ReadPod(in, &rows) || !ReadPod(in, &cols) || rows <= 0 ||
        cols <= 0) {
      return Status::InvalidArgument("truncated or corrupt tensor header");
    }
    std::vector<float> data(static_cast<size_t>(rows * cols));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in.good()) {
      return Status::InvalidArgument("truncated tensor payload");
    }
    tensors.push_back(Tensor::FromVector(rows, cols, std::move(data)));
  }
  return tensors;
}

Status SaveParameters(const Module& module, const std::string& path) {
  return SaveTensors(module.Parameters(), path);
}

Status LoadParameters(Module* module, const std::string& path) {
  if (module == nullptr) return Status::InvalidArgument("null module");
  CPDG_ASSIGN_OR_RETURN(std::vector<Tensor> loaded, LoadTensors(path));
  std::vector<Tensor> params = module->Parameters();
  if (params.size() != loaded.size()) {
    return Status::FailedPrecondition(
        "checkpoint has " + std::to_string(loaded.size()) +
        " tensors, module has " + std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i].rows() != loaded[i].rows() ||
        params[i].cols() != loaded[i].cols()) {
      return Status::FailedPrecondition("shape mismatch at tensor " +
                                        std::to_string(i));
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].CopyDataFrom(loaded[i]);
  }
  return Status::OK();
}

}  // namespace cpdg::tensor
