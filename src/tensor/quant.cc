// int8 quantized inference driver: owns quantization (weights at load,
// activations on the fly), the (m, n) tiling and thread fan-out, and the
// float dequant epilogue. Per-tile integer accumulation is delegated to
// the backend selected by simd::ActiveMode(). See quant.h for the scheme
// and determinism contract.

#include "tensor/quant.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/gemm.h"
#include "tensor/quant_internal.h"
#include "tensor/simd.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace cpdg::tensor {
namespace {

constexpr int64_t MR = kQuantMR;

thread_local const QuantizedParamSet* t_quant_set = nullptr;

quant_internal::QuantMicroKernelFn ActiveQuantMicroKernel() {
#ifdef CPDG_HAVE_AVX2_KERNELS
  if (simd::ActiveMode() == simd::Mode::kAvx2) {
    return quant_internal::Avx2QuantMicroKernel();
  }
#endif
  return quant_internal::ScalarQuantMicroKernel();
}

/// Quantizes one float row onto the int8 grid, stored pre-widened as
/// int16 (the kernel operand layout), and returns its scale. This TU is
/// compiled exactly once (baseline ISA) and shared by both weight-load and
/// activation paths, so quantized values never depend on the runtime SIMD
/// backend choice; the SSE2 body and the lrintf fallback/tail both round
/// to nearest-even under default rounding modes.
float QuantizeRowWide(const float* src, int64_t n, int16_t* dst) {
  float maxabs = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    maxabs = std::max(maxabs, std::fabs(src[i]));
  }
  if (maxabs == 0.0f) {
    std::fill(dst, dst + n, static_cast<int16_t>(0));
    return 0.0f;
  }
  const float inv = 127.0f / maxabs;
  int64_t i = 0;
#if defined(__SSE2__)
  // Activations are quantized on every forward, so the rounding loop is on
  // the serving hot path (unlike weights, quantized once at load). The
  // saturating pack cannot clip: |src*inv| <= 127(1+eps) rounds to 127.
  const __m128 vinv = _mm_set1_ps(inv);
  const __m128i lo = _mm_set1_epi16(-127);
  const __m128i hi = _mm_set1_epi16(127);
  for (; i + 8 <= n; i += 8) {
    const __m128i q0 =
        _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i), vinv));
    const __m128i q1 =
        _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i + 4), vinv));
    __m128i q16 = _mm_packs_epi32(q0, q1);
    q16 = _mm_min_epi16(_mm_max_epi16(q16, lo), hi);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), q16);
  }
#endif
  for (; i < n; ++i) {
    const long q = std::lrintf(src[i] * inv);
    dst[i] = static_cast<int16_t>(std::clamp<long>(q, -127, 127));
  }
  return maxabs / 127.0f;
}

/// The same quantization in the vpdpbusd operand convention (quant.h):
/// u8 = q + 128 ∈ [1, 255] (a zero row encodes as all-128, the biased
/// zero). Identical grid integers — the rounding path matches
/// QuantizeRowWide op for op — so the packed backend stays bitwise
/// consistent with the signed ones.
float QuantizeRowBiasedU8(const float* src, int64_t n, uint8_t* dst) {
  float maxabs = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    maxabs = std::max(maxabs, std::fabs(src[i]));
  }
  if (maxabs == 0.0f) {
    std::fill(dst, dst + n, static_cast<uint8_t>(128));
    return 0.0f;
  }
  const float inv = 127.0f / maxabs;
  int64_t i = 0;
#if defined(__SSE2__)
  const __m128 vinv = _mm_set1_ps(inv);
  const __m128i lo = _mm_set1_epi16(-127);
  const __m128i hi = _mm_set1_epi16(127);
  const __m128i vbias = _mm_set1_epi16(128);
  for (; i + 16 <= n; i += 16) {
    const __m128i q0 =
        _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i), vinv));
    const __m128i q1 =
        _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i + 4), vinv));
    const __m128i q2 =
        _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i + 8), vinv));
    const __m128i q3 =
        _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + i + 12), vinv));
    __m128i a16 = _mm_packs_epi32(q0, q1);
    __m128i b16 = _mm_packs_epi32(q2, q3);
    a16 = _mm_add_epi16(_mm_min_epi16(_mm_max_epi16(a16, lo), hi), vbias);
    b16 = _mm_add_epi16(_mm_min_epi16(_mm_max_epi16(b16, lo), hi), vbias);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_packus_epi16(a16, b16));
  }
#endif
  for (; i < n; ++i) {
    const long q = std::lrintf(src[i] * inv);
    dst[i] = static_cast<uint8_t>(std::clamp<long>(q, -127, 127) + 128);
  }
  return maxabs / 127.0f;
}

}  // namespace

QuantizedMatrix QuantizeRowsInt8(const float* src, int64_t rows,
                                 int64_t cols) {
  QuantizedMatrix q;
  q.rows = rows;
  q.cols = cols;
  q.wide.resize(static_cast<size_t>(rows * cols));
  q.scales.resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    q.scales[static_cast<size_t>(r)] =
        QuantizeRowWide(src + r * cols, cols, q.wide.data() + r * cols);
  }
  // Compact int8 form: every wide value is on [-127, 127] by construction.
  q.values.resize(q.wide.size());
  for (size_t i = 0; i < q.wide.size(); ++i) {
    q.values[i] = static_cast<int8_t>(q.wide[i]);
  }
  // AVX-VNNI pack + bias (quant.h layout). Plain byte shuffling — built on
  // every platform so the layout itself is portable and testable; only the
  // kernel that consumes it is ISA-gated.
  q.kpad = (cols + 3) & ~int64_t{3};
  const int64_t nblk = (rows + 7) / 8;
  q.packed.assign(static_cast<size_t>(nblk * q.kpad * 8), 0);
  q.bias.resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    int32_t sum = 0;
    const int8_t* vrow = q.values.data() + r * cols;
    int8_t* const blk = q.packed.data() + (r / 8) * q.kpad * 8 + (r % 8) * 4;
    for (int64_t c = 0; c < cols; ++c) {
      sum += vrow[c];
      blk[(c / 4) * 32 + (c % 4)] = vrow[c];
    }
    q.bias[static_cast<size_t>(r)] = 128 * sum;
  }
  return q;
}

QuantizedMatrix QuantizeTransposeInt8(const float* src, int64_t rows,
                                      int64_t cols) {
  // Materialize the transpose once (load time only), then quantize its
  // rows — one scale per original column.
  std::vector<float> transposed(static_cast<size_t>(rows * cols));
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      transposed[static_cast<size_t>(c * rows + r)] = src[r * cols + c];
    }
  }
  return QuantizeRowsInt8(transposed.data(), cols, rows);
}

#ifdef CPDG_HAVE_VNNI_KERNELS
/// vpdpbusd execution path: biased-u8 activations against the
/// lane-interleaved pack, bias subtracted in the epilogue (quant.h).
/// Bitwise identical to the strip path — same grid integers, same exact
/// int32 sums after correction, same epilogue float expression.
void QuantGemmPackedVnni(const float* a, int64_t m, int64_t k,
                         const QuantizedMatrix& bt, float* c) {
  const int64_t n = bt.rows;
  const int64_t kpad = bt.kpad;
  const int64_t nblk = (n + 7) / 8;
  const int64_t row_tiles = (m + MR - 1) / MR;

  // Activation rows at kpad stride, buffer padded to whole MR tiles: the
  // kernel always reads MR rows and full k-quads. Pad contents are never
  // zeroed — k-tail quads multiply packed zeros and pad rows' lanes are
  // skipped by the epilogue — but resize() zero-fills on growth anyway.
  static thread_local std::vector<uint8_t> au_buf;
  static thread_local std::vector<float> ascale_buf;
  au_buf.resize(static_cast<size_t>(row_tiles * MR * kpad));
  ascale_buf.resize(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    ascale_buf[static_cast<size_t>(i)] =
        QuantizeRowBiasedU8(a + i * k, k, au_buf.data() + i * kpad);
  }

  const quant_internal::QuantPackedKernelFn micro =
      quant_internal::VnniPackedKernel();
  const uint8_t* const aq = au_buf.data();
  const float* const ascale = ascale_buf.data();
  const int8_t* const bq = bt.packed.data();
  const int32_t* const bbias = bt.bias.data();
  const float* const bscale = bt.scales.data();

  auto run_tiles = [=](int64_t t0, int64_t t1) {
    static thread_local std::vector<int32_t> acc_buf;
    acc_buf.resize(static_cast<size_t>(MR * nblk * 8));
    int32_t* const acc = acc_buf.data();
    const int64_t ldacc = nblk * 8;
    for (int64_t tr = t0; tr < t1; ++tr) {
      const int64_t i0 = tr * MR;
      const int64_t mvalid = std::min<int64_t>(MR, m - i0);
      micro(aq + i0 * kpad, kpad, bq, kpad, nblk, acc, ldacc);
      for (int64_t r = 0; r < mvalid; ++r) {
        const float sa = ascale[i0 + r];
        float* const crow = c + (i0 + r) * n;
        const int32_t* const accrow = acc + r * ldacc;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] +=
              (sa * bscale[j]) * static_cast<float>(accrow[j] - bbias[j]);
        }
      }
    }
  };

  if (m * k * n < kGemmParallelMinFlops || row_tiles == 1) {
    run_tiles(0, row_tiles);
  } else {
    util::ThreadPool::Global().ParallelFor(
        0, row_tiles, /*grain=*/1, [&](int64_t lo, int64_t hi) {
          run_tiles(lo, hi);
        });
  }
}
#endif  // CPDG_HAVE_VNNI_KERNELS

void QuantGemmTransposedB(const float* a, int64_t m, int64_t k,
                          const QuantizedMatrix& bt, float* c) {
  CPDG_CHECK_EQ(bt.cols, k);
  const int64_t n = bt.rows;
  if (m == 0 || n == 0 || k == 0) return;

#ifdef CPDG_HAVE_VNNI_KERNELS
  if (simd::ActiveMode() == simd::Mode::kAvx2 && simd::AvxVnniSupported() &&
      !bt.packed.empty()) {
    QuantGemmPackedVnni(a, m, k, bt, c);
    return;
  }
#endif

  // Activation quantization: O(m*k) against the O(m*k*n) product, so it
  // stays serial on the calling thread. Buffers are thread_local and
  // reused across calls, like the GEMM pack buffers. Quantized straight
  // into the widened kernel layout; the int8 form is never materialized
  // for activations.
  static thread_local std::vector<int16_t> aq_buf;
  static thread_local std::vector<float> ascale_buf;
  aq_buf.resize(static_cast<size_t>(m * k));
  ascale_buf.resize(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    ascale_buf[static_cast<size_t>(i)] =
        QuantizeRowWide(a + i * k, k, aq_buf.data() + i * k);
  }

  const quant_internal::QuantMicroKernelFn micro = ActiveQuantMicroKernel();
  // Hoisted pointers: the buffers are thread_local, so naming them inside
  // the worker lambda would resolve to each worker's own instance.
  const int16_t* const aq = aq_buf.data();
  const float* const ascale = ascale_buf.data();
  const int16_t* const bq = bt.wide.data();
  const float* const bscale = bt.scales.data();

  const int64_t row_tiles = (m + MR - 1) / MR;
  auto run_tiles = [=](int64_t t0, int64_t t1) {
    // Whole-strip accumulator, one backend call per row tile (the seam is
    // an indirect call; per-tile dispatch measurably dominated small
    // products). Per worker thread, reused across tiles.
    static thread_local std::vector<int32_t> acc_buf;
    acc_buf.resize(static_cast<size_t>(MR * n));
    int32_t* const acc = acc_buf.data();
    for (int64_t tr = t0; tr < t1; ++tr) {
      const int64_t i0 = tr * MR;
      const int64_t mvalid = std::min<int64_t>(MR, m - i0);
      micro(aq + i0 * k, k, bq, k, k, n, acc, n, mvalid);
      // Dequant epilogue: shared float code, one multiply order, so the
      // backend choice can never show in the output bits.
      for (int64_t r = 0; r < mvalid; ++r) {
        const float sa = ascale[i0 + r];
        float* const crow = c + (i0 + r) * n;
        const int32_t* const accrow = acc + r * n;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] += (sa * bscale[j]) * static_cast<float>(accrow[j]);
        }
      }
    }
  };

  // Same fan-out policy as the fp32 GEMM; tile rows own disjoint C slices
  // and integer accumulation is exact, so any thread count is bitwise
  // identical.
  if (m * k * n < kGemmParallelMinFlops || row_tiles == 1) {
    run_tiles(0, row_tiles);
  } else {
    util::ThreadPool::Global().ParallelFor(
        0, row_tiles, /*grain=*/1, [&](int64_t lo, int64_t hi) {
          run_tiles(lo, hi);
        });
  }
}

void QuantizedParamSet::AddWeight(const float* data, int64_t rows,
                                  int64_t cols) {
  CPDG_CHECK(data != nullptr);
  weights_.emplace(data, QuantizeTransposeInt8(data, rows, cols));
}

const QuantizedMatrix* QuantizedParamSet::Find(const float* data) const {
  if (weights_.empty()) return nullptr;
  auto it = weights_.find(data);
  return it == weights_.end() ? nullptr : &it->second;
}

int64_t QuantizedParamSet::quantized_bytes() const {
  int64_t total = 0;
  for (const auto& [ptr, q] : weights_) {
    total += static_cast<int64_t>(q.values.size());
  }
  return total;
}

bool QuantModeEnabled() {
  return t_quant_set != nullptr && !t_quant_set->empty();
}

const QuantizedMatrix* ActiveQuantizedWeight(const float* data) {
  if (t_quant_set == nullptr) return nullptr;
  return t_quant_set->Find(data);
}

QuantModeGuard::QuantModeGuard(const QuantizedParamSet* set)
    : prev_(t_quant_set) {
  t_quant_set = set;
}

QuantModeGuard::~QuantModeGuard() { t_quant_set = prev_; }

}  // namespace cpdg::tensor
