#include "tensor/arena.h"

#include <cstdlib>
#include <cstring>

namespace cpdg::tensor {
namespace {

// Size classes are powers of two from 64 B to 64 MB; larger requests pass
// straight through to the heap (both the alloc and the free re-derive the
// class from the request size, so the two sides always agree).
constexpr int kMinClassLog2 = 6;
constexpr int kMaxClassLog2 = 26;
constexpr int kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;

// Per-thread cache ceiling: beyond this, frees fall through to the heap so
// a pathological batch cannot pin unbounded memory.
constexpr size_t kMaxCachedBytes = size_t{512} << 20;

int SizeClassOf(size_t bytes, size_t* rounded) {
  size_t want = bytes < (size_t{1} << kMinClassLog2)
                    ? (size_t{1} << kMinClassLog2)
                    : bytes;
  int log2 = kMinClassLog2;
  size_t cls = size_t{1} << kMinClassLog2;
  while (cls < want) {
    cls <<= 1;
    ++log2;
    if (log2 > kMaxClassLog2) {
      *rounded = bytes;
      return -1;  // heap passthrough
    }
  }
  *rounded = cls;
  return log2 - kMinClassLog2;
}

int g_arena_override = -1;  // -1 = defer to env; see SetArenaEnabledOverride

bool ArenaEnabled() {
  if (g_arena_override >= 0) return g_arena_override != 0;
  static const bool enabled = [] {
    const char* v = std::getenv("CPDG_ARENA");
    return v == nullptr || std::strcmp(v, "0") != 0;
  }();
  return enabled;
}

// Freed blocks are chained intrusively: the first 8 bytes of a cached block
// hold the next pointer (every class is >= 64 bytes).
struct ArenaTls {
  int depth = 0;
  void* free_lists[kNumClasses] = {};
  size_t cached_bytes = 0;
  ArenaStats window;  // cleared by ArenaResetBatch()
  ArenaStats totals;

  void Drain() noexcept {
    for (void*& head : free_lists) {
      while (head != nullptr) {
        void* next = *static_cast<void**>(head);
        ::operator delete(head);
        head = next;
      }
    }
    cached_bytes = 0;
  }

  ~ArenaTls();
};

// Accessor with a destroyed flag: tensors with static storage duration may
// deallocate after the thread-local pool is destroyed at thread exit; those
// frees must fall through to the heap instead of touching a dead pool.
thread_local bool t_tls_destroyed = false;

ArenaTls::~ArenaTls() {
  Drain();
  t_tls_destroyed = true;
}

ArenaTls* Tls() {
  if (t_tls_destroyed) return nullptr;
  static thread_local ArenaTls tls;
  return &tls;
}

}  // namespace

void* ArenaAllocRaw(size_t bytes) {
  size_t rounded = 0;
  int cls = SizeClassOf(bytes, &rounded);
  ArenaTls* tls = Tls();
  if (tls == nullptr || tls->depth == 0 || cls < 0) {
    if (tls != nullptr) {
      ++tls->window.heap_allocs;
      ++tls->totals.heap_allocs;
    }
    return ::operator new(rounded);
  }
  void*& head = tls->free_lists[cls];
  if (head != nullptr) {
    void* block = head;
    head = *static_cast<void**>(block);
    tls->cached_bytes -= rounded;
    ++tls->window.pool_hits;
    ++tls->totals.pool_hits;
    return block;
  }
  ++tls->window.heap_allocs;
  ++tls->totals.heap_allocs;
  return ::operator new(rounded);
}

void ArenaFreeRaw(void* p, size_t bytes) noexcept {
  if (p == nullptr) return;
  size_t rounded = 0;
  int cls = SizeClassOf(bytes, &rounded);
  ArenaTls* tls = Tls();
  if (tls == nullptr || tls->depth == 0 || cls < 0 ||
      tls->cached_bytes + rounded > kMaxCachedBytes) {
    if (tls != nullptr) {
      ++tls->window.frees_to_heap;
      ++tls->totals.frees_to_heap;
    }
    ::operator delete(p);
    return;
  }
  *static_cast<void**>(p) = tls->free_lists[cls];
  tls->free_lists[cls] = p;
  tls->cached_bytes += rounded;
  ++tls->window.frees_to_pool;
  ++tls->totals.frees_to_pool;
}

bool ArenaActive() {
  ArenaTls* tls = Tls();
  return tls != nullptr && tls->depth > 0;
}

ArenaStats ArenaResetBatch() {
  ArenaTls* tls = Tls();
  if (tls == nullptr) return {};
  ArenaStats out = tls->window;
  tls->window = {};
  return out;
}

ArenaStats ArenaTotals() {
  ArenaTls* tls = Tls();
  if (tls == nullptr) return {};
  return tls->totals;
}

void SetArenaEnabledOverride(int enabled) { g_arena_override = enabled; }

ArenaScope::ArenaScope() : engaged_(false) {
  if (!ArenaEnabled()) return;
  ArenaTls* tls = Tls();
  if (tls == nullptr) return;
  ++tls->depth;
  engaged_ = true;
}

ArenaScope::~ArenaScope() {
  if (!engaged_) return;
  ArenaTls* tls = Tls();
  if (tls == nullptr) return;
  if (--tls->depth == 0) tls->Drain();
}

}  // namespace cpdg::tensor
