// AVX-VNNI int8 backend: vpdpbusd over the lane-interleaved packed-B
// layout (quant.h). Each vpdpbusd retires 32 u8×s8 MACs — 4 per int32
// lane, double the int16 vpmaddwd rate and 4x the fp32 FMA rate — and the
// pack puts each output column's 4 k-values in one lane, so accumulator
// lanes hold whole column sums and the kernel has no horizontal
// reductions at all (the hadd trees are what cap the strip kernels).
//
// Operands follow the bias convention from quant.h: activations arrive as
// u8 = q + 128, weights as signed int8; the driver's epilogue subtracts
// the precomputed 128·rowsum bias. The per-quad products are at most
// 4·255·127 = 129540, far from int32 limits, and VPDPBUSD (unlike the
// -S form) does not saturate, so accumulation is exact for k < ~66k.
//
// Tile: 4 activation rows × 16 columns (2 packed blocks) = 8 accumulators;
// per k-quad that is 2 B loads + 4 dword broadcasts against 8 vpdpbusd —
// the load ports and the two VNNI ports stay balanced.
//
// Compiled only in this TU with -mavxvnni; entry point runs only after
// simd::AvxVnniSupported() verified the CPU.

#ifdef CPDG_HAVE_VNNI_KERNELS

#include <immintrin.h>

#include <cstring>

#include "tensor/quant_internal.h"

namespace cpdg::tensor::quant_internal {
namespace {

// vpbroadcastd of one k-quad of a row; memcpy keeps the byte buffer's
// aliasing clean and compiles to the single broadcast load.
inline __m256i BroadcastQuad(const uint8_t* p) {
  int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return _mm256_set1_epi32(v);
}

// 4 rows × 16 columns (packed blocks b0, b1), full kpad sweep.
void Dpbusd4x16(const uint8_t* a, int64_t lda, const int8_t* bp0,
                const int8_t* bp1, int64_t kpad, int32_t* acc,
                int64_t ldacc) {
  __m256i acc00 = _mm256_setzero_si256();
  __m256i acc01 = _mm256_setzero_si256();
  __m256i acc10 = _mm256_setzero_si256();
  __m256i acc11 = _mm256_setzero_si256();
  __m256i acc20 = _mm256_setzero_si256();
  __m256i acc21 = _mm256_setzero_si256();
  __m256i acc30 = _mm256_setzero_si256();
  __m256i acc31 = _mm256_setzero_si256();
  const uint8_t* a0 = a;
  const uint8_t* a1 = a + lda;
  const uint8_t* a2 = a + 2 * lda;
  const uint8_t* a3 = a + 3 * lda;
  for (int64_t p = 0; p < kpad; p += 4) {
    const __m256i vb0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp0 + p * 8));
    const __m256i vb1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp1 + p * 8));
    const __m256i va0 = BroadcastQuad(a0 + p);
    acc00 = _mm256_dpbusd_avx_epi32(acc00, va0, vb0);
    acc01 = _mm256_dpbusd_avx_epi32(acc01, va0, vb1);
    const __m256i va1 = BroadcastQuad(a1 + p);
    acc10 = _mm256_dpbusd_avx_epi32(acc10, va1, vb0);
    acc11 = _mm256_dpbusd_avx_epi32(acc11, va1, vb1);
    const __m256i va2 = BroadcastQuad(a2 + p);
    acc20 = _mm256_dpbusd_avx_epi32(acc20, va2, vb0);
    acc21 = _mm256_dpbusd_avx_epi32(acc21, va2, vb1);
    const __m256i va3 = BroadcastQuad(a3 + p);
    acc30 = _mm256_dpbusd_avx_epi32(acc30, va3, vb0);
    acc31 = _mm256_dpbusd_avx_epi32(acc31, va3, vb1);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc), acc00);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 8), acc01);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + ldacc), acc10);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + ldacc + 8), acc11);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 2 * ldacc), acc20);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 2 * ldacc + 8),
                      acc21);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 3 * ldacc), acc30);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 3 * ldacc + 8),
                      acc31);
}

// 4 rows × one trailing 8-column block.
void Dpbusd4x8(const uint8_t* a, int64_t lda, const int8_t* bp,
               int64_t kpad, int32_t* acc, int64_t ldacc) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  for (int64_t p = 0; p < kpad; p += 4) {
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + p * 8));
    acc0 = _mm256_dpbusd_avx_epi32(acc0, BroadcastQuad(a + p), vb);
    acc1 = _mm256_dpbusd_avx_epi32(acc1, BroadcastQuad(a + lda + p), vb);
    acc2 = _mm256_dpbusd_avx_epi32(acc2, BroadcastQuad(a + 2 * lda + p), vb);
    acc3 = _mm256_dpbusd_avx_epi32(acc3, BroadcastQuad(a + 3 * lda + p), vb);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc), acc0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + ldacc), acc1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 2 * ldacc), acc2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 3 * ldacc), acc3);
}

void VnniPackedMicro(const uint8_t* a, int64_t lda, const int8_t* bpacked,
                     int64_t kpad, int64_t nblk, int32_t* acc,
                     int64_t ldacc) {
  const int64_t blk_bytes = kpad * 8;
  int64_t jb = 0;
  for (; jb + 2 <= nblk; jb += 2) {
    Dpbusd4x16(a, lda, bpacked + jb * blk_bytes,
               bpacked + (jb + 1) * blk_bytes, kpad, acc + jb * 8, ldacc);
  }
  if (jb < nblk) {
    Dpbusd4x8(a, lda, bpacked + jb * blk_bytes, kpad, acc + jb * 8, ldacc);
  }
}

}  // namespace

QuantPackedKernelFn VnniPackedKernel() { return &VnniPackedMicro; }

}  // namespace cpdg::tensor::quant_internal

#endif  // CPDG_HAVE_VNNI_KERNELS
