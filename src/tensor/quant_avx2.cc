// AVX2 int8-grid microkernel backend. Like gemm_avx2.cc, this translation
// unit is the only quant one compiled with -mavx2 -mfma, and its entry
// point runs only after simd::Avx2Supported() verified the CPU.
//
// Arithmetic: operands arrive pre-widened to int16 (quant.h
// storage-vs-compute note), so the inner loop is nothing but loads and
// _mm256_madd_epi16 (pairwise int16*int16 -> int32 adds) — no widening
// shuffles. Values are bounded by |v| <= 127, so the pairwise products
// (<= 16129) and their sums (<= 32258) are exact — madd cannot saturate —
// and the int32 lane accumulators hold the exact integer sum for any
// realistic k (overflow would need k > 2^31 / 32258 ≈ 66k). Exact integers
// mean the result equals the scalar backend's bit for bit with no ordering
// caveats.
//
// Shape: the hot path pins one A row against kQuantNR (= 4) B^T rows so
// each 32-byte slice of A is loaded once and reused four times, with one
// vector accumulator per output kept live across the whole k loop; the
// four lane sums are folded together by a single hadd tree at the end.

#ifdef CPDG_HAVE_AVX2_KERNELS

#include <immintrin.h>

#include "tensor/quant_internal.h"

namespace cpdg::tensor::quant_internal {
namespace {

int32_t DotInt16(const int16_t* a, const int16_t* b, int64_t k) {
  __m256i acc = _mm256_setzero_si256();
  int64_t p = 0;
  for (; p + 16 <= k; p += 16) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + p));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t sum = _mm_cvtsi128_si32(s);
  for (; p < k; ++p) {
    sum += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return sum;
}

/// One A row against four consecutive B^T rows: each A slice loaded once,
/// four live accumulators, one combined reduction.
void DotInt16x4(const int16_t* a, const int16_t* bt, int64_t ldb, int64_t k,
                int32_t* out) {
  const int16_t* b0 = bt;
  const int16_t* b1 = bt + ldb;
  const int16_t* b2 = bt + 2 * ldb;
  const int16_t* b3 = bt + 3 * ldb;
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  int64_t p = 0;
  for (; p + 32 <= k; p += 32) {
    const __m256i va0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p));
    const __m256i va1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p + 16));
    const auto step = [&](const int16_t* b, __m256i acc) {
      acc = _mm256_add_epi32(
          acc, _mm256_madd_epi16(va0, _mm256_loadu_si256(
                                          reinterpret_cast<const __m256i*>(
                                              b + p))));
      return _mm256_add_epi32(
          acc, _mm256_madd_epi16(va1, _mm256_loadu_si256(
                                          reinterpret_cast<const __m256i*>(
                                              b + p + 16))));
    };
    acc0 = step(b0, acc0);
    acc1 = step(b1, acc1);
    acc2 = step(b2, acc2);
    acc3 = step(b3, acc3);
  }
  for (; p + 16 <= k; p += 16) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p));
    const auto step = [&](const int16_t* b, __m256i acc) {
      return _mm256_add_epi32(
          acc, _mm256_madd_epi16(va, _mm256_loadu_si256(
                                         reinterpret_cast<const __m256i*>(
                                             b + p))));
    };
    acc0 = step(b0, acc0);
    acc1 = step(b1, acc1);
    acc2 = step(b2, acc2);
    acc3 = step(b3, acc3);
  }
  // hadd tree: low/high 128 lanes each end up [s0 s1 s2 s3]; one add
  // folds them.
  const __m256i h01 = _mm256_hadd_epi32(acc0, acc1);
  const __m256i h23 = _mm256_hadd_epi32(acc2, acc3);
  const __m256i h = _mm256_hadd_epi32(h01, h23);
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(h),
                            _mm256_extracti128_si256(h, 1));
  alignas(16) int32_t sums[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(sums), s);
  for (; p < k; ++p) {
    const int32_t ap = a[p];
    sums[0] += ap * b0[p];
    sums[1] += ap * b1[p];
    sums[2] += ap * b2[p];
    sums[3] += ap * b3[p];
  }
  out[0] = sums[0];
  out[1] = sums[1];
  out[2] = sums[2];
  out[3] = sums[3];
}

/// Two A rows against four consecutive B^T rows — the register tile that
/// matters: each B vector is loaded once and multiplied into both rows'
/// accumulators, halving B load traffic per multiply-add versus the
/// one-row shape (the kernel is load-bound, not madd-bound). 8 live
/// accumulators + 4 B + 2 A vectors fit the 16 ymm registers.
void DotInt16x2x4(const int16_t* a0, const int16_t* a1, const int16_t* bt,
                  int64_t ldb, int64_t k, int32_t* out0, int32_t* out1) {
  const int16_t* b0 = bt;
  const int16_t* b1 = bt + ldb;
  const int16_t* b2 = bt + 2 * ldb;
  const int16_t* b3 = bt + 3 * ldb;
  __m256i acc00 = _mm256_setzero_si256();
  __m256i acc01 = _mm256_setzero_si256();
  __m256i acc02 = _mm256_setzero_si256();
  __m256i acc03 = _mm256_setzero_si256();
  __m256i acc10 = _mm256_setzero_si256();
  __m256i acc11 = _mm256_setzero_si256();
  __m256i acc12 = _mm256_setzero_si256();
  __m256i acc13 = _mm256_setzero_si256();
  int64_t p = 0;
  for (; p + 16 <= k; p += 16) {
    const __m256i va0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + p));
    const __m256i va1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + p));
    const __m256i vb0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b0 + p));
    acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(va0, vb0));
    acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(va1, vb0));
    const __m256i vb1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b1 + p));
    acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(va0, vb1));
    acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(va1, vb1));
    const __m256i vb2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b2 + p));
    acc02 = _mm256_add_epi32(acc02, _mm256_madd_epi16(va0, vb2));
    acc12 = _mm256_add_epi32(acc12, _mm256_madd_epi16(va1, vb2));
    const __m256i vb3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b3 + p));
    acc03 = _mm256_add_epi32(acc03, _mm256_madd_epi16(va0, vb3));
    acc13 = _mm256_add_epi32(acc13, _mm256_madd_epi16(va1, vb3));
  }
  const auto reduce = [](__m256i r0, __m256i r1, __m256i r2, __m256i r3,
                         int32_t* sums) {
    const __m256i h01 = _mm256_hadd_epi32(r0, r1);
    const __m256i h23 = _mm256_hadd_epi32(r2, r3);
    const __m256i h = _mm256_hadd_epi32(h01, h23);
    const __m128i s = _mm_add_epi32(_mm256_castsi256_si128(h),
                                    _mm256_extracti128_si256(h, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sums), s);
  };
  alignas(16) int32_t sums0[4];
  alignas(16) int32_t sums1[4];
  reduce(acc00, acc01, acc02, acc03, sums0);
  reduce(acc10, acc11, acc12, acc13, sums1);
  for (; p < k; ++p) {
    const int32_t a0p = a0[p];
    const int32_t a1p = a1[p];
    sums0[0] += a0p * b0[p];
    sums0[1] += a0p * b1[p];
    sums0[2] += a0p * b2[p];
    sums0[3] += a0p * b3[p];
    sums1[0] += a1p * b0[p];
    sums1[1] += a1p * b1[p];
    sums1[2] += a1p * b2[p];
    sums1[3] += a1p * b3[p];
  }
  for (int l = 0; l < 4; ++l) out0[l] = sums0[l];
  for (int l = 0; l < 4; ++l) out1[l] = sums1[l];
}

void Avx2QuantMicro(const int16_t* a, int64_t lda, const int16_t* bt,
                    int64_t ldb, int64_t k, int64_t n, int32_t* acc,
                    int64_t ldacc, int64_t mvalid) {
  // j outer, r inner: a 4-row B panel (4k int16) stays hot in L1 across
  // all rows of the strip, swept by row pairs.
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const int16_t* bpanel = bt + j * ldb;
    int64_t r = 0;
    for (; r + 2 <= mvalid; r += 2) {
      DotInt16x2x4(a + r * lda, a + (r + 1) * lda, bpanel, ldb, k,
                   acc + r * ldacc + j, acc + (r + 1) * ldacc + j);
    }
    if (r < mvalid) {
      DotInt16x4(a + r * lda, bpanel, ldb, k, acc + r * ldacc + j);
    }
  }
  for (; j < n; ++j) {
    for (int64_t r = 0; r < mvalid; ++r) {
      acc[r * ldacc + j] = DotInt16(a + r * lda, bt + j * ldb, k);
    }
  }
}

}  // namespace

QuantMicroKernelFn Avx2QuantMicroKernel() { return &Avx2QuantMicro; }

}  // namespace cpdg::tensor::quant_internal

#endif  // CPDG_HAVE_AVX2_KERNELS
