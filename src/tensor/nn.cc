#include "tensor/nn.h"

#include <cmath>

namespace cpdg::tensor {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out = params_;
  for (const Module* m : submodules_) {
    std::vector<Tensor> sub = m->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void Module::CopyParametersFrom(const Module& other) {
  std::vector<Tensor> mine = Parameters();
  std::vector<Tensor> theirs = other.Parameters();
  CPDG_CHECK_EQ(mine.size(), theirs.size())
      << "CopyParametersFrom requires identical architectures";
  for (size_t i = 0; i < mine.size(); ++i) {
    mine[i].CopyDataFrom(theirs[i]);
  }
}

void Module::ZeroGrad() {
  for (Tensor& t : Parameters()) t.ZeroGrad();
}

int64_t Module::ParameterCount() const {
  int64_t total = 0;
  for (const Tensor& t : Parameters()) total += t.size();
  return total;
}

Tensor Module::RegisterParameter(Tensor t) {
  CPDG_CHECK(t.defined());
  t.set_requires_grad(true);
  params_.push_back(t);
  return t;
}

void Module::RegisterModule(Module* m) {
  CPDG_CHECK(m != nullptr);
  submodules_.push_back(m);
}

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      Tensor::XavierUniform(in_features, out_features, rng));
  if (bias) {
    bias_ = RegisterParameter(Tensor::Zeros(1, out_features));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  CPDG_CHECK_EQ(x.cols(), in_features_);
  Tensor y = MatMul(x, weight_);
  if (bias_.defined()) y = Add(y, bias_);
  return y;
}

Tensor ApplyActivation(const Tensor& x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return Relu(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kIdentity:
      return x;
  }
  return x;
}

Mlp::Mlp(const std::vector<int64_t>& dims, Rng* rng, Activation activation)
    : activation_(activation) {
  CPDG_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule(layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = ApplyActivation(h, activation_);
  }
  return h;
}

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  int64_t joint = input_size + hidden_size;
  update_gate_ = std::make_unique<Linear>(joint, hidden_size, rng);
  reset_gate_ = std::make_unique<Linear>(joint, hidden_size, rng);
  candidate_gate_ = std::make_unique<Linear>(joint, hidden_size, rng);
  RegisterModule(update_gate_.get());
  RegisterModule(reset_gate_.get());
  RegisterModule(candidate_gate_.get());
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  CPDG_CHECK_EQ(x.cols(), input_size_);
  CPDG_CHECK_EQ(h.cols(), hidden_size_);
  CPDG_CHECK_EQ(x.rows(), h.rows());
  Tensor xh = Concat(x, h);
  Tensor z = Sigmoid(update_gate_->Forward(xh));
  Tensor r = Sigmoid(reset_gate_->Forward(xh));
  Tensor x_rh = Concat(x, Mul(r, h));
  Tensor h_tilde = Tanh(candidate_gate_->Forward(x_rh));
  // h' = (1 - z) * h + z * h~
  Tensor ones = Tensor::Ones(z.rows(), z.cols());
  return Add(Mul(Sub(ones, z), h), Mul(z, h_tilde));
}

RnnCell::RnnCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  cell_ = std::make_unique<Linear>(input_size + hidden_size, hidden_size, rng);
  RegisterModule(cell_.get());
}

Tensor RnnCell::Forward(const Tensor& x, const Tensor& h) const {
  CPDG_CHECK_EQ(x.cols(), input_size_);
  CPDG_CHECK_EQ(h.cols(), hidden_size_);
  CPDG_CHECK_EQ(x.rows(), h.rows());
  return Tanh(cell_->Forward(Concat(x, h)));
}

TimeEncoder::TimeEncoder(int64_t dim, Rng* rng) : dim_(dim) {
  (void)rng;
  // Log-spaced frequency grid 1/10^(k*4/d), as in TGAT's initialization;
  // phases start at zero. Both remain trainable parameters.
  std::vector<float> freq(static_cast<size_t>(dim));
  for (int64_t k = 0; k < dim; ++k) {
    freq[static_cast<size_t>(k)] = std::pow(
        10.0f, -static_cast<float>(k) * 4.0f / static_cast<float>(dim));
  }
  frequencies_ = RegisterParameter(Tensor::FromVector(1, dim, std::move(freq)));
  phases_ = RegisterParameter(Tensor::Zeros(1, dim));
}

Tensor TimeEncoder::Forward(const std::vector<double>& deltas) const {
  CPDG_CHECK(!deltas.empty());
  int64_t n = static_cast<int64_t>(deltas.size());
  std::vector<float> dt(deltas.size());
  for (size_t i = 0; i < deltas.size(); ++i) {
    dt[i] = static_cast<float>(deltas[i]);
  }
  Tensor dt_col = Tensor::FromVector(n, 1, std::move(dt));
  Tensor scaled = MatMul(dt_col, frequencies_);  // [n, dim]
  return Cos(Add(scaled, phases_));
}

GroupedAttentionLayer::GroupedAttentionLayer(int64_t query_dim,
                                             int64_t key_dim,
                                             int64_t attn_dim, int64_t out_dim,
                                             Rng* rng) {
  query_proj_ = std::make_unique<Linear>(query_dim, attn_dim, rng);
  key_proj_ = std::make_unique<Linear>(key_dim, attn_dim, rng);
  value_proj_ = std::make_unique<Linear>(key_dim, out_dim, rng);
  RegisterModule(query_proj_.get());
  RegisterModule(key_proj_.get());
  RegisterModule(value_proj_.get());
}

Tensor GroupedAttentionLayer::Forward(const Tensor& queries,
                                      const Tensor& candidates, int64_t group,
                                      const std::vector<uint8_t>& valid) const {
  Tensor q = query_proj_->Forward(queries);
  Tensor k = key_proj_->Forward(candidates);
  Tensor v = value_proj_->Forward(candidates);
  return GroupedAttention(q, k, v, group, valid);
}

}  // namespace cpdg::tensor
