#ifndef CPDG_TENSOR_TENSOR_H_
#define CPDG_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/arena.h"
#include "util/check.h"
#include "util/rng.h"

namespace cpdg::tensor {

/// \brief Row-major float storage for tensor data/grad buffers; allocation
/// routes through the batch arena (a plain heap vector when no ArenaScope
/// is active).
using FloatBuffer = std::vector<float, ArenaAllocator<float>>;

class Tensor;
/// \brief Parent list storage for op results, arena-backed like the data
/// buffers.
using TensorVector = std::vector<Tensor, ArenaAllocator<Tensor>>;

/// \brief All tensors in the engine are dense row-major 2-D float matrices
/// of shape [rows, cols]. Vectors are represented as [1, d] matrices.
///
/// This is deliberately minimal: the DGNN models in this repository only
/// need 2-D algebra plus a handful of fused kernels (grouped attention,
/// gather/scatter) that would otherwise require 3-D tensors.
struct TensorImpl;

/// \brief Value-semantics handle to a reference-counted tensor node.
///
/// A Tensor is a node in a dynamically built computation graph. Operations
/// (see ops.h) produce new nodes that remember their parents and a backward
/// function; calling Backward() on a scalar result propagates gradients to
/// every reachable node with requires_grad set.
class Tensor {
 public:
  /// Null handle; most APIs require a non-null tensor.
  Tensor() = default;

  /// \name Factory functions
  /// @{
  static Tensor Zeros(int64_t rows, int64_t cols, bool requires_grad = false);
  static Tensor Ones(int64_t rows, int64_t cols, bool requires_grad = false);
  static Tensor Full(int64_t rows, int64_t cols, float value,
                     bool requires_grad = false);
  /// Copies `values` (row-major) into tensor storage; size must equal
  /// rows*cols.
  static Tensor FromVector(int64_t rows, int64_t cols,
                           std::vector<float> values,
                           bool requires_grad = false);
  /// Uniform in [-limit, limit].
  static Tensor RandomUniform(int64_t rows, int64_t cols, float limit,
                              Rng* rng, bool requires_grad = false);
  /// Xavier/Glorot uniform initialization for a [fan_in, fan_out] matrix.
  static Tensor XavierUniform(int64_t rows, int64_t cols, Rng* rng,
                              bool requires_grad = false);
  /// Gaussian with the given standard deviation.
  static Tensor RandomNormal(int64_t rows, int64_t cols, float stddev,
                             Rng* rng, bool requires_grad = false);
  /// @}

  bool defined() const { return impl_ != nullptr; }

  int64_t rows() const;
  int64_t cols() const;
  /// Total number of elements.
  int64_t size() const { return rows() * cols(); }

  /// Mutable/const access to the row-major data buffer.
  float* data();
  const float* data() const;

  /// Element accessors with bounds checks.
  float at(int64_t r, int64_t c) const;
  void set(int64_t r, int64_t c, float v);

  /// Scalar value of a [1,1] tensor.
  float item() const;

  bool requires_grad() const;
  void set_requires_grad(bool v);

  /// Gradient buffer (allocated lazily, zero-initialized). Tensor is a
  /// shared handle, so constness is shallow: backward lambdas capture
  /// tensors as const copies and still accumulate gradients through them.
  float* grad() const;
  bool has_grad() const;
  /// Zeroes the gradient buffer if allocated.
  void ZeroGrad();

  /// \brief Reverse-mode differentiation.
  ///
  /// Seeds this tensor's gradient with ones (typically it is the [1,1]
  /// loss) and propagates through the recorded graph in reverse topological
  /// order. Leaf tensors with requires_grad accumulate into their grad
  /// buffers.
  void Backward();

  /// \brief A new leaf tensor sharing *copied* data, cut off from the graph.
  Tensor Detach() const;

  /// \brief Deep copy of data (leaf; keeps requires_grad flag off).
  Tensor Clone() const;

  /// \brief Copies the data of `src` into this tensor (shapes must match);
  /// does not touch the graph, useful for parameter transfer.
  void CopyDataFrom(const Tensor& src);

  /// Identity comparison (same underlying node).
  bool SameAs(const Tensor& other) const { return impl_ == other.impl_; }

  /// Debug string, e.g. "Tensor[3x4, requires_grad]".
  std::string ToString() const;

  /// \brief Internal: wraps an op result. `parents` keeps the inputs alive;
  /// `backward_fn` adds this node's grad contribution into the parents.
  /// Both the parent list and the closure live in arena storage.
  static Tensor MakeOpResult(int64_t rows, int64_t cols,
                             TensorVector parents, BackwardFn backward_fn,
                             const char* op_name);

  TensorImpl* impl() const { return impl_.get(); }

 private:
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  std::shared_ptr<TensorImpl> impl_;
};

/// \brief Internal node storage; exposed so ops.cc can access parents and
/// backward functions directly. The node itself and all its owned buffers
/// are arena-backed intra-batch temporaries (see arena.h); nodes that
/// outlive the batch (parameters, detached copies) simply free to the heap.
struct TensorImpl {
  TensorImpl();   // maintains LiveTensorCount()
  ~TensorImpl();

  int64_t rows = 0;
  int64_t cols = 0;
  FloatBuffer data;
  FloatBuffer grad;  // lazily allocated to data.size()
  bool requires_grad = false;
  /// Backward() visitation tag: nodes stamped with the current traversal
  /// epoch instead of an allocating hash set.
  uint64_t visit_mark = 0;
  TensorVector parents;
  /// Called with the owning Tensor during Backward(); reads this node's
  /// grad and accumulates into parents' grads.
  BackwardFn backward_fn;
  const char* op_name = "leaf";

  void EnsureGrad() {
    if (grad.empty()) grad.assign(data.size(), 0.0f);
  }
};

/// \brief Global count of live tensor nodes, used by tests to detect graph
/// leaks (reference cycles would show up here).
int64_t LiveTensorCount();

/// \brief True while an InferenceModeGuard is active on the calling thread.
bool InferenceModeEnabled();

/// \brief Scoped inference mode for forward-only evaluation (serving,
/// memory replay): while a guard is alive on the current thread, op
/// results record no parents and no backward function and never require
/// gradients, so a forward pass allocates exactly its output buffers and
/// retains no computation graph. The numeric forward path is unchanged —
/// results are bit-identical to a grad-enabled forward over the same
/// inputs. Guards nest; the flag is thread-local, so pool workers running
/// training batches are unaffected by a serving thread's guard.
class InferenceModeGuard {
 public:
  InferenceModeGuard();
  ~InferenceModeGuard();

  InferenceModeGuard(const InferenceModeGuard&) = delete;
  InferenceModeGuard& operator=(const InferenceModeGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace cpdg::tensor

#endif  // CPDG_TENSOR_TENSOR_H_
