// AVX2/FMA backend. This translation unit is the only one compiled with
// -mavx2 -mfma (plus -ffp-contract=off so the compiler cannot fuse the
// deliberately-unfused elementwise mul/add loops); its entry points run
// only after simd::Avx2Supported() verified the CPU, so the extended ISA
// never leaks into code executed on baseline machines.

#ifdef CPDG_HAVE_AVX2_KERNELS

#include <immintrin.h>

#include <cmath>

#include "tensor/gemm_internal.h"
#include "tensor/simd_internal.h"

namespace cpdg::tensor::gemm_internal {
namespace {

constexpr int64_t MR = kGemmMR;
constexpr int64_t NR = kGemmNR;
static_assert(NR == 16, "microkernel hardcodes two 8-lane accumulators/row");

// 6x16 register tile: 12 ymm accumulators + 2 B vectors + 1 broadcast stay
// within the 16 architectural ymm registers, and 12 independent FMA chains
// cover the fused-multiply-add latency at 2 issues/cycle.
void Avx2Micro(const float* apack, const float* bpack, int64_t kb, float* c,
               int64_t ldc, int64_t mvalid, int64_t nvalid) {
  __m256 acc[MR][2];
  for (int64_t r = 0; r < MR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (int64_t p = 0; p < kb; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bpack + p * NR);
    const __m256 b1 = _mm256_loadu_ps(bpack + p * NR + 8);
    const float* ap = apack + p * MR;
    for (int64_t r = 0; r < MR; ++r) {
      const __m256 av = _mm256_broadcast_ss(ap + r);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  if (mvalid == MR && nvalid == NR) {
    for (int64_t r = 0; r < MR; ++r) {
      float* crow = c + r * ldc;
      _mm256_storeu_ps(crow,
                       _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
      _mm256_storeu_ps(crow + 8,
                       _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]));
    }
  } else {
    // Edge tile: spill the full accumulator and add back the valid region.
    alignas(32) float buf[MR * NR];
    for (int64_t r = 0; r < MR; ++r) {
      _mm256_store_ps(buf + r * NR, acc[r][0]);
      _mm256_store_ps(buf + r * NR + 8, acc[r][1]);
    }
    for (int64_t r = 0; r < mvalid; ++r) {
      for (int64_t l = 0; l < nvalid; ++l) c[r * ldc + l] += buf[r * NR + l];
    }
  }
}

}  // namespace

MicroKernelFn Avx2MicroKernel() { return &Avx2Micro; }

void TinyGemmFma(const GemmView& a, const GemmView& b, float* c) {
  // Same scalar chain as TinyGemmPortable; compiled here so std::fmaf
  // inlines to vfmadd132ss instead of a libm call per element.
  const int64_t m = a.rows, k = a.cols, n = b.cols;
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.p + i * a.rstride;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* bcol = b.p + j * b.cstride;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc = std::fmaf(arow[p * a.cstride], bcol[p * b.rstride], acc);
      }
      crow[j] += acc;
    }
  }
}

}  // namespace cpdg::tensor::gemm_internal

namespace cpdg::tensor::simd_internal {
namespace {

// Every loop below is unfused lane arithmetic (see header contract): the
// vector body uses explicit mul/add/div intrinsics and the remainder tail
// repeats the scalar statement, so results match the scalar backend bit
// for bit.

void AddV(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] + b[i];
}

void SubV(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] - b[i];
}

void MulV(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] * b[i];
}

void DivV(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_div_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] / b[i];
}

void AccV(float* g, const float* d, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(g + i, _mm256_add_ps(_mm256_loadu_ps(g + i),
                                          _mm256_loadu_ps(d + i)));
  }
  for (; i < n; ++i) g[i] += d[i];
}

void AccProdV(float* g, const float* d, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod =
        _mm256_mul_ps(_mm256_loadu_ps(d + i), _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(g + i, _mm256_add_ps(_mm256_loadu_ps(g + i), prod));
  }
  for (; i < n; ++i) g[i] += d[i] * x[i];
}

void AccQuotV(float* g, const float* d, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 quot =
        _mm256_div_ps(_mm256_loadu_ps(d + i), _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(g + i, _mm256_add_ps(_mm256_loadu_ps(g + i), quot));
  }
  for (; i < n; ++i) g[i] += d[i] / x[i];
}

void NegV(const float* a, float* o, int64_t n) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_xor_ps(_mm256_loadu_ps(a + i), sign));
  }
  for (; i < n; ++i) o[i] = -a[i];
}

void ScaleV(const float* a, float s, float* o, int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), sv));
  }
  for (; i < n; ++i) o[i] = a[i] * s;
}

void AccScaledV(float* g, const float* d, float s, int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(d + i), sv);
    _mm256_storeu_ps(g + i, _mm256_add_ps(_mm256_loadu_ps(g + i), prod));
  }
  for (; i < n; ++i) g[i] += d[i] * s;
}

}  // namespace

const ElementwiseKernels& Avx2Elementwise() {
  static const ElementwiseKernels kernels = {
      &AddV,     &SubV,     &MulV, &DivV,   &AccV,
      &AccProdV, &AccQuotV, &NegV, &ScaleV, &AccScaledV,
  };
  return kernels;
}

}  // namespace cpdg::tensor::simd_internal

#endif  // CPDG_HAVE_AVX2_KERNELS
