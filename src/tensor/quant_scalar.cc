// Portable int8-grid microkernel backend: plain C++ integer dot products.
// The compiler is free to auto-vectorize (SSE2 is baseline) because integer
// accumulation is exact — any evaluation order yields the same int32.

#include "tensor/quant_internal.h"

namespace cpdg::tensor::quant_internal {
namespace {

void ScalarQuantMicro(const int16_t* a, int64_t lda, const int16_t* bt,
                      int64_t ldb, int64_t k, int64_t n, int32_t* acc,
                      int64_t ldacc, int64_t mvalid) {
  for (int64_t r = 0; r < mvalid; ++r) {
    const int16_t* arow = a + r * lda;
    for (int64_t j = 0; j < n; ++j) {
      const int16_t* brow = bt + j * ldb;
      int32_t sum = 0;
      for (int64_t p = 0; p < k; ++p) {
        sum += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(brow[p]);
      }
      acc[r * ldacc + j] = sum;
    }
  }
}

}  // namespace

QuantMicroKernelFn ScalarQuantMicroKernel() { return &ScalarQuantMicro; }

}  // namespace cpdg::tensor::quant_internal
