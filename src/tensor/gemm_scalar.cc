// Portable backend: plain C++ implementations of the GEMM microkernel,
// tiny-product path, and elementwise primitives. Compiled with the
// project-default ISA so it runs on any x86-64 (or other) machine.
//
// std::fmaf is the correctly-rounded IEEE fused multiply-add, i.e. exactly
// what one AVX2 vfmaddps lane computes, so this backend reproduces the
// AVX2 results bit for bit. On CPUs without an FMA unit libm falls back to
// a soft implementation — slower, still correctly rounded.

#include <cmath>

#include "tensor/gemm_internal.h"
#include "tensor/simd_internal.h"

namespace cpdg::tensor::gemm_internal {
namespace {

constexpr int64_t MR = kGemmMR;
constexpr int64_t NR = kGemmNR;

void ScalarMicro(const float* apack, const float* bpack, int64_t kb, float* c,
                 int64_t ldc, int64_t mvalid, int64_t nvalid) {
  for (int64_t r = 0; r < mvalid; ++r) {
    float* crow = c + r * ldc;
    for (int64_t l = 0; l < nvalid; ++l) {
      float acc = 0.0f;
      for (int64_t p = 0; p < kb; ++p) {
        acc = std::fmaf(apack[p * MR + r], bpack[p * NR + l], acc);
      }
      crow[l] += acc;
    }
  }
}

}  // namespace

MicroKernelFn ScalarMicroKernel() { return &ScalarMicro; }

void TinyGemmPortable(const GemmView& a, const GemmView& b, float* c) {
  const int64_t m = a.rows, k = a.cols, n = b.cols;
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.p + i * a.rstride;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* bcol = b.p + j * b.cstride;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc = std::fmaf(arow[p * a.cstride], bcol[p * b.rstride], acc);
      }
      crow[j] += acc;
    }
  }
}

}  // namespace cpdg::tensor::gemm_internal

namespace cpdg::tensor::simd_internal {
namespace {

void AddS(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
}
void SubS(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
}
void MulS(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
}
void DivS(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] / b[i];
}
void AccS(float* g, const float* d, int64_t n) {
  for (int64_t i = 0; i < n; ++i) g[i] += d[i];
}
void AccProdS(float* g, const float* d, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) g[i] += d[i] * x[i];
}
void AccQuotS(float* g, const float* d, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) g[i] += d[i] / x[i];
}
void NegS(const float* a, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = -a[i];
}
void ScaleS(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * s;
}
void AccScaledS(float* g, const float* d, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) g[i] += d[i] * s;
}

}  // namespace

const ElementwiseKernels& ScalarElementwise() {
  static const ElementwiseKernels kernels = {
      &AddS,     &SubS,      &MulS, &DivS,   &AccS,
      &AccProdS, &AccQuotS,  &NegS, &ScaleS, &AccScaledS,
  };
  return kernels;
}

}  // namespace cpdg::tensor::simd_internal
