#include "tensor/checkpoint_container.h"

#include <cstring>

#include "util/atomic_file.h"
#include "util/byte_codec.h"
#include "util/check.h"

namespace cpdg::tensor {

namespace {
/// Section names are tiny identifiers; anything larger is corruption.
constexpr uint32_t kMaxSectionNameLen = 256;
}  // namespace

void SectionWriter::Add(std::string name, std::string payload) {
  CPDG_CHECK(!name.empty());
  CPDG_CHECK_LT(name.size(), static_cast<size_t>(kMaxSectionNameLen));
  for (const auto& [existing, _] : sections_) {
    CPDG_CHECK(existing != name) << "duplicate checkpoint section " << name;
  }
  sections_.emplace_back(std::move(name), std::move(payload));
}

std::string SectionWriter::Finish() const {
  std::string out;
  util::ByteWriter w(&out);
  out.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  w.Pod(kCheckpointVersionV2);
  w.Pod(static_cast<uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    w.String(name);
    w.Pod(static_cast<uint64_t>(payload.size()));
    w.Pod(util::Crc32(payload.data(), payload.size()));
    out.append(payload);
  }
  return out;
}

Status SectionWriter::WriteAtomic(const std::string& path) const {
  return util::AtomicWriteFile(path, Finish());
}

Result<SectionReader> SectionReader::FromBytes(std::string bytes,
                                               const std::string& origin) {
  const std::string where = origin.empty() ? "checkpoint" : origin;
  SectionReader reader;
  reader.bytes_ = std::move(bytes);
  util::ByteReader r(reader.bytes_);

  std::string_view magic;
  if (!r.Bytes(sizeof(kCheckpointMagic), &magic) ||
      std::memcmp(magic.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0) {
    return Status::InvalidArgument("bad checkpoint magic in " + where);
  }
  uint32_t version = 0;
  if (!r.Pod(&version)) {
    return Status::InvalidArgument("truncated checkpoint header in " + where);
  }
  if (version != kCheckpointVersionV2) {
    return Status::InvalidArgument(
        "unsupported checkpoint container version " +
        std::to_string(version) + " in " + where);
  }
  uint32_t count = 0;
  if (!r.Pod(&count)) {
    return Status::InvalidArgument("truncated section count in " + where);
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!r.Pod(&name_len)) {
      return Status::InvalidArgument("truncated section name length in " +
                                     where);
    }
    if (name_len == 0 || name_len > kMaxSectionNameLen) {
      return Status::InvalidArgument("corrupt section name length in " +
                                     where);
    }
    std::string_view name_view;
    if (!r.Bytes(name_len, &name_view)) {
      return Status::InvalidArgument("truncated section name in " + where);
    }
    std::string name(name_view);
    uint64_t payload_size = 0;
    uint32_t crc = 0;
    if (!r.Pod(&payload_size) || !r.Pod(&crc)) {
      return Status::InvalidArgument("truncated section header for '" +
                                     name + "' in " + where);
    }
    if (payload_size > r.remaining()) {
      return Status::InvalidArgument(
          "section '" + name + "' claims " + std::to_string(payload_size) +
          " bytes but only " + std::to_string(r.remaining()) +
          " remain in " + where);
    }
    std::string_view payload;
    r.Bytes(static_cast<size_t>(payload_size), &payload);
    if (util::Crc32(payload.data(), payload.size()) != crc) {
      return Status::InvalidArgument("checksum mismatch in section '" +
                                     name + "' of " + where);
    }
    for (const std::string& existing : reader.names_) {
      if (existing == name) {
        return Status::InvalidArgument("duplicate section '" + name +
                                       "' in " + where);
      }
    }
    reader.names_.push_back(name);
    reader.spans_.emplace_back(
        static_cast<size_t>(payload.data() - reader.bytes_.data()),
        payload.size());
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing garbage after last section in " +
                                   where);
  }
  return reader;
}

Result<SectionReader> SectionReader::Open(const std::string& path) {
  std::string bytes;
  CPDG_RETURN_NOT_OK(util::ReadFileToString(path, &bytes));
  return FromBytes(std::move(bytes), path);
}

bool SectionReader::Has(const std::string& name) const {
  for (const std::string& n : names_) {
    if (n == name) return true;
  }
  return false;
}

Result<std::string_view> SectionReader::Find(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return std::string_view(bytes_).substr(spans_[i].first,
                                             spans_[i].second);
    }
  }
  return Status::NotFound("checkpoint section '" + name + "' not found");
}

}  // namespace cpdg::tensor
