#ifndef CPDG_TENSOR_GEMM_INTERNAL_H_
#define CPDG_TENSOR_GEMM_INTERNAL_H_

// Backend seam for the packed GEMM. gemm.cc owns packing, blocking, and the
// thread fan-out; backends supply only the two arithmetic hooks below. Both
// backends must implement the identical per-element operation chain
// (ascending-k fmaf into a zeroed accumulator, one add into C) so that
// backend choice never changes results — see simd.h for the contract.

#include <cstdint>

#include "tensor/gemm.h"

namespace cpdg::tensor::gemm_internal {

/// \brief Computes one MR x NR register tile: C[0..mvalid) x [0..nvalid)
/// += sum over p < kb of apack[p*MR + r] * bpack[p*NR + l].
///
/// `apack` is an MR-interleaved A panel (zero-padded rows), `bpack` an
/// NR-interleaved B panel (zero-padded cols). The accumulator tile starts
/// at zero, the p-chain uses fused multiply-add per lane, and exactly the
/// valid `mvalid` x `nvalid` region is added into C (row stride `ldc`).
using MicroKernelFn = void (*)(const float* apack, const float* bpack,
                               int64_t kb, float* c, int64_t ldc,
                               int64_t mvalid, int64_t nvalid);

/// \brief Direct small-product path: c[m x n] += a · b without packing,
/// same per-element arithmetic as a single-k-block packed run (requires
/// a.cols <= kGemmKC, which the tiny-flops bound guarantees).
using TinyGemmFn = void (*)(const GemmView& a, const GemmView& b, float* c);

/// Portable backend (plain C++, std::fmaf). Always available.
MicroKernelFn ScalarMicroKernel();
void TinyGemmPortable(const GemmView& a, const GemmView& b, float* c);

#ifdef CPDG_HAVE_AVX2_KERNELS
/// AVX2 + FMA backend (gemm_avx2.cc, compiled with -mavx2 -mfma
/// -ffp-contract=off). Call only after simd::Avx2Supported().
MicroKernelFn Avx2MicroKernel();
/// Scalar arithmetic compiled in the FMA translation unit: std::fmaf
/// inlines to the hardware instruction, same correctly-rounded results as
/// TinyGemmPortable but without a libm call per element.
void TinyGemmFma(const GemmView& a, const GemmView& b, float* c);
#endif

}  // namespace cpdg::tensor::gemm_internal

#endif  // CPDG_TENSOR_GEMM_INTERNAL_H_
