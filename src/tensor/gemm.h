#ifndef CPDG_TENSOR_GEMM_H_
#define CPDG_TENSOR_GEMM_H_

#include <cstdint>

namespace cpdg::tensor {

/// \brief Read-only strided view of a float matrix: element (r, c) lives at
/// `p[r * rstride + c * cstride]`. A row-major matrix is (ld, 1); its
/// transpose is the same pointer viewed as (1, ld), which is how the
/// backward products reuse the forward operands without materializing a
/// transpose.
struct GemmView {
  const float* p = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t rstride = 0;
  int64_t cstride = 0;
};

/// \brief Dense accumulating matrix product: C += A · B, with C row-major
/// [a.rows, b.cols] and leading dimension b.cols.
///
/// Implementation: packed, cache-blocked GEMM. B is packed once per
/// KC-deep k-block into NR-wide column panels; each MC-tall row block packs
/// its slice of A into MR-interleaved panels and runs an MR x NR
/// register-tiled microkernel (AVX2/FMA or the bitwise-identical scalar
/// fallback — see simd.h). Row blocks fan out over
/// util::ThreadPool::Global() once the product is large enough to amortize
/// pool dispatch; tiny products take a branch-free serial path.
///
/// Determinism contract: the value of every C element is a function of the
/// operands and the fixed blocking constants only. Per element, the
/// accumulation is an ascending-k chain of correctly-rounded fmaf steps per
/// KC block, with one add into C per block, and k-blocks are processed in
/// ascending order. Chunk assignment parallelizes whole row blocks whose
/// boundaries depend only on the shape, so results are bitwise identical
/// at every thread count, on both SIMD backends, and on either side of the
/// serial cutoff. There are no data-dependent skips: runtime is a function
/// of shape alone, never of sparsity.
void GemmAccumulate(const GemmView& a, const GemmView& b, float* c);

/// \name Blocking constants
/// Shared by every backend; they define the accumulation order, so
/// changing them is a numerics-visible change (goldens must be recaptured).
/// @{
inline constexpr int64_t kGemmMR = 6;    ///< microkernel rows
inline constexpr int64_t kGemmNR = 16;   ///< microkernel cols (2 AVX lanes)
inline constexpr int64_t kGemmKC = 256;  ///< k-block depth
inline constexpr int64_t kGemmMC = 96;   ///< row-block height (multiple of MR)
/// @}

/// Products with fewer than this many multiply-adds run a direct serial
/// loop instead of the packed path (identical arithmetic when k <= kGemmKC,
/// which the tiny bound guarantees; see gemm.cc).
inline constexpr int64_t kGemmTinyFlops = 1 << 12;

/// Products with fewer than this many multiply-adds stay on the calling
/// thread; larger ones fan row blocks out over the global pool.
inline constexpr int64_t kGemmParallelMinFlops = 1 << 18;

}  // namespace cpdg::tensor

#endif  // CPDG_TENSOR_GEMM_H_
