#ifndef CPDG_TENSOR_CHECKPOINT_CONTAINER_H_
#define CPDG_TENSOR_CHECKPOINT_CONTAINER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace cpdg::tensor {

/// \file Version-2 CPDGCKPT container: a flat file of named,
/// CRC32-checksummed byte sections.
///
/// Layout (all integers little-endian, no padding):
///   magic "CPDGCKPT" | version u32 = 2 | section count u32 |
///   per section: name length u32, name bytes,
///                payload size u64, payload crc32 u32, payload bytes.
///
/// Version 1 files (raw tensor list, written by the pre-fault-tolerance
/// SaveTensors) are not containers; tensor/serialization keeps loading
/// them directly. Everything that stores *full training state* — module
/// params, optimizer moments, encoder memory, RNG streams, loop progress —
/// lives in named sections of a v2 container so that each subsystem can
/// evolve its payload independently and every load is checksum-verified.

inline constexpr char kCheckpointMagic[8] = {'C', 'P', 'D', 'G',
                                             'C', 'K', 'P', 'T'};
inline constexpr uint32_t kCheckpointVersionV1 = 1;
inline constexpr uint32_t kCheckpointVersionV2 = 2;

/// \brief Accumulates named sections and serializes them as a v2
/// container. Publishing goes through util::AtomicWriteFile, so a crash at
/// any point leaves the previous checkpoint intact.
class SectionWriter {
 public:
  /// Adds a section; names must be unique and non-empty.
  void Add(std::string name, std::string payload);

  /// Serializes the container to bytes.
  std::string Finish() const;

  /// Finish() + atomic publish to `path`.
  Status WriteAtomic(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// \brief Parses a v2 container, validating structure and every section's
/// CRC32 up front. Corrupt input (bad magic, truncation at any byte,
/// trailing garbage, checksum mismatch) fails with a descriptive Status
/// and never partially-applied state.
class SectionReader {
 public:
  /// Parses from an in-memory buffer (takes ownership of the bytes).
  static Result<SectionReader> FromBytes(std::string bytes,
                                         const std::string& origin = "");

  /// Reads and parses `path`.
  static Result<SectionReader> Open(const std::string& path);

  bool Has(const std::string& name) const;

  /// View into the section payload; NotFound if absent. The view borrows
  /// from this reader and must not outlive it.
  Result<std::string_view> Find(const std::string& name) const;

  const std::vector<std::string>& section_names() const { return names_; }

 private:
  SectionReader() = default;

  std::string bytes_;
  std::vector<std::string> names_;  // in file order
  std::vector<std::pair<size_t, size_t>> spans_;  // (offset, size) per name
};

}  // namespace cpdg::tensor

#endif  // CPDG_TENSOR_CHECKPOINT_CONTAINER_H_
