// Packed, cache-blocked GEMM driver: owns the blocking loops, operand
// packing, and the thread fan-out; per-tile arithmetic is delegated to the
// backend microkernel selected by simd::ActiveMode(). See gemm.h for the
// determinism contract.

#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "tensor/gemm_internal.h"
#include "tensor/simd.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace cpdg::tensor {
namespace {

using gemm_internal::MicroKernelFn;

constexpr int64_t MR = kGemmMR;
constexpr int64_t NR = kGemmNR;
constexpr int64_t KC = kGemmKC;
constexpr int64_t MC = kGemmMC;
static_assert(MC % MR == 0, "row blocks must hold whole microkernel tiles");

MicroKernelFn ActiveMicroKernel() {
#ifdef CPDG_HAVE_AVX2_KERNELS
  if (simd::ActiveMode() == simd::Mode::kAvx2) {
    return gemm_internal::Avx2MicroKernel();
  }
#endif
  return gemm_internal::ScalarMicroKernel();
}

gemm_internal::TinyGemmFn ActiveTinyGemm() {
#ifdef CPDG_HAVE_AVX2_KERNELS
  // Scalar arithmetic either way; the FMA-compiled copy just avoids a libm
  // call per element. Selected by hardware support, not by the forced test
  // mode, because both produce identical bits.
  if (simd::Avx2Supported()) return &gemm_internal::TinyGemmFma;
#endif
  return &gemm_internal::TinyGemmPortable;
}

/// Packs A block rows [i0, i0+mb) x cols [p0, p0+kb) into MR-interleaved
/// panels: apack[(ig*kb + p)*MR + r] = A[i0 + ig*MR + r][p0 + p], rows
/// beyond mb zero-padded so the microkernel never branches on row validity.
void PackA(const GemmView& a, int64_t i0, int64_t mb, int64_t p0, int64_t kb,
           float* apack) {
  const int64_t groups = (mb + MR - 1) / MR;
  for (int64_t ig = 0; ig < groups; ++ig) {
    const int64_t rvalid = std::min<int64_t>(MR, mb - ig * MR);
    float* panel = apack + ig * kb * MR;
    for (int64_t p = 0; p < kb; ++p) {
      const float* src =
          a.p + (i0 + ig * MR) * a.rstride + (p0 + p) * a.cstride;
      float* dst = panel + p * MR;
      for (int64_t r = 0; r < rvalid; ++r) dst[r] = src[r * a.rstride];
      for (int64_t r = rvalid; r < MR; ++r) dst[r] = 0.0f;
    }
  }
}

/// Packs B block rows [p0, p0+kb) x all n cols into NR-interleaved column
/// panels: bpack[(jg*kb + p)*NR + l] = B[p0 + p][jg*NR + l], cols beyond n
/// zero-padded.
void PackB(const GemmView& b, int64_t p0, int64_t kb, float* bpack) {
  const int64_t n = b.cols;
  const int64_t panels = (n + NR - 1) / NR;
  for (int64_t jg = 0; jg < panels; ++jg) {
    const int64_t lvalid = std::min<int64_t>(NR, n - jg * NR);
    float* panel = bpack + jg * kb * NR;
    for (int64_t p = 0; p < kb; ++p) {
      const float* src = b.p + (p0 + p) * b.rstride + jg * NR * b.cstride;
      float* dst = panel + p * NR;
      for (int64_t l = 0; l < lvalid; ++l) dst[l] = src[l * b.cstride];
      for (int64_t l = lvalid; l < NR; ++l) dst[l] = 0.0f;
    }
  }
}

/// One MC-tall row block for one k-block: packs its A slice and sweeps the
/// microkernel over every (MR row group) x (NR column panel) tile.
void ComputeRowBlock(MicroKernelFn micro, const GemmView& a,
                     const float* bpack, int64_t p0, int64_t kb, int64_t i0,
                     int64_t mb, int64_t n, float* c) {
  // Per-thread pack buffer: reused across blocks and calls; workers are
  // long-lived pool threads so the allocation amortizes away.
  static thread_local std::vector<float> apack;
  apack.resize(static_cast<size_t>(((mb + MR - 1) / MR) * kb * MR));
  PackA(a, i0, mb, p0, kb, apack.data());

  const int64_t groups = (mb + MR - 1) / MR;
  const int64_t panels = (n + NR - 1) / NR;
  for (int64_t ig = 0; ig < groups; ++ig) {
    const int64_t mvalid = std::min<int64_t>(MR, mb - ig * MR);
    for (int64_t jg = 0; jg < panels; ++jg) {
      const int64_t nvalid = std::min<int64_t>(NR, n - jg * NR);
      micro(apack.data() + ig * kb * MR, bpack + jg * kb * NR, kb,
            c + (i0 + ig * MR) * n + jg * NR, n, mvalid, nvalid);
    }
  }
}

}  // namespace

void GemmAccumulate(const GemmView& a, const GemmView& b, float* c) {
  CPDG_CHECK_EQ(a.cols, b.rows);
  const int64_t m = a.rows, k = a.cols, n = b.cols;
  if (m == 0 || n == 0) return;
  if (k == 0) return;  // C += A·B adds nothing.

  const int64_t flops = m * k * n;
  if (flops < kGemmTinyFlops && k <= KC) {
    ActiveTinyGemm()(a, b, c);
    return;
  }

  const MicroKernelFn micro = ActiveMicroKernel();
  const int64_t row_blocks = (m + MC - 1) / MC;

  // Caller-owned B pack buffer, shared read-only by every worker during
  // the row-block fan-out (ParallelFor blocks until the region completes).
  static thread_local std::vector<float> bpack;
  bpack.resize(static_cast<size_t>(KC * ((n + NR - 1) / NR) * NR));

  // Hoisted pointer: `bpack` is thread_local, so naming it inside the
  // worker lambda would resolve to each worker's own (empty) instance.
  float* const bp = bpack.data();

  for (int64_t p0 = 0; p0 < k; p0 += KC) {
    const int64_t kb = std::min(KC, k - p0);
    PackB(b, p0, kb, bp);
    auto run_block = [&, bp](int64_t blk) {
      const int64_t i0 = blk * MC;
      ComputeRowBlock(micro, a, bp, p0, kb, i0, std::min(MC, m - i0), n, c);
    };
    if (flops < kGemmParallelMinFlops || row_blocks == 1) {
      for (int64_t blk = 0; blk < row_blocks; ++blk) run_block(blk);
    } else {
      // Chunk = one MC row block; boundaries depend only on the shape, and
      // each block owns a disjoint row slice of C, so any thread count
      // produces identical bits.
      util::ThreadPool::Global().ParallelFor(
          0, row_blocks, /*grain=*/1, [&](int64_t lo, int64_t hi) {
            for (int64_t blk = lo; blk < hi; ++blk) run_block(blk);
          });
    }
  }
}

}  // namespace cpdg::tensor
