#ifndef CPDG_TENSOR_ARENA_H_
#define CPDG_TENSOR_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace cpdg::tensor {

class Tensor;

/// \defgroup arena Batch arena allocator
///
/// A thread-local recycling pool for intra-batch tensor temporaries. A
/// training batch builds a computation graph of hundreds of short-lived
/// nodes (TensorImpl, data/grad buffers, parent lists, backward closures),
/// all freed when the loss goes out of scope after the optimizer step. The
/// pool keeps those blocks on per-size-class free lists so steady-state
/// batches perform near-zero global operator new/delete calls.
///
/// Lifetime rules (see DESIGN.md §13):
///  - Every block, pooled or not, is a plain `::operator new` allocation of
///    its rounded size-class size. Deallocation therefore always has a
///    valid fallback (`::operator delete`) regardless of whether the pool
///    is still active, or whether the free happens on a different thread
///    than the allocation. A tensor that outlives the arena scope (model
///    parameters, detached results) is simply returned to the heap.
///  - The pool is activated by an ArenaScope (installed by TrainLoop around
///    a run); outside any scope every call passes straight through to the
///    heap, so non-training code paths are unaffected.
///  - Scopes nest; the cache drains to the heap when the outermost scope
///    exits. `CPDG_ARENA=0` disables pooling entirely.
/// @{

/// \brief Allocates `bytes` (rounded up to a power-of-two size class),
/// serving from the calling thread's pool when active.
void* ArenaAllocRaw(size_t bytes);

/// \brief Returns a block from ArenaAllocRaw. `bytes` must be the original
/// request size (the size class is re-derived from it).
void ArenaFreeRaw(void* p, size_t bytes) noexcept;

/// \brief True when an ArenaScope is active on the calling thread.
bool ArenaActive();

/// \brief Allocation counters for the calling thread. `pool_hits` are
/// requests served from the free lists (no global operator new);
/// `heap_allocs` fell through to the heap.
struct ArenaStats {
  int64_t pool_hits = 0;
  int64_t heap_allocs = 0;
  int64_t frees_to_pool = 0;
  int64_t frees_to_heap = 0;
};

/// \brief Returns and clears the calling thread's per-batch counter window.
/// TrainLoop calls this once per batch to roll the deltas into the metrics
/// registry (train.arena.*).
ArenaStats ArenaResetBatch();

/// \brief Cumulative counters for the calling thread (never reset).
ArenaStats ArenaTotals();

/// \brief Programmatic override of the CPDG_ARENA env knob, for benchmarks
/// that compare pooled vs unpooled allocation behaviour in one process:
/// 1 forces pooling on, 0 forces it off, -1 (the default) defers to the
/// environment. Only consulted when the next ArenaScope is constructed.
void SetArenaEnabledOverride(int enabled);

/// \brief RAII activation of the calling thread's pool. Nestable; the
/// cached blocks drain back to the heap when the outermost scope exits.
/// Construction honours `CPDG_ARENA` (default enabled; "0" disables).
class ArenaScope {
 public:
  ArenaScope();
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  bool engaged_;
};

/// \brief Minimal std::allocator replacement routing through the arena.
/// Stateless and always-equal, so containers move cheaply across scopes.
template <typename T>
struct ArenaAllocator {
  using value_type = T;
  using is_always_equal = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;

  ArenaAllocator() = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(ArenaAllocRaw(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) noexcept {
    ArenaFreeRaw(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const ArenaAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>&) const noexcept {
    return false;
  }
};

/// \brief Move-only callable holding a backward closure in arena storage.
///
/// std::function cannot use a custom allocator (allocator support was
/// removed in C++17) and backward closures capture several Tensor handles,
/// far past any small-buffer optimization — which made every op result pay
/// a global heap allocation for its closure. BackwardFn keeps the closure
/// in an arena block instead.
class BackwardFn {
 public:
  BackwardFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BackwardFn>>>
  BackwardFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "backward closures must not be over-aligned");
    size_ = sizeof(Fn);
    obj_ = ArenaAllocRaw(size_);
    ::new (obj_) Fn(std::forward<F>(f));
    invoke_ = [](void* o, Tensor& t) { (*static_cast<Fn*>(o))(t); };
    destroy_ = [](void* o) noexcept { static_cast<Fn*>(o)->~Fn(); };
  }

  BackwardFn(BackwardFn&& other) noexcept
      : obj_(other.obj_),
        invoke_(other.invoke_),
        destroy_(other.destroy_),
        size_(other.size_) {
    other.obj_ = nullptr;
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
    other.size_ = 0;
  }

  BackwardFn& operator=(BackwardFn&& other) noexcept {
    if (this != &other) {
      Reset();
      obj_ = other.obj_;
      invoke_ = other.invoke_;
      destroy_ = other.destroy_;
      size_ = other.size_;
      other.obj_ = nullptr;
      other.invoke_ = nullptr;
      other.destroy_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  BackwardFn(const BackwardFn&) = delete;
  BackwardFn& operator=(const BackwardFn&) = delete;

  ~BackwardFn() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()(Tensor& t) const { invoke_(obj_, t); }

 private:
  void Reset() noexcept {
    if (obj_ != nullptr) {
      destroy_(obj_);
      ArenaFreeRaw(obj_, size_);
      obj_ = nullptr;
      invoke_ = nullptr;
      destroy_ = nullptr;
      size_ = 0;
    }
  }

  void* obj_ = nullptr;
  void (*invoke_)(void*, Tensor&) = nullptr;
  void (*destroy_)(void*) noexcept = nullptr;
  size_t size_ = 0;
};

/// @}

}  // namespace cpdg::tensor

#endif  // CPDG_TENSOR_ARENA_H_
