#ifndef CPDG_TENSOR_OPS_H_
#define CPDG_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace cpdg::tensor {

/// \file Differentiable operations on 2-D tensors.
///
/// All operations record themselves on the computation graph when any input
/// requires gradients. Shapes follow the conventions:
///  - binary elementwise ops accept equal shapes, or a [1, cols] second
///    operand broadcast across rows (the bias pattern);
///  - reductions produce [1, 1] (Sum/Mean), [n, 1] (RowSum) or [1, d]
///    (ColMean).

/// \name Elementwise binary ops
/// @{
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
/// Elementwise division; requires equal shapes.
Tensor Div(const Tensor& a, const Tensor& b);
/// @}

/// \name Scalar ops
/// @{
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);
/// @}

/// \name Matrix ops
/// @{
/// [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
Tensor Transpose(const Tensor& a);
/// @}

/// \name Elementwise unary ops
/// @{
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log of max(a, eps) for numerical safety.
Tensor Log(const Tensor& a, float eps = 1e-12f);
Tensor Sqrt(const Tensor& a, float eps = 1e-12f);
Tensor Square(const Tensor& a);
Tensor Cos(const Tensor& a);
Tensor Sin(const Tensor& a);
/// @}

/// \name Reductions
/// @{
/// Sum of all elements -> [1,1].
Tensor Sum(const Tensor& a);
/// Mean of all elements -> [1,1].
Tensor Mean(const Tensor& a);
/// Per-row sum: [n,d] -> [n,1].
Tensor RowSum(const Tensor& a);
/// Per-column mean: [n,d] -> [1,d]. This is the mean-pooling readout used
/// for subgraph embeddings (Eq. 9-10, 12-13 of the paper).
Tensor ColMean(const Tensor& a);
/// @}

/// \name Shape ops
/// @{
/// Horizontal concat: [n,d1] ++ [n,d2] -> [n,d1+d2].
Tensor Concat(const Tensor& a, const Tensor& b);
/// Vertical concat of any number of same-width tensors.
Tensor ConcatRows(const std::vector<Tensor>& parts);
/// Rows [start, start+len) of a.
Tensor SliceRows(const Tensor& a, int64_t start, int64_t len);
/// Columns [start, start+len) of a.
Tensor SliceCols(const Tensor& a, int64_t start, int64_t len);
/// Broadcasts a [1,d] row to [n,d].
Tensor RepeatRows(const Tensor& a, int64_t n);
/// @}

/// \name Indexed ops
/// @{
/// Row lookup: table [n,d], indices (each in [0,n)) -> [m,d]. The backward
/// pass scatter-adds into the table gradient, so this doubles as an
/// embedding layer.
Tensor Gather(const Tensor& table, const std::vector<int64_t>& indices);
/// @}

/// \name Normalization / regularization
/// @{
/// Softmax over each row.
Tensor Softmax(const Tensor& a);
/// Per-row L2 normalization: x / max(||x||, eps).
Tensor L2NormalizeRows(const Tensor& a, float eps = 1e-12f);
/// Inverted dropout; identity when !training or p == 0.
Tensor Dropout(const Tensor& a, float p, Rng* rng, bool training);
/// @}

/// \brief Fused grouped attention kernel.
///
/// For each of n query rows, attends over its `group` candidate rows in
/// `keys`/`values` (laid out contiguously: candidate j of query i is row
/// i*group + j). `valid[i*group+j]` masks padding entries. Scores are
/// scaled dot products; invalid entries get -inf before the softmax.
/// Queries with no valid candidates produce zero rows (and no gradients).
///
/// This is the kernel behind the temporal graph attention embedding module
/// (TGAT/TGN-style aggregation over sampled temporal neighbors) and the
/// EIE-attn fusion; it avoids introducing 3-D tensors into the engine.
Tensor GroupedAttention(const Tensor& queries, const Tensor& keys,
                        const Tensor& values, int64_t group,
                        const std::vector<uint8_t>& valid);

/// \brief Fused masked mean over fixed-size groups: `values` is
/// [n*group, d] with candidate j of group i at row i*group+j; returns the
/// [n, d] mean over each group's valid rows (zero row when none are
/// valid). The workhorse of mean-aggregating GNN layers (GraphSAGE, GIN)
/// and subgraph readouts.
Tensor GroupedMean(const Tensor& values, int64_t group,
                   const std::vector<uint8_t>& valid);

}  // namespace cpdg::tensor

#endif  // CPDG_TENSOR_OPS_H_
