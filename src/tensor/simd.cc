#include "tensor/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "tensor/simd_internal.h"
#include "util/check.h"
#include "util/logging.h"

namespace cpdg::tensor::simd {
namespace {

bool CpuHasAvx2Fma() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Mode ResolveFromEnv() {
  const char* v = std::getenv("CPDG_SIMD");
  if (v == nullptr || std::strcmp(v, "auto") == 0 || v[0] == '\0') {
    return Avx2Supported() ? Mode::kAvx2 : Mode::kScalar;
  }
  if (std::strcmp(v, "scalar") == 0) return Mode::kScalar;
  if (std::strcmp(v, "avx2") == 0) {
    if (Avx2Supported()) return Mode::kAvx2;
    CPDG_LOG(Warning) << "CPDG_SIMD=avx2 requested but "
                      << (CpuHasAvx2Fma() ? "the AVX2 kernels were not built"
                                          : "the CPU lacks AVX2/FMA")
                      << "; falling back to scalar";
    return Mode::kScalar;
  }
  CPDG_LOG(Warning) << "unknown CPDG_SIMD value \"" << v
                    << "\" (want auto|scalar|avx2); using auto";
  return Avx2Supported() ? Mode::kAvx2 : Mode::kScalar;
}

// -1 = follow env resolution; otherwise a forced Mode for tests.
std::atomic<int> forced_mode{-1};

std::atomic<bool> vnni_disabled_for_test{false};

const simd_internal::ElementwiseKernels& KernelsFor(Mode m) {
#ifdef CPDG_HAVE_AVX2_KERNELS
  if (m == Mode::kAvx2) return simd_internal::Avx2Elementwise();
#endif
  (void)m;
  return simd_internal::ScalarElementwise();
}

}  // namespace

bool Avx2Supported() {
#ifdef CPDG_HAVE_AVX2_KERNELS
  static const bool supported = CpuHasAvx2Fma();
  return supported;
#else
  return false;
#endif
}

bool AvxVnniSupported() {
#if defined(CPDG_HAVE_VNNI_KERNELS) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(__i386__))
  static const bool supported =
      CpuHasAvx2Fma() && __builtin_cpu_supports("avxvnni");
  return supported && !vnni_disabled_for_test.load(std::memory_order_acquire);
#else
  return false;
#endif
}

void DisableAvxVnniForTest(bool disabled) {
  vnni_disabled_for_test.store(disabled, std::memory_order_release);
}

Mode ActiveMode() {
  int forced = forced_mode.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<Mode>(forced);
  static const Mode resolved = ResolveFromEnv();
  return resolved;
}

const char* ModeName(Mode m) {
  return m == Mode::kAvx2 ? "avx2" : "scalar";
}

void ForceModeForTest(Mode m) {
  CPDG_CHECK(m != Mode::kAvx2 || Avx2Supported())
      << "cannot force AVX2 kernels on a machine without AVX2/FMA support";
  forced_mode.store(static_cast<int>(m), std::memory_order_release);
}

void ResetModeForTest() {
  forced_mode.store(-1, std::memory_order_release);
}

void Add(const float* a, const float* b, float* o, int64_t n) {
  KernelsFor(ActiveMode()).add(a, b, o, n);
}
void Sub(const float* a, const float* b, float* o, int64_t n) {
  KernelsFor(ActiveMode()).sub(a, b, o, n);
}
void Mul(const float* a, const float* b, float* o, int64_t n) {
  KernelsFor(ActiveMode()).mul(a, b, o, n);
}
void Div(const float* a, const float* b, float* o, int64_t n) {
  KernelsFor(ActiveMode()).div(a, b, o, n);
}
void Accumulate(float* g, const float* d, int64_t n) {
  KernelsFor(ActiveMode()).accumulate(g, d, n);
}
void AccumulateProduct(float* g, const float* d, const float* x, int64_t n) {
  KernelsFor(ActiveMode()).accumulate_product(g, d, x, n);
}
void AccumulateQuotient(float* g, const float* d, const float* x, int64_t n) {
  KernelsFor(ActiveMode()).accumulate_quotient(g, d, x, n);
}
void Negate(const float* a, float* o, int64_t n) {
  KernelsFor(ActiveMode()).negate(a, o, n);
}
void Scale(const float* a, float s, float* o, int64_t n) {
  KernelsFor(ActiveMode()).scale(a, s, o, n);
}
void AccumulateScaled(float* g, const float* d, float s, int64_t n) {
  KernelsFor(ActiveMode()).accumulate_scaled(g, d, s, n);
}

}  // namespace cpdg::tensor::simd
