#ifndef CPDG_TENSOR_OPTIM_H_
#define CPDG_TENSOR_OPTIM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace cpdg::tensor {

/// \brief Base class for gradient-descent optimizers over a fixed parameter
/// list. Parameters must be leaf tensors with requires_grad.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients; call between batches.
  void ZeroGrad();

  /// \brief Appends the optimizer's internal state (step counter, moment
  /// buffers) to `out` so a resumed run steps bit-identically to an
  /// uninterrupted one. The base optimizer is stateless.
  virtual void SaveState(std::string* out) const;

  /// \brief Restores state written by SaveState. Validates every buffer
  /// size against the current parameter list before mutating anything
  /// (all-or-nothing); fails with a descriptive Status on mismatch or
  /// corrupt input.
  virtual Status LoadState(std::string_view blob);

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// \brief Plain SGD with optional momentum and L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void Step() override;

  void SaveState(std::string* out) const override;
  Status LoadState(std::string_view blob) override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// \brief Adam (Kingma & Ba) with bias correction and L2 weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void SaveState(std::string* out) const override;
  Status LoadState(std::string_view blob) override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  /// Steps taken so far (the bias-correction exponent t).
  int64_t step_count() const { return t_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// \brief Clips the global L2 norm of all parameter gradients to max_norm.
/// Returns the pre-clip norm. A cheap guard against the exploding gradients
/// GRU memory updaters can produce early in training.
float ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

}  // namespace cpdg::tensor

#endif  // CPDG_TENSOR_OPTIM_H_
