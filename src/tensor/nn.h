#ifndef CPDG_TENSOR_NN_H_
#define CPDG_TENSOR_NN_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace cpdg::tensor {

/// \brief Base class for parameterized layers.
///
/// A module owns its parameter tensors (leaves with requires_grad) and can
/// enumerate them for optimizers and for parameter transfer between a
/// pre-trained and a fine-tuned model.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module (including submodules).
  std::vector<Tensor> Parameters() const;

  /// \brief Copies parameter data from another module with an identical
  /// architecture. This is the "use pre-trained weights for initialization"
  /// step of the pre-train / fine-tune workflow.
  void CopyParametersFrom(const Module& other);

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Total number of scalar parameters.
  int64_t ParameterCount() const;

 protected:
  /// Registers a leaf parameter tensor; returns it for convenience.
  Tensor RegisterParameter(Tensor t);
  /// Registers a submodule whose parameters are exposed through this one.
  void RegisterModule(Module* m);

 private:
  std::vector<Tensor> params_;
  std::vector<Module*> submodules_;
};

/// \brief Affine layer y = x W + b with Xavier-initialized W.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool bias = true);

  /// x: [n, in] -> [n, out].
  Tensor Forward(const Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [1, out] or undefined
};

/// \brief Activation selector for MLP hidden layers.
enum class Activation { kRelu, kTanh, kSigmoid, kIdentity };

Tensor ApplyActivation(const Tensor& x, Activation act);

/// \brief Multi-layer perceptron; `dims` includes input and output sizes
/// (e.g. {64, 32, 1} is a 2-layer MLP). The activation is applied between
/// layers, not after the last one.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int64_t>& dims, Rng* rng,
      Activation activation = Activation::kRelu);

  Tensor Forward(const Tensor& x) const;

  const std::vector<std::unique_ptr<Linear>>& layers() const {
    return layers_;
  }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation activation_;
};

/// \brief GRU cell: standard gated recurrent unit used as a memory updater
/// (Mem(.) of Eq. 4 for TGN) and for EIE-GRU fusion (Eq. 18).
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  /// x: [n, input], h: [n, hidden] -> new hidden [n, hidden].
  Tensor Forward(const Tensor& x, const Tensor& h) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  std::unique_ptr<Linear> update_gate_;     // on [x ‖ h]
  std::unique_ptr<Linear> reset_gate_;      // on [x ‖ h]
  std::unique_ptr<Linear> candidate_gate_;  // on [x ‖ r*h]
};

/// \brief Vanilla RNN cell h' = tanh([x ‖ h] W + b); the memory updater
/// used by JODIE and DyRep in Table III.
class RnnCell : public Module {
 public:
  RnnCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  Tensor Forward(const Tensor& x, const Tensor& h) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  std::unique_ptr<Linear> cell_;
};

/// \brief Generic time encoding phi(dt) = cos(dt * w + b) (TGAT-style
/// Fourier features), the phi(.) of Eq. 2.
///
/// Frequencies are initialized on a log-spaced grid (1/10^(k*4/d)) so that
/// both small and large time intervals produce informative features, and
/// remain trainable.
class TimeEncoder : public Module {
 public:
  TimeEncoder(int64_t dim, Rng* rng);

  /// Encodes a batch of time deltas -> [n, dim].
  Tensor Forward(const std::vector<double>& deltas) const;

  int64_t dim() const { return dim_; }

 private:
  int64_t dim_;
  Tensor frequencies_;  // [1, dim]
  Tensor phases_;       // [1, dim]
};

/// \brief Single-head scaled-dot-product attention over per-query candidate
/// groups with learned projections; wraps the fused GroupedAttention
/// kernel. Used by the TGN embedding module and by DyRep's attention
/// message function.
class GroupedAttentionLayer : public Module {
 public:
  /// query_dim/key_dim are input widths; attn_dim is the projected width;
  /// out_dim is the width of the value projection output.
  GroupedAttentionLayer(int64_t query_dim, int64_t key_dim, int64_t attn_dim,
                        int64_t out_dim, Rng* rng);

  /// queries: [n, query_dim]; keys/values source: [n*group, key_dim];
  /// valid marks real (non-padding) candidates.
  Tensor Forward(const Tensor& queries, const Tensor& candidates,
                 int64_t group, const std::vector<uint8_t>& valid) const;

 private:
  std::unique_ptr<Linear> query_proj_;
  std::unique_ptr<Linear> key_proj_;
  std::unique_ptr<Linear> value_proj_;
};

}  // namespace cpdg::tensor

#endif  // CPDG_TENSOR_NN_H_
