#ifndef CPDG_TENSOR_QUANT_INTERNAL_H_
#define CPDG_TENSOR_QUANT_INTERNAL_H_

// Backend seam for the int8 GEMM, mirroring gemm_internal.h: quant.cc owns
// activation quantization, tiling, the thread fan-out, and the float
// dequant epilogue; backends supply only the integer tile accumulation.
// int8-grid×int8-grid→int32 is exact integer arithmetic, so any backend
// that computes the mathematical dot products is automatically bitwise
// identical to every other — there is no rounding-order contract to keep.
//
// Operands arrive pre-sign-extended to int16 (quant.h storage-vs-compute
// note); every value is on the int8 grid [-127, 127].

#include <cstdint>

namespace cpdg::tensor::quant_internal {

/// \brief Computes one kQuantMR x n accumulator strip:
/// acc[r * ldacc + j] = sum over p < k of a[r*lda + p] * bt[j*ldb + p]
/// for r < mvalid, j < n (both operands row-major along k). One strip per
/// indirect call — per-call overhead is amortized over the whole row
/// block, and the backend owns the j sweep so its register tile never
/// crosses a function-pointer boundary.
using QuantMicroKernelFn = void (*)(const int16_t* a, int64_t lda,
                                    const int16_t* bt, int64_t ldb, int64_t k,
                                    int64_t n, int32_t* acc, int64_t ldacc,
                                    int64_t mvalid);

/// Portable backend (plain C++ int arithmetic). Always available.
QuantMicroKernelFn ScalarQuantMicroKernel();

#ifdef CPDG_HAVE_AVX2_KERNELS
/// AVX2 backend (quant_avx2.cc): accumulates int16 lanes via
/// _mm256_madd_epi16, which cannot saturate for |v| <= 127 operands, so
/// every lane sum is the exact integer result. Call only after
/// simd::Avx2Supported().
QuantMicroKernelFn Avx2QuantMicroKernel();
#endif

#ifdef CPDG_HAVE_VNNI_KERNELS
/// \brief AVX-VNNI packed-operand strip: for kQuantMR activation rows
/// (biased u8, lda = kpad stride, rows beyond m zero-padded by the driver)
/// against `nblk` lane-interleaved column blocks of B (quant.h packed
/// layout), accumulates the *biased* int32 sums
/// acc[r * ldacc + jb*8 + l] = Σ_p a_u8[r][p] * b[jb*8+l][p]
/// via vpdpbusd — lanes hold whole column sums, so there are no horizontal
/// reductions. The driver subtracts the 128·rowsum bias in its epilogue.
/// Exact int32 arithmetic (k-quad partial sums ≤ 4·255·127 per lane, no
/// saturation), so results match the signed backends bit for bit after
/// bias correction. Call only after simd::AvxVnniSupported().
using QuantPackedKernelFn = void (*)(const uint8_t* a, int64_t lda,
                                     const int8_t* bpacked, int64_t kpad,
                                     int64_t nblk, int32_t* acc,
                                     int64_t ldacc);
QuantPackedKernelFn VnniPackedKernel();
#endif

}  // namespace cpdg::tensor::quant_internal

#endif  // CPDG_TENSOR_QUANT_INTERNAL_H_
