#ifndef CPDG_SAMPLER_SAMPLERS_H_
#define CPDG_SAMPLER_SAMPLERS_H_

#include <cstdint>
#include <vector>

#include "graph/graph_store.h"
#include "tensor/arena.h"
#include "util/rng.h"

namespace cpdg::sampler {

using graph::GraphStore;
using graph::NodeId;

/// Arena-backed containers for sampled subgraphs: under an ArenaScope
/// (training consumer thread, prefetch workers) they recycle through the
/// thread's batch pool; outside a scope they behave like plain vectors.
using ArenaNodeVec = std::vector<NodeId, tensor::ArenaAllocator<NodeId>>;
using ArenaTimeVec = std::vector<double, tensor::ArenaAllocator<double>>;

/// \brief Temporal-aware sampling probability f_{t->p} for the η-BFS
/// strategy (Sec. IV-A / IV-B of the paper).
///
///  - kChronological: Eq. (6)-(7) — recent neighbors more likely; used to
///    draw the temporal *positive* subgraph TP_i^t.
///  - kReverseChronological: Eq. (8) — agelong neighbors more likely; used
///    to draw the temporal *negative* subgraph TN_i^t.
///  - kUniform: baseline choice used by existing DGNN samplers.
enum class TemporalBias {
  kChronological,
  kReverseChronological,
  kUniform,
};

/// \brief A sampled context subgraph: the unique node ids it contains
/// (excluding the root) plus, per node, the interaction time through which
/// it was reached (useful for diagnostics and tests).
struct SubgraphSample {
  ArenaNodeVec nodes;
  ArenaTimeVec times;
  /// Number of frontier entries the traversal expanded across all hops
  /// (diagnostics). The η-BFS frontier is deduplicated against the seen
  /// set, so this is bounded by the nodes added plus the root.
  int64_t frontier_expansions = 0;

  bool empty() const { return nodes.empty(); }
  int64_t size() const { return static_cast<int64_t>(nodes.size()); }
};

/// \brief Computes the normalized sampling probabilities of Eq. (6)-(8)
/// over a node's temporal neighborhood. Exposed for testing.
///
/// `neighbor_times` are the event times t_u (< t); `t` is the query time;
/// `tau` is the softmax temperature. Degenerate neighborhoods (all events
/// at the same time) fall back to uniform.
std::vector<double> TemporalProbabilities(
    const std::vector<double>& neighbor_times, double t, TemporalBias bias,
    double tau);

/// \brief The structural-temporal subgraph sampler of Sec. IV-A.
///
/// Provides the η-BFS strategy (breadth-first with temporal-aware sampling
/// probabilities; Fig. 3) and the ε-DFS strategy (depth-first over the most
/// recently interacted neighbors; Fig. 4 / Eq. 5).
class StructuralTemporalSampler {
 public:
  struct Options {
    /// Samples per expansion: η for BFS, ε for DFS.
    int64_t width = 2;
    /// Recursion depth k (number of hops).
    int64_t depth = 2;
    /// Softmax temperature τ of Eq. (7)-(8).
    double temperature = 0.2;
  };

  explicit StructuralTemporalSampler(const GraphStore* graph);

  /// \brief η-BFS sampling rooted at `root` as of `time`.
  ///
  /// Each hop draws up to `options.width` distinct neighbors per frontier
  /// node without replacement, weighted by the temporal-aware probability.
  /// Returns the union of all sampled nodes over `options.depth` hops.
  SubgraphSample SampleEtaBfs(NodeId root, double time, TemporalBias bias,
                              const Options& options, Rng* rng) const;

  /// \brief ε-DFS sampling rooted at `root` as of `time`: recursively
  /// expands the ε most-recently-interacted neighbors (Eq. 5). The
  /// expansion is deterministic given the graph.
  SubgraphSample SampleEpsilonDfs(NodeId root, double time,
                                  const Options& options) const;

  const GraphStore& graph() const { return *graph_; }

 private:
  const GraphStore* graph_;
};

/// \brief Fixed-width temporal neighbor batch used by DGNN embedding
/// modules: for each of n roots, up to `group` neighbors interacted before
/// the root's query time, padded with invalid entries.
struct NeighborBatch {
  int64_t group = 0;
  std::vector<NodeId> nodes;    // n*group; -1 for padding
  std::vector<double> times;    // interaction times (0 for padding)
  std::vector<uint8_t> valid;   // 1 for real entries
};

/// \brief Strategy for picking the fixed-width neighbor set.
enum class NeighborStrategy { kMostRecent, kUniform };

/// \brief Samples fixed-width temporal neighborhoods for a batch of
/// (root, time) queries. `rng` may be null for kMostRecent.
NeighborBatch SampleNeighborBatch(const GraphStore& graph,
                                  const std::vector<NodeId>& roots,
                                  const std::vector<double>& times,
                                  int64_t group, NeighborStrategy strategy,
                                  Rng* rng);

/// \brief Temporal random walk of the given length starting at `root`
/// (each step moves to a uniformly sampled neighbor that interacted before
/// `time`). Used by DeepWalk-style baselines; returns visited nodes
/// including the root.
std::vector<NodeId> TemporalRandomWalk(const GraphStore& graph, NodeId root,
                                       double time, int64_t length, Rng* rng);

}  // namespace cpdg::sampler

#endif  // CPDG_SAMPLER_SAMPLERS_H_
