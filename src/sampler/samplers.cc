#include "sampler/samplers.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tensor/arena.h"
#include "util/check.h"

namespace cpdg::sampler {

namespace {

// Traversal scratch lives in arena-backed vectors: under an ArenaScope
// (TrainLoop's consumer thread, each prefetch worker) the per-call
// buffers recycle through the thread's pool instead of hitting global
// operator new — the contrast objective runs thousands of these
// traversals per batch.
template <typename T>
using AVec = std::vector<T, tensor::ArenaAllocator<T>>;

// Membership is tracked in a flat vector with linear scans: sampled
// subgraphs hold at most width^depth nodes (single digits to low tens),
// where scanning beats a heap-allocating hash set.
bool SeenInsert(AVec<graph::NodeId>* seen, graph::NodeId node) {
  for (graph::NodeId s : *seen) {
    if (s == node) return false;
  }
  seen->push_back(node);
  return true;
}

/// Sampler hot-path metrics. Resolved once (the registry lookup takes a
/// mutex); the updates themselves are relaxed atomics.
struct SamplerMetrics {
  obs::Counter& eta_bfs_calls =
      obs::MetricsRegistry::Global().counter("sampler.eta_bfs.calls");
  obs::Counter& eta_bfs_expansions = obs::MetricsRegistry::Global().counter(
      "sampler.eta_bfs.frontier_expansions");
  obs::Histogram& eta_bfs_nodes =
      obs::MetricsRegistry::Global().histogram("sampler.eta_bfs.nodes");
  obs::Counter& eps_dfs_calls =
      obs::MetricsRegistry::Global().counter("sampler.eps_dfs.calls");
  obs::Counter& eps_dfs_expansions = obs::MetricsRegistry::Global().counter(
      "sampler.eps_dfs.frontier_expansions");
  obs::Histogram& eps_dfs_nodes =
      obs::MetricsRegistry::Global().histogram("sampler.eps_dfs.nodes");
  obs::Counter& neighbor_batch_calls =
      obs::MetricsRegistry::Global().counter("sampler.neighbor_batch.calls");

  static SamplerMetrics& Get() {
    static SamplerMetrics* metrics = new SamplerMetrics();
    return *metrics;
  }
};

// Shared implementation over any vector type; `probs` is resized and
// doubles as the logits buffer, so the computation allocates nothing
// beyond (amortized) growth of the output. The floating-point operation
// sequence matches the historical implementation exactly.
template <typename VecIn, typename VecOut>
void TemporalProbabilitiesInto(const VecIn& neighbor_times, double t,
                               TemporalBias bias, double tau, VecOut* probs) {
  CPDG_CHECK(!neighbor_times.empty());
  CPDG_CHECK_GT(tau, 0.0);
  size_t n = neighbor_times.size();
  probs->assign(n, 1.0 / static_cast<double>(n));
  if (bias == TemporalBias::kUniform) return;

  double t_min = *std::min_element(neighbor_times.begin(),
                                   neighbor_times.end());
  double denom = t - t_min;
  if (denom <= 0.0) return;  // all events at the query time: uniform

  // Eq. (6): normalized event time in [0,1]; Eq. (7)/(8): softmax of the
  // (reversed) normalized time with temperature tau. The logits overwrite
  // `probs` in place before the softmax reads them back.
  for (size_t i = 0; i < n; ++i) {
    double t_hat = (neighbor_times[i] - t_min) / denom;
    if (bias == TemporalBias::kReverseChronological) t_hat = 1.0 - t_hat;
    (*probs)[i] = t_hat / tau;
  }
  double mx = *std::max_element(probs->begin(), probs->end());
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    (*probs)[i] = std::exp((*probs)[i] - mx);
    sum += (*probs)[i];
  }
  for (double& p : *probs) p /= sum;
}

}  // namespace

std::vector<double> TemporalProbabilities(
    const std::vector<double>& neighbor_times, double t, TemporalBias bias,
    double tau) {
  std::vector<double> probs;
  TemporalProbabilitiesInto(neighbor_times, t, bias, tau, &probs);
  return probs;
}

StructuralTemporalSampler::StructuralTemporalSampler(const GraphStore* graph)
    : graph_(graph) {
  CPDG_CHECK(graph != nullptr);
}

SubgraphSample StructuralTemporalSampler::SampleEtaBfs(
    NodeId root, double time, TemporalBias bias, const Options& options,
    Rng* rng) const {
  CPDG_CHECK(rng != nullptr);
  CPDG_CHECK_GT(options.width, 0);
  CPDG_CHECK_GT(options.depth, 0);
  CPDG_TRACE_SPAN("sampler/eta_bfs");

  SubgraphSample out;
  AVec<NodeId> seen;
  seen.push_back(root);

  graph::NeighborScratch scratch;
  // Scratch hoisted out of the hop loop: one traversal reuses the same
  // buffers across every expansion.
  AVec<std::pair<NodeId, double>> frontier = {{root, time}};
  AVec<std::pair<NodeId, double>> next;
  AVec<double> times;
  AVec<double> probs;
  for (int64_t hop = 0; hop < options.depth && !frontier.empty(); ++hop) {
    next.clear();
    for (const auto& [u, ut] : frontier) {
      ++out.frontier_expansions;
      auto view = graph_->NeighborsBefore(u, ut, &scratch);
      if (view.empty()) continue;

      times.resize(static_cast<size_t>(view.count));
      for (int64_t i = 0; i < view.count; ++i) times[i] = view[i].time;
      TemporalProbabilitiesInto(times, ut, bias, options.temperature,
                                &probs);

      // Weighted sampling without replacement: draw up to `width` distinct
      // neighbor positions by zeroing drawn weights. The remaining mass is
      // tracked as a running total decremented by each drawn weight, so an
      // expansion costs O(draws * n) scans but only one initial summation.
      double total = 0.0;
      for (double p : probs) total += p;
      int64_t draws = std::min(options.width, view.count);
      for (int64_t d = 0; d < draws; ++d) {
        if (total <= 0.0) break;
        double x = rng->NextDouble() * total;
        double acc = 0.0;
        size_t pick = probs.size();
        size_t last_alive = probs.size();
        for (size_t i = 0; i < probs.size(); ++i) {
          if (probs[i] <= 0.0) continue;  // already drawn
          last_alive = i;
          acc += probs[i];
          if (x < acc) {
            pick = i;
            break;
          }
        }
        // Rounding in the decremented total can push x past the remaining
        // mass; fall back to the last undrawn position.
        if (pick == probs.size()) pick = last_alive;
        if (pick == probs.size()) break;  // every weight already drawn
        total -= probs[pick];
        probs[pick] = 0.0;
        const auto& nbr = view[static_cast<int64_t>(pick)];
        // Only a newly discovered node enters the next frontier: frontier
        // entries would otherwise duplicate at every deeper hop. Expansion
        // happens at the time of the sampled interaction, so deeper hops
        // only see the past of that interaction.
        if (SeenInsert(&seen, nbr.node)) {
          out.nodes.push_back(nbr.node);
          out.times.push_back(nbr.time);
          next.emplace_back(nbr.node, nbr.time);
        }
      }
    }
    std::swap(frontier, next);
  }
  SamplerMetrics& metrics = SamplerMetrics::Get();
  metrics.eta_bfs_calls.Add();
  metrics.eta_bfs_expansions.Add(out.frontier_expansions);
  metrics.eta_bfs_nodes.Observe(static_cast<double>(out.size()));
  return out;
}

SubgraphSample StructuralTemporalSampler::SampleEpsilonDfs(
    NodeId root, double time, const Options& options) const {
  CPDG_CHECK_GT(options.width, 0);
  CPDG_CHECK_GT(options.depth, 0);
  CPDG_TRACE_SPAN("sampler/eps_dfs");

  SubgraphSample out;
  AVec<NodeId> seen;
  seen.push_back(root);

  // Explicit stack of (node, time, remaining_depth); expansion picks the
  // ε most recent neighbors (the tail of the chronologically sorted
  // NS_i^t of Eq. 5).
  struct Frame {
    NodeId node;
    double time;
    int64_t depth_left;
  };
  graph::NeighborScratch scratch;
  AVec<Frame> stack = {{root, time, options.depth}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    ++out.frontier_expansions;
    if (f.depth_left == 0) continue;
    auto view = graph_->NeighborsBefore(f.node, f.time, &scratch);
    if (view.empty()) continue;
    int64_t take = std::min(options.width, view.count);
    // Most recent `take` entries, pushed oldest first so the newest sampled
    // neighbor ends on top of the LIFO stack and is explored deepest-first
    // (the chronological-tail order of Eq. 5).
    for (int64_t i = take - 1; i >= 0; --i) {
      const auto& nbr = view[view.count - 1 - i];
      if (SeenInsert(&seen, nbr.node)) {
        out.nodes.push_back(nbr.node);
        out.times.push_back(nbr.time);
      }
      stack.push_back({nbr.node, nbr.time, f.depth_left - 1});
    }
  }
  SamplerMetrics& metrics = SamplerMetrics::Get();
  metrics.eps_dfs_calls.Add();
  metrics.eps_dfs_expansions.Add(out.frontier_expansions);
  metrics.eps_dfs_nodes.Observe(static_cast<double>(out.size()));
  return out;
}

NeighborBatch SampleNeighborBatch(const GraphStore& graph,
                                  const std::vector<NodeId>& roots,
                                  const std::vector<double>& times,
                                  int64_t group, NeighborStrategy strategy,
                                  Rng* rng) {
  CPDG_CHECK_EQ(roots.size(), times.size());
  CPDG_CHECK_GT(group, 0);
  if (strategy == NeighborStrategy::kUniform) {
    CPDG_CHECK(rng != nullptr);
  }
  CPDG_TRACE_SPAN("sampler/neighbor_batch");
  SamplerMetrics::Get().neighbor_batch_calls.Add();

  int64_t n = static_cast<int64_t>(roots.size());
  NeighborBatch batch;
  batch.group = group;
  batch.nodes.assign(static_cast<size_t>(n * group), -1);
  batch.times.assign(static_cast<size_t>(n * group), 0.0);
  batch.valid.assign(static_cast<size_t>(n * group), 0);

  graph::NeighborScratch scratch;
  for (int64_t i = 0; i < n; ++i) {
    auto view = graph.NeighborsBefore(roots[static_cast<size_t>(i)],
                                      times[static_cast<size_t>(i)], &scratch);
    if (view.empty()) continue;
    int64_t take = std::min(group, view.count);
    for (int64_t j = 0; j < take; ++j) {
      int64_t src_idx;
      if (strategy == NeighborStrategy::kMostRecent) {
        src_idx = view.count - take + j;  // chronological tail
      } else {
        src_idx = static_cast<int64_t>(
            rng->NextBounded(static_cast<uint64_t>(view.count)));
      }
      int64_t slot = i * group + j;
      batch.nodes[static_cast<size_t>(slot)] = view[src_idx].node;
      batch.times[static_cast<size_t>(slot)] = view[src_idx].time;
      batch.valid[static_cast<size_t>(slot)] = 1;
    }
  }
  return batch;
}

std::vector<NodeId> TemporalRandomWalk(const GraphStore& graph, NodeId root,
                                       double time, int64_t length, Rng* rng) {
  CPDG_CHECK(rng != nullptr);
  CPDG_CHECK_GE(length, 0);
  std::vector<NodeId> walk = {root};
  NodeId cur = root;
  double cur_time = time;
  graph::NeighborScratch scratch;
  for (int64_t step = 0; step < length; ++step) {
    auto view = graph.NeighborsBefore(cur, cur_time, &scratch);
    if (view.empty()) break;
    int64_t pick = static_cast<int64_t>(
        rng->NextBounded(static_cast<uint64_t>(view.count)));
    cur = view[pick].node;
    cur_time = view[pick].time;
    walk.push_back(cur);
  }
  return walk;
}

}  // namespace cpdg::sampler
