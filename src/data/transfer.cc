#include "data/transfer.h"

#include "util/check.h"

namespace cpdg::data {

const char* TransferSettingName(TransferSetting setting) {
  switch (setting) {
    case TransferSetting::kTime:
      return "time";
    case TransferSetting::kField:
      return "field";
    case TransferSetting::kTimeField:
      return "time+field";
  }
  return "?";
}

TransferBenchmarkBuilder::TransferBenchmarkBuilder(const UniverseSpec& spec,
                                                   uint64_t seed)
    : universe_(spec, seed) {}

TransferDataset TransferBenchmarkBuilder::Assemble(
    const std::string& name, std::vector<Event> pretrain_events,
    std::vector<Event> downstream_events, int64_t pretrain_field,
    int64_t downstream_field, double train_frac, double val_frac) const {
  TransferDataset out;
  out.name = name;
  out.num_nodes = universe_.num_nodes();
  out.pretrain_graph =
      graph::TemporalGraph::Create(out.num_nodes, std::move(pretrain_events))
          .ValueOrDie();

  // Chronological split of the downstream span.
  size_t n = downstream_events.size();
  size_t train_end = static_cast<size_t>(train_frac * static_cast<double>(n));
  size_t val_end = static_cast<size_t>((train_frac + val_frac) *
                                       static_cast<double>(n));
  CPDG_CHECK_GT(train_end, 0u);
  CPDG_CHECK_LT(val_end, n);
  std::vector<Event> train(downstream_events.begin(),
                           downstream_events.begin() + train_end);
  out.downstream_val_events.assign(downstream_events.begin() + train_end,
                                   downstream_events.begin() + val_end);
  out.downstream_test_events.assign(downstream_events.begin() + val_end,
                                    downstream_events.end());
  out.downstream_train_graph =
      graph::TemporalGraph::Create(out.num_nodes, std::move(train))
          .ValueOrDie();

  out.pretrain_negative_pool = universe_.ItemPool(pretrain_field);
  out.downstream_negative_pool = universe_.ItemPool(downstream_field);
  return out;
}

TransferDataset TransferBenchmarkBuilder::Build(
    TransferSetting setting, int64_t downstream_field) const {
  CPDG_CHECK_GE(universe_.num_fields(), 2);
  CPDG_CHECK_GE(downstream_field, 0);
  CPDG_CHECK_LT(downstream_field, universe_.num_fields() - 1)
      << "the last field is reserved for pre-training";
  int64_t pretrain_field = universe_.num_fields() - 1;

  std::vector<Event> pretrain_events;
  int64_t pf = downstream_field;
  switch (setting) {
    case TransferSetting::kTime:
      pretrain_events = universe_.EarlyEvents(downstream_field);
      pf = downstream_field;
      break;
    case TransferSetting::kField:
      pretrain_events = universe_.LateEvents(pretrain_field);
      pf = pretrain_field;
      break;
    case TransferSetting::kTimeField:
      pretrain_events = universe_.EarlyEvents(pretrain_field);
      pf = pretrain_field;
      break;
  }

  std::string name =
      universe_.spec().fields[static_cast<size_t>(downstream_field)].name;
  name += "/";
  name += TransferSettingName(setting);
  return Assemble(name, std::move(pretrain_events),
                  universe_.LateEvents(downstream_field), pf,
                  downstream_field, 0.7, 0.15);
}

TransferDataset TransferBenchmarkBuilder::BuildSingleField() const {
  CPDG_CHECK_EQ(universe_.num_fields(), 1);
  std::string name = universe_.spec().fields[0].name;
  name += "/time";
  // 6:2:1:1 overall = early 60% pre-train, then 50/25/25 within the late
  // span for fine-tune / validation / test.
  return Assemble(name, universe_.EarlyEvents(0), universe_.LateEvents(0),
                  0, 0, 0.5, 0.25);
}

}  // namespace cpdg::data
