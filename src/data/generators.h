#ifndef CPDG_DATA_GENERATORS_H_
#define CPDG_DATA_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/event.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpdg::data {

using graph::Event;
using graph::NodeId;

/// \brief Receiver for streamed event generation: generators hand over
/// chronological chunks instead of materializing one giant vector, so a
/// 10^7-event stress graph can flow straight into the storage event-log
/// builder. A failing Append aborts the generation with that status.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual Status Append(const Event* events, int64_t count) = 0;
};

/// \brief Generative knobs for one "field" (item universe) of a synthetic
/// bipartite user-item dynamic graph.
///
/// The generator is built around the two pattern families the paper's
/// method targets (Sec. I / IV-B):
///  - long-term stable patterns: each user has a persistent community
///    preference; `community_strength` controls how dominant it is;
///  - short-term fluctuating patterns: each user also follows a transient
///    interest community that re-rolls every `short_term_window` time
///    units, plus recency-driven repeat interactions.
struct FieldSpec {
  std::string name = "field";
  int64_t num_items = 300;
  int64_t num_communities = 8;
  /// Probability that a long-term pick lands inside the user's community.
  double community_strength = 0.8;
  /// Probability an event is driven by the transient interest instead of
  /// the long-term preference.
  double short_term_prob = 0.35;
  /// Probability of repeating one of the user's recent items.
  double repeat_prob = 0.25;
  /// Time between re-rolls of the transient interest (fractions of the
  /// unit time span).
  double short_term_window = 0.05;
  /// Item popularity skew inside a community (Zipf exponent).
  double zipf_exponent = 1.6;
  /// Probability that consecutive events share the same user (sessions).
  double burstiness = 0.3;
  /// Events generated in the early period [0, split_time) and the late
  /// period [split_time, 1).
  int64_t num_events_early = 5000;
  int64_t num_events_late = 3000;

  /// \name Dynamic node labels (node-classification datasets)
  /// @{
  bool labeled = false;
  /// Fraction of users that undergo a state flip ("banned"/"drop-out").
  double bad_user_fraction = 0.15;
  /// Length of the window after the flip during which events are labeled 1
  /// and behaviour deviates (uniform random items, extra bursts).
  double label_window = 0.15;
  /// @}
};

/// \brief A multi-field user-item universe sharing one node-id space:
/// users occupy [0, num_users); field f's items occupy a contiguous block
/// after all users. Sharing the space is what makes time / field /
/// time+field transfer meaningful (and lets EIE propagate per-node
/// evolution information across stages).
struct UniverseSpec {
  int64_t num_users = 500;
  /// Boundary between the "early" (pre-training) and "late" (downstream)
  /// periods on the unit time span.
  double split_time = 0.6;
  std::vector<FieldSpec> fields;
};

/// \brief Deterministic synthetic CTDG generator over a shared node
/// universe.
///
/// All per-user latent structure (long-term community, transient interest
/// per window, flip times) is derived by hashing (seed, user, field,
/// window), so generating the early and late periods separately yields one
/// coherent process — exactly what time transfer requires.
class DynamicGraphUniverse {
 public:
  DynamicGraphUniverse(const UniverseSpec& spec, uint64_t seed);

  const UniverseSpec& spec() const { return spec_; }
  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_fields() const {
    return static_cast<int64_t>(spec_.fields.size());
  }

  /// First node id of field `f`'s item block.
  NodeId ItemBase(int64_t field) const;
  /// All item ids of field `f` (the negative-sampling pool).
  std::vector<NodeId> ItemPool(int64_t field) const;

  /// \brief Generates `num_events` events of field `f` with times evenly
  /// spread over [t_lo, t_hi) (jittered, strictly increasing).
  std::vector<Event> GenerateEvents(int64_t field, double t_lo, double t_hi,
                                    int64_t num_events) const;

  /// \brief Streaming form of GenerateEvents: emits the identical event
  /// sequence (same RNG stream) in chunks of `chunk_size` to `sink`, so
  /// peak memory is O(chunk_size) regardless of num_events.
  Status StreamEvents(int64_t field, double t_lo, double t_hi,
                      int64_t num_events, int64_t chunk_size,
                      EventSink* sink) const;

  /// Early-period events of field `f` ([0, split_time)).
  std::vector<Event> EarlyEvents(int64_t field) const;
  /// Late-period events of field `f` ([split_time, 1)).
  std::vector<Event> LateEvents(int64_t field) const;

  /// Long-term community of (user, field); exposed for tests.
  int64_t UserCommunity(NodeId user, int64_t field) const;
  /// Transient interest community of (user, field) at time t.
  int64_t UserShortTermCommunity(NodeId user, int64_t field, double t) const;
  /// Flip time of a user in [0,1], or a value > 1 if the user never flips.
  double UserFlipTime(NodeId user, int64_t field) const;

 private:
  int64_t ItemCommunity(NodeId item, int64_t field) const;
  uint64_t HashMix(uint64_t a, uint64_t b, uint64_t c, uint64_t d) const;

  UniverseSpec spec_;
  uint64_t seed_;
  int64_t num_nodes_ = 0;
  std::vector<NodeId> item_bases_;
  /// Per field, per community: member item ids (Zipf-weighted at pick
  /// time).
  std::vector<std::vector<std::vector<NodeId>>> community_items_;
};

/// \name Dataset profiles mirroring the paper's datasets (Table IV).
/// Sizes are laptop-scale; shapes (relative density, burstiness, label
/// signal strength) follow the qualitative description in Sec. V-A.
/// @{
/// Amazon-like: 3 fields (Beauty, Luxury, Arts-Crafts-Sewing), sparse.
UniverseSpec MakeAmazonLike();
/// Gowalla-like: 3 fields (Entertainment, Outdoors, Food), denser with
/// more repeat check-ins.
UniverseSpec MakeGowallaLike();
/// Meituan-like: single field, short span, strongly bursty.
UniverseSpec MakeMeituanLike();
/// Wikipedia-like: single labeled field, moderate signal.
UniverseSpec MakeWikipediaLike();
/// MOOC-like: single labeled field with deliberately weak structural and
/// temporal patterns (the paper observes CPDG < TGN here).
UniverseSpec MakeMoocLike();
/// Reddit-like: single labeled field, bursty with strong label signal.
UniverseSpec MakeRedditLike();
/// @}

/// \brief Shape of the storage stress graph: a bipartite user-item stream
/// at production scale (defaults: 10^6 nodes, 10^7 events), generated with
/// O(1) work per event so the whole stream can be produced in one pass.
struct ScaleStressSpec {
  int64_t num_users = 500'000;
  int64_t num_items = 500'000;
  int64_t num_events = 10'000'000;
  /// Popularity skew: larger pushes more mass onto low item/user ids.
  double skew = 3.0;
  /// Session burstiness (probability of repeating the previous user).
  double burstiness = 0.3;
};

/// \brief Streams a deterministic power-law user-item event sequence with
/// strictly increasing times over [0, 1) into `sink`, `chunk_size` events
/// at a time. Unlike DynamicGraphUniverse this deliberately has no
/// per-node latent state, so memory stays O(chunk_size) at any scale —
/// it exists to stress the storage layer, not to model the paper's
/// transfer settings.
Status StreamScaleStressEvents(const ScaleStressSpec& spec, uint64_t seed,
                               int64_t chunk_size, EventSink* sink);

}  // namespace cpdg::data

#endif  // CPDG_DATA_GENERATORS_H_
