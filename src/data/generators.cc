#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/check.h"

namespace cpdg::data {

DynamicGraphUniverse::DynamicGraphUniverse(const UniverseSpec& spec,
                                           uint64_t seed)
    : spec_(spec), seed_(seed) {
  CPDG_CHECK_GT(spec_.num_users, 0);
  CPDG_CHECK(!spec_.fields.empty());
  CPDG_CHECK_GT(spec_.split_time, 0.0);
  CPDG_CHECK_LT(spec_.split_time, 1.0);

  num_nodes_ = spec_.num_users;
  for (const FieldSpec& f : spec_.fields) {
    CPDG_CHECK_GT(f.num_items, 0);
    CPDG_CHECK_GT(f.num_communities, 0);
    item_bases_.push_back(num_nodes_);
    num_nodes_ += f.num_items;
  }

  // Precompute per-field community membership of items.
  community_items_.resize(spec_.fields.size());
  for (size_t f = 0; f < spec_.fields.size(); ++f) {
    community_items_[f].resize(
        static_cast<size_t>(spec_.fields[f].num_communities));
    for (int64_t i = 0; i < spec_.fields[f].num_items; ++i) {
      NodeId item = item_bases_[f] + i;
      int64_t c = ItemCommunity(item, static_cast<int64_t>(f));
      community_items_[f][static_cast<size_t>(c)].push_back(item);
    }
    // Guard: every community must be non-empty (communities <= items).
    for (const auto& members : community_items_[f]) {
      CPDG_CHECK(!members.empty())
          << "num_communities too large for num_items in field " << f;
    }
  }
}

uint64_t DynamicGraphUniverse::HashMix(uint64_t a, uint64_t b, uint64_t c,
                                       uint64_t d) const {
  uint64_t x = seed_;
  for (uint64_t v : {a, b, c, d}) {
    x ^= v + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2);
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
  }
  return x;
}

NodeId DynamicGraphUniverse::ItemBase(int64_t field) const {
  CPDG_CHECK_GE(field, 0);
  CPDG_CHECK_LT(field, num_fields());
  return item_bases_[static_cast<size_t>(field)];
}

std::vector<NodeId> DynamicGraphUniverse::ItemPool(int64_t field) const {
  NodeId base = ItemBase(field);
  std::vector<NodeId> pool(
      static_cast<size_t>(spec_.fields[static_cast<size_t>(field)].num_items));
  for (size_t i = 0; i < pool.size(); ++i) {
    pool[i] = base + static_cast<NodeId>(i);
  }
  return pool;
}

int64_t DynamicGraphUniverse::UserCommunity(NodeId user,
                                            int64_t field) const {
  const FieldSpec& f = spec_.fields[static_cast<size_t>(field)];
  return static_cast<int64_t>(
      HashMix(1, static_cast<uint64_t>(user), static_cast<uint64_t>(field),
              0) %
      static_cast<uint64_t>(f.num_communities));
}

int64_t DynamicGraphUniverse::UserShortTermCommunity(NodeId user,
                                                     int64_t field,
                                                     double t) const {
  const FieldSpec& f = spec_.fields[static_cast<size_t>(field)];
  // The transient interest is constant inside one window and re-rolls at
  // window boundaries; hashing makes it reproducible across split
  // generation calls.
  uint64_t window = static_cast<uint64_t>(
      std::floor(std::max(0.0, t) / f.short_term_window));
  return static_cast<int64_t>(
      HashMix(2, static_cast<uint64_t>(user), static_cast<uint64_t>(field),
              window) %
      static_cast<uint64_t>(f.num_communities));
}

double DynamicGraphUniverse::UserFlipTime(NodeId user, int64_t field) const {
  const FieldSpec& f = spec_.fields[static_cast<size_t>(field)];
  if (!f.labeled) return 2.0;
  uint64_t h = HashMix(3, static_cast<uint64_t>(user),
                       static_cast<uint64_t>(field), 0);
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= f.bad_user_fraction) return 2.0;  // never flips
  // Flip time uniform in (0.1, 0.95) so flips occur across all periods.
  uint64_t h2 = HashMix(4, static_cast<uint64_t>(user),
                        static_cast<uint64_t>(field), 0);
  double v = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  return 0.1 + 0.85 * v;
}

int64_t DynamicGraphUniverse::ItemCommunity(NodeId item,
                                            int64_t field) const {
  const FieldSpec& f = spec_.fields[static_cast<size_t>(field)];
  return static_cast<int64_t>(
      HashMix(5, static_cast<uint64_t>(item), static_cast<uint64_t>(field),
              0) %
      static_cast<uint64_t>(f.num_communities));
}

namespace {

/// Sink that collects the stream back into a vector — the compatibility
/// path GenerateEvents wraps around StreamEvents.
class CollectingSink : public EventSink {
 public:
  explicit CollectingSink(std::vector<Event>* out) : out_(out) {}
  Status Append(const Event* events, int64_t count) override {
    out_->insert(out_->end(), events, events + count);
    return Status::OK();
  }

 private:
  std::vector<Event>* out_;
};

}  // namespace

std::vector<Event> DynamicGraphUniverse::GenerateEvents(
    int64_t field, double t_lo, double t_hi, int64_t num_events) const {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(std::max<int64_t>(num_events, 0)));
  CollectingSink sink(&events);
  Status st =
      StreamEvents(field, t_lo, t_hi, num_events, num_events, &sink);
  CPDG_CHECK(st.ok()) << st.ToString();
  return events;
}

Status DynamicGraphUniverse::StreamEvents(int64_t field, double t_lo,
                                          double t_hi, int64_t num_events,
                                          int64_t chunk_size,
                                          EventSink* sink) const {
  CPDG_CHECK_GE(field, 0);
  CPDG_CHECK_LT(field, num_fields());
  CPDG_CHECK_LT(t_lo, t_hi);
  CPDG_CHECK_GT(num_events, 0);
  CPDG_CHECK_GT(chunk_size, 0);
  CPDG_CHECK(sink != nullptr);
  const FieldSpec& f = spec_.fields[static_cast<size_t>(field)];

  // The per-window RNG stream is seeded by (field, t_lo bucket) so calls
  // with the same arguments are reproducible.
  Rng rng(HashMix(6, static_cast<uint64_t>(field),
                  static_cast<uint64_t>(t_lo * 1e6),
                  static_cast<uint64_t>(num_events)));

  // Per-user recent items for recency repeats.
  std::vector<std::deque<NodeId>> recent(
      static_cast<size_t>(spec_.num_users));

  auto pick_from_community = [&](int64_t community) {
    const auto& members =
        community_items_[static_cast<size_t>(field)]
                        [static_cast<size_t>(community)];
    // Zipf-weighted pick inside the community for power-law popularity.
    size_t idx = rng.NextZipf(members.size(), f.zipf_exponent);
    return members[idx];
  };

  std::vector<Event> chunk;
  chunk.reserve(static_cast<size_t>(std::min(chunk_size, num_events)));
  double dt = (t_hi - t_lo) / static_cast<double>(num_events);
  NodeId prev_user = -1;
  bool prev_flipped = false;
  for (int64_t e = 0; e < num_events; ++e) {
    double t = t_lo + dt * (static_cast<double>(e) + rng.NextDouble());

    // Session burstiness: repeat the previous user with some probability.
    // Flipped ("banned"/"drop-out") users burst much harder, which is one
    // of the behavioural tells the classifier can pick up.
    double burst = prev_flipped ? std::max(0.8, f.burstiness) : f.burstiness;
    NodeId user;
    if (prev_user >= 0 && rng.NextBernoulli(burst)) {
      user = prev_user;
    } else {
      // Zipf user activity: some users are much more active.
      user = static_cast<NodeId>(rng.NextZipf(
          static_cast<size_t>(spec_.num_users), 0.6));
    }
    prev_user = user;

    double flip = UserFlipTime(user, field);
    bool flipped = f.labeled && t >= flip && t < flip + f.label_window;
    prev_flipped = flipped;

    NodeId item;
    auto& user_recent = recent[static_cast<size_t>(user)];
    if (flipped) {
      // Deviant behaviour: uniform random item, ignoring preferences.
      item = ItemBase(field) +
             static_cast<NodeId>(rng.NextBounded(
                 static_cast<uint64_t>(f.num_items)));
    } else if (!user_recent.empty() && rng.NextBernoulli(f.repeat_prob)) {
      item = user_recent[rng.NextBounded(user_recent.size())];
    } else if (rng.NextBernoulli(f.short_term_prob)) {
      item = pick_from_community(UserShortTermCommunity(user, field, t));
    } else if (rng.NextBernoulli(f.community_strength)) {
      item = pick_from_community(UserCommunity(user, field));
    } else {
      item = ItemBase(field) +
             static_cast<NodeId>(
                 rng.NextBounded(static_cast<uint64_t>(f.num_items)));
    }

    user_recent.push_back(item);
    if (user_recent.size() > 5) user_recent.pop_front();

    Event ev;
    ev.src = user;
    ev.dst = item;
    ev.time = t;
    ev.edge_type = 0;
    ev.label = f.labeled ? (flipped ? 1 : 0) : -1;
    chunk.push_back(ev);
    if (static_cast<int64_t>(chunk.size()) >= chunk_size) {
      CPDG_RETURN_NOT_OK(
          sink->Append(chunk.data(), static_cast<int64_t>(chunk.size())));
      chunk.clear();
    }
  }
  if (!chunk.empty()) {
    CPDG_RETURN_NOT_OK(
        sink->Append(chunk.data(), static_cast<int64_t>(chunk.size())));
  }
  return Status::OK();
}

Status StreamScaleStressEvents(const ScaleStressSpec& spec, uint64_t seed,
                               int64_t chunk_size, EventSink* sink) {
  CPDG_CHECK_GT(spec.num_users, 0);
  CPDG_CHECK_GT(spec.num_items, 0);
  CPDG_CHECK_GT(spec.num_events, 0);
  CPDG_CHECK_GT(chunk_size, 0);
  CPDG_CHECK(sink != nullptr);

  Rng rng(seed);
  std::vector<Event> chunk;
  chunk.reserve(static_cast<size_t>(std::min(chunk_size, spec.num_events)));
  const double dt = 1.0 / static_cast<double>(spec.num_events);
  NodeId prev_user = -1;
  for (int64_t e = 0; e < spec.num_events; ++e) {
    // Strictly increasing times: one slot per event, jittered inside it.
    const double t = dt * (static_cast<double>(e) + 0.5 * rng.NextDouble());

    // Power-law popularity via inverse transform — O(1) per draw, unlike
    // the Zipf machinery of DynamicGraphUniverse.
    NodeId user;
    if (prev_user >= 0 && rng.NextBernoulli(spec.burstiness)) {
      user = prev_user;
    } else {
      user = static_cast<NodeId>(
          static_cast<double>(spec.num_users) *
          std::pow(rng.NextDouble(), spec.skew));
      user = std::min(user, spec.num_users - 1);
    }
    prev_user = user;
    NodeId item = static_cast<NodeId>(
        static_cast<double>(spec.num_items) *
        std::pow(rng.NextDouble(), spec.skew));
    item = std::min(item, spec.num_items - 1);

    Event ev;
    ev.src = user;
    ev.dst = spec.num_users + item;
    ev.time = t;
    chunk.push_back(ev);
    if (static_cast<int64_t>(chunk.size()) >= chunk_size) {
      CPDG_RETURN_NOT_OK(
          sink->Append(chunk.data(), static_cast<int64_t>(chunk.size())));
      chunk.clear();
    }
  }
  if (!chunk.empty()) {
    CPDG_RETURN_NOT_OK(
        sink->Append(chunk.data(), static_cast<int64_t>(chunk.size())));
  }
  return Status::OK();
}

std::vector<Event> DynamicGraphUniverse::EarlyEvents(int64_t field) const {
  return GenerateEvents(
      field, 0.0, spec_.split_time,
      spec_.fields[static_cast<size_t>(field)].num_events_early);
}

std::vector<Event> DynamicGraphUniverse::LateEvents(int64_t field) const {
  return GenerateEvents(
      field, spec_.split_time, 1.0,
      spec_.fields[static_cast<size_t>(field)].num_events_late);
}

namespace {

FieldSpec BaseField(const std::string& name, int64_t items, int64_t early,
                    int64_t late) {
  FieldSpec f;
  f.name = name;
  f.num_items = items;
  f.num_events_early = early;
  f.num_events_late = late;
  return f;
}

}  // namespace

UniverseSpec MakeAmazonLike() {
  UniverseSpec spec;
  spec.num_users = 250;
  // Beauty and Luxury are the downstream fields; Arts-Crafts-Sewing is the
  // (larger) pre-training field, as in Table IV. User/item counts are kept
  // small relative to event counts so that nodes accumulate enough history
  // for memory-based encoders (mirroring the per-node interaction density
  // of the real datasets rather than their raw size).
  FieldSpec beauty = BaseField("Beauty", 150, 5000, 3000);
  beauty.short_term_prob = 0.45;  // temporal information dominates (Fig. 6)
  beauty.community_strength = 0.85;
  beauty.repeat_prob = 0.45;
  FieldSpec luxury = BaseField("Luxury", 150, 5000, 3000);
  luxury.short_term_prob = 0.3;  // temporal ~ structural balance (Fig. 6)
  luxury.community_strength = 0.9;
  luxury.repeat_prob = 0.45;
  FieldSpec arts = BaseField("ArtsCrafts", 200, 7000, 4500);
  spec.fields = {beauty, luxury, arts};
  return spec;
}

UniverseSpec MakeGowallaLike() {
  UniverseSpec spec;
  spec.num_users = 220;
  // Denser than Amazon (Table IV), with heavy repeat check-ins.
  FieldSpec entertainment = BaseField("Entertainment", 120, 6000, 3600);
  entertainment.repeat_prob = 0.5;
  entertainment.burstiness = 0.45;
  FieldSpec outdoors = BaseField("Outdoors", 120, 6000, 3600);
  outdoors.repeat_prob = 0.55;
  outdoors.burstiness = 0.4;
  FieldSpec food = BaseField("Food", 160, 8000, 5000);
  food.repeat_prob = 0.5;
  spec.fields = {entertainment, outdoors, food};
  return spec;
}

UniverseSpec MakeMeituanLike() {
  UniverseSpec spec;
  spec.num_users = 250;
  FieldSpec meituan = BaseField("Meituan", 150, 6000, 4000);
  meituan.burstiness = 0.55;
  meituan.repeat_prob = 0.4;
  meituan.short_term_prob = 0.5;
  meituan.short_term_window = 0.025;  // rapidly changing interests
  spec.fields = {meituan};
  return spec;
}

namespace {

UniverseSpec MakeLabeledBase(const std::string& name, int64_t items,
                             int64_t early, int64_t late) {
  UniverseSpec spec;
  spec.num_users = 250;
  FieldSpec f = BaseField(name, items, early, late);
  f.labeled = true;
  spec.fields = {f};
  return spec;
}

}  // namespace

UniverseSpec MakeWikipediaLike() {
  UniverseSpec spec = MakeLabeledBase("Wikipedia", 140, 6000, 4000);
  spec.fields[0].bad_user_fraction = 0.3;
  spec.fields[0].label_window = 0.2;
  return spec;
}

UniverseSpec MakeMoocLike() {
  UniverseSpec spec = MakeLabeledBase("MOOC", 80, 6000, 4000);
  // Deliberately weak structural/temporal patterns: the paper attributes
  // CPDG's weaker MOOC result to exactly this property.
  spec.fields[0].community_strength = 0.25;
  spec.fields[0].short_term_prob = 0.1;
  spec.fields[0].repeat_prob = 0.1;
  spec.fields[0].bad_user_fraction = 0.3;
  spec.fields[0].label_window = 0.3;
  return spec;
}

UniverseSpec MakeRedditLike() {
  UniverseSpec spec = MakeLabeledBase("Reddit", 140, 7000, 4500);
  spec.fields[0].burstiness = 0.55;
  spec.fields[0].repeat_prob = 0.4;
  spec.fields[0].bad_user_fraction = 0.3;
  spec.fields[0].label_window = 0.18;
  return spec;
}

}  // namespace cpdg::data
