#ifndef CPDG_DATA_TRANSFER_H_
#define CPDG_DATA_TRANSFER_H_

#include <string>
#include <vector>

#include "data/generators.h"
#include "graph/temporal_graph.h"

namespace cpdg::data {

/// \brief The three transfer settings of the paper's evaluation
/// (Sec. V-C): pre-train on a different time span, a different field, or
/// both, then fine-tune on the downstream field's late period.
enum class TransferSetting { kTime, kField, kTimeField };

const char* TransferSettingName(TransferSetting setting);

/// \brief One fully materialized transfer experiment: the pre-training
/// graph, the downstream fine-tuning graph, held-out validation/test
/// events (chronological), and the negative-sampling pools (the item
/// universe of each stage's field).
struct TransferDataset {
  std::string name;
  int64_t num_nodes = 0;
  graph::TemporalGraph pretrain_graph;
  graph::TemporalGraph downstream_train_graph;
  std::vector<Event> downstream_val_events;
  std::vector<Event> downstream_test_events;
  std::vector<NodeId> pretrain_negative_pool;
  std::vector<NodeId> downstream_negative_pool;
};

/// \brief Builds TransferDatasets from a universe spec.
///
/// For multi-field universes (Amazon/Gowalla-like), fields [0, F-2] are
/// downstream fields and field F-1 is the dedicated pre-training field,
/// mirroring Table IV:
///  - time transfer:        pre-train on the downstream field's early span;
///  - field transfer:       pre-train on the pre-training field's late span;
///  - time+field transfer:  pre-train on the pre-training field's early
///    span.
/// The downstream late span is split chronologically 70/15/15 into
/// fine-tune / validation / test.
class TransferBenchmarkBuilder {
 public:
  TransferBenchmarkBuilder(const UniverseSpec& spec, uint64_t seed);

  const DynamicGraphUniverse& universe() const { return universe_; }

  /// Multi-field build; requires at least two fields.
  TransferDataset Build(TransferSetting setting,
                        int64_t downstream_field) const;

  /// \brief Single-field (time-only) build used for Meituan / Wikipedia /
  /// MOOC / Reddit: pre-train on the early 60%, and split the late span
  /// 50/25/25 into fine-tune / validation / test (the paper's 6:2:1:1).
  TransferDataset BuildSingleField() const;

 private:
  TransferDataset Assemble(const std::string& name,
                           std::vector<Event> pretrain_events,
                           std::vector<Event> downstream_events,
                           int64_t pretrain_field, int64_t downstream_field,
                           double train_frac, double val_frac) const;

  DynamicGraphUniverse universe_;
};

}  // namespace cpdg::data

#endif  // CPDG_DATA_TRANSFER_H_
