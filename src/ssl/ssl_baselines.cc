#include "ssl/ssl_baselines.h"

#include <algorithm>

#include "tensor/losses.h"
#include "tensor/ops.h"
#include "train/link_batch.h"
#include "train/train_loop.h"
#include "util/check.h"

namespace cpdg::ssl {

namespace ts = cpdg::tensor;
using graph::NodeId;

namespace {

/// Neighbors of `node` with interaction time in [t_lo, t_hi).
std::vector<NodeId> NeighborsInWindow(const graph::GraphStore& graph,
                                      NodeId node, double t_lo, double t_hi) {
  std::vector<NodeId> out;
  graph::NeighborScratch scratch;
  auto view = graph.NeighborsBefore(node, t_hi, &scratch);
  for (int64_t i = view.count - 1; i >= 0; --i) {
    if (view[i].time < t_lo) break;  // chronologically sorted
    out.push_back(view[i].node);
  }
  return out;
}

/// Flushes both endpoints of every batch event so memory keeps advancing
/// when an objective finds no usable anchors in the batch.
void AdvanceMemoryOnly(dgnn::DgnnEncoder* encoder,
                       const std::vector<graph::Event>& events) {
  std::vector<NodeId> touched;
  for (const graph::Event& e : events) {
    touched.push_back(e.src);
    touched.push_back(e.dst);
  }
  ts::Tensor unused = encoder->ComputeUpdatedStates(touched);
  (void)unused;
}

train::TrainLoopOptions MakeLoopOptions(const SslTrainOptions& options,
                                        const char* label) {
  train::TrainLoopOptions loop_options;
  loop_options.epochs = options.epochs;
  loop_options.learning_rate = options.learning_rate;
  loop_options.grad_clip = options.grad_clip;
  loop_options.log_label = label;
  return loop_options;
}

}  // namespace

train::TrainTelemetry PretrainDdgcl(dgnn::DgnnEncoder* encoder,
                                    const graph::GraphStore& graph,
                                    const SslTrainOptions& options,
                                    Rng* rng) {
  CPDG_CHECK(encoder != nullptr);
  CPDG_CHECK(rng != nullptr);
  int64_t d = encoder->config().embed_dim;
  CPDG_CHECK_EQ(d, encoder->config().memory_dim);

  // Bilinear time-dependent critic: score(z, h) = rowsum(z * (h W)).
  Rng init_rng = rng->Split();
  ts::Tensor critic_w = ts::Tensor::XavierUniform(d, d, &init_rng, true);

  std::vector<ts::Tensor> params = encoder->Parameters();
  params.push_back(critic_w);

  // Anchor/view collection is a deterministic function of the const graph,
  // so it runs on the prefetch workers; no RNG stream is consumed and the
  // objective is bit-identical at any prefetch depth.
  struct DdgclViews {
    std::vector<NodeId> anchors;
    std::vector<double> anchor_times;
    std::vector<std::vector<NodeId>> view_recent, view_earlier;
  };

  train::TrainLoop loop(std::move(params), MakeLoopOptions(options, "DDGCL"));
  return loop.RunChronologicalPrepared(
      encoder, graph, options.batch_size,
      [&](const train::BatchContext&, const graph::EventBatch& batch,
          Rng*) -> std::any {
        // Collect anchors with non-empty nearby views.
        DdgclViews views;
        for (const graph::Event& e : batch.events) {
          if (static_cast<int64_t>(views.anchors.size()) >=
              options.max_anchors) {
            break;
          }
          double w = options.view_window;
          std::vector<NodeId> recent =
              NeighborsInWindow(graph, e.src, e.time - w, e.time);
          std::vector<NodeId> earlier =
              NeighborsInWindow(graph, e.src, e.time - 2 * w, e.time - w);
          if (recent.empty() || earlier.empty()) continue;
          views.anchors.push_back(e.src);
          views.anchor_times.push_back(e.time);
          views.view_recent.push_back(std::move(recent));
          views.view_earlier.push_back(std::move(earlier));
        }
        return views;
      },
      [&](const train::BatchContext&, const graph::EventBatch& batch,
          std::any& prepared) -> std::optional<ts::Tensor> {
        DdgclViews& views = *std::any_cast<DdgclViews>(&prepared);
        const std::vector<NodeId>& anchors = views.anchors;
        const std::vector<double>& anchor_times = views.anchor_times;
        const std::vector<std::vector<NodeId>>& view_recent =
            views.view_recent;
        const std::vector<std::vector<NodeId>>& view_earlier =
            views.view_earlier;

        if (anchors.empty()) {
          // Keep memory advancing even when no anchor qualifies.
          AdvanceMemoryOnly(encoder, batch.events);
          return std::nullopt;
        }

        ts::Tensor z = encoder->ComputeEmbeddings(anchors, anchor_times);
        // Pool each view from memory states.
        auto pool = [&](const std::vector<std::vector<NodeId>>& views) {
          std::vector<NodeId> all;
          std::vector<std::pair<int64_t, int64_t>> spans;
          for (const auto& v : views) {
            spans.emplace_back(static_cast<int64_t>(all.size()),
                               static_cast<int64_t>(v.size()));
            all.insert(all.end(), v.begin(), v.end());
          }
          ts::Tensor states = encoder->ComputeUpdatedStates(all);
          std::vector<ts::Tensor> rows;
          for (const auto& [off, len] : spans) {
            rows.push_back(ts::ColMean(ts::SliceRows(states, off, len)));
          }
          return ts::ConcatRows(rows);
        };
        ts::Tensor h_recent = pool(view_recent);
        ts::Tensor h_earlier = pool(view_earlier);

        // Positive: agreement between the node's two views; negative: the
        // recent view of a shifted (different) anchor.
        int64_t n = z.rows();
        std::vector<int64_t> shifted(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) shifted[i] = (i + 1) % n;
        ts::Tensor h_neg = ts::Gather(h_recent, shifted);

        auto score = [&](const ts::Tensor& a, const ts::Tensor& b) {
          return ts::RowSum(ts::Mul(a, ts::MatMul(b, critic_w)));
        };
        ts::Tensor pos1 = score(z, h_recent);
        ts::Tensor pos2 = score(h_earlier, h_recent);
        ts::Tensor neg = score(z, h_neg);
        ts::Tensor logits = ts::ConcatRows({pos1, pos2, neg});
        return train::StackedBceLoss(logits, 2 * n);
      });
}

train::TrainTelemetry PretrainSelfRgnn(dgnn::DgnnEncoder* encoder,
                                       const graph::GraphStore& graph,
                                       const SslTrainOptions& options,
                                       Rng* rng) {
  CPDG_CHECK(encoder != nullptr);
  CPDG_CHECK(rng != nullptr);
  CPDG_CHECK_EQ(encoder->config().embed_dim, encoder->config().memory_dim);

  // Learnable time-varying curvature: kappa(t) = kappa0 + kappa1 * t.
  ts::Tensor kappa0 = ts::Tensor::Zeros(1, 1, true);
  ts::Tensor kappa1 = ts::Tensor::Zeros(1, 1, true);

  std::vector<ts::Tensor> params = encoder->Parameters();
  params.push_back(kappa0);
  params.push_back(kappa1);

  // Anchor selection only reads const graph state, so it prefetches; see
  // the DDGCL note above.
  struct SelfRgnnAnchors {
    std::vector<NodeId> anchors;
    std::vector<double> anchor_times;
  };

  train::TrainLoop loop(std::move(params),
                        MakeLoopOptions(options, "SelfRGNN"));
  return loop.RunChronologicalPrepared(
      encoder, graph, options.batch_size,
      [&](const train::BatchContext&, const graph::EventBatch& batch,
          Rng*) -> std::any {
        SelfRgnnAnchors out;
        graph::NeighborScratch scratch;
        for (const graph::Event& e : batch.events) {
          if (static_cast<int64_t>(out.anchors.size()) >=
              options.max_anchors) {
            break;
          }
          if (graph.NeighborsBefore(e.src, e.time, &scratch).empty()) continue;
          out.anchors.push_back(e.src);
          out.anchor_times.push_back(e.time);
        }
        return out;
      },
      [&](const train::BatchContext&, const graph::EventBatch& batch,
          std::any& prepared) -> std::optional<ts::Tensor> {
        SelfRgnnAnchors& sel = *std::any_cast<SelfRgnnAnchors>(&prepared);
        const std::vector<NodeId>& anchors = sel.anchors;
        const std::vector<double>& anchor_times = sel.anchor_times;

        if (anchors.empty()) {
          AdvanceMemoryOnly(encoder, batch.events);
          return std::nullopt;
        }

        int64_t n = static_cast<int64_t>(anchors.size());
        ts::Tensor z = encoder->ComputeEmbeddings(anchors, anchor_times);
        // Positive: the node's own (past) memory state; negative: a
        // shifted anchor's state.
        ts::Tensor own = encoder->ComputeUpdatedStates(anchors);
        std::vector<int64_t> shifted(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) shifted[i] = (i + 1) % n;
        ts::Tensor other = ts::Gather(own, shifted);

        // Riemannian reweighting proxy: distances scaled by
        // sigmoid(kappa(t)) with the batch's mean time.
        double mean_t = 0.0;
        for (double t : anchor_times) mean_t += t;
        mean_t /= static_cast<double>(n);
        ts::Tensor kappa = ts::Add(
            kappa0, ts::MulScalar(kappa1, static_cast<float>(mean_t)));
        ts::Tensor weight = ts::Sigmoid(kappa);  // [1,1]

        ts::Tensor d_pos = ts::RowEuclideanDistance(z, own);
        ts::Tensor d_neg = ts::RowEuclideanDistance(z, other);
        ts::Tensor margin_term =
            ts::Relu(ts::AddScalar(ts::Sub(d_pos, d_neg), 1.0f));
        // Scale the per-row hinge by the curvature weight (broadcast via
        // matmul with the [1,1] weight).
        return ts::Mean(ts::MatMul(margin_term, weight));
      });
}

}  // namespace cpdg::ssl
