#ifndef CPDG_SSL_SSL_BASELINES_H_
#define CPDG_SSL_SSL_BASELINES_H_

#include "dgnn/encoder.h"
#include "graph/graph_store.h"
#include "train/telemetry.h"
#include "util/rng.h"

namespace cpdg::ssl {

/// \brief Options shared by the self-supervised dynamic baselines.
struct SslTrainOptions {
  int64_t epochs = 2;
  int64_t batch_size = 200;
  float learning_rate = 1e-3f;
  float grad_clip = 5.0f;
  /// Width of the temporal views (fractions of the unit time span) for
  /// DDGCL's two nearby views.
  double view_window = 0.05;
  /// Anchors per batch for the contrastive terms.
  int64_t max_anchors = 64;
};

/// \brief DDGCL (Tian et al., CIKM'21) pre-training: maximizes the
/// time-dependent agreement between two nearby temporal views of the same
/// node identity with a GAN-type (binary cross-entropy) contrastive loss.
///
/// View 1 pools the node's neighbors from [t-2w, t-w); view 2 pools
/// [t-w, t). The critic is bilinear with a learned time-decay weight.
/// There is no link-prediction pretext task: as the paper observes, purely
/// self-supervised dynamic objectives underperform task-supervised
/// pre-training.
train::TrainTelemetry PretrainDdgcl(dgnn::DgnnEncoder* encoder,
                                    const graph::GraphStore& graph,
                                    const SslTrainOptions& options, Rng* rng);

/// \brief SelfRGNN (Sun et al., CIKM'22), simplified: Riemannian
/// reweighting self-contrast with a time-varying learnable curvature.
///
/// Substitution note (see DESIGN.md): the full method learns hyperbolic
/// representations with per-snapshot curvature; we keep the self-contrast
/// structure (a node's present embedding against its own past state vs
/// other nodes' states) and the curvature-based reweighting as a learnable
/// scalar factor on distances. The paper's own evaluation shows this
/// family is weak/unstable for pre-training, which the simplification
/// reproduces.
train::TrainTelemetry PretrainSelfRgnn(dgnn::DgnnEncoder* encoder,
                                       const graph::GraphStore& graph,
                                       const SslTrainOptions& options,
                                       Rng* rng);

}  // namespace cpdg::ssl

#endif  // CPDG_SSL_SSL_BASELINES_H_
