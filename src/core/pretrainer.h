#ifndef CPDG_CORE_PRETRAINER_H_
#define CPDG_CORE_PRETRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/evolution.h"
#include "dgnn/encoder.h"
#include "graph/graph_store.h"
#include "sampler/samplers.h"
#include "train/link_batch.h"
#include "train/telemetry.h"
#include "train/train_loop.h"
#include "util/rng.h"

namespace cpdg::core {

/// \brief Hyper-parameters of the CPDG pre-training objective (Sec. IV-B).
struct CpdgConfig {
  /// Structural/temporal trade-off β of Eq. (17).
  float beta = 0.5f;
  /// Global weight on the combined contrastive term. Eq. (17) uses an
  /// unweighted sum; on the scaled-down synthetic workloads the contrast
  /// gradients otherwise overwhelm the link-prediction pretext, so the
  /// default rebalances while preserving the equation's structure.
  float contrast_weight = 0.5f;
  /// Triplet margin α1 of Eq. (11)/(14).
  float margin = 0.5f;
  /// Temperature τ of Eq. (7)-(8).
  float temperature = 0.2f;
  /// η-BFS / ε-DFS width and depth (Sec. IV-A).
  int64_t sample_width = 2;
  int64_t sample_depth = 2;
  /// Number of uniformly spaced memory checkpoints l for EIE (Sec. IV-C).
  int64_t num_checkpoints = 10;
  /// Cap on contrastive anchors per batch: the expectation in Eq. (11)/(14)
  /// is estimated on a subsample of the batch's source nodes (the
  /// Monte-Carlo trick of Sec. IV-D).
  int64_t max_contrast_anchors = 64;
  /// Toggles for the ablation study (Fig. 5).
  bool use_temporal_contrast = true;
  bool use_structural_contrast = true;

  int64_t epochs = 2;
  int64_t batch_size = 200;
  float learning_rate = 1e-3f;
  float grad_clip = 5.0f;
  std::vector<graph::NodeId> negative_pool;

  /// \name Crash safety (see train::TrainLoopOptions)
  /// When set (with checkpoint_every_batches > 0), full pre-training state
  /// — encoder/decoder params, Adam moments, encoder memory, the RNG
  /// stream and the recorded evolution checkpoints — is published
  /// atomically to this path on the given batch cadence.
  std::string checkpoint_path;
  int64_t checkpoint_every_batches = 0;
  /// Resume from checkpoint_path when the file exists; a resumed run is
  /// bit-identical to one that never stopped.
  bool resume = false;
  /// Non-finite loss handling of the training health monitor.
  train::NonFinitePolicy non_finite_policy = train::NonFinitePolicy::kHalt;
  /// Graceful stop after this many batches (0 = run to completion); used
  /// by the fault-tolerance tests to simulate a mid-run kill.
  int64_t max_batches = 0;
};

/// \brief Output of pre-training: the loss/telemetry trace plus the
/// memory checkpoints consumed by EIE fine-tuning.
struct PretrainResult {
  train::TrainTelemetry log;
  EvolutionCheckpoints checkpoints;
};

/// \brief The CPDG pre-trainer: temporal contrast (η-BFS positive /
/// negative subgraphs, Eq. 9-11), structural contrast (ε-DFS instance
/// discrimination, Eq. 12-14), and the temporal link prediction pretext
/// task (Eq. 15-16), combined as Eq. (17):
///   L = (1-β) L_η + β L_ε + L_tlp.
///
/// The pre-trainer owns no model state; it drives the provided encoder and
/// decoder and records memory checkpoints along the way.
class CpdgPretrainer {
 public:
  CpdgPretrainer(const CpdgConfig& config, Rng* rng);

  /// Runs the full pre-training loop over `graph`. The encoder's memory is
  /// reset per epoch; checkpoints are recorded uniformly over the final
  /// epoch's batches.
  PretrainResult Pretrain(dgnn::DgnnEncoder* encoder,
                          dgnn::LinkPredictor* decoder,
                          const graph::GraphStore& graph);

  const CpdgConfig& config() const { return config_; }

 private:
  /// \brief Sampled contrast inputs of one batch, drawn on the pipeline's
  /// prepare stage (graph reads + per-batch RNG only, no model state).
  struct PreparedContrast {
    std::vector<int64_t> anchor_pos;
    std::vector<sampler::ArenaNodeVec> tp, tn, sp, sn;
  };

  /// Anchor subsampling plus the η-BFS / ε-DFS subgraph draws of Eq.
  /// (9)-(14). Thread-safe: samples off const graph state with the
  /// per-batch `rng`, so it runs on prefetch workers.
  PreparedContrast PrepareContrast(
      const sampler::StructuralTemporalSampler& subgraph_sampler,
      const sampler::StructuralTemporalSampler::Options& sample_opts,
      const train::LinkBatch& lb, Rng* rng) const;

  /// Pools each anchor's sampled subgraph into a row (mean-pooling readout
  /// of Eq. 9/10/12/13). Every subgraph must be non-empty; PrepareContrast
  /// filters empty samples while selecting anchors.
  tensor::Tensor PoolSubgraphs(
      dgnn::DgnnEncoder* encoder,
      const std::vector<sampler::ArenaNodeVec>& subgraphs);

  /// Adds the temporal (η-BFS) and structural (ε-DFS) contrastive terms of
  /// Eq. (11)/(14) over the prepared anchors onto `loss`, returning the
  /// combined objective of Eq. (17). Pure compute; runs on the consumer
  /// thread.
  tensor::Tensor ContrastiveLoss(dgnn::DgnnEncoder* encoder,
                                 const PreparedContrast& contrast,
                                 const tensor::Tensor& z_src,
                                 tensor::Tensor loss);

  CpdgConfig config_;
  Rng* rng_;
};

}  // namespace cpdg::core

#endif  // CPDG_CORE_PRETRAINER_H_
