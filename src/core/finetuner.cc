#include "core/finetuner.h"

#include "tensor/ops.h"
#include "train/link_batch.h"
#include "train/train_loop.h"
#include "util/check.h"

namespace cpdg::core {

namespace ts = cpdg::tensor;
using graph::NodeId;

FineTunedModel::FineTunedModel(std::unique_ptr<dgnn::LinkPredictor> decoder,
                               std::unique_ptr<EvolutionFusion> fusion,
                               const EvolutionCheckpoints* checkpoints)
    : decoder_(std::move(decoder)),
      fusion_(std::move(fusion)),
      checkpoints_(checkpoints) {
  CPDG_CHECK(decoder_ != nullptr);
  if (fusion_ != nullptr) {
    CPDG_CHECK(checkpoints_ != nullptr);
    CPDG_CHECK(!checkpoints_->empty());
  }
}

tensor::Tensor FineTunedModel::Embed(dgnn::DgnnEncoder* encoder,
                                     const std::vector<NodeId>& nodes,
                                     const std::vector<double>& times) const {
  ts::Tensor z = encoder->ComputeEmbeddings(nodes, times);
  if (fusion_ == nullptr) return z;
  ts::Tensor ei = fusion_->Forward(*checkpoints_, nodes);
  return ts::Concat(z, ei);  // Eq. (19)
}

tensor::Tensor FineTunedModel::ScoreLogits(
    dgnn::DgnnEncoder* encoder, const std::vector<NodeId>& srcs,
    const std::vector<NodeId>& dsts, const std::vector<double>& times) const {
  ts::Tensor z_src = Embed(encoder, srcs, times);
  ts::Tensor z_dst = Embed(encoder, dsts, times);
  return decoder_->ForwardLogits(z_src, z_dst);
}

std::vector<tensor::Tensor> FineTunedModel::Parameters() const {
  std::vector<ts::Tensor> params = decoder_->Parameters();
  if (fusion_ != nullptr) {
    std::vector<ts::Tensor> f = fusion_->Parameters();
    params.insert(params.end(), f.begin(), f.end());
  }
  return params;
}

FineTunedModel FineTuneLinkPrediction(dgnn::DgnnEncoder* encoder,
                                      const graph::GraphStore& graph,
                                      const FineTuneConfig& config,
                                      const EvolutionCheckpoints* checkpoints,
                                      Rng* rng,
                                      train::TrainTelemetry* telemetry) {
  CPDG_CHECK(encoder != nullptr);
  CPDG_CHECK(rng != nullptr);

  int64_t node_dim = encoder->config().embed_dim;
  std::unique_ptr<EvolutionFusion> fusion;
  if (config.use_eie) {
    CPDG_CHECK(checkpoints != nullptr && !checkpoints->empty())
        << "EIE fine-tuning requires pre-training checkpoints";
    fusion = std::make_unique<EvolutionFusion>(
        config.eie_variant, checkpoints->dim(), config.eie_dim, rng);
    node_dim += config.eie_dim;
  }
  auto decoder = std::make_unique<dgnn::LinkPredictor>(
      node_dim, config.decoder_hidden, rng);

  FineTunedModel model(std::move(decoder), std::move(fusion),
                       config.use_eie ? checkpoints : nullptr);

  std::vector<ts::Tensor> params = model.Parameters();
  if (config.train.train_encoder) {
    std::vector<ts::Tensor> enc = encoder->Parameters();
    params.insert(params.end(), enc.begin(), enc.end());
  }

  train::TrainLoopOptions loop_options;
  loop_options.epochs = config.train.epochs;
  loop_options.learning_rate = config.train.learning_rate;
  loop_options.grad_clip = config.train.grad_clip;
  loop_options.log_label = "fine-tune";
  // Negative draws move onto per-(epoch, batch) streams so prefetch workers
  // can assemble batches ahead of the consumer without reordering draws.
  loop_options.prepare_stream_seed = rng->NextUint64();
  train::TrainLoop loop(std::move(params), loop_options);

  train::TrainTelemetry result = loop.RunChronologicalPrepared(
      encoder, graph, config.train.batch_size,
      [&](const train::BatchContext&, const graph::EventBatch& batch,
          Rng* batch_rng) -> std::any {
        return train::AssembleLinkBatch(batch.events,
                                        config.train.negative_pool,
                                        graph.num_nodes(), batch_rng);
      },
      [&](const train::BatchContext&, const graph::EventBatch&,
          std::any& prepared) -> std::optional<ts::Tensor> {
        const train::LinkBatch& lb =
            *std::any_cast<train::LinkBatch>(&prepared);
        ts::Tensor pos_logits =
            model.ScoreLogits(encoder, lb.srcs, lb.dsts, lb.times);
        ts::Tensor neg_logits =
            model.ScoreLogits(encoder, lb.srcs, lb.negs, lb.times);
        return train::LinkBceLoss(pos_logits, neg_logits);
      });
  if (telemetry != nullptr) *telemetry = std::move(result);
  return model;
}

}  // namespace cpdg::core
