#include "core/finetuner.h"

#include "graph/batching.h"
#include "tensor/losses.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "util/check.h"
#include "util/logging.h"

namespace cpdg::core {

namespace ts = cpdg::tensor;
using graph::NodeId;

FineTunedModel::FineTunedModel(std::unique_ptr<dgnn::LinkPredictor> decoder,
                               std::unique_ptr<EvolutionFusion> fusion,
                               const EvolutionCheckpoints* checkpoints)
    : decoder_(std::move(decoder)),
      fusion_(std::move(fusion)),
      checkpoints_(checkpoints) {
  CPDG_CHECK(decoder_ != nullptr);
  if (fusion_ != nullptr) {
    CPDG_CHECK(checkpoints_ != nullptr);
    CPDG_CHECK(!checkpoints_->empty());
  }
}

tensor::Tensor FineTunedModel::Embed(dgnn::DgnnEncoder* encoder,
                                     const std::vector<NodeId>& nodes,
                                     const std::vector<double>& times) const {
  ts::Tensor z = encoder->ComputeEmbeddings(nodes, times);
  if (fusion_ == nullptr) return z;
  ts::Tensor ei = fusion_->Forward(*checkpoints_, nodes);
  return ts::Concat(z, ei);  // Eq. (19)
}

tensor::Tensor FineTunedModel::ScoreLogits(
    dgnn::DgnnEncoder* encoder, const std::vector<NodeId>& srcs,
    const std::vector<NodeId>& dsts, const std::vector<double>& times) const {
  ts::Tensor z_src = Embed(encoder, srcs, times);
  ts::Tensor z_dst = Embed(encoder, dsts, times);
  return decoder_->ForwardLogits(z_src, z_dst);
}

std::vector<tensor::Tensor> FineTunedModel::Parameters() const {
  std::vector<ts::Tensor> params = decoder_->Parameters();
  if (fusion_ != nullptr) {
    std::vector<ts::Tensor> f = fusion_->Parameters();
    params.insert(params.end(), f.begin(), f.end());
  }
  return params;
}

FineTunedModel FineTuneLinkPrediction(dgnn::DgnnEncoder* encoder,
                                      const graph::TemporalGraph& graph,
                                      const FineTuneConfig& config,
                                      const EvolutionCheckpoints* checkpoints,
                                      Rng* rng) {
  CPDG_CHECK(encoder != nullptr);
  CPDG_CHECK(rng != nullptr);

  int64_t node_dim = encoder->config().embed_dim;
  std::unique_ptr<EvolutionFusion> fusion;
  if (config.use_eie) {
    CPDG_CHECK(checkpoints != nullptr && !checkpoints->empty())
        << "EIE fine-tuning requires pre-training checkpoints";
    fusion = std::make_unique<EvolutionFusion>(
        config.eie_variant, checkpoints->dim(), config.eie_dim, rng);
    node_dim += config.eie_dim;
  }
  auto decoder = std::make_unique<dgnn::LinkPredictor>(
      node_dim, config.decoder_hidden, rng);

  FineTunedModel model(std::move(decoder), std::move(fusion),
                       config.use_eie ? checkpoints : nullptr);

  std::vector<ts::Tensor> params = model.Parameters();
  if (config.train.train_encoder) {
    std::vector<ts::Tensor> enc = encoder->Parameters();
    params.insert(params.end(), enc.begin(), enc.end());
  }
  ts::Adam optimizer(params, config.train.learning_rate);

  for (int64_t epoch = 0; epoch < config.train.epochs; ++epoch) {
    encoder->memory().Reset();
    graph::ChronologicalBatcher batcher(&graph, config.train.batch_size);
    graph::EventBatch batch;
    double epoch_loss = 0.0;
    int64_t batches = 0;
    while (batcher.Next(&batch)) {
      std::vector<NodeId> srcs, dsts, negs;
      std::vector<double> times;
      for (const graph::Event& e : batch.events) {
        srcs.push_back(e.src);
        dsts.push_back(e.dst);
        negs.push_back(dgnn::SampleNegative(config.train.negative_pool,
                                            graph.num_nodes(), e.dst, rng));
        times.push_back(e.time);
      }

      encoder->BeginBatch();
      ts::Tensor pos_logits = model.ScoreLogits(encoder, srcs, dsts, times);
      ts::Tensor neg_logits = model.ScoreLogits(encoder, srcs, negs, times);
      int64_t n = pos_logits.rows();
      ts::Tensor logits = ts::ConcatRows({pos_logits, neg_logits});
      std::vector<float> target_data(static_cast<size_t>(2 * n), 0.0f);
      std::fill(target_data.begin(), target_data.begin() + n, 1.0f);
      ts::Tensor targets =
          ts::Tensor::FromVector(2 * n, 1, std::move(target_data));
      ts::Tensor loss = ts::BceWithLogitsLoss(logits, targets);

      optimizer.ZeroGrad();
      loss.Backward();
      ts::ClipGradNorm(params, config.train.grad_clip);
      optimizer.Step();
      encoder->CommitBatch(batch.events);

      epoch_loss += loss.item();
      ++batches;
    }
    if (batches > 0) epoch_loss /= static_cast<double>(batches);
    CPDG_LOG(Debug) << "fine-tune epoch " << epoch << " loss=" << epoch_loss;
  }
  return model;
}

}  // namespace cpdg::core
