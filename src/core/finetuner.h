#ifndef CPDG_CORE_FINETUNER_H_
#define CPDG_CORE_FINETUNER_H_

#include <memory>
#include <vector>

#include "core/evolution.h"
#include "dgnn/encoder.h"
#include "dgnn/trainer.h"
#include "graph/graph_store.h"
#include "train/telemetry.h"
#include "util/rng.h"

namespace cpdg::core {

/// \brief Downstream fine-tuning configuration (Sec. IV-C).
///
/// With use_eie == false this is the "Full" fine-tuning strategy of
/// Table X: the pre-trained encoder initializes the downstream encoder and
/// everything trains on the downstream objective. With use_eie == true the
/// pre-trained memory checkpoints are fused into evolution features that
/// are concatenated to downstream embeddings (Eq. 19).
struct FineTuneConfig {
  dgnn::TlpTrainOptions train;
  bool use_eie = false;
  EieVariant eie_variant = EieVariant::kGru;
  /// Width of the adapted EI feature appended to embeddings.
  int64_t eie_dim = 32;
  int64_t decoder_hidden = 32;
};

/// \brief A fine-tuned downstream model: the decoder plus (optionally) the
/// EIE fusion, with helpers to embed nodes and score edges. The encoder is
/// owned by the caller (it is the pre-trained encoder, fine-tuned in
/// place).
class FineTunedModel {
 public:
  FineTunedModel(std::unique_ptr<dgnn::LinkPredictor> decoder,
                 std::unique_ptr<EvolutionFusion> fusion,
                 const EvolutionCheckpoints* checkpoints);

  /// Enhanced node embeddings Z^EIE (Eq. 19), or plain embeddings when EIE
  /// is disabled.
  tensor::Tensor Embed(dgnn::DgnnEncoder* encoder,
                       const std::vector<graph::NodeId>& nodes,
                       const std::vector<double>& times) const;

  /// Edge logits for (src, dst) pairs at the given times.
  tensor::Tensor ScoreLogits(dgnn::DgnnEncoder* encoder,
                             const std::vector<graph::NodeId>& srcs,
                             const std::vector<graph::NodeId>& dsts,
                             const std::vector<double>& times) const;

  dgnn::LinkPredictor* decoder() { return decoder_.get(); }
  EvolutionFusion* fusion() { return fusion_.get(); }
  bool uses_eie() const { return fusion_ != nullptr; }

  /// All trainable parameters (decoder + fusion).
  std::vector<tensor::Tensor> Parameters() const;

 private:
  std::unique_ptr<dgnn::LinkPredictor> decoder_;
  std::unique_ptr<EvolutionFusion> fusion_;
  const EvolutionCheckpoints* checkpoints_;
};

/// \brief Fine-tunes a (typically pre-trained) encoder on the downstream
/// temporal link prediction task over `graph`, returning the trained
/// downstream model. `checkpoints` is required when config.use_eie.
///
/// The encoder memory is reset and rebuilt from downstream events, exactly
/// as a deployment would replay the downstream graph. Pass `telemetry` to
/// receive the per-epoch training diagnostics (losses, wall-clock,
/// gradient norms) of the fine-tuning run.
FineTunedModel FineTuneLinkPrediction(dgnn::DgnnEncoder* encoder,
                                      const graph::GraphStore& graph,
                                      const FineTuneConfig& config,
                                      const EvolutionCheckpoints* checkpoints,
                                      Rng* rng,
                                      train::TrainTelemetry* telemetry =
                                          nullptr);

}  // namespace cpdg::core

#endif  // CPDG_CORE_FINETUNER_H_
