#ifndef CPDG_CORE_EVOLUTION_H_
#define CPDG_CORE_EVOLUTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dgnn/memory.h"
#include "tensor/nn.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpdg::core {

using graph::NodeId;

/// \brief The l uniformly spaced memory checkpoints [S^1, ..., S^l]
/// recorded during pre-training, the raw material of the evolution
/// information EI of Eq. (18).
class EvolutionCheckpoints {
 public:
  EvolutionCheckpoints() = default;
  EvolutionCheckpoints(int64_t num_nodes, int64_t dim)
      : num_nodes_(num_nodes), dim_(dim) {}

  /// Appends a snapshot of the memory (must match num_nodes/dim).
  void Record(const dgnn::Memory& memory);

  int64_t num_checkpoints() const {
    return static_cast<int64_t>(snapshots_.size());
  }
  int64_t num_nodes() const { return num_nodes_; }
  int64_t dim() const { return dim_; }
  bool empty() const { return snapshots_.empty(); }

  /// State of `node` at checkpoint `l` (pointer to dim floats).
  const float* StateAt(int64_t checkpoint, NodeId node) const;

  /// \brief Appends the full snapshot sequence to `out` so the EIE raw
  /// material survives a crash of the pre-training run that records it.
  void SerializeTo(std::string* out) const;

  /// \brief Restores a SerializeTo payload, replacing current contents.
  /// Validates dimensions and snapshot sizes before mutating anything.
  Status DeserializeFrom(std::string_view bytes);

 private:
  int64_t num_nodes_ = 0;
  int64_t dim_ = 0;
  std::vector<std::vector<float>> snapshots_;
};

/// \brief Variants of the checkpoint-sequence fusion f_EI (Sec. IV-C):
/// mean pooling, attention (last checkpoint attends over the sequence),
/// and GRU (sequence rolled through a GRU cell).
enum class EieVariant { kMean, kAttention, kGru };

const char* EieVariantName(EieVariant variant);

/// \brief Computes the evolution-information feature EI for a batch of
/// nodes (Eq. 18) and adapts it with a two-layer MLP (Eq. 19's MLP(EI)).
///
/// The checkpoints themselves are constants; the fusion (attention/GRU)
/// and the adapter MLP are trainable and fine-tuned with the downstream
/// objective.
class EvolutionFusion : public tensor::Module {
 public:
  /// `state_dim` must equal the checkpoints' dim; `out_dim` is the width
  /// of the adapted feature concatenated to downstream embeddings.
  EvolutionFusion(EieVariant variant, int64_t state_dim, int64_t out_dim,
                  Rng* rng);

  /// [n, out_dim] adapted evolution features for `nodes`.
  tensor::Tensor Forward(const EvolutionCheckpoints& checkpoints,
                         const std::vector<NodeId>& nodes) const;

  EieVariant variant() const { return variant_; }
  int64_t out_dim() const { return out_dim_; }

 private:
  /// Raw fused EI before the adapter MLP, [n, state_dim].
  tensor::Tensor Fuse(const EvolutionCheckpoints& checkpoints,
                      const std::vector<NodeId>& nodes) const;

  EieVariant variant_;
  int64_t state_dim_;
  int64_t out_dim_;
  std::unique_ptr<tensor::GroupedAttentionLayer> attention_;  // kAttention
  std::unique_ptr<tensor::GruCell> gru_;                      // kGru
  std::unique_ptr<tensor::Mlp> adapter_;  // two-layer MLP of Eq. 19
};

}  // namespace cpdg::core

#endif  // CPDG_CORE_EVOLUTION_H_
