#include "core/pretrainer.h"

#include <algorithm>

#include "tensor/losses.h"
#include "tensor/ops.h"
#include "train/link_batch.h"
#include "train/train_loop.h"
#include "util/atomic_file.h"
#include "util/byte_codec.h"
#include "util/check.h"

namespace cpdg::core {

namespace ts = cpdg::tensor;
using graph::NodeId;

CpdgPretrainer::CpdgPretrainer(const CpdgConfig& config, Rng* rng)
    : config_(config), rng_(rng) {
  CPDG_CHECK(rng != nullptr);
  CPDG_CHECK_GE(config.beta, 0.0f);
  CPDG_CHECK_LE(config.beta, 1.0f);
  CPDG_CHECK_GE(config.num_checkpoints, 1);
}

tensor::Tensor CpdgPretrainer::PoolSubgraphs(
    dgnn::DgnnEncoder* encoder,
    const std::vector<sampler::ArenaNodeVec>& subgraphs) {
  std::vector<NodeId> all;
  std::vector<std::pair<int64_t, int64_t>> spans;  // (offset, length)
  for (const auto& sg : subgraphs) {
    CPDG_CHECK(!sg.empty());
    spans.emplace_back(static_cast<int64_t>(all.size()),
                       static_cast<int64_t>(sg.size()));
    all.insert(all.end(), sg.begin(), sg.end());
  }
  // One flush for every subgraph node, then per-anchor mean pooling
  // (the Readout of Eq. 9-10 / 12-13 over memory states).
  ts::Tensor states = encoder->ComputeUpdatedStates(all);
  std::vector<ts::Tensor> pooled;
  pooled.reserve(spans.size());
  for (const auto& [offset, length] : spans) {
    pooled.push_back(ts::ColMean(ts::SliceRows(states, offset, length)));
  }
  return ts::ConcatRows(pooled);
}

CpdgPretrainer::PreparedContrast CpdgPretrainer::PrepareContrast(
    const sampler::StructuralTemporalSampler& subgraph_sampler,
    const sampler::StructuralTemporalSampler::Options& sample_opts,
    const train::LinkBatch& lb, Rng* rng) const {
  bool want_tc = config_.use_temporal_contrast;
  bool want_sc = config_.use_structural_contrast;
  PreparedContrast out;

  // Pick up to max_contrast_anchors distinct source positions.
  std::vector<int64_t> positions(lb.srcs.size());
  for (size_t i = 0; i < lb.srcs.size(); ++i) {
    positions[i] = static_cast<int64_t>(i);
  }
  rng->Shuffle(&positions);

  for (int64_t pos : positions) {
    if (static_cast<int64_t>(out.anchor_pos.size()) >=
        config_.max_contrast_anchors) {
      break;
    }
    NodeId root = lb.srcs[static_cast<size_t>(pos)];
    double t = lb.times[static_cast<size_t>(pos)];

    sampler::SubgraphSample s_tp, s_tn, s_sp, s_sn;
    if (want_tc) {
      s_tp = subgraph_sampler.SampleEtaBfs(
          root, t, sampler::TemporalBias::kChronological, sample_opts, rng);
      s_tn = subgraph_sampler.SampleEtaBfs(
          root, t, sampler::TemporalBias::kReverseChronological, sample_opts,
          rng);
      if (s_tp.empty() || s_tn.empty()) continue;
    }
    if (want_sc) {
      // Instance discrimination: the negative is the ε-DFS context
      // of a different random node i' (another batch source).
      NodeId other = root;
      for (int attempt = 0; attempt < 8 && other == root; ++attempt) {
        other = lb.srcs[rng->NextBounded(lb.srcs.size())];
      }
      s_sp = subgraph_sampler.SampleEpsilonDfs(root, t, sample_opts);
      s_sn = subgraph_sampler.SampleEpsilonDfs(other, t, sample_opts);
      if (s_sp.empty() || s_sn.empty() || other == root) continue;
    }
    out.anchor_pos.push_back(pos);
    if (want_tc) {
      out.tp.push_back(std::move(s_tp.nodes));
      out.tn.push_back(std::move(s_tn.nodes));
    }
    if (want_sc) {
      out.sp.push_back(std::move(s_sp.nodes));
      out.sn.push_back(std::move(s_sn.nodes));
    }
  }
  return out;
}

tensor::Tensor CpdgPretrainer::ContrastiveLoss(
    dgnn::DgnnEncoder* encoder, const PreparedContrast& contrast,
    const tensor::Tensor& z_src, tensor::Tensor loss) {
  if (contrast.anchor_pos.empty()) return loss;
  std::vector<int64_t> anchor_idx(contrast.anchor_pos.begin(),
                                  contrast.anchor_pos.end());
  ts::Tensor anchors = ts::Gather(z_src, anchor_idx);
  if (config_.use_temporal_contrast) {
    ts::Tensor h_tp = PoolSubgraphs(encoder, contrast.tp);
    ts::Tensor h_tn = PoolSubgraphs(encoder, contrast.tn);
    ts::Tensor l_eta =
        ts::TripletMarginLoss(anchors, h_tp, h_tn, config_.margin);
    loss = ts::Add(loss, ts::MulScalar(l_eta, config_.contrast_weight *
                                                  (1.0f - config_.beta)));
  }
  if (config_.use_structural_contrast) {
    ts::Tensor h_sp = PoolSubgraphs(encoder, contrast.sp);
    ts::Tensor h_sn = PoolSubgraphs(encoder, contrast.sn);
    ts::Tensor l_eps =
        ts::TripletMarginLoss(anchors, h_sp, h_sn, config_.margin);
    loss = ts::Add(loss, ts::MulScalar(l_eps, config_.contrast_weight *
                                                  config_.beta));
  }
  return loss;
}

PretrainResult CpdgPretrainer::Pretrain(dgnn::DgnnEncoder* encoder,
                                        dgnn::LinkPredictor* decoder,
                                        const graph::GraphStore& graph) {
  CPDG_CHECK(encoder != nullptr);
  CPDG_CHECK(decoder != nullptr);
  CPDG_CHECK_EQ(encoder->config().embed_dim, encoder->config().memory_dim)
      << "contrastive readouts compare embeddings with pooled memory "
         "states, so embed_dim must equal memory_dim";

  std::vector<ts::Tensor> params = encoder->Parameters();
  {
    std::vector<ts::Tensor> dec = decoder->Parameters();
    params.insert(params.end(), dec.begin(), dec.end());
  }

  sampler::StructuralTemporalSampler subgraph_sampler(&graph);
  sampler::StructuralTemporalSampler::Options sample_opts;
  sample_opts.width = config_.sample_width;
  sample_opts.depth = config_.sample_depth;
  sample_opts.temperature = config_.temperature;

  PretrainResult result;
  result.checkpoints =
      EvolutionCheckpoints(encoder->memory().num_nodes(),
                           encoder->memory().dim());

  train::TrainLoopOptions loop_options;
  loop_options.epochs = config_.epochs;
  loop_options.learning_rate = config_.learning_rate;
  loop_options.grad_clip = config_.grad_clip;
  loop_options.log_label = "CPDG pretrain";
  loop_options.checkpoint_path = config_.checkpoint_path;
  loop_options.checkpoint_every_batches = config_.checkpoint_every_batches;
  loop_options.non_finite_policy = config_.non_finite_policy;
  loop_options.max_batches = config_.max_batches;
  // All prepare-stage randomness (negative draws, anchor subsampling,
  // subgraph sampling) flows through per-(epoch, batch) streams derived
  // from this seed, so prefetched and serial runs draw identically. The
  // draw happens before any possible resume: a re-run of this function
  // derives the same seed, and the checkpointed rng_ state already
  // reflects it.
  loop_options.prepare_stream_seed = rng_->NextUint64();
  train::TrainLoop loop(std::move(params), loop_options);

  // State the loop cannot know about but a bit-exact resume needs: the
  // pre-trainer's RNG stream (negative sampling, anchor subsampling,
  // subgraph sampling) and the evolution checkpoints recorded so far.
  loop.RegisterCheckpointSection(
      "rng",
      {[this](std::string* out) {
         Rng::State s = rng_->GetState();
         util::ByteWriter w(out);
         w.Pod(s.state);
         w.Pod(static_cast<uint8_t>(s.has_cached_gaussian ? 1 : 0));
         w.Pod(s.cached_gaussian);
       },
       [this](std::string_view bytes) -> Status {
         util::ByteReader r(bytes);
         Rng::State s;
         uint8_t flag = 0;
         if (!r.Pod(&s.state) || !r.Pod(&flag) ||
             !r.Pod(&s.cached_gaussian) || !r.AtEnd()) {
           return Status::InvalidArgument("corrupt rng section");
         }
         s.has_cached_gaussian = (flag != 0);
         rng_->SetState(s);
         return Status::OK();
       }});
  loop.RegisterCheckpointSection(
      "evolution",
      {[&result](std::string* out) { result.checkpoints.SerializeTo(out); },
       [&result](std::string_view bytes) {
         return result.checkpoints.DeserializeFrom(bytes);
       }});

  if (config_.resume && !config_.checkpoint_path.empty() &&
      util::FileExists(config_.checkpoint_path)) {
    Status staged = loop.ResumeFrom(config_.checkpoint_path);
    if (!staged.ok()) {
      result.log.status = std::move(staged);
      return result;
    }
  }

  // Uniform memory checkpoints over the final epoch (Sec. IV-C), recorded
  // after the batch has been committed to memory.
  loop.set_batch_end_hook([&](const train::BatchContext& ctx) {
    int64_t checkpoint_interval =
        std::max<int64_t>(1, ctx.num_batches / config_.num_checkpoints);
    if (ctx.final_epoch && (ctx.batch_index + 1) % checkpoint_interval == 0 &&
        result.checkpoints.num_checkpoints() < config_.num_checkpoints - 1) {
      result.checkpoints.Record(encoder->memory());
    }
  });

  // Pipelined objective: the prepare stage (negative sampling, anchor
  // subsampling, η-BFS/ε-DFS subgraph draws) is a pure function of const
  // graph state and the per-batch RNG stream, so prefetch workers can run
  // it for batches K+1..K+depth while batch K's compute stage (embeddings,
  // pooling, losses — all of which touch encoder memory) runs here.
  struct Payload {
    train::LinkBatch lb;
    PreparedContrast contrast;
  };
  result.log = loop.RunChronologicalPrepared(
      encoder, graph, config_.batch_size,
      [&](const train::BatchContext&, const graph::EventBatch& batch,
          Rng* rng) -> std::any {
        Payload payload;
        payload.lb = train::AssembleLinkBatch(
            batch.events, config_.negative_pool, graph.num_nodes(), rng);
        if (config_.use_temporal_contrast || config_.use_structural_contrast) {
          payload.contrast = PrepareContrast(subgraph_sampler, sample_opts,
                                             payload.lb, rng);
        }
        return payload;
      },
      [&](const train::BatchContext&, const graph::EventBatch&,
          std::any& prepared) -> std::optional<ts::Tensor> {
        Payload& payload = *std::any_cast<Payload>(&prepared);
        const train::LinkBatch& lb = payload.lb;
        ts::Tensor z_src = encoder->ComputeEmbeddings(lb.srcs, lb.times);
        ts::Tensor z_dst = encoder->ComputeEmbeddings(lb.dsts, lb.times);
        ts::Tensor z_neg = encoder->ComputeEmbeddings(lb.negs, lb.times);

        // --- Pretext temporal link prediction (Eq. 15-16). ---
        ts::Tensor pos_logits = decoder->ForwardLogits(z_src, z_dst);
        ts::Tensor neg_logits = decoder->ForwardLogits(z_src, z_neg);
        ts::Tensor loss = train::LinkBceLoss(pos_logits, neg_logits);

        // --- Contrastive terms on a subsample of anchors (Eq. 9-14). ---
        if (config_.use_temporal_contrast || config_.use_structural_contrast) {
          loss = ContrastiveLoss(encoder, payload.contrast, z_src, loss);
        }
        return loss;
      });

  // Include the final memory state as the last checkpoint — but only for
  // runs that actually finished: a halted or gracefully stopped run will
  // record it when the resumed run completes.
  if (result.log.status.ok() && !result.log.stopped_early) {
    result.checkpoints.Record(encoder->memory());
  }
  return result;
}

}  // namespace cpdg::core
