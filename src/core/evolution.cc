#include "core/evolution.h"

#include "tensor/ops.h"
#include "util/byte_codec.h"
#include "util/check.h"

namespace cpdg::core {

namespace ts = cpdg::tensor;

void EvolutionCheckpoints::Record(const dgnn::Memory& memory) {
  if (num_nodes_ == 0) {
    num_nodes_ = memory.num_nodes();
    dim_ = memory.dim();
  }
  CPDG_CHECK_EQ(memory.num_nodes(), num_nodes_);
  CPDG_CHECK_EQ(memory.dim(), dim_);
  snapshots_.push_back(memory.SnapshotFlat());
}

const float* EvolutionCheckpoints::StateAt(int64_t checkpoint,
                                           NodeId node) const {
  CPDG_CHECK_GE(checkpoint, 0);
  CPDG_CHECK_LT(checkpoint, num_checkpoints());
  CPDG_CHECK_GE(node, 0);
  CPDG_CHECK_LT(node, num_nodes_);
  return snapshots_[static_cast<size_t>(checkpoint)].data() + node * dim_;
}

void EvolutionCheckpoints::SerializeTo(std::string* out) const {
  util::ByteWriter w(out);
  w.Pod(num_nodes_);
  w.Pod(dim_);
  w.Pod(static_cast<uint32_t>(snapshots_.size()));
  for (const std::vector<float>& snapshot : snapshots_) {
    w.PodVector(snapshot);
  }
}

Status EvolutionCheckpoints::DeserializeFrom(std::string_view bytes) {
  util::ByteReader r(bytes);
  int64_t num_nodes = 0, dim = 0;
  uint32_t count = 0;
  if (!r.Pod(&num_nodes) || !r.Pod(&dim) || !r.Pod(&count)) {
    return Status::InvalidArgument("truncated evolution-checkpoint header");
  }
  if (num_nodes < 0 || dim < 0) {
    return Status::InvalidArgument("corrupt evolution-checkpoint shape");
  }
  std::vector<std::vector<float>> snapshots(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r.PodVector(&snapshots[i])) {
      return Status::InvalidArgument("truncated evolution snapshot " +
                                     std::to_string(i));
    }
    if (snapshots[i].size() != static_cast<size_t>(num_nodes * dim)) {
      return Status::InvalidArgument("evolution snapshot " +
                                     std::to_string(i) + " size mismatch");
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "trailing garbage in evolution-checkpoint payload");
  }
  num_nodes_ = num_nodes;
  dim_ = dim;
  snapshots_ = std::move(snapshots);
  return Status::OK();
}

const char* EieVariantName(EieVariant variant) {
  switch (variant) {
    case EieVariant::kMean:
      return "EIE-mean";
    case EieVariant::kAttention:
      return "EIE-attn";
    case EieVariant::kGru:
      return "EIE-GRU";
  }
  return "?";
}

EvolutionFusion::EvolutionFusion(EieVariant variant, int64_t state_dim,
                                 int64_t out_dim, Rng* rng)
    : variant_(variant), state_dim_(state_dim), out_dim_(out_dim) {
  switch (variant_) {
    case EieVariant::kMean:
      break;
    case EieVariant::kAttention:
      attention_ = std::make_unique<ts::GroupedAttentionLayer>(
          state_dim, state_dim, state_dim, state_dim, rng);
      RegisterModule(attention_.get());
      break;
    case EieVariant::kGru:
      gru_ = std::make_unique<ts::GruCell>(state_dim, state_dim, rng);
      RegisterModule(gru_.get());
      break;
  }
  adapter_ = std::make_unique<ts::Mlp>(
      std::vector<int64_t>{state_dim, out_dim, out_dim}, rng);
  RegisterModule(adapter_.get());
}

tensor::Tensor EvolutionFusion::Fuse(const EvolutionCheckpoints& checkpoints,
                                     const std::vector<NodeId>& nodes) const {
  CPDG_CHECK(!checkpoints.empty());
  CPDG_CHECK_EQ(checkpoints.dim(), state_dim_);
  int64_t n = static_cast<int64_t>(nodes.size());
  int64_t l = checkpoints.num_checkpoints();
  int64_t d = state_dim_;

  // Materializes checkpoint `c` states for the node batch as a leaf.
  auto checkpoint_tensor = [&](int64_t c) {
    std::vector<float> data(static_cast<size_t>(n * d));
    for (int64_t i = 0; i < n; ++i) {
      const float* s = checkpoints.StateAt(c, nodes[static_cast<size_t>(i)]);
      std::copy(s, s + d, data.begin() + i * d);
    }
    return ts::Tensor::FromVector(n, d, std::move(data));
  };

  switch (variant_) {
    case EieVariant::kMean: {
      ts::Tensor acc = checkpoint_tensor(0);
      for (int64_t c = 1; c < l; ++c) {
        acc = ts::Add(acc, checkpoint_tensor(c));
      }
      return ts::MulScalar(acc, 1.0f / static_cast<float>(l));
    }
    case EieVariant::kAttention: {
      // Query: the freshest checkpoint; candidates: the full sequence
      // grouped per node (slot i*l + c).
      ts::Tensor query = checkpoint_tensor(l - 1);
      std::vector<float> cand(static_cast<size_t>(n * l * d));
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t c = 0; c < l; ++c) {
          const float* s =
              checkpoints.StateAt(c, nodes[static_cast<size_t>(i)]);
          std::copy(s, s + d, cand.begin() + (i * l + c) * d);
        }
      }
      ts::Tensor candidates =
          ts::Tensor::FromVector(n * l, d, std::move(cand));
      std::vector<uint8_t> valid(static_cast<size_t>(n * l), 1);
      return attention_->Forward(query, candidates, l, valid);
    }
    case EieVariant::kGru: {
      ts::Tensor h = ts::Tensor::Zeros(n, d);
      for (int64_t c = 0; c < l; ++c) {
        h = gru_->Forward(checkpoint_tensor(c), h);
      }
      return h;
    }
  }
  CPDG_CHECK(false) << "unreachable";
  return ts::Tensor();
}

tensor::Tensor EvolutionFusion::Forward(
    const EvolutionCheckpoints& checkpoints,
    const std::vector<NodeId>& nodes) const {
  CPDG_CHECK(!nodes.empty());
  return adapter_->Forward(Fuse(checkpoints, nodes));
}

}  // namespace cpdg::core
