#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/atomic_file.h"
#include "util/check.h"

namespace cpdg::obs {

namespace {

/// Relaxed CAS-max / CAS-min over an atomic<double>.
void AtomicMax(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v,
                                   std::memory_order_relaxed)) {
  }
}

/// Shortest round-trippable representation of a double for JSON output.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g form when it round-trips exactly.
  char short_buf[32];
  std::snprintf(short_buf, sizeof(short_buf), "%g", v);
  double back = std::strtod(short_buf, nullptr);
  return back == v ? short_buf : buf;
}

void AppendEscaped(std::ostringstream* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out << buf;
    } else {
      *out << c;
    }
  }
}

}  // namespace

int Histogram::BucketIndex(double value) {
  if (!(value > 0.0) || std::isnan(value)) return 0;  // <=0 and nan: underflow
  if (std::isinf(value)) return kNumBuckets - 1;
  // frexp: value = m * 2^e with m in [0.5, 1). The inclusive-upper-edge
  // bucket for (2^(k-1), 2^k] is k - kMinExponent: a value exactly at 2^k
  // has m == 0.5 and e == k+1, so `edge` below is its own upper edge k.
  int e = 0;
  double m = std::frexp(value, &e);
  int edge = (m == 0.5) ? e - 1 : e;
  if (edge <= kMinExponent) return 0;
  if (edge > kMaxExponent) return kNumBuckets - 1;
  return edge - kMinExponent;
}

double Histogram::BucketUpperEdge(int b) {
  CPDG_CHECK_GE(b, 0);
  CPDG_CHECK_LT(b, kNumBuckets);
  if (b == kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, kMinExponent + b);
}

void Histogram::Observe(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  if (!has_extrema_.exchange(true, std::memory_order_relaxed)) {
    // First observation seeds both extrema; concurrent first observers
    // race benignly (the CAS loops below still fold every value in).
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

int64_t Histogram::bucket_count(int b) const {
  CPDG_CHECK_GE(b, 0);
  CPDG_CHECK_LT(b, kNumBuckets);
  return buckets_[b].load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  has_extrema_.store(false, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CPDG_CHECK(gauges_.find(name) == gauges_.end() &&
             histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with a different kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CPDG_CHECK(counters_.find(name) == counters_.end() &&
             histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with a different kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CPDG_CHECK(counters_.find(name) == counters_.end() &&
             gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered with a different kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"";
    AppendEscaped(&out, name);
    out << "\": " << c->value();
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"";
    AppendEscaped(&out, name);
    out << "\": " << JsonNumber(g->value());
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"";
    AppendEscaped(&out, name);
    out << "\": {\"count\": " << h->count()
        << ", \"sum\": " << JsonNumber(h->sum())
        << ", \"min\": " << JsonNumber(h->min())
        << ", \"max\": " << JsonNumber(h->max()) << ", \"buckets\": [";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      int64_t n = h->bucket_count(b);
      if (n == 0) continue;
      if (!first_bucket) out << ", ";
      double le = Histogram::BucketUpperEdge(b);
      out << "{\"le\": "
          << (std::isinf(le) ? std::string("\"inf\"") : JsonNumber(le))
          << ", \"count\": " << n << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  return util::AtomicWriteFile(path, ToJson());
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace cpdg::obs
