#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "util/logging.h"

namespace cpdg::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Open-span bookkeeping is thread-local: depth is incremented by
/// ScopedSpan::Open and decremented by Close, giving hierarchical spans
/// without any shared state on the hot path.
thread_local int32_t tl_depth = 0;

/// Env-driven startup: CPDG_TRACE=1 switches tracing on and registers an
/// atexit hook that writes the trace to CPDG_TRACE_FILE (default
/// cpdg_trace.json). CPDG_METRICS=<path> likewise dumps the metrics
/// registry at exit. Runs once when the first obs symbol is touched, which
/// in an instrumented binary is during static init of this TU.
struct EnvInit {
  EnvInit() {
    const char* trace = std::getenv("CPDG_TRACE");
    if (trace != nullptr && std::strcmp(trace, "0") != 0 &&
        std::strcmp(trace, "") != 0) {
      internal::g_trace_enabled.store(true, std::memory_order_relaxed);
      std::atexit([] {
        const char* file = std::getenv("CPDG_TRACE_FILE");
        std::string path = file != nullptr && *file != '\0'
                               ? file
                               : "cpdg_trace.json";
        Status status = Profiler::Global().WriteChromeTrace(path);
        if (!status.ok()) {
          CPDG_LOG(Warning) << "trace export failed: " << status.ToString();
        } else {
          CPDG_LOG(Info) << "wrote trace to " << path;
        }
      });
    }
    const char* metrics = std::getenv("CPDG_METRICS");
    if (metrics != nullptr && *metrics != '\0' &&
        std::strcmp(metrics, "0") != 0) {
      // CPDG_METRICS=1 picks the default file name; anything else is a path.
      std::string path = std::strcmp(metrics, "1") == 0 ? "cpdg_metrics.json"
                                                        : metrics;
      static std::string* exit_path = new std::string(path);
      std::atexit([] {
        Status status = MetricsRegistry::Global().WriteJson(*exit_path);
        if (!status.ok()) {
          CPDG_LOG(Warning) << "metrics export failed: " << status.ToString();
        } else {
          CPDG_LOG(Info) << "wrote metrics to " << *exit_path;
        }
      });
    }
  }
};
EnvInit g_env_init;

}  // namespace

void SetTraceEnabled(bool enabled) {
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

Profiler::Profiler() : epoch_ns_(SteadyNowNanos()) {}

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

int64_t Profiler::NowMicros() const {
  return (SteadyNowNanos() - epoch_ns_) / 1000;
}

Profiler::ThreadBuffer* Profiler::BufferForThisThread() {
  thread_local ThreadBuffer* tl_buffer = nullptr;
  if (tl_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    tl_buffer = buffers_.back().get();
    tl_buffer->tid = static_cast<int32_t>(buffers_.size()) - 1;
  }
  return tl_buffer;
}

void Profiler::Record(const char* name, int64_t start_us, int64_t dur_us,
                      int32_t depth) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (static_cast<int64_t>(buffer->events.size()) >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->events.push_back({name, start_us, dur_us, buffer->tid, depth});
}

std::vector<SpanEvent> Profiler::Snapshot() const {
  std::vector<SpanEvent> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buffer->mu);
      all.insert(all.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.depth < b.depth;
            });
  return all;
}

std::map<std::string, SpanStats> Profiler::AggregateByName() const {
  std::map<std::string, SpanStats> stats;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buffer->mu);
    for (const SpanEvent& e : buffer->events) {
      SpanStats& s = stats[e.name];
      ++s.count;
      s.total_us += e.dur_us;
    }
  }
  return stats;
}

Status Profiler::WriteChromeTrace(const std::string& path) const {
  return WriteChromeTraceJson(path, Snapshot());
}

void Profiler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buffer->mu);
    buffer->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

void ScopedSpan::Open(const char* name) {
  name_ = name;
  depth_ = tl_depth++;
  start_us_ = Profiler::Global().NowMicros();
}

void ScopedSpan::Close() {
  --tl_depth;
  // If tracing was switched off while the span was open, drop the event
  // (the depth bookkeeping above still has to unwind).
  if (!TraceEnabled()) return;
  Profiler& profiler = Profiler::Global();
  int64_t end_us = profiler.NowMicros();
  profiler.Record(name_, start_us_, end_us - start_us_, depth_);
}

}  // namespace cpdg::obs
