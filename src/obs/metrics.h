#ifndef CPDG_OBS_METRICS_H_
#define CPDG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.h"

namespace cpdg::obs {

/// \brief Monotonic counter. Increments are relaxed atomic adds, so a
/// counter can be bumped from any thread (including thread-pool workers)
/// without coordination; reads are racy-but-coherent snapshots.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Histogram over positive values with fixed log-scale (power-of-two)
/// buckets.
///
/// Bucket b (0-based) covers (2^(kMinExponent+b-1), 2^(kMinExponent+b)];
/// values at or below 2^kMinExponent land in the first bucket together with
/// zero and negative observations, values above 2^kMaxExponent land in the
/// last (overflow) bucket. Boundaries are computed with frexp, so values
/// exactly at a power of two always classify into the bucket whose upper
/// edge they sit on, with no floating-point log fuzz. Buckets, count, and
/// sum are relaxed atomics; min/max use CAS loops. The layout never changes
/// at runtime, which keeps Observe() allocation-free.
class Histogram {
 public:
  /// 2^-20 (~1e-6) .. 2^20 (~1e6): covers microsecond-scale spans measured
  /// in seconds up to large element counts. Bucket 0 additionally absorbs
  /// everything at or below 2^kMinExponent (zero/negative included); the
  /// last bucket absorbs everything above 2^kMaxExponent.
  static constexpr int kMinExponent = -20;
  static constexpr int kMaxExponent = 20;
  static constexpr int kNumBuckets = kMaxExponent - kMinExponent + 2;

  void Observe(double value);

  /// Bucket index Observe(value) classifies into. Exposed for tests.
  static int BucketIndex(double value);
  /// Inclusive upper edge of bucket b: 2^(kMinExponent+b); the last bucket
  /// reports +infinity.
  static double BucketUpperEdge(int b);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest observed value; 0 before any observation.
  double min() const;
  double max() const;
  int64_t bucket_count(int b) const;
  void Reset();

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_extrema_{false};
};

/// \brief Process-wide registry of named metrics.
///
/// Lookup by name takes a mutex and is intended for cold paths; hot paths
/// resolve their metric once (function-local static reference) and then
/// update it lock-free. A name identifies exactly one metric kind —
/// re-registering it as a different kind aborts. Metric objects live for
/// the process lifetime, so references stay valid after Reset().
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Flat JSON snapshot, keys sorted by name (deterministic):
  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count","sum","min","max","buckets":[{"le",count}, ...]}}}. Histogram
  /// bucket lists include only non-empty buckets.
  std::string ToJson() const;

  /// Writes ToJson() atomically (temp file + rename).
  Status WriteJson(const std::string& path) const;

  /// Zeroes every registered metric (values only; registrations and
  /// references survive). For tests and per-run scoping.
  void ResetValues();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cpdg::obs

#endif  // CPDG_OBS_METRICS_H_
