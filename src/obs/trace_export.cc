#include "obs/trace_export.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/atomic_file.h"

namespace cpdg::obs {

namespace {

void AppendEscaped(std::ostringstream* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      *out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out << buf;
    } else {
      *out << c;
    }
  }
}

/// Minimal recursive-descent scanner for the JSON subset a trace document
/// uses (objects, arrays, strings, numbers, true/false/null). It fully
/// validates nesting and tokens but only materializes the fields
/// ParsedTraceEvent cares about.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
              code = code * 16 +
                     static_cast<unsigned>(
                         std::isdigit(static_cast<unsigned char>(h))
                             ? h - '0'
                             : std::tolower(h) - 'a' + 10);
            }
            // The exporter only escapes control characters, so a plain
            // byte append covers everything it can produce.
            out->push_back(static_cast<char>(code));
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(double* out) {
    SkipWs();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      digits = digits ||
               std::isdigit(static_cast<unsigned char>(text_[pos_]));
      ++pos_;
    }
    if (!digits) return false;
    *out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                       nullptr);
    return true;
  }

  /// Validates and discards any JSON value.
  bool SkipValue() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '"') {
      std::string unused;
      return ParseString(&unused);
    }
    if (c == '{') return SkipCompound('{', '}');
    if (c == '[') return SkipCompound('[', ']');
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    double unused = 0.0;
    return ParseNumber(&unused);
  }

 private:
  bool SkipCompound(char open, char close) {
    if (!Consume(open)) return false;
    if (Consume(close)) return true;
    while (true) {
      if (open == '{') {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) return false;
      }
      if (!SkipValue()) return false;
      if (Consume(close)) return true;
      if (!Consume(',')) return false;
    }
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Status MalformedTrace(const std::string& what) {
  return Status::InvalidArgument("malformed trace JSON: " + what);
}

Result<ParsedTraceEvent> ParseEventObject(JsonScanner* scanner) {
  if (!scanner->Consume('{')) return MalformedTrace("event is not an object");
  ParsedTraceEvent event;
  bool have_name = false, have_ph = false, have_ts = false;
  if (!scanner->Consume('}')) {
    while (true) {
      std::string key;
      if (!scanner->ParseString(&key) || !scanner->Consume(':')) {
        return MalformedTrace("bad event key");
      }
      if (key == "name") {
        if (!scanner->ParseString(&event.name)) {
          return MalformedTrace("event name is not a string");
        }
        have_name = true;
      } else if (key == "ph") {
        if (!scanner->ParseString(&event.ph)) {
          return MalformedTrace("event ph is not a string");
        }
        have_ph = true;
      } else if (key == "ts" || key == "dur" || key == "pid" ||
                 key == "tid") {
        double v = 0.0;
        if (!scanner->ParseNumber(&v)) {
          return MalformedTrace("event " + key + " is not a number");
        }
        int64_t iv = static_cast<int64_t>(v);
        if (key == "ts") {
          event.ts_us = iv;
          have_ts = true;
        } else if (key == "dur") {
          event.dur_us = iv;
        } else if (key == "pid") {
          event.pid = iv;
        } else {
          event.tid = iv;
        }
      } else {
        if (!scanner->SkipValue()) {
          return MalformedTrace("bad value for event key '" + key + "'");
        }
      }
      if (scanner->Consume('}')) break;
      if (!scanner->Consume(',')) return MalformedTrace("expected , or }");
    }
  }
  if (!have_name) return MalformedTrace("event without name");
  if (!have_ph) return MalformedTrace("event without ph");
  if (!have_ts) return MalformedTrace("event without ts");
  return event;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<SpanEvent>& events) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    out << (i == 0 ? "\n" : ",\n") << "  {\"name\": \"";
    AppendEscaped(&out, e.name);
    out << "\", \"cat\": \"cpdg\", \"ph\": \"X\", \"ts\": " << e.start_us
        << ", \"dur\": " << e.dur_us << ", \"pid\": 1, \"tid\": " << e.tid
        << ", \"args\": {\"depth\": " << e.depth << "}}";
  }
  out << (events.empty() ? "]" : "\n]") << "}\n";
  return out.str();
}

Status WriteChromeTraceJson(const std::string& path,
                            const std::vector<SpanEvent>& events) {
  return util::AtomicWriteFile(path, ChromeTraceJson(events));
}

Result<std::vector<ParsedTraceEvent>> ParseChromeTrace(
    std::string_view json) {
  JsonScanner scanner(json);
  if (!scanner.Consume('{')) {
    return MalformedTrace("document is not an object");
  }
  std::vector<ParsedTraceEvent> events;
  bool have_events = false;
  if (!scanner.Consume('}')) {
    while (true) {
      std::string key;
      if (!scanner.ParseString(&key) || !scanner.Consume(':')) {
        return MalformedTrace("bad top-level key");
      }
      if (key == "traceEvents") {
        have_events = true;
        if (!scanner.Consume('[')) {
          return MalformedTrace("traceEvents is not an array");
        }
        if (!scanner.Consume(']')) {
          while (true) {
            CPDG_ASSIGN_OR_RETURN(ParsedTraceEvent event,
                                  ParseEventObject(&scanner));
            events.push_back(std::move(event));
            if (scanner.Consume(']')) break;
            if (!scanner.Consume(',')) {
              return MalformedTrace("expected , or ] in traceEvents");
            }
          }
        }
      } else {
        if (!scanner.SkipValue()) {
          return MalformedTrace("bad value for top-level key '" + key + "'");
        }
      }
      if (scanner.Consume('}')) break;
      if (!scanner.Consume(',')) {
        return MalformedTrace("expected , or } at top level");
      }
    }
  }
  if (!scanner.AtEnd()) return MalformedTrace("trailing garbage");
  if (!have_events) return MalformedTrace("no traceEvents array");
  return events;
}

}  // namespace cpdg::obs
