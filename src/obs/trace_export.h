#ifndef CPDG_OBS_TRACE_EXPORT_H_
#define CPDG_OBS_TRACE_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/profiler.h"
#include "util/status.h"

namespace cpdg::obs {

/// \brief Serializes spans in the Chrome trace-event format (JSON object
/// with a "traceEvents" array of "X" complete events), loadable by
/// chrome://tracing and Perfetto. `ts`/`dur` are microseconds; `tid` is the
/// profiler's stable per-thread id; `pid` is fixed at 1.
std::string ChromeTraceJson(const std::vector<SpanEvent>& events);

/// \brief Writes ChromeTraceJson(events) to `path` atomically (temp file +
/// rename), so a crash mid-export never leaves a torn trace.
Status WriteChromeTraceJson(const std::string& path,
                            const std::vector<SpanEvent>& events);

/// \brief One event parsed back out of a Chrome trace JSON document.
/// `name` is owned (the parser copies out of the document).
struct ParsedTraceEvent {
  std::string name;
  std::string ph;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  int64_t pid = 0;
  int64_t tid = 0;
};

/// \brief Parses a Chrome trace-event JSON document produced by
/// ChromeTraceJson (or any document of the same shape: a top-level object
/// holding a "traceEvents" array of flat event objects). Rejects malformed
/// JSON, a missing traceEvents array, and events without the string `name`
/// / `ph` or numeric `ts` fields; tests use this to prove the export
/// round-trips. Events may carry extra keys (skipped).
Result<std::vector<ParsedTraceEvent>> ParseChromeTrace(
    std::string_view json);

}  // namespace cpdg::obs

#endif  // CPDG_OBS_TRACE_EXPORT_H_
