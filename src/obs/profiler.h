#ifndef CPDG_OBS_PROFILER_H_
#define CPDG_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace cpdg::obs {

/// \brief One closed span: a named [start, start+dur) interval on a thread,
/// with the nesting depth it was opened at. `name` must point at a string
/// with static storage duration (literals at the instrumentation sites);
/// events never own memory.
struct SpanEvent {
  const char* name = nullptr;
  int64_t start_us = 0;  ///< Microseconds since the profiler epoch.
  int64_t dur_us = 0;
  int32_t tid = 0;   ///< Stable small id, assigned per thread on first span.
  int32_t depth = 0; ///< Nesting depth at open time (0 = top level).
};

/// \brief Deterministic per-name aggregate merged across all threads.
struct SpanStats {
  int64_t count = 0;
  int64_t total_us = 0;
};

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// \brief Fast global tracing switch. A single relaxed atomic load — this
/// is the entire cost of a disabled ScopedSpan, so instrumentation can sit
/// on hot paths. Initialized from CPDG_TRACE at startup; flippable at
/// runtime (tests, bench harness).
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

void SetTraceEnabled(bool enabled);

/// \brief Collects closed spans into per-thread buffers.
///
/// Each thread records into its own buffer (guarded by a per-buffer mutex
/// that only harvest ever contends on), capped at kMaxEventsPerThread;
/// overflow events are dropped and counted. Buffers live for the process
/// lifetime, so late-exiting pool threads are safe.
class Profiler {
 public:
  /// Per-thread event cap (~8 MiB of spans); beyond it spans are dropped
  /// and counted in dropped_events().
  static constexpr int64_t kMaxEventsPerThread = 1 << 18;

  static Profiler& Global();

  /// Microseconds since the profiler epoch (process start).
  int64_t NowMicros() const;

  /// Appends a closed span to the calling thread's buffer.
  void Record(const char* name, int64_t start_us, int64_t dur_us,
              int32_t depth);

  /// All recorded spans merged across threads, sorted by (start_us, tid,
  /// depth) so traces from the same workload are stably ordered.
  std::vector<SpanEvent> Snapshot() const;

  /// Per-name {count, total_us} merged across threads. The map order (and
  /// the counts, for workloads whose span set is thread-count-invariant,
  /// like the static-chunked kernels) is deterministic.
  std::map<std::string, SpanStats> AggregateByName() const;

  /// Writes Snapshot() as Chrome trace-event JSON ("X" complete events,
  /// chrome://tracing- and Perfetto-loadable) via an atomic temp+rename.
  Status WriteChromeTrace(const std::string& path) const;

  int64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Discards all recorded spans (buffers stay registered).
  void Clear();

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::vector<SpanEvent> events;
    int32_t tid = 0;
  };

  Profiler();
  ThreadBuffer* BufferForThisThread();

  mutable std::mutex mu_;  ///< Guards buffers_ registration.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<int64_t> dropped_{0};
  int64_t epoch_ns_ = 0;
};

/// \brief RAII span. When tracing is disabled at construction the
/// constructor is a relaxed load + branch and the destructor a null check:
/// no clock reads, no allocation, nothing recorded. A null `name` disables
/// the span unconditionally (used for conditional instrumentation of e.g.
/// small-tensor fast paths).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (name == nullptr || !TraceEnabled()) {
      name_ = nullptr;
      return;
    }
    Open(name);
  }

  ~ScopedSpan() {
    if (name_ != nullptr) Close();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Open(const char* name);
  void Close();

  const char* name_;
  int64_t start_us_ = 0;
  int32_t depth_ = 0;
};

#define CPDG_OBS_CONCAT_INNER_(a, b) a##b
#define CPDG_OBS_CONCAT_(a, b) CPDG_OBS_CONCAT_INNER_(a, b)

/// \brief Declares an RAII trace span covering the rest of the enclosing
/// scope. `name` must be a string literal (or any static-duration string).
#define CPDG_TRACE_SPAN(name) \
  ::cpdg::obs::ScopedSpan CPDG_OBS_CONCAT_(cpdg_span_, __LINE__)(name)

}  // namespace cpdg::obs

#endif  // CPDG_OBS_PROFILER_H_
