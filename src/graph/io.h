#ifndef CPDG_GRAPH_IO_H_
#define CPDG_GRAPH_IO_H_

#include <functional>
#include <string>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/status.h"

namespace cpdg::graph {

/// \file Event-list I/O.
///
/// Two interchange formats are supported:
///
///  1. The native CSV format: `src,dst,time,edge_type,label` with a header
///     line; lossless for this library's Event struct.
///  2. The JODIE dataset format used by the paper's Wikipedia / MOOC /
///     Reddit datasets (`user_id,item_id,timestamp,state_label,
///     comma_separated_list_of_features`): user and item ids are re-based
///     into one node id space (items after users), the state label maps to
///     Event::label, and edge features are ignored (this implementation is
///     featureless; see DESIGN.md).

/// \brief Writes events as native CSV. Overwrites the file atomically
/// (temp file + rename), so readers never observe a torn write.
Status WriteEventsCsv(const std::string& path,
                      const std::vector<Event>& events);

/// \brief Reads events from native CSV (as written by WriteEventsCsv).
Result<std::vector<Event>> ReadEventsCsv(const std::string& path);

/// \brief Streaming form of ReadEventsCsv: rows are parsed one at a time
/// and handed to `row_fn` in file order, so arbitrarily large CSVs load in
/// O(1) memory (e.g. straight into the storage event-log builder).
///
/// Malformed rows fail the load with a line-numbered, reason-specific
/// InvalidArgument error (wrong field count, non-numeric id/time, negative
/// node id) rather than being skipped. A non-OK status from `row_fn`
/// aborts the read and is returned as-is.
Status StreamEventsCsv(const std::string& path,
                       const std::function<Status(const Event&)>& row_fn);

/// \brief Parsed JODIE-format dataset: events plus the id-space layout.
struct JodieDataset {
  std::vector<Event> events;
  int64_t num_users = 0;
  int64_t num_items = 0;
  /// Total node count (= num_users + num_items); item j's node id is
  /// num_users + j.
  int64_t num_nodes() const { return num_users + num_items; }
};

/// \brief Parses a JODIE-format CSV (header line, then
/// `user_id,item_id,timestamp,state_label[,features...]`). User/item ids
/// must be dense non-negative integers (as in the published datasets).
Result<JodieDataset> ReadJodieCsv(const std::string& path);

/// \brief Convenience: builds a TemporalGraph directly from a JODIE CSV.
Result<TemporalGraph> LoadJodieGraph(const std::string& path);

}  // namespace cpdg::graph

#endif  // CPDG_GRAPH_IO_H_
