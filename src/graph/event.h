#ifndef CPDG_GRAPH_EVENT_H_
#define CPDG_GRAPH_EVENT_H_

#include <cstdint>
#include <type_traits>

namespace cpdg::graph {

using NodeId = int64_t;

/// \brief One interaction event (i, j, t) of a continuous-time dynamic
/// graph (Definition 1 of the paper), with an optional edge type and a
/// dynamic label on the source node (used by node-classification datasets,
/// where labels mark state changes such as a user being banned).
struct Event {
  NodeId src = -1;
  NodeId dst = -1;
  double time = 0.0;
  int32_t edge_type = 0;
  /// Dynamic label of `src` as of this event; -1 when unlabeled.
  int32_t label = -1;
};

/// \brief A temporal neighbor as seen from some node: the neighbor id, the
/// interaction time, and the index of the originating event.
struct TemporalNeighbor {
  NodeId node = -1;
  double time = 0.0;
  int64_t event_index = -1;
};

// The on-disk event-log format (src/storage) stores Event and
// TemporalNeighbor records verbatim so a memory-mapped file can be read in
// place; these asserts pin the byte layout that format relies on.
static_assert(std::is_trivially_copyable_v<Event> &&
                  std::is_standard_layout_v<Event> && sizeof(Event) == 32,
              "Event is persisted raw by the storage event-log format; "
              "adding or reordering fields requires a format version bump");
static_assert(std::is_trivially_copyable_v<TemporalNeighbor> &&
                  std::is_standard_layout_v<TemporalNeighbor> &&
                  sizeof(TemporalNeighbor) == 24,
              "TemporalNeighbor is persisted raw by the storage event-log "
              "format; changing it requires a format version bump");

}  // namespace cpdg::graph

#endif  // CPDG_GRAPH_EVENT_H_
