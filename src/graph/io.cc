#include "graph/io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/atomic_file.h"

namespace cpdg::graph {
namespace {

/// Splits a CSV line on commas (the formats here never quote fields).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  return fields;
}

bool ParseInt(const std::string& s, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

Status WriteEventsCsv(const std::string& path,
                      const std::vector<Event>& events) {
  // Serialize fully in memory and publish atomically (temp file + rename):
  // a crash mid-write can never leave a torn CSV behind.
  std::string out = "src,dst,time,edge_type,label\n";
  for (const Event& e : events) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%lld,%lld,%.17g,%d,%d\n",
                  static_cast<long long>(e.src),
                  static_cast<long long>(e.dst), e.time, e.edge_type,
                  e.label);
    out += buf;
  }
  return util::AtomicWriteFile(path, out);
}

Result<std::vector<Event>> ReadEventsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty file: " + path);
  }
  if (line.rfind("src,", 0) != 0) {
    return Status::InvalidArgument("missing native CSV header in " + path);
  }
  std::vector<Event> events;
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> f = SplitCsvLine(line);
    if (f.size() != 5) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 5 fields");
    }
    Event e;
    int64_t edge_type = 0, label = 0;
    if (!ParseInt(f[0], &e.src) || !ParseInt(f[1], &e.dst) ||
        !ParseDouble(f[2], &e.time) || !ParseInt(f[3], &edge_type) ||
        !ParseInt(f[4], &label)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": parse error");
    }
    e.edge_type = static_cast<int32_t>(edge_type);
    e.label = static_cast<int32_t>(label);
    events.push_back(e);
  }
  return events;
}

Result<JodieDataset> ReadJodieCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty file: " + path);
  }
  // First line is a header (e.g. "user_id,item_id,timestamp,state_label,
  // comma_separated_list_of_features"); it is not validated strictly
  // because published files vary slightly.

  JodieDataset ds;
  struct RawRow {
    int64_t user;
    int64_t item;
    double time;
    int32_t label;
  };
  std::vector<RawRow> rows;
  int64_t max_user = -1, max_item = -1;
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> f = SplitCsvLine(line);
    if (f.size() < 4) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected >= 4 fields");
    }
    RawRow r;
    int64_t label = 0;
    if (!ParseInt(f[0], &r.user) || !ParseInt(f[1], &r.item) ||
        !ParseDouble(f[2], &r.time) || !ParseInt(f[3], &label)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": parse error");
    }
    if (r.user < 0 || r.item < 0) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": negative id");
    }
    r.label = static_cast<int32_t>(label);
    max_user = std::max(max_user, r.user);
    max_item = std::max(max_item, r.item);
    rows.push_back(r);
  }
  if (rows.empty()) {
    return Status::InvalidArgument("no data rows in " + path);
  }
  ds.num_users = max_user + 1;
  ds.num_items = max_item + 1;
  ds.events.reserve(rows.size());
  for (const RawRow& r : rows) {
    Event e;
    e.src = r.user;
    e.dst = ds.num_users + r.item;  // re-base items after users
    e.time = r.time;
    e.label = r.label;
    ds.events.push_back(e);
  }
  return ds;
}

Result<TemporalGraph> LoadJodieGraph(const std::string& path) {
  CPDG_ASSIGN_OR_RETURN(JodieDataset ds, ReadJodieCsv(path));
  return TemporalGraph::Create(ds.num_nodes(), std::move(ds.events));
}

}  // namespace cpdg::graph
