#include "graph/io.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <string_view>

#include "util/atomic_file.h"

namespace cpdg::graph {
namespace {

/// Splits a CSV line on commas into borrowed views (the formats here never
/// quote fields). Allocation-free so multi-million-row loads don't churn.
std::vector<std::string_view> SplitCsvLine(std::string_view line,
                                           std::vector<std::string_view>* out) {
  out->clear();
  size_t start = 0;
  while (true) {
    size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      out->push_back(line.substr(start));
      return *out;
    }
    out->push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

bool ParseInt(std::string_view s, int64_t* out) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end && !s.empty();
}

bool ParseDouble(std::string_view s, double* out) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end && !s.empty();
}

Status RowError(int64_t line_no, const std::string& reason,
                std::string_view field) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                 reason + " '" + std::string(field) + "'");
}

/// Parses one native-CSV data row with reason-specific diagnostics.
Status ParseEventRow(std::string_view line, int64_t line_no,
                     std::vector<std::string_view>* fields, Event* e) {
  SplitCsvLine(line, fields);
  if (fields->size() != 5) {
    return Status::InvalidArgument(
        "line " + std::to_string(line_no) + ": expected 5 fields, got " +
        std::to_string(fields->size()));
  }
  int64_t edge_type = 0, label = 0;
  if (!ParseInt((*fields)[0], &e->src)) {
    return RowError(line_no, "non-numeric src id", (*fields)[0]);
  }
  if (!ParseInt((*fields)[1], &e->dst)) {
    return RowError(line_no, "non-numeric dst id", (*fields)[1]);
  }
  if (e->src < 0 || e->dst < 0) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": node id out of range (negative)");
  }
  if (!ParseDouble((*fields)[2], &e->time)) {
    return RowError(line_no, "non-numeric time", (*fields)[2]);
  }
  if (!ParseInt((*fields)[3], &edge_type)) {
    return RowError(line_no, "non-numeric edge_type", (*fields)[3]);
  }
  if (!ParseInt((*fields)[4], &label)) {
    return RowError(line_no, "non-numeric label", (*fields)[4]);
  }
  e->edge_type = static_cast<int32_t>(edge_type);
  e->label = static_cast<int32_t>(label);
  return Status::OK();
}

}  // namespace

Status WriteEventsCsv(const std::string& path,
                      const std::vector<Event>& events) {
  // Serialize fully in memory and publish atomically (temp file + rename):
  // a crash mid-write can never leave a torn CSV behind.
  std::string out = "src,dst,time,edge_type,label\n";
  for (const Event& e : events) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%lld,%lld,%.17g,%d,%d\n",
                  static_cast<long long>(e.src),
                  static_cast<long long>(e.dst), e.time, e.edge_type,
                  e.label);
    out += buf;
  }
  return util::AtomicWriteFile(path, out);
}

Status StreamEventsCsv(const std::string& path,
                       const std::function<Status(const Event&)>& row_fn) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty file: " + path);
  }
  if (line.rfind("src,", 0) != 0) {
    return Status::InvalidArgument("missing native CSV header in " + path);
  }
  std::vector<std::string_view> fields;
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Event e;
    CPDG_RETURN_NOT_OK(ParseEventRow(line, line_no, &fields, &e));
    CPDG_RETURN_NOT_OK(row_fn(e));
  }
  if (in.bad()) return Status::IoError("read failed: " + path);
  return Status::OK();
}

Result<std::vector<Event>> ReadEventsCsv(const std::string& path) {
  std::vector<Event> events;
  CPDG_RETURN_NOT_OK(StreamEventsCsv(path, [&events](const Event& e) {
    events.push_back(e);
    return Status::OK();
  }));
  return events;
}

Result<JodieDataset> ReadJodieCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty file: " + path);
  }
  // First line is a header (e.g. "user_id,item_id,timestamp,state_label,
  // comma_separated_list_of_features"); it is not validated strictly
  // because published files vary slightly.

  // Rows stream directly into the event vector with dst holding the raw
  // item id; the single re-base fix-up below runs once num_users is known.
  // No second row buffer, so peak memory is one Event per row.
  JodieDataset ds;
  std::vector<std::string_view> fields;
  int64_t max_user = -1, max_item = -1;
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    SplitCsvLine(line, &fields);
    if (fields.size() < 4) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected >= 4 fields, got " +
          std::to_string(fields.size()));
    }
    Event e;
    int64_t item = 0, label = 0;
    if (!ParseInt(fields[0], &e.src)) {
      return RowError(line_no, "non-numeric user id", fields[0]);
    }
    if (!ParseInt(fields[1], &item)) {
      return RowError(line_no, "non-numeric item id", fields[1]);
    }
    if (e.src < 0 || item < 0) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": node id out of range (negative)");
    }
    if (!ParseDouble(fields[2], &e.time)) {
      return RowError(line_no, "non-numeric timestamp", fields[2]);
    }
    if (!ParseInt(fields[3], &label)) {
      return RowError(line_no, "non-numeric state label", fields[3]);
    }
    e.dst = item;
    e.label = static_cast<int32_t>(label);
    max_user = std::max(max_user, e.src);
    max_item = std::max(max_item, item);
    ds.events.push_back(e);
  }
  if (in.bad()) return Status::IoError("read failed: " + path);
  if (ds.events.empty()) {
    return Status::InvalidArgument("no data rows in " + path);
  }
  ds.num_users = max_user + 1;
  ds.num_items = max_item + 1;
  for (Event& e : ds.events) {
    e.dst += ds.num_users;  // re-base items after users
  }
  return ds;
}

Result<TemporalGraph> LoadJodieGraph(const std::string& path) {
  CPDG_ASSIGN_OR_RETURN(JodieDataset ds, ReadJodieCsv(path));
  return TemporalGraph::Create(ds.num_nodes(), std::move(ds.events));
}

}  // namespace cpdg::graph
