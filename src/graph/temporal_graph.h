#ifndef CPDG_GRAPH_TEMPORAL_GRAPH_H_
#define CPDG_GRAPH_TEMPORAL_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/event.h"
#include "graph/graph_store.h"
#include "util/status.h"

namespace cpdg::graph {

/// \brief Immutable in-memory continuous-time dynamic graph (CTDG): the
/// reference GraphStore backend.
///
/// Stores the chronological event list plus, per node, the time-sorted list
/// of its interactions (both directions of each event, since interactions
/// are undirected for neighborhood purposes). Supports the core temporal
/// query of every DGNN: "the neighbors of node i that interacted before
/// time t" (the N_i^t of Definition 1), answered with binary search. The
/// memory-mapped, sharded storage::ShardedGraphStore answers the same
/// GraphStore interface with bit-identical results at production scale.
///
/// \par Thread safety
/// A TemporalGraph is immutable after Create() returns: every public member
/// is const and touches only storage fixed at construction. Any number of
/// threads may therefore run const queries (NeighborsBefore, Degree,
/// EventsInWindow, ...) concurrently on the same instance with no external
/// locking — the samplers, training loops, and the serving engine all rely
/// on this. The only unsafe operations are whole-object move/copy
/// assignment and destruction, which must be externally ordered after all
/// concurrent readers have finished.
class TemporalGraph : public GraphStore {
 public:
  /// Empty graph (0 nodes); useful as a placeholder before assignment.
  TemporalGraph() = default;

  /// \brief Builds a graph from events. Events need not be pre-sorted; they
  /// are sorted chronologically (stable on ties). num_nodes must exceed
  /// every node id in the events.
  static Result<TemporalGraph> Create(int64_t num_nodes,
                                      std::vector<Event> events);

  int64_t num_nodes() const override { return num_nodes_; }
  int64_t num_events() const override {
    return static_cast<int64_t>(events_.size());
  }

  /// Chronologically sorted events.
  const std::vector<Event>& events() const { return events_; }
  const Event& event(int64_t index) const;

  /// Earliest / latest event time (0 if empty).
  double min_time() const override { return min_time_; }
  double max_time() const override { return max_time_; }

  Event EventAt(int64_t index) const override { return event(index); }
  void ReadEvents(int64_t begin, int64_t end,
                  std::vector<Event>* out) const override;

  /// \brief Legacy name for the borrowed neighbor run; see the
  /// graph::NeighborSpan lifetime contract. For this backend a view stays
  /// valid exactly as long as the TemporalGraph it came from is alive and
  /// is not assigned over or moved from; it is NOT invalidated by other
  /// const queries, so views may be held across further NeighborsBefore
  /// calls (the samplers do this).
  using NeighborView = NeighborSpan;

  /// \brief Zero-copy convenience overload: this backend's adjacency is
  /// always contiguous, so no scratch is ever needed.
  NeighborView NeighborsBefore(NodeId node, double time) const;

  /// GraphStore query; `scratch` is accepted but never used (nullptr ok).
  NeighborSpan NeighborsBefore(NodeId node, double time,
                               NeighborScratch* scratch) const override {
    (void)scratch;
    return NeighborsBefore(node, time);
  }

  int64_t Degree(NodeId node) const override;

  std::vector<Event> EventsInWindow(double t_lo, double t_hi) const override;
  int64_t LowerBoundEvent(double t) const override;

 protected:
  std::string_view store_name() const override { return "TemporalGraph"; }

 private:
  int64_t num_nodes_ = 0;
  std::vector<Event> events_;  // sorted by time
  // CSR-style per-node adjacency over both event endpoints, time-sorted.
  std::vector<int64_t> adj_offsets_;             // size num_nodes_ + 1
  std::vector<TemporalNeighbor> adj_neighbors_;  // grouped by node
  double min_time_ = 0.0;
  double max_time_ = 0.0;
};

/// \brief A static snapshot of a temporal graph: the plain undirected graph
/// G^t = (V^t, E^t) with multi-edges collapsed. Static GNN baselines
/// (GraphSAGE / GAT / GIN / DGI / GPT-GNN) operate on this view, which is
/// exactly how the paper applies them to dynamic data.
class StaticSnapshot {
 public:
  /// Snapshot of all events strictly before `time` (use +inf for "all").
  /// Works against any GraphStore backend (events are streamed in chunks).
  static StaticSnapshot FromTemporalGraph(const GraphStore& graph,
                                          double time);

  int64_t num_nodes() const {
    return static_cast<int64_t>(offsets_.size()) - 1;
  }
  int64_t num_edges() const {
    return static_cast<int64_t>(neighbors_.size()) / 2;
  }

  /// Unique neighbors of `node`, sorted by id.
  struct View {
    const NodeId* data = nullptr;
    int64_t count = 0;
    const NodeId* begin() const { return data; }
    const NodeId* end() const { return data + count; }
    bool empty() const { return count == 0; }
    NodeId operator[](int64_t i) const { return data[i]; }
  };
  View Neighbors(NodeId node) const;

  int64_t Degree(NodeId node) const;

 private:
  std::vector<int64_t> offsets_;
  std::vector<NodeId> neighbors_;
};

}  // namespace cpdg::graph

#endif  // CPDG_GRAPH_TEMPORAL_GRAPH_H_
