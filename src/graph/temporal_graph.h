#ifndef CPDG_GRAPH_TEMPORAL_GRAPH_H_
#define CPDG_GRAPH_TEMPORAL_GRAPH_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace cpdg::graph {

using NodeId = int64_t;

/// \brief One interaction event (i, j, t) of a continuous-time dynamic
/// graph (Definition 1 of the paper), with an optional edge type and a
/// dynamic label on the source node (used by node-classification datasets,
/// where labels mark state changes such as a user being banned).
struct Event {
  NodeId src = -1;
  NodeId dst = -1;
  double time = 0.0;
  int32_t edge_type = 0;
  /// Dynamic label of `src` as of this event; -1 when unlabeled.
  int32_t label = -1;
};

/// \brief A temporal neighbor as seen from some node: the neighbor id, the
/// interaction time, and the index of the originating event.
struct TemporalNeighbor {
  NodeId node = -1;
  double time = 0.0;
  int64_t event_index = -1;
};

/// \brief Immutable continuous-time dynamic graph (CTDG).
///
/// Stores the chronological event list plus, per node, the time-sorted list
/// of its interactions (both directions of each event, since interactions
/// are undirected for neighborhood purposes). Supports the core temporal
/// query of every DGNN: "the neighbors of node i that interacted before
/// time t" (the N_i^t of Definition 1), answered with binary search.
///
/// \par Thread safety
/// A TemporalGraph is immutable after Create() returns: every public member
/// is const and touches only storage fixed at construction. Any number of
/// threads may therefore run const queries (NeighborsBefore, Degree,
/// EventsInWindow, ...) concurrently on the same instance with no external
/// locking — the samplers, training loops, and the serving engine all rely
/// on this. The only unsafe operations are whole-object move/copy
/// assignment and destruction, which must be externally ordered after all
/// concurrent readers have finished.
class TemporalGraph {
 public:
  /// Empty graph (0 nodes); useful as a placeholder before assignment.
  TemporalGraph() = default;

  /// \brief Builds a graph from events. Events need not be pre-sorted; they
  /// are sorted chronologically (stable on ties). num_nodes must exceed
  /// every node id in the events.
  static Result<TemporalGraph> Create(int64_t num_nodes,
                                      std::vector<Event> events);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_events() const { return static_cast<int64_t>(events_.size()); }

  /// Chronologically sorted events.
  const std::vector<Event>& events() const { return events_; }
  const Event& event(int64_t index) const;

  /// Earliest / latest event time (0 if empty).
  double min_time() const { return min_time_; }
  double max_time() const { return max_time_; }

  /// \brief All neighbors of `node` with interaction time strictly before
  /// `time`, in chronological order. Returns a (pointer, count) view into
  /// internal storage.
  ///
  /// This is N_i^t of Definition 1; T_i^t (the event-time set of Sec. IV-A)
  /// is the `time` field of each entry.
  ///
  /// \par Lifetime contract
  /// A NeighborView is a non-owning borrow of the graph's adjacency
  /// storage. It stays valid exactly as long as the TemporalGraph it came
  /// from is alive and is not assigned over or moved from; it is NOT
  /// invalidated by other const queries, so views may be held across
  /// further NeighborsBefore calls (the samplers do this). Dereferencing a
  /// view after the graph is destroyed or reassigned is undefined
  /// behavior. Callers that need the neighbors beyond the graph's lifetime
  /// must copy the entries out (`std::vector<TemporalNeighbor>(v.begin(),
  /// v.end())`). Views are trivially copyable handles — pass them by
  /// value; copying a view never copies neighbor data.
  struct NeighborView {
    const TemporalNeighbor* data = nullptr;
    int64_t count = 0;
    const TemporalNeighbor* begin() const { return data; }
    const TemporalNeighbor* end() const { return data + count; }
    bool empty() const { return count == 0; }
    const TemporalNeighbor& operator[](int64_t i) const { return data[i]; }
  };
  static_assert(std::is_trivially_copyable_v<NeighborView>,
                "NeighborView must stay a cheap value-type handle; it is "
                "passed by value throughout the samplers");
  NeighborView NeighborsBefore(NodeId node, double time) const;

  /// Total number of interactions involving `node` (any time).
  int64_t Degree(NodeId node) const;

  /// \brief Whether `node` appears in at least one event.
  bool HasInteractions(NodeId node) const { return Degree(node) > 0; }

  /// \brief Ids of all nodes with at least one event before `time`
  /// (V^t of Definition 1).
  std::vector<NodeId> NodesBefore(double time) const;

  /// \brief Events with time in [t_lo, t_hi).
  std::vector<Event> EventsInWindow(double t_lo, double t_hi) const;

  /// \brief Index of the first event with time >= t.
  int64_t LowerBoundEvent(double t) const;

  /// Graph density |E| / (|V|^2), mirroring Table IV's statistics column.
  double Density() const;

  /// Human-readable summary (nodes/edges/time span/density).
  std::string StatsString() const;

 private:
  int64_t num_nodes_ = 0;
  std::vector<Event> events_;  // sorted by time
  // CSR-style per-node adjacency over both event endpoints, time-sorted.
  std::vector<int64_t> adj_offsets_;             // size num_nodes_ + 1
  std::vector<TemporalNeighbor> adj_neighbors_;  // grouped by node
  double min_time_ = 0.0;
  double max_time_ = 0.0;
};

/// \brief A static snapshot of a temporal graph: the plain undirected graph
/// G^t = (V^t, E^t) with multi-edges collapsed. Static GNN baselines
/// (GraphSAGE / GAT / GIN / DGI / GPT-GNN) operate on this view, which is
/// exactly how the paper applies them to dynamic data.
class StaticSnapshot {
 public:
  /// Snapshot of all events strictly before `time` (use +inf for "all").
  static StaticSnapshot FromTemporalGraph(const TemporalGraph& graph,
                                          double time);

  int64_t num_nodes() const {
    return static_cast<int64_t>(offsets_.size()) - 1;
  }
  int64_t num_edges() const {
    return static_cast<int64_t>(neighbors_.size()) / 2;
  }

  /// Unique neighbors of `node`, sorted by id.
  struct View {
    const NodeId* data = nullptr;
    int64_t count = 0;
    const NodeId* begin() const { return data; }
    const NodeId* end() const { return data + count; }
    bool empty() const { return count == 0; }
    NodeId operator[](int64_t i) const { return data[i]; }
  };
  View Neighbors(NodeId node) const;

  int64_t Degree(NodeId node) const;

 private:
  std::vector<int64_t> offsets_;
  std::vector<NodeId> neighbors_;
};

}  // namespace cpdg::graph

#endif  // CPDG_GRAPH_TEMPORAL_GRAPH_H_
