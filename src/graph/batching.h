#ifndef CPDG_GRAPH_BATCHING_H_
#define CPDG_GRAPH_BATCHING_H_

#include <vector>

#include "graph/graph_store.h"

namespace cpdg::graph {

/// \brief A chronological slice of events, the unit of DGNN batch
/// processing (the Monte-Carlo batching of Sec. IV-D).
struct EventBatch {
  /// Index of the first event in the batch within the source graph.
  int64_t first_event_index = 0;
  std::vector<Event> events;
  bool empty() const { return events.empty(); }
  int64_t size() const { return static_cast<int64_t>(events.size()); }
};

/// \brief Iterates a graph store's events in fixed-size chronological
/// batches. DGNN training processes batches in order so that memory states
/// only ever see the past. Works against any GraphStore backend via its
/// bulk ReadEvents primitive.
class ChronologicalBatcher {
 public:
  ChronologicalBatcher(const GraphStore* graph, int64_t batch_size);

  /// Resets iteration to the first event.
  void Reset();

  /// Returns false when exhausted; otherwise fills `batch`.
  bool Next(EventBatch* batch);

  int64_t num_batches() const;

 private:
  const GraphStore* graph_;
  int64_t batch_size_;
  int64_t cursor_ = 0;
};

}  // namespace cpdg::graph

#endif  // CPDG_GRAPH_BATCHING_H_
