#include "graph/batching.h"

#include <algorithm>

#include "util/check.h"

namespace cpdg::graph {

ChronologicalBatcher::ChronologicalBatcher(const GraphStore* graph,
                                           int64_t batch_size)
    : graph_(graph), batch_size_(batch_size) {
  CPDG_CHECK(graph != nullptr);
  CPDG_CHECK_GT(batch_size, 0);
}

void ChronologicalBatcher::Reset() { cursor_ = 0; }

bool ChronologicalBatcher::Next(EventBatch* batch) {
  CPDG_CHECK(batch != nullptr);
  if (cursor_ >= graph_->num_events()) return false;
  int64_t end = std::min(cursor_ + batch_size_, graph_->num_events());
  batch->first_event_index = cursor_;
  graph_->ReadEvents(cursor_, end, &batch->events);
  cursor_ = end;
  return true;
}

int64_t ChronologicalBatcher::num_batches() const {
  return (graph_->num_events() + batch_size_ - 1) / batch_size_;
}

}  // namespace cpdg::graph
