#include "graph/temporal_graph.h"

#include <algorithm>

#include "util/check.h"

namespace cpdg::graph {

Result<TemporalGraph> TemporalGraph::Create(int64_t num_nodes,
                                            std::vector<Event> events) {
  if (num_nodes <= 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  for (const Event& e : events) {
    if (e.src < 0 || e.src >= num_nodes || e.dst < 0 || e.dst >= num_nodes) {
      return Status::InvalidArgument(
          "event references node id outside [0, num_nodes)");
    }
  }
  std::stable_sort(
      events.begin(), events.end(),
      [](const Event& a, const Event& b) { return a.time < b.time; });

  TemporalGraph g;
  g.num_nodes_ = num_nodes;
  g.events_ = std::move(events);
  if (!g.events_.empty()) {
    g.min_time_ = g.events_.front().time;
    g.max_time_ = g.events_.back().time;
  }

  // Build CSR adjacency: each event contributes (src -> dst) and
  // (dst -> src); within each node, entries stay chronologically sorted
  // because we scan events in time order.
  std::vector<int64_t> counts(static_cast<size_t>(num_nodes), 0);
  for (const Event& e : g.events_) {
    ++counts[static_cast<size_t>(e.src)];
    ++counts[static_cast<size_t>(e.dst)];
  }
  g.adj_offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  for (int64_t i = 0; i < num_nodes; ++i) {
    g.adj_offsets_[static_cast<size_t>(i) + 1] =
        g.adj_offsets_[static_cast<size_t>(i)] + counts[static_cast<size_t>(i)];
  }
  g.adj_neighbors_.resize(static_cast<size_t>(g.adj_offsets_.back()));
  std::vector<int64_t> cursor(g.adj_offsets_.begin(), g.adj_offsets_.end() - 1);
  for (int64_t idx = 0; idx < static_cast<int64_t>(g.events_.size()); ++idx) {
    const Event& e = g.events_[static_cast<size_t>(idx)];
    g.adj_neighbors_[static_cast<size_t>(
        cursor[static_cast<size_t>(e.src)]++)] =
        TemporalNeighbor{e.dst, e.time, idx};
    g.adj_neighbors_[static_cast<size_t>(
        cursor[static_cast<size_t>(e.dst)]++)] =
        TemporalNeighbor{e.src, e.time, idx};
  }
  return g;
}

const Event& TemporalGraph::event(int64_t index) const {
  CPDG_CHECK_GE(index, 0);
  CPDG_CHECK_LT(index, num_events());
  return events_[static_cast<size_t>(index)];
}

void TemporalGraph::ReadEvents(int64_t begin, int64_t end,
                               std::vector<Event>* out) const {
  CPDG_CHECK_GE(begin, 0);
  CPDG_CHECK_LE(begin, end);
  CPDG_CHECK_LE(end, num_events());
  out->assign(events_.begin() + begin, events_.begin() + end);
}

TemporalGraph::NeighborView TemporalGraph::NeighborsBefore(NodeId node,
                                                           double time) const {
  CPDG_CHECK_GE(node, 0);
  CPDG_CHECK_LT(node, num_nodes_);
  const TemporalNeighbor* begin =
      adj_neighbors_.data() + adj_offsets_[static_cast<size_t>(node)];
  const TemporalNeighbor* end =
      adj_neighbors_.data() + adj_offsets_[static_cast<size_t>(node) + 1];
  // Entries are time-sorted; find the first with time >= t.
  const TemporalNeighbor* cut =
      std::lower_bound(begin, end, time,
                       [](const TemporalNeighbor& n, double t) {
                         return n.time < t;
                       });
  return NeighborView{begin, cut - begin};
}

int64_t TemporalGraph::Degree(NodeId node) const {
  CPDG_CHECK_GE(node, 0);
  CPDG_CHECK_LT(node, num_nodes_);
  return adj_offsets_[static_cast<size_t>(node) + 1] -
         adj_offsets_[static_cast<size_t>(node)];
}

std::vector<Event> TemporalGraph::EventsInWindow(double t_lo,
                                                 double t_hi) const {
  std::vector<Event> out;
  for (int64_t i = LowerBoundEvent(t_lo); i < num_events(); ++i) {
    const Event& e = events_[static_cast<size_t>(i)];
    if (e.time >= t_hi) break;
    out.push_back(e);
  }
  return out;
}

int64_t TemporalGraph::LowerBoundEvent(double t) const {
  auto it = std::lower_bound(
      events_.begin(), events_.end(), t,
      [](const Event& e, double time) { return e.time < time; });
  return it - events_.begin();
}

StaticSnapshot StaticSnapshot::FromTemporalGraph(const GraphStore& graph,
                                                 double time) {
  int64_t n = graph.num_nodes();
  std::vector<std::vector<NodeId>> adj(static_cast<size_t>(n));
  // Stream events in chunks so mmap-backed stores never materialize the
  // whole log; events are chronological, so we can stop at the cut time.
  constexpr int64_t kChunk = 1 << 16;
  std::vector<Event> chunk;
  bool done = false;
  for (int64_t at = 0; at < graph.num_events() && !done; at += kChunk) {
    graph.ReadEvents(at, std::min(at + kChunk, graph.num_events()), &chunk);
    for (const Event& e : chunk) {
      if (e.time >= time) {
        done = true;
        break;
      }
      adj[static_cast<size_t>(e.src)].push_back(e.dst);
      adj[static_cast<size_t>(e.dst)].push_back(e.src);
    }
  }
  StaticSnapshot snap;
  snap.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (int64_t v = 0; v < n; ++v) {
    auto& nbrs = adj[static_cast<size_t>(v)];
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    snap.offsets_[static_cast<size_t>(v) + 1] =
        snap.offsets_[static_cast<size_t>(v)] +
        static_cast<int64_t>(nbrs.size());
  }
  snap.neighbors_.resize(static_cast<size_t>(snap.offsets_.back()));
  for (int64_t v = 0; v < n; ++v) {
    const auto& nbrs = adj[static_cast<size_t>(v)];
    std::copy(nbrs.begin(), nbrs.end(),
              snap.neighbors_.begin() + snap.offsets_[static_cast<size_t>(v)]);
  }
  return snap;
}

StaticSnapshot::View StaticSnapshot::Neighbors(NodeId node) const {
  CPDG_CHECK_GE(node, 0);
  CPDG_CHECK_LT(node, num_nodes());
  const NodeId* begin =
      neighbors_.data() + offsets_[static_cast<size_t>(node)];
  return View{begin, offsets_[static_cast<size_t>(node) + 1] -
                         offsets_[static_cast<size_t>(node)]};
}

int64_t StaticSnapshot::Degree(NodeId node) const {
  return Neighbors(node).count;
}

}  // namespace cpdg::graph
