#include "graph/graph_store.h"

#include <sstream>

namespace cpdg::graph {

std::vector<Event> GraphStore::EventsInWindow(double t_lo, double t_hi) const {
  std::vector<Event> out;
  const int64_t n = num_events();
  for (int64_t i = LowerBoundEvent(t_lo); i < n; ++i) {
    Event e = EventAt(i);
    if (e.time >= t_hi) break;
    out.push_back(e);
  }
  return out;
}

int64_t GraphStore::LowerBoundEvent(double t) const {
  // Binary search over chronological indices via EventAt.
  int64_t lo = 0;
  int64_t hi = num_events();
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (EventAt(mid).time < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<NodeId> GraphStore::NodesBefore(double time) const {
  std::vector<NodeId> out;
  NeighborScratch scratch;
  const int64_t n = num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (!NeighborsBefore(v, time, &scratch).empty()) out.push_back(v);
  }
  return out;
}

double GraphStore::Density() const {
  const int64_t n = num_nodes();
  if (n == 0) return 0.0;
  return static_cast<double>(num_events()) /
         (static_cast<double>(n) * static_cast<double>(n));
}

std::string GraphStore::StatsString() const {
  std::ostringstream os;
  os << store_name() << "{nodes=" << num_nodes() << ", events=" << num_events()
     << ", span=[" << min_time() << ", " << max_time() << "]"
     << ", density=" << Density() << "}";
  return os.str();
}

}  // namespace cpdg::graph
