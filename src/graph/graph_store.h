#ifndef CPDG_GRAPH_GRAPH_STORE_H_
#define CPDG_GRAPH_GRAPH_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "graph/event.h"

namespace cpdg::graph {

/// \brief A borrowed, chronologically sorted run of temporal neighbors —
/// the result type of GraphStore::NeighborsBefore.
///
/// \par Lifetime contract
/// A span is a non-owning view. It stays valid until (a) the GraphStore it
/// came from is destroyed, reassigned, moved from or compacted, or (b) the
/// NeighborScratch passed to the producing query is reused by another query
/// or destroyed — whichever comes first. Backends whose per-node storage is
/// contiguous (the in-memory TemporalGraph, mmap-backed nodes with no
/// pending delta) return pointers straight into that storage and never
/// touch the scratch; backends that must merge (mmap base + appended delta)
/// materialize into the scratch and return a view of it. Callers that need
/// the neighbors beyond these bounds must copy the entries out. Spans are
/// trivially copyable handles — pass them by value.
struct NeighborSpan {
  const TemporalNeighbor* data = nullptr;
  int64_t count = 0;
  const TemporalNeighbor* begin() const { return data; }
  const TemporalNeighbor* end() const { return data + count; }
  bool empty() const { return count == 0; }
  const TemporalNeighbor& operator[](int64_t i) const { return data[i]; }
};
static_assert(std::is_trivially_copyable_v<NeighborSpan>,
              "NeighborSpan must stay a cheap value-type handle; it is "
              "passed by value throughout the samplers");

/// \brief Caller-provided staging buffer for neighbor queries. Purely an
/// allocation-reuse vehicle: a query fills it only when the backend cannot
/// answer with a direct borrow (see NeighborSpan). Reusing one scratch
/// across the sequential queries of a traversal amortizes the allocation;
/// concurrent queries need one scratch each (scratches are not
/// thread-safe, stores are).
class NeighborScratch {
 public:
  std::vector<TemporalNeighbor>& buffer() { return buffer_; }

 private:
  std::vector<TemporalNeighbor> buffer_;
};

/// \brief Abstract temporal-graph storage: the query surface every layer
/// above the storage substrate (samplers, batch assembly, the training
/// runtime, the serving engine) programs against.
///
/// Two families of implementations exist:
///  - graph::TemporalGraph — the in-memory CSR store (laptop scale,
///    zero-copy everywhere);
///  - storage::ShardedGraphStore — the memory-mapped, hash-partitioned
///    event-log store (production scale, supports concurrent append).
///
/// \par Determinism contract
/// Every query is a pure function of the logical event set: two stores
/// holding the same events return identical results for every method,
/// regardless of backend, shard count, or whether events arrived via bulk
/// build or streaming append. The samplers inherit bit-identical behavior
/// from this (pinned by tests/storage_test.cc and the golden suites).
///
/// \par Thread safety
/// All const queries on one store may run concurrently with each other
/// without external locking. Mutating operations (where a backend has any)
/// define their own interleaving guarantees; see the backend's class
/// comment.
class GraphStore {
 public:
  virtual ~GraphStore() = default;

  /// Size of the node-id space; every event endpoint is in [0, num_nodes).
  virtual int64_t num_nodes() const = 0;
  /// Total number of events, in chronological index order.
  virtual int64_t num_events() const = 0;

  /// Earliest / latest event time (0 if empty).
  virtual double min_time() const = 0;
  virtual double max_time() const = 0;

  /// \brief The event at chronological index `index` (checked).
  virtual Event EventAt(int64_t index) const = 0;

  /// \brief Copies the chronological event range [begin, end) into `*out`
  /// (replacing its contents). Checked: 0 <= begin <= end <= num_events().
  /// This is the bulk event-iteration primitive chronological batching is
  /// built on.
  virtual void ReadEvents(int64_t begin, int64_t end,
                          std::vector<Event>* out) const = 0;

  /// \brief All neighbors of `node` with interaction time strictly before
  /// `time`, in chronological order (N_i^t of Definition 1; T_i^t is the
  /// `time` field of each entry). `scratch` may back the returned span —
  /// see the NeighborSpan lifetime contract. Backends that never need the
  /// scratch accept nullptr; portable callers always pass one.
  virtual NeighborSpan NeighborsBefore(NodeId node, double time,
                                       NeighborScratch* scratch) const = 0;

  /// Total number of interactions involving `node` (any time).
  virtual int64_t Degree(NodeId node) const = 0;

  /// \brief Events with time in [t_lo, t_hi).
  virtual std::vector<Event> EventsInWindow(double t_lo, double t_hi) const;

  /// \brief Index of the first event with time >= t.
  virtual int64_t LowerBoundEvent(double t) const;

  /// \brief Whether `node` appears in at least one event.
  bool HasInteractions(NodeId node) const { return Degree(node) > 0; }

  /// \brief Ids of all nodes with at least one event before `time`
  /// (V^t of Definition 1).
  std::vector<NodeId> NodesBefore(double time) const;

  /// Graph density |E| / (|V|^2), mirroring Table IV's statistics column.
  double Density() const;

  /// Human-readable summary (nodes/edges/time span/density).
  std::string StatsString() const;

 protected:
  /// Backend tag used by StatsString ("TemporalGraph", "ShardedGraphStore").
  virtual std::string_view store_name() const { return "GraphStore"; }
};

}  // namespace cpdg::graph

#endif  // CPDG_GRAPH_GRAPH_STORE_H_
