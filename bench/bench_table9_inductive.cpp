// Reproduces Table IX: inductive dynamic link prediction with the JODIE
// encoder — "No Pre-train" vs CPDG under the three transfer settings, on
// the four downstream fields. Only test events touching a node unseen
// during downstream fine-tuning are scored. Expected shape: CPDG > no
// pre-training everywhere, with the largest gains under time transfer.
//
// The real datasets continuously accrue brand-new users, so unseen nodes
// occur naturally; the dense synthetic graphs do not, so this bench
// *constructs* the inductive population by holding out a fraction of
// users from the fine-tuning (and validation) streams. Held-out users
// first appear in the test stream — exactly the "new node" scenario of
// the paper's inductive study, where only pre-trained knowledge (general
// parameters and, for CPDG, evolution information) can help.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "util/table_printer.h"

namespace {

using namespace cpdg;

/// Removes every fine-tune/validation event touching a held-out user
/// (hash-selected fraction of the user id space), so those users debut in
/// the test stream.
data::TransferDataset MakeInductive(data::TransferDataset ds,
                                    int64_t num_users, double holdout_frac) {
  auto held_out = [&](graph::NodeId v) {
    if (v >= num_users) return false;  // only users are held out
    uint64_t h = static_cast<uint64_t>(v) * 0x9E3779B97F4A7C15ULL;
    return static_cast<double>(h >> 11) * 0x1.0p-53 < holdout_frac;
  };
  std::vector<graph::Event> train;
  for (const graph::Event& e : ds.downstream_train_graph.events()) {
    if (!held_out(e.src) && !held_out(e.dst)) train.push_back(e);
  }
  ds.downstream_train_graph =
      graph::TemporalGraph::Create(ds.num_nodes, std::move(train))
          .ValueOrDie();
  std::vector<graph::Event> val;
  for (const graph::Event& e : ds.downstream_val_events) {
    if (!held_out(e.src) && !held_out(e.dst)) val.push_back(e);
  }
  ds.downstream_val_events = std::move(val);
  return ds;
}

}  // namespace

int main() {
  bench::ExperimentScale scale = bench::ExperimentScale::FromEnv();
  constexpr double kHoldoutFraction = 0.25;
  std::printf(
      "Table IX reproduction: inductive link prediction, JODIE encoder "
      "(seeds=%lld)\n\n",
      static_cast<long long>(scale.num_seeds));

  data::TransferBenchmarkBuilder amazon(
      bench::ScaleSpec(data::MakeAmazonLike(), scale.event_scale), 20240901);
  data::TransferBenchmarkBuilder gowalla(
      bench::ScaleSpec(data::MakeGowallaLike(), scale.event_scale),
      20240902);

  struct Field {
    const char* label;
    data::TransferBenchmarkBuilder* builder;
    int64_t field;
  };
  std::vector<Field> fields = {
      {"Beauty", &amazon, 0},
      {"Luxury", &amazon, 1},
      {"Entertainment", &gowalla, 0},
      {"Outdoors", &gowalla, 1},
  };

  TablePrinter table({"Field", "Setting", "AUC", "AP"});
  for (const Field& f : fields) {
    // "No Pre-train" control, evaluated on the time-transfer dataset (the
    // downstream data is identical across settings).
    int64_t num_users = f.builder->universe().spec().num_users;
    data::TransferDataset base_ds =
        MakeInductive(f.builder->Build(data::TransferSetting::kTime, f.field),
                      num_users, kHoldoutFraction);
    bench::MethodSpec none = bench::MethodSpec::Cpdg(
        dgnn::EncoderType::kJodie);
    none.pretrain = false;
    bench::AggregatedResult base = bench::RunLinkPredictionSeeds(
        none, base_ds, scale, /*inductive=*/true);
    table.AddRow({f.label, "No Pre-train",
                  TablePrinter::FormatMeanStd(base.auc.mean(),
                                              base.auc.stddev()),
                  TablePrinter::FormatMeanStd(base.ap.mean(),
                                              base.ap.stddev())});

    for (auto setting :
         {data::TransferSetting::kTime, data::TransferSetting::kField,
          data::TransferSetting::kTimeField}) {
      data::TransferDataset ds = MakeInductive(
          f.builder->Build(setting, f.field), num_users, kHoldoutFraction);
      bench::MethodSpec cpdg =
          bench::MethodSpec::Cpdg(dgnn::EncoderType::kJodie);
      bench::AggregatedResult agg = bench::RunLinkPredictionSeeds(
          cpdg, ds, scale, /*inductive=*/true);
      char label[48];
      std::snprintf(label, sizeof(label), "CPDG (%s)",
                    data::TransferSettingName(setting));
      char auc_cell[64], ap_cell[64];
      std::snprintf(auc_cell, sizeof(auc_cell), "%s (%+.2f%%)",
                    TablePrinter::FormatMeanStd(agg.auc.mean(),
                                                agg.auc.stddev())
                        .c_str(),
                    100.0 * (agg.auc.mean() - base.auc.mean()) /
                        std::max(1e-9, base.auc.mean()));
      std::snprintf(ap_cell, sizeof(ap_cell), "%s (%+.2f%%)",
                    TablePrinter::FormatMeanStd(agg.ap.mean(),
                                                agg.ap.stddev())
                        .c_str(),
                    100.0 * (agg.ap.mean() - base.ap.mean()) /
                        std::max(1e-9, base.ap.mean()));
      table.AddRow({f.label, label, auc_cell, ap_cell});
    }
    table.AddSeparator();
    std::fprintf(stderr, "  [table9] %s done\n", f.label);
  }
  table.Print(std::cout);
  return 0;
}
