// Reproduces Table X: fine-tuning strategy comparison on Amazon-Beauty and
// Amazon-Luxury under time+field transfer — Full fine-tuning vs the three
// EIE variants (mean / attention / GRU). Expected shape: every EIE variant
// >= Full, with EIE-GRU best.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "util/table_printer.h"

int main() {
  using namespace cpdg;
  bench::ExperimentScale scale = bench::ExperimentScale::FromEnv();
  std::printf(
      "Table X reproduction: fine-tuning strategies, time+field transfer "
      "(seeds=%lld)\n\n",
      static_cast<long long>(scale.num_seeds));

  data::TransferBenchmarkBuilder amazon(
      bench::ScaleSpec(data::MakeAmazonLike(), scale.event_scale), 20241001);

  struct Variant {
    const char* label;
    bool use_eie;
    core::EieVariant variant;
  };
  const std::vector<Variant> variants = {
      {"Full", false, core::EieVariant::kMean},
      {"EIE-mean", true, core::EieVariant::kMean},
      {"EIE-attn", true, core::EieVariant::kAttention},
      {"EIE-GRU", true, core::EieVariant::kGru},
  };

  for (int64_t field = 0; field < 2; ++field) {
    data::TransferDataset ds =
        amazon.Build(data::TransferSetting::kTimeField, field);
    TablePrinter table({"Strategy", "AUC", "AP"});
    for (const Variant& v : variants) {
      bench::MethodSpec spec = bench::MethodSpec::Cpdg();
      spec.cpdg_use_eie = v.use_eie;
      spec.eie_variant = v.variant;
      bench::AggregatedResult agg =
          bench::RunLinkPredictionSeeds(spec, ds, scale);
      table.AddRow({v.label,
                    TablePrinter::FormatMeanStd(agg.auc.mean(),
                                                agg.auc.stddev()),
                    TablePrinter::FormatMeanStd(agg.ap.mean(),
                                                agg.ap.stddev())});
      std::fprintf(stderr, "  [table10/field%lld] %s done\n",
                   static_cast<long long>(field), v.label);
    }
    std::printf("--- %s ---\n",
                field == 0 ? "Amazon-Beauty" : "Amazon-Luxury");
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
