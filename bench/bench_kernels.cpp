// Kernel-threading benchmark: times MatMul forward and forward+backward
// serial vs parallel across a thread sweep, plus one full link-prediction
// cell per thread count, and verifies every parallel result is bitwise
// identical to the serial run (the thread pool's static-partition
// contract). Results land in BENCH_kernels.json next to the binary.
//
// Measurement protocol: one untimed warm-up rep (first touch, pool
// spin-up, pack-buffer growth), then each rep timed individually;
// `seconds` is the best (minimum) rep and `spread_pct` is the max-vs-min
// run-to-run spread, so a noisy neighbour inflates the spread instead of
// silently corrupting the headline number. GFLOPS are derived from the
// same tensor.matmul.{fwd,bwd}_flops counters the trace/metrics export
// reads, so bench output and traces cannot disagree on the flop model.
//
// Usage:
//   bench_kernels          full sweep: 512x512x512, threads {1,2,4,8}
//   bench_kernels --smoke  CI-sized:   128x128x128, threads {1,2}
//
// Exits nonzero if any parallel result deviates from serial by a single
// bit, so the ctest `bench-smoke` registration doubles as a determinism
// check.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace cpdg;
namespace ts = cpdg::tensor;

struct Record {
  std::string name;
  int threads = 1;
  double seconds = 0.0;    // best (minimum) timed rep
  double spread_pct = 0.0; // (slowest - fastest) / fastest * 100
  double gflops = 0.0;
  double speedup_vs_1 = 0.0;
  bool bitwise_equal_to_serial = true;
};

/// Best-of-N reduction over individually timed reps.
struct RepStats {
  double best = 0.0;
  double spread_pct = 0.0;
};

RepStats Reduce(const std::vector<double>& rep_seconds) {
  RepStats stats;
  const auto [lo, hi] =
      std::minmax_element(rep_seconds.begin(), rep_seconds.end());
  stats.best = *lo;
  if (*lo > 0.0) stats.spread_pct = (*hi - *lo) / *lo * 100.0;
  return stats;
}

bool SameBits(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

std::vector<float> Snapshot(const float* p, int64_t n) {
  return std::vector<float>(p, p + n);
}

// --- MatMul kernels -------------------------------------------------------

struct MatMulOutputs {
  std::vector<float> out, ga, gb;
};

MatMulOutputs TimeMatMul(int64_t m, int64_t k, int64_t n, int reps,
                         bool backward, RepStats* stats_out,
                         double* flops_per_rep_out) {
  Rng rng(42);
  ts::Tensor a = ts::Tensor::RandomUniform(m, k, 0.5f, &rng, backward);
  ts::Tensor b = ts::Tensor::RandomUniform(k, n, 0.5f, &rng, backward);
  MatMulOutputs outputs;
  obs::Counter& fwd_flops =
      obs::MetricsRegistry::Global().counter("tensor.matmul.fwd_flops");
  obs::Counter& bwd_flops =
      obs::MetricsRegistry::Global().counter("tensor.matmul.bwd_flops");
  // Warm-up rep excluded from timing (first touch, pool spin-up,
  // pack-buffer growth).
  {
    ts::Tensor out = ts::MatMul(a, b);
    if (backward) out.Backward();
  }
  if (backward) {
    std::memset(a.grad(), 0, sizeof(float) * static_cast<size_t>(a.size()));
    std::memset(b.grad(), 0, sizeof(float) * static_cast<size_t>(b.size()));
  }
  const int64_t flops_before = fwd_flops.value() + bwd_flops.value();
  std::vector<double> rep_seconds;
  rep_seconds.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    ts::Tensor out = ts::MatMul(a, b);
    if (backward) out.Backward();
    rep_seconds.push_back(timer.ElapsedSeconds());
    if (r == reps - 1) {
      outputs.out = Snapshot(out.data(), out.size());
      if (backward) {
        outputs.ga = Snapshot(a.grad(), a.size());
        outputs.gb = Snapshot(b.grad(), b.size());
      }
    }
  }
  // Flop model comes from the op counters themselves, not a local
  // re-derivation, so the bench and the metrics/trace export agree.
  *flops_per_rep_out = static_cast<double>(fwd_flops.value() +
                                           bwd_flops.value() - flops_before) /
                       reps;
  *stats_out = Reduce(rep_seconds);
  return outputs;
}

// --- Full bench cell ------------------------------------------------------

data::UniverseSpec CellUniverse() {
  data::UniverseSpec spec;
  spec.num_users = 50;
  data::FieldSpec a;
  a.name = "A";
  a.num_items = 30;
  a.num_communities = 4;
  a.num_events_early = 600;
  a.num_events_late = 400;
  data::FieldSpec pre = a;
  pre.name = "Pre";
  spec.fields = {a, pre};
  return spec;
}

bench::ExperimentScale CellScale() {
  bench::ExperimentScale scale;
  scale.num_seeds = 2;
  scale.pretrain_epochs = 1;
  scale.finetune_epochs = 1;
  scale.batch_size = 200;
  scale.num_neighbors = 5;
  return scale;
}

// --- JSON output ----------------------------------------------------------

void WriteJson(const std::vector<Record>& records, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const char* simd = ts::simd::ModeName(ts::simd::ActiveMode());
  std::fputs("[\n", f);
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"threads\": %d, \"seconds\": %.6g, "
                 "\"spread_pct\": %.2f, \"gflops\": %.4g, "
                 "\"speedup_vs_1\": %.4g, \"bitwise_equal_to_serial\": %s, "
                 "\"hardware_concurrency\": %u, \"simd\": \"%s\"}%s\n",
                 r.name.c_str(), r.threads, r.seconds, r.spread_pct, r.gflops,
                 r.speedup_vs_1, r.bitwise_equal_to_serial ? "true" : "false",
                 hw, simd, i + 1 < records.size() ? "," : "");
  }
  std::fputs("]\n", f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const int64_t dim = smoke ? 128 : 512;
  const int reps = smoke ? 3 : 5;
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  std::printf("kernel threading benchmark (%s): MatMul %lldx%lldx%lld, "
              "threads {",
              smoke ? "smoke" : "full", static_cast<long long>(dim),
              static_cast<long long>(dim), static_cast<long long>(dim));
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::printf("%s%d", i != 0u ? "," : "", thread_counts[i]);
  }
  std::printf("}; hardware_concurrency=%u; simd=%s\n\n",
              std::thread::hardware_concurrency(),
              ts::simd::ModeName(ts::simd::ActiveMode()));

  std::vector<Record> records;
  bool all_bitwise = true;

  for (bool backward : {false, true}) {
    const char* name = backward ? "matmul_fwd_bwd" : "matmul_fwd";
    MatMulOutputs serial;
    double serial_seconds = 0.0;
    for (int threads : thread_counts) {
      util::ThreadPool::SetGlobalNumThreads(threads);
      Record rec;
      rec.name = name;
      rec.threads = threads;
      RepStats stats;
      double flops_per_rep = 0.0;
      MatMulOutputs got =
          TimeMatMul(dim, dim, dim, reps, backward, &stats, &flops_per_rep);
      rec.seconds = stats.best;
      rec.spread_pct = stats.spread_pct;
      rec.gflops = flops_per_rep / rec.seconds * 1e-9;
      if (threads == 1) {
        serial = got;
        serial_seconds = rec.seconds;
        rec.speedup_vs_1 = 1.0;
      } else {
        rec.speedup_vs_1 = serial_seconds / rec.seconds;
        rec.bitwise_equal_to_serial =
            SameBits(serial.out, got.out) && SameBits(serial.ga, got.ga) &&
            SameBits(serial.gb, got.gb);
      }
      all_bitwise = all_bitwise && rec.bitwise_equal_to_serial;
      std::printf("%-16s threads=%d  %8.4f s (±%.1f%%)  %7.2f GFLOP/s  "
                  "speedup %.2fx  bitwise %s\n",
                  name, threads, rec.seconds, rec.spread_pct, rec.gflops,
                  rec.speedup_vs_1,
                  rec.bitwise_equal_to_serial ? "ok" : "MISMATCH");
      records.push_back(rec);
    }
  }

  // Full cell: pre-train + fine-tune + eval, per thread count. One untimed
  // warm-up run, then best-of-N like the kernels (the run is deterministic
  // per seed, so extra reps only tighten timing); bitwise check on the
  // AUC/AP doubles.
  {
    const int cell_reps = smoke ? 1 : 2;
    data::TransferBenchmarkBuilder builder(CellUniverse(), 77);
    data::TransferDataset ds = builder.Build(data::TransferSetting::kTime, 0);
    bench::LinkPredResult serial_cell;
    double serial_seconds = 0.0;
    for (int threads : thread_counts) {
      util::ThreadPool::SetGlobalNumThreads(threads);
      Record rec;
      rec.name = "link_pred_cell";
      rec.threads = threads;
      bench::RunLinkPrediction(bench::MethodSpec::Cpdg(), ds, CellScale(),
                               /*seed=*/1);
      std::vector<double> rep_seconds;
      bench::LinkPredResult cell;
      for (int r = 0; r < cell_reps; ++r) {
        util::Timer timer;
        cell = bench::RunLinkPrediction(bench::MethodSpec::Cpdg(), ds,
                                        CellScale(), /*seed=*/1);
        rep_seconds.push_back(timer.ElapsedSeconds());
      }
      const RepStats stats = Reduce(rep_seconds);
      rec.seconds = stats.best;
      rec.spread_pct = stats.spread_pct;
      if (threads == 1) {
        serial_cell = cell;
        serial_seconds = rec.seconds;
        rec.speedup_vs_1 = 1.0;
      } else {
        rec.speedup_vs_1 = serial_seconds / rec.seconds;
        rec.bitwise_equal_to_serial =
            cell.auc == serial_cell.auc && cell.ap == serial_cell.ap;
      }
      all_bitwise = all_bitwise && rec.bitwise_equal_to_serial;
      std::printf("%-16s threads=%d  %8.4f s (±%.1f%%)  %7s           "
                  "speedup %.2fx  bitwise %s\n",
                  "link_pred_cell", threads, rec.seconds, rec.spread_pct, "",
                  rec.speedup_vs_1,
                  rec.bitwise_equal_to_serial ? "ok" : "MISMATCH");
      records.push_back(rec);
    }
  }

  util::ThreadPool::SetGlobalNumThreads(util::ThreadPool::DefaultNumThreads());
  WriteJson(records, "BENCH_kernels.json");

  // Observability side channel next to the bench output: a flat metrics
  // snapshot always, plus the Chrome trace when CPDG_TRACE=1.
  {
    cpdg::Status status = obs::MetricsRegistry::Global().WriteJson(
        "BENCH_kernels_metrics.json");
    if (status.ok()) {
      std::printf("wrote BENCH_kernels_metrics.json\n");
    } else {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
    }
    if (obs::TraceEnabled()) {
      status = obs::Profiler::Global().WriteChromeTrace(
          "BENCH_kernels_trace.json");
      if (status.ok()) {
        std::printf("wrote BENCH_kernels_trace.json\n");
      } else {
        std::fprintf(stderr, "trace export failed: %s\n",
                     status.ToString().c_str());
      }
    }
  }

  if (!all_bitwise) {
    std::fprintf(stderr,
                 "FAIL: parallel result differs bitwise from serial\n");
    return 1;
  }
  return 0;
}
