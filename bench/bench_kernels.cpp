// Kernel-threading benchmark: times MatMul forward and forward+backward
// serial vs parallel across a thread sweep, plus one full link-prediction
// cell per thread count, and verifies every parallel result is bitwise
// identical to the serial run (the thread pool's static-partition
// contract). Results land in BENCH_kernels.json next to the binary.
//
// Usage:
//   bench_kernels          full sweep: 512x512x512, threads {1,2,4,8}
//   bench_kernels --smoke  CI-sized:   128x128x128, threads {1,2}
//
// Exits nonzero if any parallel result deviates from serial by a single
// bit, so the ctest `bench-smoke` registration doubles as a determinism
// check.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace cpdg;
namespace ts = cpdg::tensor;

struct Record {
  std::string name;
  int threads = 1;
  double seconds = 0.0;
  double gflops = 0.0;
  double speedup_vs_1 = 0.0;
  bool bitwise_equal_to_serial = true;
};

bool SameBits(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

std::vector<float> Snapshot(const float* p, int64_t n) {
  return std::vector<float>(p, p + n);
}

// --- MatMul kernels -------------------------------------------------------

struct MatMulOutputs {
  std::vector<float> out, ga, gb;
};

MatMulOutputs TimeMatMul(int64_t m, int64_t k, int64_t n, int reps,
                         bool backward, double* seconds_out) {
  Rng rng(42);
  ts::Tensor a = ts::Tensor::RandomUniform(m, k, 0.5f, &rng, backward);
  ts::Tensor b = ts::Tensor::RandomUniform(k, n, 0.5f, &rng, backward);
  MatMulOutputs outputs;
  // Warm-up rep excluded from timing (first touch, pool spin-up).
  {
    ts::Tensor out = ts::MatMul(a, b);
    if (backward) out.Backward();
  }
  if (backward) {
    std::memset(a.grad(), 0, sizeof(float) * static_cast<size_t>(a.size()));
    std::memset(b.grad(), 0, sizeof(float) * static_cast<size_t>(b.size()));
  }
  util::Timer timer;
  for (int r = 0; r < reps; ++r) {
    ts::Tensor out = ts::MatMul(a, b);
    if (backward) out.Backward();
    if (r == reps - 1) {
      outputs.out = Snapshot(out.data(), out.size());
      if (backward) {
        outputs.ga = Snapshot(a.grad(), a.size());
        outputs.gb = Snapshot(b.grad(), b.size());
      }
    }
  }
  *seconds_out = timer.ElapsedSeconds() / reps;
  return outputs;
}

// --- Full bench cell ------------------------------------------------------

data::UniverseSpec CellUniverse() {
  data::UniverseSpec spec;
  spec.num_users = 50;
  data::FieldSpec a;
  a.name = "A";
  a.num_items = 30;
  a.num_communities = 4;
  a.num_events_early = 600;
  a.num_events_late = 400;
  data::FieldSpec pre = a;
  pre.name = "Pre";
  spec.fields = {a, pre};
  return spec;
}

bench::ExperimentScale CellScale() {
  bench::ExperimentScale scale;
  scale.num_seeds = 2;
  scale.pretrain_epochs = 1;
  scale.finetune_epochs = 1;
  scale.batch_size = 200;
  scale.num_neighbors = 5;
  return scale;
}

// --- JSON output ----------------------------------------------------------

void WriteJson(const std::vector<Record>& records, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fputs("[\n", f);
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"threads\": %d, \"seconds\": %.6g, "
                 "\"gflops\": %.4g, \"speedup_vs_1\": %.4g, "
                 "\"bitwise_equal_to_serial\": %s}%s\n",
                 r.name.c_str(), r.threads, r.seconds, r.gflops,
                 r.speedup_vs_1, r.bitwise_equal_to_serial ? "true" : "false",
                 i + 1 < records.size() ? "," : "");
  }
  std::fputs("]\n", f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const int64_t dim = smoke ? 128 : 512;
  const int reps = smoke ? 3 : 5;
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  std::printf("kernel threading benchmark (%s): MatMul %lldx%lldx%lld, "
              "threads {",
              smoke ? "smoke" : "full", static_cast<long long>(dim),
              static_cast<long long>(dim), static_cast<long long>(dim));
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    std::printf("%s%d", i != 0u ? "," : "", thread_counts[i]);
  }
  std::printf("}; hardware_concurrency=%d\n\n",
              util::ThreadPool::DefaultNumThreads());

  std::vector<Record> records;
  bool all_bitwise = true;

  // Forward flops: 2*m*k*n. Backward adds dA (2*m*n*k) and dB (2*k*m*n).
  const double fwd_flops = 2.0 * static_cast<double>(dim) * dim * dim;

  for (bool backward : {false, true}) {
    const char* name = backward ? "matmul_fwd_bwd" : "matmul_fwd";
    const double flops = backward ? 3.0 * fwd_flops : fwd_flops;
    MatMulOutputs serial;
    double serial_seconds = 0.0;
    for (int threads : thread_counts) {
      util::ThreadPool::SetGlobalNumThreads(threads);
      Record rec;
      rec.name = name;
      rec.threads = threads;
      MatMulOutputs got =
          TimeMatMul(dim, dim, dim, reps, backward, &rec.seconds);
      rec.gflops = flops / rec.seconds * 1e-9;
      if (threads == 1) {
        serial = got;
        serial_seconds = rec.seconds;
        rec.speedup_vs_1 = 1.0;
      } else {
        rec.speedup_vs_1 = serial_seconds / rec.seconds;
        rec.bitwise_equal_to_serial =
            SameBits(serial.out, got.out) && SameBits(serial.ga, got.ga) &&
            SameBits(serial.gb, got.gb);
      }
      all_bitwise = all_bitwise && rec.bitwise_equal_to_serial;
      std::printf("%-16s threads=%d  %8.4f s  %7.2f GFLOP/s  speedup %.2fx"
                  "  bitwise %s\n",
                  name, threads, rec.seconds, rec.gflops, rec.speedup_vs_1,
                  rec.bitwise_equal_to_serial ? "ok" : "MISMATCH");
      records.push_back(rec);
    }
  }

  // Full cell: pre-train + fine-tune + eval, per thread count. Timed once
  // each (the cell is seconds-scale); bitwise check on the AUC/AP doubles.
  {
    data::TransferBenchmarkBuilder builder(CellUniverse(), 77);
    data::TransferDataset ds = builder.Build(data::TransferSetting::kTime, 0);
    bench::LinkPredResult serial_cell;
    double serial_seconds = 0.0;
    for (int threads : thread_counts) {
      util::ThreadPool::SetGlobalNumThreads(threads);
      Record rec;
      rec.name = "link_pred_cell";
      rec.threads = threads;
      util::Timer timer;
      bench::LinkPredResult cell = bench::RunLinkPrediction(
          bench::MethodSpec::Cpdg(), ds, CellScale(), /*seed=*/1);
      rec.seconds = timer.ElapsedSeconds();
      if (threads == 1) {
        serial_cell = cell;
        serial_seconds = rec.seconds;
        rec.speedup_vs_1 = 1.0;
      } else {
        rec.speedup_vs_1 = serial_seconds / rec.seconds;
        rec.bitwise_equal_to_serial =
            cell.auc == serial_cell.auc && cell.ap == serial_cell.ap;
      }
      all_bitwise = all_bitwise && rec.bitwise_equal_to_serial;
      std::printf("%-16s threads=%d  %8.4f s  %7s           speedup %.2fx"
                  "  bitwise %s\n",
                  "link_pred_cell", threads, rec.seconds, "",
                  rec.speedup_vs_1,
                  rec.bitwise_equal_to_serial ? "ok" : "MISMATCH");
      records.push_back(rec);
    }
  }

  util::ThreadPool::SetGlobalNumThreads(util::ThreadPool::DefaultNumThreads());
  WriteJson(records, "BENCH_kernels.json");

  // Observability side channel next to the bench output: a flat metrics
  // snapshot always, plus the Chrome trace when CPDG_TRACE=1.
  {
    cpdg::Status status = obs::MetricsRegistry::Global().WriteJson(
        "BENCH_kernels_metrics.json");
    if (status.ok()) {
      std::printf("wrote BENCH_kernels_metrics.json\n");
    } else {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
    }
    if (obs::TraceEnabled()) {
      status = obs::Profiler::Global().WriteChromeTrace(
          "BENCH_kernels_trace.json");
      if (status.ok()) {
        std::printf("wrote BENCH_kernels_trace.json\n");
      } else {
        std::fprintf(stderr, "trace export failed: %s\n",
                     status.ToString().c_str());
      }
    }
  }

  if (!all_bitwise) {
    std::fprintf(stderr,
                 "FAIL: parallel result differs bitwise from serial\n");
    return 1;
  }
  return 0;
}
