// Reproduces Figure 5: ablation of CPDG's three modules — temporal
// contrast (TC), structural contrast (SC), and EIE fine-tuning — on
// Amazon-Beauty and Amazon-Luxury under time+field transfer. Expected
// shape: every ablated variant is worse than full CPDG; which of w/o TC
// vs w/o SC hurts more differs per field (temporal information dominates
// on Beauty, structural on Luxury).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "util/table_printer.h"

int main() {
  using namespace cpdg;
  bench::ExperimentScale scale = bench::ExperimentScale::FromEnv();
  std::printf(
      "Figure 5 reproduction: CPDG module ablations, time+field transfer "
      "(seeds=%lld)\n\n",
      static_cast<long long>(scale.num_seeds));

  data::TransferBenchmarkBuilder amazon(
      bench::ScaleSpec(data::MakeAmazonLike(), scale.event_scale), 20240551);

  struct Variant {
    const char* label;
    bool tc, sc, eie;
  };
  const std::vector<Variant> variants = {
      {"CPDG (full)", true, true, true},
      {"w/o TC", false, true, true},
      {"w/o SC", true, false, true},
      {"w/o EIE", true, true, false},
  };

  for (int64_t field = 0; field < 2; ++field) {
    data::TransferDataset ds =
        amazon.Build(data::TransferSetting::kTimeField, field);
    TablePrinter table({"Variant", "AUC", "AP"});
    for (const Variant& v : variants) {
      bench::MethodSpec spec = bench::MethodSpec::Cpdg();
      spec.cpdg_use_temporal_contrast = v.tc;
      spec.cpdg_use_structural_contrast = v.sc;
      spec.cpdg_use_eie = v.eie;
      bench::AggregatedResult agg =
          bench::RunLinkPredictionSeeds(spec, ds, scale);
      table.AddRow({v.label,
                    TablePrinter::FormatMeanStd(agg.auc.mean(),
                                                agg.auc.stddev()),
                    TablePrinter::FormatMeanStd(agg.ap.mean(),
                                                agg.ap.stddev())});
      std::fprintf(stderr, "  [fig5/field%lld] %s done\n",
                   static_cast<long long>(field), v.label);
    }
    std::printf("--- %s ---\n",
                field == 0 ? "Amazon-Beauty" : "Amazon-Luxury");
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
