// Reproduces Figure 6: sensitivity of CPDG to the structural/temporal
// trade-off beta of Eq. (17), on Amazon-Beauty and Amazon-Luxury under
// time+field transfer. Expected shape: Beauty degrades as beta grows
// (temporal information dominates there), Luxury stays comparatively flat.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "util/table_printer.h"

int main() {
  using namespace cpdg;
  bench::ExperimentScale scale = bench::ExperimentScale::FromEnv();
  std::printf(
      "Figure 6 reproduction: beta sweep of Eq. (17), time+field transfer "
      "(seeds=%lld)\n\n",
      static_cast<long long>(scale.num_seeds));

  data::TransferBenchmarkBuilder amazon(
      bench::ScaleSpec(data::MakeAmazonLike(), scale.event_scale), 20240661);

  const std::vector<float> betas = {0.1f, 0.3f, 0.5f, 0.7f, 0.9f};

  for (int64_t field = 0; field < 2; ++field) {
    data::TransferDataset ds =
        amazon.Build(data::TransferSetting::kTimeField, field);
    TablePrinter table({"beta", "AUC", "AP"});
    for (float beta : betas) {
      bench::MethodSpec spec = bench::MethodSpec::Cpdg();
      spec.beta = beta;
      bench::AggregatedResult agg =
          bench::RunLinkPredictionSeeds(spec, ds, scale);
      table.AddRow({TablePrinter::FormatFloat(beta, 1),
                    TablePrinter::FormatMeanStd(agg.auc.mean(),
                                                agg.auc.stddev()),
                    TablePrinter::FormatMeanStd(agg.ap.mean(),
                                                agg.ap.stddev())});
      std::fprintf(stderr, "  [fig6/field%lld] beta=%.1f done\n",
                   static_cast<long long>(field), beta);
    }
    std::printf("--- %s ---\n",
                field == 0 ? "Amazon-Beauty" : "Amazon-Luxury");
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
