// Reproduces Table VI: the Meituan-like industrial dataset under time
// transfer — each DGNN encoder (DyRep / JODIE / TGN) with vanilla
// task-supervised pre-training vs. the same encoder pre-trained with CPDG.
// Expected shape: "with CPDG" >= vanilla for every backbone.

#include <cstdio>
#include <iostream>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "util/table_printer.h"

int main() {
  using namespace cpdg;
  bench::ExperimentScale scale = bench::ExperimentScale::FromEnv();
  std::printf(
      "Table VI reproduction: Meituan-like industrial dataset, time "
      "transfer (seeds=%lld)\n\n",
      static_cast<long long>(scale.num_seeds));

  data::TransferBenchmarkBuilder builder(
      bench::ScaleSpec(data::MakeMeituanLike(), scale.event_scale),
      20240601);
  data::TransferDataset ds = builder.BuildSingleField();

  struct Row {
    bench::MethodId vanilla;
    dgnn::EncoderType backbone;
  };
  const Row rows[] = {
      {bench::MethodId::kDyRep, dgnn::EncoderType::kDyRep},
      {bench::MethodId::kJodie, dgnn::EncoderType::kJodie},
      {bench::MethodId::kTgn, dgnn::EncoderType::kTgn},
  };

  TablePrinter table({"Method", "AUC", "AP"});
  for (const Row& row : rows) {
    bench::AggregatedResult vanilla = bench::RunLinkPredictionSeeds(
        bench::MethodSpec::Baseline(row.vanilla), ds, scale);
    table.AddRow({bench::MethodName(row.vanilla),
                  TablePrinter::FormatMeanStd(vanilla.auc.mean(),
                                              vanilla.auc.stddev()),
                  TablePrinter::FormatMeanStd(vanilla.ap.mean(),
                                              vanilla.ap.stddev())});
    bench::AggregatedResult cpdg = bench::RunLinkPredictionSeeds(
        bench::MethodSpec::Cpdg(row.backbone), ds, scale);
    table.AddRow({std::string("  with CPDG"),
                  TablePrinter::FormatMeanStd(cpdg.auc.mean(),
                                              cpdg.auc.stddev()),
                  TablePrinter::FormatMeanStd(cpdg.ap.mean(),
                                              cpdg.ap.stddev())});
    table.AddSeparator();
    std::fprintf(stderr, "  [table6] %s done\n",
                 bench::MethodName(row.vanilla));
  }
  table.Print(std::cout);
  return 0;
}
