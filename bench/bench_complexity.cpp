// Micro-benchmarks backing the Sec. IV-D complexity analysis:
//  - eta-BFS / epsilon-DFS sampling cost as a function of width and depth
//    (the O(2 k^eta N) subgraph-pair sampling term);
//  - EIE fusion cost per variant (mean O(N+1), attn O(2N), GRU O(N d^2));
//  - DGNN encoder step cost per backbone;
//  - design-choice ablations called out in DESIGN.md: GRU-vs-RNN memory
//    updater and last-vs-mean message aggregation.

#include <benchmark/benchmark.h>

#include "graph/temporal_graph.h"
#include "core/evolution.h"
#include "data/generators.h"
#include "dgnn/encoder.h"
#include "sampler/samplers.h"
#include "util/rng.h"

namespace {

using namespace cpdg;

graph::TemporalGraph MakeGraph(int64_t num_events) {
  data::UniverseSpec spec;
  spec.num_users = 300;
  data::FieldSpec f;
  f.name = "bench";
  f.num_items = 200;
  f.num_events_early = num_events;
  spec.fields = {f};
  data::DynamicGraphUniverse universe(spec, 99);
  return graph::TemporalGraph::Create(universe.num_nodes(),
                                      universe.EarlyEvents(0))
      .ValueOrDie();
}

void BM_EtaBfsSampling(benchmark::State& state) {
  static graph::TemporalGraph g = MakeGraph(8000);
  sampler::StructuralTemporalSampler s(&g);
  sampler::StructuralTemporalSampler::Options opts;
  opts.width = state.range(0);
  opts.depth = state.range(1);
  Rng rng(1);
  graph::NodeId root = 0;
  for (auto _ : state) {
    auto sample = s.SampleEtaBfs(root, g.max_time() + 1.0,
                                 sampler::TemporalBias::kChronological,
                                 opts, &rng);
    benchmark::DoNotOptimize(sample.nodes.data());
    root = (root + 1) % 300;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EtaBfsSampling)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 3})
    ->Args({5, 2})
    ->Args({10, 2})
    ->Args({20, 2});

void BM_EpsilonDfsSampling(benchmark::State& state) {
  static graph::TemporalGraph g = MakeGraph(8000);
  sampler::StructuralTemporalSampler s(&g);
  sampler::StructuralTemporalSampler::Options opts;
  opts.width = state.range(0);
  opts.depth = state.range(1);
  graph::NodeId root = 0;
  for (auto _ : state) {
    auto sample = s.SampleEpsilonDfs(root, g.max_time() + 1.0, opts);
    benchmark::DoNotOptimize(sample.nodes.data());
    root = (root + 1) % 300;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpsilonDfsSampling)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 3})
    ->Args({5, 2});

void BM_TemporalProbabilities(benchmark::State& state) {
  std::vector<double> times(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < times.size(); ++i) {
    times[i] = static_cast<double>(i);
  }
  for (auto _ : state) {
    auto p = sampler::TemporalProbabilities(
        times, static_cast<double>(times.size()),
        sampler::TemporalBias::kChronological, 0.2);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_TemporalProbabilities)->Arg(8)->Arg(64)->Arg(512);

void BM_EieFusion(benchmark::State& state) {
  int64_t dim = 32;
  int64_t num_nodes = 512;
  dgnn::Memory mem(num_nodes, dim);
  core::EvolutionCheckpoints ckpts(num_nodes, dim);
  Rng fill(3);
  std::vector<graph::NodeId> all(num_nodes);
  for (int64_t i = 0; i < num_nodes; ++i) all[i] = i;
  for (int l = 0; l < 10; ++l) {
    mem.SetStates(all, tensor::Tensor::RandomUniform(num_nodes, dim, 1.0f,
                                                     &fill));
    ckpts.Record(mem);
  }
  Rng rng(7);
  auto variant = static_cast<core::EieVariant>(state.range(0));
  core::EvolutionFusion fusion(variant, dim, dim, &rng);
  std::vector<graph::NodeId> batch(all.begin(), all.begin() + 128);
  for (auto _ : state) {
    tensor::Tensor out = fusion.Forward(ckpts, batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(core::EieVariantName(variant));
}
BENCHMARK(BM_EieFusion)
    ->Arg(static_cast<int>(core::EieVariant::kMean))
    ->Arg(static_cast<int>(core::EieVariant::kAttention))
    ->Arg(static_cast<int>(core::EieVariant::kGru));

void EncoderStep(benchmark::State& state, dgnn::EncoderType type,
                 dgnn::MemoryUpdaterType updater,
                 dgnn::AggregatorType aggregator) {
  static graph::TemporalGraph g = MakeGraph(4000);
  Rng rng(11);
  dgnn::EncoderConfig config = dgnn::EncoderConfig::Preset(type,
                                                           g.num_nodes());
  config.updater = updater;
  config.aggregator = aggregator;
  config.memory_dim = 32;
  config.embed_dim = 32;
  config.time_dim = 8;
  config.num_neighbors = 5;
  dgnn::DgnnEncoder encoder(config, &g, &rng);

  const auto& events = g.events();
  size_t cursor = 0;
  const size_t batch_size = 100;
  for (auto _ : state) {
    size_t end = std::min(events.size(), cursor + batch_size);
    std::vector<graph::Event> batch(events.begin() + cursor,
                                    events.begin() + end);
    std::vector<graph::NodeId> srcs;
    std::vector<double> times;
    for (const auto& e : batch) {
      srcs.push_back(e.src);
      times.push_back(e.time);
    }
    encoder.BeginBatch();
    tensor::Tensor z = encoder.ComputeEmbeddings(srcs, times);
    benchmark::DoNotOptimize(z.data());
    encoder.CommitBatch(batch);
    cursor = end < events.size() ? end : 0;
    if (cursor == 0) encoder.memory().Reset();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}

void BM_EncoderStepJodie(benchmark::State& state) {
  EncoderStep(state, dgnn::EncoderType::kJodie,
              dgnn::MemoryUpdaterType::kRnn, dgnn::AggregatorType::kLast);
}
void BM_EncoderStepDyRep(benchmark::State& state) {
  EncoderStep(state, dgnn::EncoderType::kDyRep,
              dgnn::MemoryUpdaterType::kRnn, dgnn::AggregatorType::kLast);
}
void BM_EncoderStepTgn(benchmark::State& state) {
  EncoderStep(state, dgnn::EncoderType::kTgn, dgnn::MemoryUpdaterType::kGru,
              dgnn::AggregatorType::kLast);
}
// Design-choice ablations (DESIGN.md section 5).
void BM_EncoderStepTgnRnnUpdater(benchmark::State& state) {
  EncoderStep(state, dgnn::EncoderType::kTgn, dgnn::MemoryUpdaterType::kRnn,
              dgnn::AggregatorType::kLast);
}
void BM_EncoderStepTgnMeanAggregator(benchmark::State& state) {
  EncoderStep(state, dgnn::EncoderType::kTgn, dgnn::MemoryUpdaterType::kGru,
              dgnn::AggregatorType::kMean);
}
BENCHMARK(BM_EncoderStepJodie);
BENCHMARK(BM_EncoderStepDyRep);
BENCHMARK(BM_EncoderStepTgn);
BENCHMARK(BM_EncoderStepTgnRnnUpdater);
BENCHMARK(BM_EncoderStepTgnMeanAggregator);

}  // namespace

BENCHMARK_MAIN();
