// Reproduces Table IV: statistics of the experimental datasets per
// transfer setting (node counts, edge counts, density) — here for the
// synthetic stand-in datasets, so the reader can compare their shape
// (relative sizes, Gowalla denser than Amazon, pre-training spans larger
// than downstream spans) against the paper's table.

#include <cstdio>
#include <iostream>
#include <set>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "util/table_printer.h"

namespace {

using namespace cpdg;

/// Counts nodes that actually appear in the event list (Table IV counts
/// observed nodes, not the id-space size).
int64_t ActiveNodes(const graph::TemporalGraph& g) {
  std::set<graph::NodeId> seen;
  for (const auto& e : g.events()) {
    seen.insert(e.src);
    seen.insert(e.dst);
  }
  return static_cast<int64_t>(seen.size());
}

std::string Density(const graph::TemporalGraph& g, int64_t active_nodes) {
  double d = active_nodes > 0
                 ? static_cast<double>(g.num_events()) /
                       (static_cast<double>(active_nodes) *
                        static_cast<double>(active_nodes))
                 : 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f%%", 100.0 * d);
  return buf;
}

void AddRows(TablePrinter* table, const char* dataset,
             data::TransferBenchmarkBuilder* builder, int64_t field,
             const char* field_name) {
  struct Row {
    const char* stage;
    const char* setting;
  };
  for (auto setting :
       {data::TransferSetting::kTime, data::TransferSetting::kField,
        data::TransferSetting::kTimeField}) {
    data::TransferDataset ds = builder->Build(setting, field);
    int64_t pre_nodes = ActiveNodes(ds.pretrain_graph);
    table->AddRow({dataset, "pre-train",
                   data::TransferSettingName(setting), field_name,
                   std::to_string(pre_nodes),
                   std::to_string(ds.pretrain_graph.num_events()),
                   Density(ds.pretrain_graph, pre_nodes)});
  }
  data::TransferDataset ds =
      builder->Build(data::TransferSetting::kTime, field);
  int64_t down_nodes = ActiveNodes(ds.downstream_train_graph);
  int64_t down_events =
      ds.downstream_train_graph.num_events() +
      static_cast<int64_t>(ds.downstream_val_events.size()) +
      static_cast<int64_t>(ds.downstream_test_events.size());
  table->AddRow({dataset, "downstream", "t/f/t+f", field_name,
                 std::to_string(down_nodes), std::to_string(down_events),
                 Density(ds.downstream_train_graph, down_nodes)});
  table->AddSeparator();
}

}  // namespace

int main() {
  bench::ExperimentScale scale = bench::ExperimentScale::FromEnv();
  std::printf(
      "Table IV reproduction: synthetic dataset statistics per transfer "
      "setting (event_scale=%.2f)\n\n",
      scale.event_scale);

  data::TransferBenchmarkBuilder amazon(
      bench::ScaleSpec(data::MakeAmazonLike(), scale.event_scale), 20240401);
  data::TransferBenchmarkBuilder gowalla(
      bench::ScaleSpec(data::MakeGowallaLike(), scale.event_scale),
      20240402);

  TablePrinter table({"Dataset", "Stage", "Setting", "Field", "# Nodes",
                      "# Edges", "Density"});
  AddRows(&table, "Amazon", &amazon, 0, "Beauty");
  AddRows(&table, "Amazon", &amazon, 1, "Luxury");
  AddRows(&table, "Gowalla", &gowalla, 0, "Entertainment");
  AddRows(&table, "Gowalla", &gowalla, 1, "Outdoors");
  table.Print(std::cout);

  // Single-field datasets (Meituan / Wikipedia / MOOC / Reddit analogues).
  TablePrinter single({"Dataset", "# Nodes", "# Events", "Pre-train",
                       "Downstream", "Labeled"});
  struct Profile {
    const char* name;
    data::UniverseSpec spec;
  };
  for (const Profile& p :
       {Profile{"Meituan", data::MakeMeituanLike()},
        Profile{"Wikipedia", data::MakeWikipediaLike()},
        Profile{"MOOC", data::MakeMoocLike()},
        Profile{"Reddit", data::MakeRedditLike()}}) {
    data::TransferBenchmarkBuilder builder(
        bench::ScaleSpec(p.spec, scale.event_scale), 20240403);
    data::TransferDataset ds = builder.BuildSingleField();
    int64_t downstream =
        ds.downstream_train_graph.num_events() +
        static_cast<int64_t>(ds.downstream_val_events.size()) +
        static_cast<int64_t>(ds.downstream_test_events.size());
    int64_t total = ds.pretrain_graph.num_events() + downstream;
    single.AddRow({p.name, std::to_string(ds.num_nodes),
                   std::to_string(total),
                   std::to_string(ds.pretrain_graph.num_events()),
                   std::to_string(downstream),
                   p.spec.fields[0].labeled ? "yes" : "no"});
  }
  std::printf("\n");
  single.Print(std::cout);
  return 0;
}
