// Training-pipeline benchmark: CPDG pre-training epoch throughput with the
// prefetching batch pipeline at depth 0 (serial) vs depth 4, and 1 vs 4
// producer threads, plus the batch-arena allocation win. Per setting it
// reports batches/s, the sampler-overlap ratio
// ((sample_seconds + compute_seconds) / wall_clock — > 1 means the prepare
// stage genuinely overlapped compute) and global operator-new calls per
// batch, into BENCH_train.json.
//
// The run doubles as an acceptance check and exits nonzero when:
//   - any prefetched setting's epoch losses are not bit-identical to the
//     serial (depth 0) run — the pipeline's determinism contract,
//   - allocations/batch with the arena enabled is not >= 5x lower than
//     with it disabled (measured at depth 0, where the count is
//     single-threaded and stable),
//   - depth 4 / 4 workers is not >= 1.3x faster than serial — gated only
//     on machines with >= 2 cores; a 1-core box cannot overlap.
//
// Usage:
//   bench_train_pipeline          full size:  2000 nodes, 20k events
//   bench_train_pipeline --smoke  CI-sized:   300 nodes, 4k events

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/pretrainer.h"
#include "dgnn/encoder.h"
#include "graph/temporal_graph.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tensor/arena.h"
#include "util/rng.h"
#include "util/timer.h"

// Allocation probe (the obs_test pattern, widened to all threads): every
// global operator new in the process bumps one atomic, so the count covers
// prefetch workers as well as the consumer.
namespace {
std::atomic<int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace cpdg;

struct Sizes {
  int64_t num_nodes = 2000;
  int64_t num_events = 20000;
  int64_t batch_size = 200;
  int64_t epochs = 1;
};

struct Record {
  std::string scenario;
  int64_t depth = 0;
  int64_t workers = 0;
  bool arena = true;
  int64_t batches = 0;
  double seconds = 0.0;
  double batches_per_sec = 0.0;
  double sample_seconds = 0.0;
  double compute_seconds = 0.0;
  double overlap_ratio = 0.0;
  double allocs_per_batch = 0.0;
  double speedup_vs_serial = 1.0;
  bool bitwise_equal_to_serial = true;
  std::vector<double> losses;
};

graph::TemporalGraph MakeGraph(const Sizes& sizes) {
  Rng rng(11);
  int64_t half = sizes.num_nodes / 2;
  std::vector<graph::Event> events;
  events.reserve(static_cast<size_t>(sizes.num_events));
  for (int64_t i = 0; i < sizes.num_events; ++i) {
    auto a = static_cast<graph::NodeId>(rng.NextBounded(half));
    auto b = static_cast<graph::NodeId>(half + rng.NextBounded(half));
    events.push_back({a, b, static_cast<double>(i) * 0.001});
  }
  return graph::TemporalGraph::Create(sizes.num_nodes, events).ValueOrDie();
}

// One full pre-training run at the given pipeline setting; fresh model
// state and fixed seeds each time, so every setting must reproduce the
// same losses bit for bit.
Record RunOnce(const graph::TemporalGraph& graph, const Sizes& sizes,
               const char* scenario, int64_t depth, int64_t workers,
               bool arena) {
  setenv("CPDG_PREFETCH_DEPTH", std::to_string(depth).c_str(), 1);
  setenv("CPDG_PREFETCH_WORKERS", std::to_string(workers).c_str(), 1);
  tensor::SetArenaEnabledOverride(arena ? 1 : 0);

  Rng rng(13);
  dgnn::EncoderConfig config =
      dgnn::EncoderConfig::Preset(dgnn::EncoderType::kTgn, graph.num_nodes());
  config.memory_dim = 16;
  config.embed_dim = 16;
  config.time_dim = 8;
  config.num_neighbors = 5;
  dgnn::DgnnEncoder encoder(config, &graph, &rng);
  dgnn::LinkPredictor decoder(16, 16, &rng);

  core::CpdgConfig cpdg;
  cpdg.epochs = sizes.epochs;
  cpdg.batch_size = sizes.batch_size;
  cpdg.num_checkpoints = 4;
  cpdg.max_contrast_anchors = 32;
  cpdg.sample_width = 3;
  cpdg.sample_depth = 2;
  core::CpdgPretrainer pretrainer(cpdg, &rng);

  Record rec;
  rec.scenario = scenario;
  rec.depth = depth;
  rec.workers = workers;
  rec.arena = arena;
  rec.batches =
      sizes.epochs * ((sizes.num_events + sizes.batch_size - 1) /
                      sizes.batch_size);

  int64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  util::Timer timer;
  core::PretrainResult result = pretrainer.Pretrain(&encoder, &decoder, graph);
  rec.seconds = timer.ElapsedSeconds();
  int64_t allocs = g_alloc_count.load(std::memory_order_relaxed) -
                   allocs_before;

  if (!result.log.status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", scenario,
                 result.log.status.message().c_str());
    std::exit(1);
  }
  rec.losses = result.log.epoch_losses;
  for (const train::EpochTelemetry& et : result.log.epochs) {
    rec.sample_seconds += et.sample_seconds;
    rec.compute_seconds += et.compute_seconds;
  }
  rec.batches_per_sec = static_cast<double>(rec.batches) / rec.seconds;
  rec.overlap_ratio =
      (rec.sample_seconds + rec.compute_seconds) / rec.seconds;
  rec.allocs_per_batch =
      static_cast<double>(allocs) / static_cast<double>(rec.batches);
  return rec;
}

void WriteJson(const std::vector<Record>& records, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  const unsigned hw = std::thread::hardware_concurrency();
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "  {\"scenario\": \"%s\", \"depth\": %lld, \"workers\": %lld, "
        "\"arena\": %s, \"batches\": %lld, \"seconds\": %.6g, "
        "\"batches_per_sec\": %.6g, \"sample_seconds\": %.6g, "
        "\"compute_seconds\": %.6g, \"overlap_ratio\": %.4g, "
        "\"allocs_per_batch\": %.6g, \"speedup_vs_serial\": %.4g, "
        "\"bitwise_equal_to_serial\": %s, \"hardware_concurrency\": %u}%s\n",
        r.scenario.c_str(), static_cast<long long>(r.depth),
        static_cast<long long>(r.workers), r.arena ? "true" : "false",
        static_cast<long long>(r.batches), r.seconds, r.batches_per_sec,
        r.sample_seconds, r.compute_seconds, r.overlap_ratio,
        r.allocs_per_batch, r.speedup_vs_serial,
        r.bitwise_equal_to_serial ? "true" : "false", hw,
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  Sizes sizes;
  if (smoke) {
    sizes.num_nodes = 300;
    sizes.num_events = 4000;
    sizes.batch_size = 100;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("train-pipeline bench: %lld nodes, %lld events, batch %lld, "
              "%u core(s)%s\n\n",
              static_cast<long long>(sizes.num_nodes),
              static_cast<long long>(sizes.num_events),
              static_cast<long long>(sizes.batch_size), hw,
              smoke ? " [smoke]" : "");
  obs::SetTraceEnabled(true);
  graph::TemporalGraph graph = MakeGraph(sizes);

  std::vector<Record> records;
  records.push_back(
      RunOnce(graph, sizes, "pretrain_serial", /*depth=*/0, /*workers=*/1,
              /*arena=*/true));
  const Record serial = records[0];  // copy: push_back reallocates
  records.push_back(RunOnce(graph, sizes, "pretrain_d1_w1", 1, 1, true));
  records.push_back(RunOnce(graph, sizes, "pretrain_d4_w1", 4, 1, true));
  records.push_back(RunOnce(graph, sizes, "pretrain_d4_w4", 4, 4, true));
  records.push_back(
      RunOnce(graph, sizes, "pretrain_serial_noarena", 0, 1, false));

  bool ok = true;
  for (size_t i = 1; i < records.size(); ++i) {
    Record& r = records[i];
    r.speedup_vs_serial = serial.seconds / r.seconds;
    r.bitwise_equal_to_serial = r.losses == serial.losses;
    if (!r.bitwise_equal_to_serial) {
      std::fprintf(stderr, "FAIL %s: losses diverge from serial run\n",
                   r.scenario.c_str());
      ok = false;
    }
  }

  std::printf("%-24s %7s %8s %11s %9s %13s\n", "scenario", "depth",
              "workers", "batches/s", "overlap", "allocs/batch");
  for (const Record& r : records) {
    std::printf("%-24s %7lld %8lld %11.1f %9.2f %13.1f\n",
                r.scenario.c_str(), static_cast<long long>(r.depth),
                static_cast<long long>(r.workers), r.batches_per_sec,
                r.overlap_ratio, r.allocs_per_batch);
  }
  std::printf("\n");

  const Record& noarena = records.back();
  double alloc_reduction =
      noarena.allocs_per_batch / serial.allocs_per_batch;
  std::printf("arena allocation reduction: %.1fx (%0.f -> %0.f per batch)\n",
              alloc_reduction, noarena.allocs_per_batch,
              serial.allocs_per_batch);
  if (alloc_reduction < 5.0) {
    std::fprintf(stderr,
                 "FAIL arena reduces allocations only %.1fx (need 5x)\n",
                 alloc_reduction);
    ok = false;
  }

  const Record& deep = records[3];  // pretrain_d4_w4
  if (hw >= 2) {
    std::printf("prefetch speedup (d4/w4 vs serial): %.2fx\n",
                deep.speedup_vs_serial);
    if (deep.speedup_vs_serial < 1.3) {
      std::fprintf(stderr,
                   "FAIL prefetch speedup %.2fx below the 1.3x bar\n",
                   deep.speedup_vs_serial);
      ok = false;
    }
  } else {
    std::printf("prefetch speedup gate skipped: %u core(s), overlap "
                "needs >= 2\n", hw);
  }

  WriteJson(records, "BENCH_train.json");
  cpdg::Status status =
      obs::MetricsRegistry::Global().WriteJson("BENCH_train_metrics.json");
  if (status.ok()) std::printf("wrote BENCH_train_metrics.json\n");
  status = obs::Profiler::Global().WriteChromeTrace("BENCH_train_trace.json");
  if (status.ok()) std::printf("wrote BENCH_train_trace.json\n");
  return ok ? 0 : 1;
}
