// Serving-engine benchmark: loads a frozen encoder checkpoint into
// serve::ServingEngine and drives it from concurrent client threads,
// comparing request coalescing off (max_batch=1) against on, and a cold
// embedding cache against a warm one, plus a link-scoring pass. Reports
// throughput and p50/p99 end-to-end latency per scenario in
// BENCH_serving.json, with the serve.* metrics snapshot in
// BENCH_serving_metrics.json and a Chrome trace when CPDG_TRACE=1.
//
// Usage:
//   bench_serving          full size:  1000 nodes, 16 clients
//   bench_serving --smoke  CI-sized:    200 nodes,  8 clients
//
// Exits nonzero if batched throughput is below 2x unbatched or if a served
// embedding deviates from the direct encoder forward by a single bit, so
// the ctest `bench-smoke` registration doubles as an acceptance check.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dgnn/encoder.h"
#include "graph/temporal_graph.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "serve/serving_engine.h"
#include "tensor/checkpoint_container.h"
#include "tensor/serialization.h"
#include "tensor/tensor.h"
#include "train/checkpoint.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace cpdg;
namespace ts = cpdg::tensor;

struct Record {
  std::string scenario;
  int clients = 0;
  int64_t requests = 0;
  double seconds = 0.0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  double speedup_vs_unbatched = 0.0;
};

struct Workload {
  int64_t num_nodes = 0;
  int clients = 0;
  int64_t requests_per_client = 0;
  graph::TemporalGraph graph;
  std::string checkpoint_path;
  std::unique_ptr<dgnn::DgnnEncoder> reference;  // ground truth forwards
  std::unique_ptr<Rng> rng;
};

dgnn::EncoderConfig BenchConfig(int64_t num_nodes) {
  dgnn::EncoderConfig config;
  config.num_nodes = num_nodes;
  config.memory_dim = 32;
  config.embed_dim = 32;
  config.time_dim = 8;
  config.num_neighbors = 10;
  return config;
}

constexpr int64_t kPredictorHidden = 32;

graph::NodeId ClientNode(int client, int64_t i, int64_t num_nodes) {
  return static_cast<graph::NodeId>(
      (static_cast<int64_t>(client) * 31 + i * 7) % num_nodes);
}

Workload BuildWorkload(bool smoke) {
  Workload w;
  w.num_nodes = smoke ? 200 : 1000;
  w.clients = smoke ? 8 : 16;
  // Per-client request counts are sized so the batched-cold scenario
  // reaches cache steady state well inside the measurement (~0.88 hit
  // rate at smoke size): the 2x acceptance gate should reflect the
  // engine's steady throughput, not the transient miss burst, and needs
  // margin against timing noise on a loaded single-core CI runner.
  w.requests_per_client = smoke ? 200 : 400;

  Rng event_rng(7);
  std::vector<graph::Event> events;
  const size_t num_events = smoke ? 800 : 5000;
  double t = 0.0;
  for (size_t i = 0; i < num_events; ++i) {
    graph::Event e;
    e.src = static_cast<graph::NodeId>(event_rng.NextBounded(
        static_cast<uint64_t>(w.num_nodes)));
    e.dst = static_cast<graph::NodeId>(event_rng.NextBounded(
        static_cast<uint64_t>(w.num_nodes)));
    if (e.dst == e.src) e.dst = (e.src + 1) % w.num_nodes;
    t += event_rng.NextUniform(0.05, 1.0);
    e.time = t;
    events.push_back(e);
  }
  w.graph = graph::TemporalGraph::Create(w.num_nodes, std::move(events))
                .ValueOrDie();

  // Reference model with warm memory; its serialized state is what the
  // engine serves from.
  w.rng = std::make_unique<Rng>(42);
  w.reference = std::make_unique<dgnn::DgnnEncoder>(
      BenchConfig(w.num_nodes), &w.graph, w.rng.get());
  dgnn::LinkPredictor predictor(BenchConfig(w.num_nodes).embed_dim,
                                kPredictorHidden, w.rng.get());
  {
    ts::InferenceModeGuard guard;
    w.reference->ReplayEvents(w.graph.events(), /*batch_size=*/200);
  }

  std::vector<ts::Tensor> params = w.reference->Parameters();
  std::vector<ts::Tensor> dec = predictor.Parameters();
  params.insert(params.end(), dec.begin(), dec.end());
  ts::SectionWriter writer;
  writer.Add(ts::kParamsSection, ts::EncodeTensorList(params).ValueOrDie());
  std::string memory_bytes;
  w.reference->memory().SerializeTo(&memory_bytes);
  writer.Add(train::kMemorySection, memory_bytes);
  w.checkpoint_path = "BENCH_serving_ckpt.bin";
  cpdg::Status status = writer.WriteAtomic(w.checkpoint_path);
  if (!status.ok()) {
    std::fprintf(stderr, "checkpoint write failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }
  return w;
}

/// Fires clients * requests_per_client single-node Embed requests at the
/// engine and collects per-request end-to-end latency.
Record DriveEmbedClients(serve::ServingEngine* engine, const Workload& w,
                         const std::string& scenario, double t_query,
                         bool* ok) {
  Record rec;
  rec.scenario = scenario;
  rec.clients = w.clients;
  rec.requests = static_cast<int64_t>(w.clients) * w.requests_per_client;

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(w.clients));
  std::vector<std::thread> threads;
  util::Timer wall;
  for (int c = 0; c < w.clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double>& mine = latencies[static_cast<size_t>(c)];
      mine.reserve(static_cast<size_t>(w.requests_per_client));
      for (int64_t i = 0; i < w.requests_per_client; ++i) {
        graph::NodeId node = ClientNode(c, i, w.num_nodes);
        util::Timer timer;
        auto result = engine->Embed({node}, t_query);
        mine.push_back(timer.ElapsedMillis());
        if (!result.ok()) {
          std::fprintf(stderr, "embed failed: %s\n",
                       result.status().ToString().c_str());
          *ok = false;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  rec.seconds = wall.ElapsedSeconds();
  rec.rps = static_cast<double>(rec.requests) / rec.seconds;

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  rec.p50_ms = all[all.size() / 2];
  rec.p99_ms = all[all.size() * 99 / 100];
  return rec;
}

void Print(const Record& r) {
  std::printf("%-18s clients=%2d requests=%5lld  %8.3f s  %8.1f req/s  "
              "p50 %7.3f ms  p99 %7.3f ms  hit-rate %.2f\n",
              r.scenario.c_str(), r.clients,
              static_cast<long long>(r.requests), r.seconds, r.rps,
              r.p50_ms, r.p99_ms, r.cache_hit_rate);
}

void WriteJson(const std::vector<Record>& records, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fputs("[\n", f);
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "  {\"scenario\": \"%s\", \"clients\": %d, \"requests\": %lld, "
        "\"seconds\": %.6g, \"rps\": %.6g, \"p50_ms\": %.6g, "
        "\"p99_ms\": %.6g, \"cache_hit_rate\": %.4g, "
        "\"speedup_vs_unbatched\": %.4g}%s\n",
        r.scenario.c_str(), r.clients, static_cast<long long>(r.requests),
        r.seconds, r.rps, r.p50_ms, r.p99_ms, r.cache_hit_rate,
        r.speedup_vs_unbatched, i + 1 < records.size() ? "," : "");
  }
  std::fputs("]\n", f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  std::printf("serving benchmark (%s); hardware_concurrency=%d, "
              "kernel threads=%d\n\n",
              smoke ? "smoke" : "full",
              std::thread::hardware_concurrency(),
              util::ThreadPool::DefaultNumThreads());

  Workload w = BuildWorkload(smoke);
  const double t_query = w.graph.max_time() + 1.0;
  const dgnn::EncoderConfig config = BenchConfig(w.num_nodes);
  bool ok = true;
  std::vector<Record> records;
  double unbatched_rps = 0.0;

  // --- unbatched, cold: coalescing and caching both off ---
  {
    serve::ServingOptions options;
    options.max_batch = 1;
    options.cache_capacity = 0;
    auto engine = serve::ServingEngine::FromCheckpoint(
                      config, kPredictorHidden, &w.graph, w.checkpoint_path,
                      options)
                      .TakeValue();
    Record rec =
        DriveEmbedClients(engine.get(), w, "unbatched_cold", t_query, &ok);
    rec.speedup_vs_unbatched = 1.0;
    unbatched_rps = rec.rps;
    Print(rec);
    records.push_back(rec);
  }

  // --- batched: coalescing + cache on (the full serving config); the
  // first pass starts from a cold cache and warms it, the second runs
  // entirely warm ---
  {
    serve::ServingOptions options;
    options.max_batch = 64;
    options.max_wait_micros = 0;  // adaptive: never hold a batch open
    options.cache_capacity = 4 * w.num_nodes;
    auto engine = serve::ServingEngine::FromCheckpoint(
                      config, kPredictorHidden, &w.graph, w.checkpoint_path,
                      options)
                      .TakeValue();

    Record cold =
        DriveEmbedClients(engine.get(), w, "batched_cold", t_query, &ok);
    int64_t hits = engine->cache_hits();
    int64_t misses = engine->cache_misses();
    cold.cache_hit_rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
    cold.speedup_vs_unbatched = cold.rps / unbatched_rps;
    Print(cold);
    records.push_back(cold);

    Record warm =
        DriveEmbedClients(engine.get(), w, "batched_warm", t_query, &ok);
    int64_t hits2 = engine->cache_hits() - hits;
    int64_t misses2 = engine->cache_misses() - misses;
    warm.cache_hit_rate =
        static_cast<double>(hits2) / static_cast<double>(hits2 + misses2);
    warm.speedup_vs_unbatched = warm.rps / unbatched_rps;
    Print(warm);
    records.push_back(warm);

    // Served result must be bit-identical to the direct encoder forward,
    // cache hit or not.
    std::vector<graph::NodeId> probe;
    for (graph::NodeId v = 0; v < std::min<int64_t>(w.num_nodes, 32); ++v) {
      probe.push_back(v);
    }
    ts::Tensor served = engine->Embed(probe, t_query).ValueOrDie();
    ts::Tensor direct;
    {
      ts::InferenceModeGuard guard;
      w.reference->BeginBatch();
      direct = w.reference->ComputeEmbeddings(
          probe, std::vector<double>(probe.size(), t_query));
    }
    if (served.size() != direct.size() ||
        std::memcmp(served.data(), direct.data(),
                    static_cast<size_t>(direct.size()) * sizeof(float)) !=
            0) {
      std::fprintf(stderr,
                   "FAIL: served embeddings differ bitwise from the direct "
                   "encoder forward\n");
      ok = false;
    } else {
      std::printf("served embeddings bitwise-match the direct forward\n");
    }

    // --- link scoring over the warm engine ---
    {
      Record rec;
      rec.scenario = "score_links_warm";
      rec.clients = w.clients;
      rec.requests = static_cast<int64_t>(w.clients) * w.requests_per_client;
      std::vector<std::thread> threads;
      std::vector<std::vector<double>> latencies(
          static_cast<size_t>(w.clients));
      util::Timer wall;
      for (int c = 0; c < w.clients; ++c) {
        threads.emplace_back([&, c] {
          auto& mine = latencies[static_cast<size_t>(c)];
          for (int64_t i = 0; i < w.requests_per_client; ++i) {
            graph::NodeId src = ClientNode(c, i, w.num_nodes);
            graph::NodeId dst = ClientNode(c + 1, i, w.num_nodes);
            util::Timer timer;
            auto result = engine->ScoreLinks({src}, {dst}, t_query);
            mine.push_back(timer.ElapsedMillis());
            if (!result.ok()) ok = false;
          }
        });
      }
      for (auto& thread : threads) thread.join();
      rec.seconds = wall.ElapsedSeconds();
      rec.rps = static_cast<double>(rec.requests) / rec.seconds;
      std::vector<double> all;
      for (const auto& v : latencies) {
        all.insert(all.end(), v.begin(), v.end());
      }
      std::sort(all.begin(), all.end());
      rec.p50_ms = all[all.size() / 2];
      rec.p99_ms = all[all.size() * 99 / 100];
      rec.speedup_vs_unbatched = rec.rps / unbatched_rps;
      Print(rec);
      records.push_back(rec);
    }

    // --- event ingestion: replay fresh events into the frozen memory,
    // which invalidates the cache (serve/advance span + metrics) ---
    {
      Rng advance_rng(1234);
      std::vector<graph::Event> fresh;
      double t_new = t_query;
      for (int i = 0; i < 50; ++i) {
        graph::Event e;
        e.src = static_cast<graph::NodeId>(advance_rng.NextBounded(
            static_cast<uint64_t>(w.num_nodes)));
        e.dst = static_cast<graph::NodeId>(advance_rng.NextBounded(
            static_cast<uint64_t>(w.num_nodes)));
        if (e.dst == e.src) e.dst = (e.src + 1) % w.num_nodes;
        t_new += 0.1;
        e.time = t_new;
        fresh.push_back(e);
      }
      util::Timer timer;
      cpdg::Status status = engine->Advance(fresh);
      if (!status.ok()) {
        std::fprintf(stderr, "advance failed: %s\n",
                     status.ToString().c_str());
        ok = false;
      }
      std::printf("advance of %zu events: %.3f ms, %lld cache entries "
                  "invalidated\n",
                  fresh.size(), timer.ElapsedMillis(),
                  static_cast<long long>(engine->cache_invalidations()));
    }
  }

  WriteJson(records, "BENCH_serving.json");

  // Observability side channel: serve.* metrics snapshot always, Chrome
  // trace (with the serve/* spans) when CPDG_TRACE=1.
  {
    cpdg::Status status = obs::MetricsRegistry::Global().WriteJson(
        "BENCH_serving_metrics.json");
    if (status.ok()) {
      std::printf("wrote BENCH_serving_metrics.json\n");
    } else {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
    }
    if (obs::TraceEnabled()) {
      status = obs::Profiler::Global().WriteChromeTrace(
          "BENCH_serving_trace.json");
      if (status.ok()) {
        std::printf("wrote BENCH_serving_trace.json\n");
      } else {
        std::fprintf(stderr, "trace export failed: %s\n",
                     status.ToString().c_str());
      }
    }
  }
  std::remove(w.checkpoint_path.c_str());

  const Record& batched = records[1];
  if (batched.speedup_vs_unbatched < 2.0) {
    std::fprintf(stderr,
                 "FAIL: batched throughput %.1f req/s is %.2fx unbatched "
                 "(%.1f req/s), below the 2x bar\n",
                 batched.rps, batched.speedup_vs_unbatched, unbatched_rps);
    return 1;
  }
  if (!ok) return 1;
  std::printf("\nbatched/unbatched speedup %.2fx, warm/unbatched %.2fx\n",
              batched.speedup_vs_unbatched,
              records[2].speedup_vs_unbatched);
  return 0;
}
