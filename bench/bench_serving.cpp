// Serving-engine benchmark: loads a frozen encoder checkpoint into
// serve::ServingEngine and drives it from concurrent client threads,
// comparing request coalescing off (max_batch=1) against on, and a cold
// embedding cache against a warm one, plus a link-scoring pass. Reports
// throughput and p50/p99 end-to-end latency per scenario in
// BENCH_serving.json, with the serve.* metrics snapshot in
// BENCH_serving_metrics.json and a Chrome trace when CPDG_TRACE=1.
//
// Usage:
//   bench_serving          full size:  1000 nodes, 16 clients
//   bench_serving --smoke  CI-sized:    200 nodes,  8 clients
//
// Exits nonzero if batched throughput is below 2x unbatched or if a served
// embedding deviates from the direct encoder forward by a single bit, so
// the ctest `bench-smoke` registration doubles as an acceptance check.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dgnn/encoder.h"
#include "graph/temporal_graph.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "serve/serving_engine.h"
#include "tensor/checkpoint_container.h"
#include "tensor/serialization.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "train/checkpoint.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace cpdg;
namespace ts = cpdg::tensor;

struct Record {
  std::string scenario;
  int clients = 0;
  int64_t requests = 0;
  double seconds = 0.0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  double speedup_vs_unbatched = 0.0;
};

struct Workload {
  int64_t num_nodes = 0;
  int clients = 0;
  int64_t requests_per_client = 0;
  graph::TemporalGraph graph;
  std::string checkpoint_path;
  std::unique_ptr<dgnn::DgnnEncoder> reference;  // ground truth forwards
  std::unique_ptr<Rng> rng;
};

dgnn::EncoderConfig BenchConfig(int64_t num_nodes) {
  dgnn::EncoderConfig config;
  config.num_nodes = num_nodes;
  config.memory_dim = 32;
  config.embed_dim = 32;
  config.time_dim = 8;
  config.num_neighbors = 10;
  return config;
}

constexpr int64_t kPredictorHidden = 32;

graph::NodeId ClientNode(int client, int64_t i, int64_t num_nodes) {
  return static_cast<graph::NodeId>(
      (static_cast<int64_t>(client) * 31 + i * 7) % num_nodes);
}

Workload BuildWorkload(bool smoke) {
  Workload w;
  w.num_nodes = smoke ? 200 : 1000;
  w.clients = smoke ? 8 : 16;
  // Per-client request counts are sized so the batched-cold scenario
  // reaches cache steady state well inside the measurement (~0.88 hit
  // rate at smoke size): the 2x acceptance gate should reflect the
  // engine's steady throughput, not the transient miss burst, and needs
  // margin against timing noise on a loaded single-core CI runner.
  w.requests_per_client = smoke ? 200 : 400;

  Rng event_rng(7);
  std::vector<graph::Event> events;
  const size_t num_events = smoke ? 800 : 5000;
  double t = 0.0;
  for (size_t i = 0; i < num_events; ++i) {
    graph::Event e;
    e.src = static_cast<graph::NodeId>(event_rng.NextBounded(
        static_cast<uint64_t>(w.num_nodes)));
    e.dst = static_cast<graph::NodeId>(event_rng.NextBounded(
        static_cast<uint64_t>(w.num_nodes)));
    if (e.dst == e.src) e.dst = (e.src + 1) % w.num_nodes;
    t += event_rng.NextUniform(0.05, 1.0);
    e.time = t;
    events.push_back(e);
  }
  w.graph = graph::TemporalGraph::Create(w.num_nodes, std::move(events))
                .ValueOrDie();

  // Reference model with warm memory; its serialized state is what the
  // engine serves from.
  w.rng = std::make_unique<Rng>(42);
  w.reference = std::make_unique<dgnn::DgnnEncoder>(
      BenchConfig(w.num_nodes), &w.graph, w.rng.get());
  dgnn::LinkPredictor predictor(BenchConfig(w.num_nodes).embed_dim,
                                kPredictorHidden, w.rng.get());
  {
    ts::InferenceModeGuard guard;
    w.reference->ReplayEvents(w.graph.events(), /*batch_size=*/200);
  }

  std::vector<ts::Tensor> params = w.reference->Parameters();
  std::vector<ts::Tensor> dec = predictor.Parameters();
  params.insert(params.end(), dec.begin(), dec.end());
  ts::SectionWriter writer;
  writer.Add(ts::kParamsSection, ts::EncodeTensorList(params).ValueOrDie());
  std::string memory_bytes;
  w.reference->memory().SerializeTo(&memory_bytes);
  writer.Add(train::kMemorySection, memory_bytes);
  w.checkpoint_path = "BENCH_serving_ckpt.bin";
  cpdg::Status status = writer.WriteAtomic(w.checkpoint_path);
  if (!status.ok()) {
    std::fprintf(stderr, "checkpoint write failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }
  return w;
}

/// Fires clients * requests_per_client single-node Embed requests at the
/// engine and collects per-request end-to-end latency.
Record DriveEmbedClients(serve::ServingEngine* engine, const Workload& w,
                         const std::string& scenario, double t_query,
                         bool* ok) {
  Record rec;
  rec.scenario = scenario;
  rec.clients = w.clients;
  rec.requests = static_cast<int64_t>(w.clients) * w.requests_per_client;

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(w.clients));
  std::vector<std::thread> threads;
  util::Timer wall;
  for (int c = 0; c < w.clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double>& mine = latencies[static_cast<size_t>(c)];
      mine.reserve(static_cast<size_t>(w.requests_per_client));
      for (int64_t i = 0; i < w.requests_per_client; ++i) {
        graph::NodeId node = ClientNode(c, i, w.num_nodes);
        util::Timer timer;
        auto result = engine->Embed({node}, t_query);
        mine.push_back(timer.ElapsedMillis());
        if (!result.ok()) {
          std::fprintf(stderr, "embed failed: %s\n",
                       result.status().ToString().c_str());
          *ok = false;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  rec.seconds = wall.ElapsedSeconds();
  rec.rps = static_cast<double>(rec.requests) / rec.seconds;

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  rec.p50_ms = all[all.size() / 2];
  rec.p99_ms = all[all.size() * 99 / 100];
  return rec;
}

void Print(const Record& r) {
  std::printf("%-18s clients=%2d requests=%5lld  %8.3f s  %8.1f req/s  "
              "p50 %7.3f ms  p99 %7.3f ms  hit-rate %.2f\n",
              r.scenario.c_str(), r.clients,
              static_cast<long long>(r.requests), r.seconds, r.rps,
              r.p50_ms, r.p99_ms, r.cache_hit_rate);
}

void WriteJson(const std::vector<Record>& records, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fputs("[\n", f);
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "  {\"scenario\": \"%s\", \"clients\": %d, \"requests\": %lld, "
        "\"seconds\": %.6g, \"rps\": %.6g, \"p50_ms\": %.6g, "
        "\"p99_ms\": %.6g, \"cache_hit_rate\": %.4g, "
        "\"speedup_vs_unbatched\": %.4g}%s\n",
        r.scenario.c_str(), r.clients, static_cast<long long>(r.requests),
        r.seconds, r.rps, r.p50_ms, r.p99_ms, r.cache_hit_rate,
        r.speedup_vs_unbatched, i + 1 < records.size() ? "," : "");
  }
  std::fputs("]\n", f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

// ---------------------------------------------------------------------------
// Quantized-serving comparison (DESIGN.md §14): two engines over the same
// frozen checkpoint, one fp32 and one CPDG_SERVE_PRECISION=int8 equivalent,
// at a GEMM-heavy encoder width where quantization can actually pay
// (d=256; at the main benchmark's d=32 the forwards are too small to be
// GEMM-bound). Reports embed throughput (cache off, so every request runs
// the full forward), link-prediction AUC for both precisions over the same
// labeled pairs, and the int8/fp32 speedup; writes
// BENCH_serving_quant.json for the regression gate.
//
// Accuracy contract enforced here: |AUC(int8) - AUC(fp32)| <= 0.01 on
// every backend (int8 results are bitwise backend-independent). The >= 2x
// embed-throughput bar is enforced only when the AVX-VNNI kernels are
// active: int8 beats fp32 by vpdpbusd's 4-MACs-per-lane rate, which plain
// AVX2 (vpmaddwd + vpaddd) and scalar hardware simply do not have.

dgnn::EncoderConfig QuantBenchConfig(int64_t num_nodes) {
  dgnn::EncoderConfig config;
  config.num_nodes = num_nodes;
  config.memory_dim = 256;
  config.embed_dim = 256;
  config.time_dim = 8;
  config.num_neighbors = 10;
  return config;
}

constexpr int64_t kQuantPredictorHidden = 256;

struct QuantRecord {
  std::string precision;
  int64_t nodes_embedded = 0;
  double seconds = 0.0;
  double nodes_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double auc = 0.0;
};

/// Rank-comparison AUC: P(score(pos) > score(neg)) with half-credit ties.
double Auc(const std::vector<double>& pos, const std::vector<double>& neg) {
  double wins = 0.0;
  for (double p : pos) {
    for (double n : neg) {
      if (p > n) {
        wins += 1.0;
      } else if (p == n) {
        wins += 0.5;
      }
    }
  }
  return wins / (static_cast<double>(pos.size()) *
                 static_cast<double>(neg.size()));
}

QuantRecord DriveQuantEngine(serve::ServingEngine* engine,
                             const Workload& w, const std::string& precision,
                             int64_t batches, int64_t batch_nodes,
                             double t_query,
                             const std::vector<graph::NodeId>& pos_src,
                             const std::vector<graph::NodeId>& pos_dst,
                             const std::vector<graph::NodeId>& neg_src,
                             const std::vector<graph::NodeId>& neg_dst,
                             ts::Tensor* probe_embeds, bool* ok) {
  QuantRecord rec;
  rec.precision = precision;

  // Warm-up (allocators, thread-local kernel buffers) outside the window.
  std::vector<graph::NodeId> nodes(static_cast<size_t>(batch_nodes));
  for (int64_t i = 0; i < batch_nodes; ++i) {
    nodes[static_cast<size_t>(i)] =
        static_cast<graph::NodeId>(i % w.num_nodes);
  }
  if (!engine->Embed(nodes, t_query).ok()) *ok = false;

  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(batches));
  util::Timer wall;
  for (int64_t b = 0; b < batches; ++b) {
    for (int64_t i = 0; i < batch_nodes; ++i) {
      nodes[static_cast<size_t>(i)] = static_cast<graph::NodeId>(
          (b * batch_nodes + i * 13 + 5) % w.num_nodes);
    }
    util::Timer timer;
    auto result = engine->Embed(nodes, t_query);
    latencies.push_back(timer.ElapsedMillis());
    if (!result.ok()) {
      std::fprintf(stderr, "quant embed failed: %s\n",
                   result.status().ToString().c_str());
      *ok = false;
    }
  }
  rec.seconds = wall.ElapsedSeconds();
  rec.nodes_embedded = batches * batch_nodes;
  rec.nodes_per_s = static_cast<double>(rec.nodes_embedded) / rec.seconds;
  std::sort(latencies.begin(), latencies.end());
  rec.p50_ms = latencies[latencies.size() / 2];
  rec.p99_ms = latencies[latencies.size() * 99 / 100];

  std::vector<double> pos =
      engine->ScoreLinks(pos_src, pos_dst, t_query).ValueOrDie();
  std::vector<double> neg =
      engine->ScoreLinks(neg_src, neg_dst, t_query).ValueOrDie();
  rec.auc = Auc(pos, neg);

  // Fixed probe set for the cross-precision cosine contract.
  std::vector<graph::NodeId> probe;
  for (graph::NodeId v = 0; v < std::min<int64_t>(w.num_nodes, 32); ++v) {
    probe.push_back(v);
  }
  *probe_embeds = engine->Embed(probe, t_query).ValueOrDie();

  std::printf("quant/%-5s  %6lld nodes  %7.3f s  %8.1f nodes/s  "
              "p50 %7.3f ms  p99 %7.3f ms  auc %.4f\n",
              rec.precision.c_str(),
              static_cast<long long>(rec.nodes_embedded), rec.seconds,
              rec.nodes_per_s, rec.p50_ms, rec.p99_ms, rec.auc);
  return rec;
}

bool RunQuantComparison(bool smoke) {
  bool ok = true;
  std::printf("\n--- quantized serving (d=256 encoder) ---\n");

  // Fresh GEMM-heavy workload; the d=32 main-benchmark checkpoint would
  // hide the kernel behind per-request overhead.
  Workload w;
  w.num_nodes = smoke ? 200 : 500;
  Rng event_rng(11);
  std::vector<graph::Event> events;
  const size_t num_events = smoke ? 600 : 2000;
  double t = 0.0;
  for (size_t i = 0; i < num_events; ++i) {
    graph::Event e;
    e.src = static_cast<graph::NodeId>(
        event_rng.NextBounded(static_cast<uint64_t>(w.num_nodes)));
    e.dst = static_cast<graph::NodeId>(
        event_rng.NextBounded(static_cast<uint64_t>(w.num_nodes)));
    if (e.dst == e.src) e.dst = (e.src + 1) % w.num_nodes;
    t += event_rng.NextUniform(0.05, 1.0);
    e.time = t;
    events.push_back(e);
  }
  w.graph = graph::TemporalGraph::Create(w.num_nodes, std::move(events))
                .ValueOrDie();
  const dgnn::EncoderConfig config = QuantBenchConfig(w.num_nodes);
  w.rng = std::make_unique<Rng>(43);
  w.reference =
      std::make_unique<dgnn::DgnnEncoder>(config, &w.graph, w.rng.get());
  dgnn::LinkPredictor predictor(config.embed_dim, kQuantPredictorHidden,
                                w.rng.get());
  {
    ts::InferenceModeGuard guard;
    w.reference->ReplayEvents(w.graph.events(), /*batch_size=*/200);
  }
  std::vector<ts::Tensor> params = w.reference->Parameters();
  std::vector<ts::Tensor> dec = predictor.Parameters();
  params.insert(params.end(), dec.begin(), dec.end());
  ts::SectionWriter writer;
  writer.Add(ts::kParamsSection, ts::EncodeTensorList(params).ValueOrDie());
  std::string memory_bytes;
  w.reference->memory().SerializeTo(&memory_bytes);
  writer.Add(train::kMemorySection, memory_bytes);
  w.checkpoint_path = "BENCH_serving_quant_ckpt.bin";
  if (!writer.WriteAtomic(w.checkpoint_path).ok()) {
    std::fprintf(stderr, "quant checkpoint write failed\n");
    return false;
  }

  const double t_query = w.graph.max_time() + 1.0;
  const int64_t batches = smoke ? 20 : 40;
  const int64_t batch_nodes = 32;

  // Labeled pairs for AUC, shared verbatim by both precisions: positives
  // are real (replayed) graph edges, negatives are uniform random pairs.
  std::vector<graph::NodeId> pos_src, pos_dst, neg_src, neg_dst;
  const auto& evs = w.graph.events();
  const size_t num_pairs = 200;
  for (size_t i = evs.size() - std::min(evs.size(), num_pairs);
       i < evs.size(); ++i) {
    pos_src.push_back(evs[i].src);
    pos_dst.push_back(evs[i].dst);
  }
  Rng neg_rng(99);
  for (size_t i = 0; i < num_pairs; ++i) {
    neg_src.push_back(static_cast<graph::NodeId>(
        neg_rng.NextBounded(static_cast<uint64_t>(w.num_nodes))));
    neg_dst.push_back(static_cast<graph::NodeId>(
        neg_rng.NextBounded(static_cast<uint64_t>(w.num_nodes))));
  }

  QuantRecord fp32_rec;
  QuantRecord int8_rec;
  ts::Tensor fp32_probe;
  ts::Tensor int8_probe;
  const int64_t int8_calls_before =
      obs::MetricsRegistry::Global().counter("tensor.matmul.int8_calls")
          .value();
  for (const serve::ServePrecision precision :
       {serve::ServePrecision::kFp32, serve::ServePrecision::kInt8}) {
    serve::ServingOptions options;
    options.precision = precision;
    options.max_batch = 64;
    options.max_wait_micros = 0;
    options.cache_capacity = 0;  // every request runs the full forward
    auto engine = serve::ServingEngine::FromCheckpoint(
                      config, kQuantPredictorHidden, &w.graph,
                      w.checkpoint_path, options)
                      .TakeValue();
    const bool is_fp32 = precision == serve::ServePrecision::kFp32;
    QuantRecord rec = DriveQuantEngine(
        engine.get(), w, serve::ServePrecisionName(precision), batches,
        batch_nodes, t_query, pos_src, pos_dst, neg_src, neg_dst,
        is_fp32 ? &fp32_probe : &int8_probe, &ok);
    if (is_fp32) {
      fp32_rec = rec;
    } else {
      int8_rec = rec;
    }
  }

  // Per-row cosine between the fp32 and int8 embeddings of the same probe
  // nodes: a direct bound on quantization error, independent of how
  // discriminative the (untrained-in-this-bench) predictor head is.
  double min_cosine = 1.0;
  {
    const int64_t rows = fp32_probe.rows();
    const int64_t cols = fp32_probe.cols();
    for (int64_t r = 0; r < rows; ++r) {
      const float* x = fp32_probe.data() + r * cols;
      const float* y = int8_probe.data() + r * cols;
      double dot = 0.0, nx = 0.0, ny = 0.0;
      for (int64_t j = 0; j < cols; ++j) {
        dot += static_cast<double>(x[j]) * y[j];
        nx += static_cast<double>(x[j]) * x[j];
        ny += static_cast<double>(y[j]) * y[j];
      }
      if (nx == 0.0 || ny == 0.0) continue;
      min_cosine = std::min(min_cosine, dot / std::sqrt(nx * ny));
    }
  }
  const int64_t int8_calls =
      obs::MetricsRegistry::Global().counter("tensor.matmul.int8_calls")
          .value() -
      int8_calls_before;
  if (int8_calls == 0) {
    std::fprintf(stderr,
                 "FAIL: int8 engine never took the quantized MatMul path "
                 "(tensor.matmul.int8_calls stayed 0)\n");
    ok = false;
  }

  const double auc_delta = std::abs(int8_rec.auc - fp32_rec.auc);
  const double speedup = int8_rec.nodes_per_s / fp32_rec.nodes_per_s;
  const bool vnni = tensor::simd::ActiveMode() == tensor::simd::Mode::kAvx2 &&
                    tensor::simd::AvxVnniSupported();
  std::printf("int8 vs fp32: speedup %.2fx, auc delta %.4f, min probe "
              "cosine %.5f (simd=%s, avx_vnni=%s, int8 matmuls=%lld)\n",
              speedup, auc_delta, min_cosine,
              tensor::simd::ModeName(tensor::simd::ActiveMode()),
              vnni ? "true" : "false", static_cast<long long>(int8_calls));

  // JSON for bench/baselines + scripts/check_bench_regression.py.
  {
    std::FILE* f = std::fopen("BENCH_serving_quant.json", "w");
    if (f != nullptr) {
      std::fprintf(
          f,
          "{\n"
          "  \"simd_mode\": \"%s\",\n"
          "  \"avx_vnni\": %s,\n"
          "  \"embed_dim\": %lld,\n"
          "  \"auc_fp32\": %.6g,\n"
          "  \"auc_int8\": %.6g,\n"
          "  \"auc_delta\": %.6g,\n"
          "  \"min_probe_cosine\": %.6g,\n"
          "  \"speedup_vs_fp32\": %.4g,\n"
          "  \"records\": [\n",
          tensor::simd::ModeName(tensor::simd::ActiveMode()),
          vnni ? "true" : "false",
          static_cast<long long>(config.embed_dim), fp32_rec.auc,
          int8_rec.auc, auc_delta, min_cosine, speedup);
      const QuantRecord* recs[2] = {&fp32_rec, &int8_rec};
      for (int i = 0; i < 2; ++i) {
        std::fprintf(
            f,
            "    {\"precision\": \"%s\", \"nodes_embedded\": %lld, "
            "\"seconds\": %.6g, \"nodes_per_s\": %.6g, \"p50_ms\": %.6g, "
            "\"p99_ms\": %.6g, \"auc\": %.6g}%s\n",
            recs[i]->precision.c_str(),
            static_cast<long long>(recs[i]->nodes_embedded),
            recs[i]->seconds, recs[i]->nodes_per_s, recs[i]->p50_ms,
            recs[i]->p99_ms, recs[i]->auc, i == 0 ? "," : "");
      }
      std::fputs("  ]\n}\n", f);
      std::fclose(f);
      std::printf("wrote BENCH_serving_quant.json\n");
    }
  }
  std::remove(w.checkpoint_path.c_str());

  if (auc_delta > 0.01) {
    std::fprintf(stderr,
                 "FAIL: int8 AUC %.4f deviates from fp32 AUC %.4f by "
                 "%.4f (> 0.01 tolerance)\n",
                 int8_rec.auc, fp32_rec.auc, auc_delta);
    ok = false;
  }
  if (min_cosine < 0.99) {
    std::fprintf(stderr,
                 "FAIL: minimum int8-vs-fp32 probe embedding cosine %.5f "
                 "is below the 0.99 floor\n",
                 min_cosine);
    ok = false;
  }
  if (vnni && speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: int8 embed throughput %.1f nodes/s is only %.2fx "
                 "fp32 (%.1f nodes/s) with AVX-VNNI active, below the 2x "
                 "bar\n",
                 int8_rec.nodes_per_s, speedup, fp32_rec.nodes_per_s);
    ok = false;
  } else if (!vnni) {
    std::printf("note: AVX-VNNI inactive; the 2x int8 speedup bar is not "
                "enforced on this hardware\n");
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  std::printf("serving benchmark (%s); hardware_concurrency=%d, "
              "kernel threads=%d\n\n",
              smoke ? "smoke" : "full",
              std::thread::hardware_concurrency(),
              util::ThreadPool::DefaultNumThreads());

  Workload w = BuildWorkload(smoke);
  const double t_query = w.graph.max_time() + 1.0;
  const dgnn::EncoderConfig config = BenchConfig(w.num_nodes);
  bool ok = true;
  std::vector<Record> records;
  double unbatched_rps = 0.0;

  // --- unbatched, cold: coalescing and caching both off ---
  {
    serve::ServingOptions options;
    options.max_batch = 1;
    options.cache_capacity = 0;
    auto engine = serve::ServingEngine::FromCheckpoint(
                      config, kPredictorHidden, &w.graph, w.checkpoint_path,
                      options)
                      .TakeValue();
    Record rec =
        DriveEmbedClients(engine.get(), w, "unbatched_cold", t_query, &ok);
    rec.speedup_vs_unbatched = 1.0;
    unbatched_rps = rec.rps;
    Print(rec);
    records.push_back(rec);
  }

  // --- batched: coalescing + cache on (the full serving config); the
  // first pass starts from a cold cache and warms it, the second runs
  // entirely warm ---
  {
    serve::ServingOptions options;
    options.max_batch = 64;
    options.max_wait_micros = 0;  // adaptive: never hold a batch open
    options.cache_capacity = 4 * w.num_nodes;
    auto engine = serve::ServingEngine::FromCheckpoint(
                      config, kPredictorHidden, &w.graph, w.checkpoint_path,
                      options)
                      .TakeValue();

    Record cold =
        DriveEmbedClients(engine.get(), w, "batched_cold", t_query, &ok);
    int64_t hits = engine->cache_hits();
    int64_t misses = engine->cache_misses();
    cold.cache_hit_rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
    cold.speedup_vs_unbatched = cold.rps / unbatched_rps;
    Print(cold);
    records.push_back(cold);

    Record warm =
        DriveEmbedClients(engine.get(), w, "batched_warm", t_query, &ok);
    int64_t hits2 = engine->cache_hits() - hits;
    int64_t misses2 = engine->cache_misses() - misses;
    warm.cache_hit_rate =
        static_cast<double>(hits2) / static_cast<double>(hits2 + misses2);
    warm.speedup_vs_unbatched = warm.rps / unbatched_rps;
    Print(warm);
    records.push_back(warm);

    // Served result must be bit-identical to the direct encoder forward,
    // cache hit or not.
    std::vector<graph::NodeId> probe;
    for (graph::NodeId v = 0; v < std::min<int64_t>(w.num_nodes, 32); ++v) {
      probe.push_back(v);
    }
    ts::Tensor served = engine->Embed(probe, t_query).ValueOrDie();
    ts::Tensor direct;
    {
      ts::InferenceModeGuard guard;
      w.reference->BeginBatch();
      direct = w.reference->ComputeEmbeddings(
          probe, std::vector<double>(probe.size(), t_query));
    }
    if (served.size() != direct.size() ||
        std::memcmp(served.data(), direct.data(),
                    static_cast<size_t>(direct.size()) * sizeof(float)) !=
            0) {
      std::fprintf(stderr,
                   "FAIL: served embeddings differ bitwise from the direct "
                   "encoder forward\n");
      ok = false;
    } else {
      std::printf("served embeddings bitwise-match the direct forward\n");
    }

    // --- link scoring over the warm engine ---
    {
      Record rec;
      rec.scenario = "score_links_warm";
      rec.clients = w.clients;
      rec.requests = static_cast<int64_t>(w.clients) * w.requests_per_client;
      std::vector<std::thread> threads;
      std::vector<std::vector<double>> latencies(
          static_cast<size_t>(w.clients));
      util::Timer wall;
      for (int c = 0; c < w.clients; ++c) {
        threads.emplace_back([&, c] {
          auto& mine = latencies[static_cast<size_t>(c)];
          for (int64_t i = 0; i < w.requests_per_client; ++i) {
            graph::NodeId src = ClientNode(c, i, w.num_nodes);
            graph::NodeId dst = ClientNode(c + 1, i, w.num_nodes);
            util::Timer timer;
            auto result = engine->ScoreLinks({src}, {dst}, t_query);
            mine.push_back(timer.ElapsedMillis());
            if (!result.ok()) ok = false;
          }
        });
      }
      for (auto& thread : threads) thread.join();
      rec.seconds = wall.ElapsedSeconds();
      rec.rps = static_cast<double>(rec.requests) / rec.seconds;
      std::vector<double> all;
      for (const auto& v : latencies) {
        all.insert(all.end(), v.begin(), v.end());
      }
      std::sort(all.begin(), all.end());
      rec.p50_ms = all[all.size() / 2];
      rec.p99_ms = all[all.size() * 99 / 100];
      rec.speedup_vs_unbatched = rec.rps / unbatched_rps;
      Print(rec);
      records.push_back(rec);
    }

    // --- event ingestion: replay fresh events into the frozen memory,
    // which invalidates the cache (serve/advance span + metrics) ---
    {
      Rng advance_rng(1234);
      std::vector<graph::Event> fresh;
      double t_new = t_query;
      for (int i = 0; i < 50; ++i) {
        graph::Event e;
        e.src = static_cast<graph::NodeId>(advance_rng.NextBounded(
            static_cast<uint64_t>(w.num_nodes)));
        e.dst = static_cast<graph::NodeId>(advance_rng.NextBounded(
            static_cast<uint64_t>(w.num_nodes)));
        if (e.dst == e.src) e.dst = (e.src + 1) % w.num_nodes;
        t_new += 0.1;
        e.time = t_new;
        fresh.push_back(e);
      }
      util::Timer timer;
      cpdg::Status status = engine->Advance(fresh);
      if (!status.ok()) {
        std::fprintf(stderr, "advance failed: %s\n",
                     status.ToString().c_str());
        ok = false;
      }
      std::printf("advance of %zu events: %.3f ms, %lld cache entries "
                  "invalidated\n",
                  fresh.size(), timer.ElapsedMillis(),
                  static_cast<long long>(engine->cache_invalidations()));
    }
  }

  WriteJson(records, "BENCH_serving.json");

  // Observability side channel: serve.* metrics snapshot always, Chrome
  // trace (with the serve/* spans) when CPDG_TRACE=1.
  {
    cpdg::Status status = obs::MetricsRegistry::Global().WriteJson(
        "BENCH_serving_metrics.json");
    if (status.ok()) {
      std::printf("wrote BENCH_serving_metrics.json\n");
    } else {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
    }
    if (obs::TraceEnabled()) {
      status = obs::Profiler::Global().WriteChromeTrace(
          "BENCH_serving_trace.json");
      if (status.ok()) {
        std::printf("wrote BENCH_serving_trace.json\n");
      } else {
        std::fprintf(stderr, "trace export failed: %s\n",
                     status.ToString().c_str());
      }
    }
  }
  std::remove(w.checkpoint_path.c_str());

  if (!RunQuantComparison(smoke)) ok = false;

  const Record& batched = records[1];
  if (batched.speedup_vs_unbatched < 2.0) {
    std::fprintf(stderr,
                 "FAIL: batched throughput %.1f req/s is %.2fx unbatched "
                 "(%.1f req/s), below the 2x bar\n",
                 batched.rps, batched.speedup_vs_unbatched, unbatched_rps);
    return 1;
  }
  if (!ok) return 1;
  std::printf("\nbatched/unbatched speedup %.2fx, warm/unbatched %.2fx\n",
              batched.speedup_vs_unbatched,
              records[2].speedup_vs_unbatched);
  return 0;
}
