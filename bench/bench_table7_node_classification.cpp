// Reproduces Table VII: dynamic node classification (AUC) on the
// Wikipedia-, MOOC-, and Reddit-like labeled datasets under time transfer
// for the six dynamic methods. Expected shape: CPDG best on the
// Wikipedia- and Reddit-like datasets; TGN may win on the MOOC-like
// dataset whose structural/temporal patterns are deliberately weak
// (matching the paper's observation).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "util/table_printer.h"

int main() {
  using namespace cpdg;
  bench::ExperimentScale scale = bench::ExperimentScale::FromEnv();
  std::printf(
      "Table VII reproduction: dynamic node classification AUC, time "
      "transfer (seeds=%lld)\n\n",
      static_cast<long long>(scale.num_seeds));

  struct DatasetSpec {
    const char* label;
    data::UniverseSpec spec;
    uint64_t seed;
  };
  std::vector<DatasetSpec> datasets = {
      {"Wikipedia", data::MakeWikipediaLike(), 20240701},
      {"MOOC", data::MakeMoocLike(), 20240702},
      {"Reddit", data::MakeRedditLike(), 20240703},
  };

  const std::vector<bench::MethodId> methods = {
      bench::MethodId::kDyRep, bench::MethodId::kJodie,
      bench::MethodId::kTgn,   bench::MethodId::kDdgcl,
      bench::MethodId::kSelfRgnn, bench::MethodId::kCpdg,
  };

  std::vector<std::string> header = {"Method"};
  for (const auto& d : datasets) header.push_back(d.label);
  TablePrinter table(header);

  // Build all datasets once.
  std::vector<data::TransferDataset> built;
  for (const auto& d : datasets) {
    data::TransferBenchmarkBuilder builder(
        bench::ScaleSpec(d.spec, scale.event_scale), d.seed);
    built.push_back(builder.BuildSingleField());
  }

  for (bench::MethodId id : methods) {
    bench::MethodSpec spec = id == bench::MethodId::kCpdg
                                 ? bench::MethodSpec::Cpdg()
                                 : bench::MethodSpec::Baseline(id);
    std::vector<std::string> row = {bench::MethodName(id)};
    for (const auto& ds : built) {
      RunningStats stats = bench::RunNodeClassificationSeeds(spec, ds,
                                                             scale);
      row.push_back(
          TablePrinter::FormatMeanStd(stats.mean(), stats.stddev()));
    }
    table.AddRow(row);
    std::fprintf(stderr, "  [table7] %s done\n", bench::MethodName(id));
  }
  table.Print(std::cout);
  return 0;
}
