// Reproduces Table VIII: AUC gained by CPDG pre-training over vanilla
// task-supervised pre-training for each DGNN backbone (DyRep / JODIE /
// TGN) on Amazon-Beauty and Amazon-Luxury under all three transfer
// settings. Expected shape: "with CPDG" >= vanilla in every cell.

#include <cstdio>
#include <iostream>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "util/table_printer.h"

int main() {
  using namespace cpdg;
  bench::ExperimentScale scale = bench::ExperimentScale::FromEnv();
  std::printf(
      "Table VIII reproduction: CPDG gain per DGNN backbone, AUC "
      "(seeds=%lld)\n\n",
      static_cast<long long>(scale.num_seeds));

  data::TransferBenchmarkBuilder amazon(
      bench::ScaleSpec(data::MakeAmazonLike(), scale.event_scale), 20240801);

  struct Row {
    bench::MethodId vanilla;
    dgnn::EncoderType backbone;
  };
  const Row rows[] = {
      {bench::MethodId::kDyRep, dgnn::EncoderType::kDyRep},
      {bench::MethodId::kJodie, dgnn::EncoderType::kJodie},
      {bench::MethodId::kTgn, dgnn::EncoderType::kTgn},
  };

  for (auto setting :
       {data::TransferSetting::kTime, data::TransferSetting::kField,
        data::TransferSetting::kTimeField}) {
    data::TransferDataset beauty = amazon.Build(setting, 0);
    data::TransferDataset luxury = amazon.Build(setting, 1);

    TablePrinter table({"Method", "Beauty", "Luxury"});
    for (const Row& row : rows) {
      bench::AggregatedResult vb = bench::RunLinkPredictionSeeds(
          bench::MethodSpec::Baseline(row.vanilla), beauty, scale);
      bench::AggregatedResult vl = bench::RunLinkPredictionSeeds(
          bench::MethodSpec::Baseline(row.vanilla), luxury, scale);
      table.AddRow({bench::MethodName(row.vanilla),
                    TablePrinter::FormatMeanStd(vb.auc.mean(),
                                                vb.auc.stddev()),
                    TablePrinter::FormatMeanStd(vl.auc.mean(),
                                                vl.auc.stddev())});
      bench::AggregatedResult cb = bench::RunLinkPredictionSeeds(
          bench::MethodSpec::Cpdg(row.backbone), beauty, scale);
      bench::AggregatedResult cl = bench::RunLinkPredictionSeeds(
          bench::MethodSpec::Cpdg(row.backbone), luxury, scale);
      table.AddRow({"  with CPDG",
                    TablePrinter::FormatMeanStd(cb.auc.mean(),
                                                cb.auc.stddev()),
                    TablePrinter::FormatMeanStd(cl.auc.mean(),
                                                cl.auc.stddev())});
      table.AddSeparator();
      std::fprintf(stderr, "  [table8/%s] %s done\n",
                   data::TransferSettingName(setting),
                   bench::MethodName(row.vanilla));
    }
    std::printf("--- %s transfer ---\n",
                data::TransferSettingName(setting));
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
