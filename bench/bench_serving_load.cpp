// Open-loop serving load generator: drives the multi-shard engine with
// Poisson arrivals at fixed offered rates (fractions and multiples of the
// measured saturation throughput) and reports, per rate, the achieved
// throughput, p50/p95/p99 latency of admitted requests, and the overload
// verdict counts (rejected / shed / stale / deadline-exceeded), into
// BENCH_serving_load.json.
//
// Open loop means arrivals do not wait for completions — exactly the
// regime where an unbounded queue melts down. The run doubles as an
// overload acceptance check and exits nonzero when robustness invariants
// break at any offered rate, including 2x saturation:
//   - the queue stays bounded (peak depth <= the configured limit),
//   - p99 latency of admitted (successful) requests stays within the
//     configured deadline — late requests must be expired, not served late,
//   - every submitted request is accounted for: answered, rejected, shed,
//     or expired; nothing lost, no aborts.
//
// A final live-feed scenario exercises serving under churn: a feeder
// thread streams freshly generated events through the journaled Advance
// barrier at a configurable rate (CPDG_BENCH_FEED_EPS events/sec) while
// Poisson query load runs, reporting how memory churn interacts with
// latency and staleness (stale-served counts, cache invalidations) on top
// of the same robustness gates.
//
// Usage:
//   bench_serving_load          full size:  600 nodes, 3 s per rate
//   bench_serving_load --smoke  CI-sized:   200 nodes, 1.2 s per rate

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dgnn/encoder.h"
#include "graph/temporal_graph.h"
#include "obs/metrics.h"
#include "serve/request_queue.h"
#include "serve/serving_engine.h"
#include "tensor/checkpoint_container.h"
#include "tensor/serialization.h"
#include "tensor/tensor.h"
#include "train/checkpoint.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace cpdg;
namespace ts = cpdg::tensor;

constexpr int64_t kPredictorHidden = 32;
constexpr int64_t kQueueLimit = 64;
constexpr int64_t kDeadlineUs = 200000;  // 200 ms per-request budget

struct Record {
  std::string scenario;
  double offered_rps = 0.0;
  int64_t requests = 0;  // arrivals submitted
  double seconds = 0.0;  // arrival window + drain
  double rps = 0.0;      // successfully answered per second
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  int64_t answered = 0;
  int64_t rejected = 0;
  int64_t shed = 0;
  int64_t stale = 0;
  int64_t deadline_exceeded = 0;
  int64_t peak_queue_depth = 0;
  // Live-feed extras (zero for query-only scenarios).
  int64_t events_fed = 0;
  int64_t advances = 0;
  int64_t cache_invalidations = 0;
};

struct Workload {
  int64_t num_nodes = 0;
  double seconds_per_rate = 0.0;
  graph::TemporalGraph graph;
  std::string checkpoint_path;
  std::unique_ptr<Rng> rng;
};

dgnn::EncoderConfig BenchConfig(int64_t num_nodes) {
  dgnn::EncoderConfig config;
  config.num_nodes = num_nodes;
  config.memory_dim = 32;
  config.embed_dim = 32;
  config.time_dim = 8;
  config.num_neighbors = 10;
  return config;
}

Workload BuildWorkload(bool smoke) {
  Workload w;
  w.num_nodes = smoke ? 200 : 600;
  w.seconds_per_rate = smoke ? 1.2 : 3.0;

  Rng event_rng(7);
  std::vector<graph::Event> events;
  const size_t num_events = smoke ? 800 : 3000;
  double t = 0.0;
  for (size_t i = 0; i < num_events; ++i) {
    graph::Event e;
    e.src = static_cast<graph::NodeId>(
        event_rng.NextBounded(static_cast<uint64_t>(w.num_nodes)));
    e.dst = static_cast<graph::NodeId>(
        event_rng.NextBounded(static_cast<uint64_t>(w.num_nodes)));
    if (e.dst == e.src) e.dst = (e.src + 1) % w.num_nodes;
    t += event_rng.NextUniform(0.05, 1.0);
    e.time = t;
    events.push_back(e);
  }
  w.graph = graph::TemporalGraph::Create(w.num_nodes, std::move(events))
                .ValueOrDie();

  w.rng = std::make_unique<Rng>(42);
  dgnn::DgnnEncoder reference(BenchConfig(w.num_nodes), &w.graph,
                              w.rng.get());
  dgnn::LinkPredictor predictor(BenchConfig(w.num_nodes).embed_dim,
                                kPredictorHidden, w.rng.get());
  {
    ts::InferenceModeGuard guard;
    reference.ReplayEvents(w.graph.events(), /*batch_size=*/200);
  }
  std::vector<ts::Tensor> params = reference.Parameters();
  std::vector<ts::Tensor> dec = predictor.Parameters();
  params.insert(params.end(), dec.begin(), dec.end());
  ts::SectionWriter writer;
  writer.Add(ts::kParamsSection, ts::EncodeTensorList(params).ValueOrDie());
  std::string memory_bytes;
  reference.memory().SerializeTo(&memory_bytes);
  writer.Add(train::kMemorySection, memory_bytes);
  w.checkpoint_path = "BENCH_serving_load_ckpt.bin";
  cpdg::Status status = writer.WriteAtomic(w.checkpoint_path);
  if (!status.ok()) {
    std::fprintf(stderr, "checkpoint write failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }
  return w;
}

graph::NodeId PickNode(int64_t i, int64_t num_nodes) {
  return static_cast<graph::NodeId>((i * 7 + 13) % num_nodes);
}

/// Closed-loop blast from a few client threads: the engine's saturation
/// throughput, anchoring the open-loop offered rates.
double MeasureSaturation(serve::ServingEngine* engine, const Workload& w,
                         double t_query, std::vector<Record>* records) {
  const int clients = 8;
  const int64_t per_client = 200;
  util::Timer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int64_t i = 0; i < per_client; ++i) {
        auto result =
            engine->Embed({PickNode(c * per_client + i, w.num_nodes)},
                          t_query);
        if (!result.ok()) {
          std::fprintf(stderr, "saturation probe failed: %s\n",
                       result.status().ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  Record rec;
  rec.scenario = "closed_loop_saturation";
  rec.requests = static_cast<int64_t>(clients) * per_client;
  rec.answered = rec.requests;
  rec.seconds = wall.ElapsedSeconds();
  rec.rps = static_cast<double>(rec.requests) / rec.seconds;
  rec.offered_rps = rec.rps;
  std::printf("%-24s %6lld requests in %6.3f s -> %8.1f req/s\n",
              rec.scenario.c_str(), static_cast<long long>(rec.requests),
              rec.seconds, rec.rps);
  records->push_back(rec);
  return rec.rps;
}

/// One open-loop run: Poisson arrivals at `offered_rps` for the workload's
/// window, harvested after the arrival window closes.
Record DriveOpenLoop(serve::ServingEngine* engine, const Workload& w,
                     double t_query, double offered_rps,
                     const std::string& scenario, Rng* rng) {
  Record rec;
  rec.scenario = scenario;
  rec.offered_rps = offered_rps;

  const int64_t arrivals = std::max<int64_t>(
      50, static_cast<int64_t>(offered_rps * w.seconds_per_rate));
  std::vector<std::future<Result<serve::EmbedResponse>>> futures;
  futures.reserve(static_cast<size_t>(arrivals));

  const int64_t base_rejected = engine->rejected_count();
  const int64_t base_shed = engine->shed_count();
  const int64_t base_stale = engine->stale_served_count();
  const int64_t base_deadline = engine->deadline_exceeded_count();

  util::Timer wall;
  const auto start = std::chrono::steady_clock::now();
  auto next = start;
  int64_t submit_errors = 0;
  for (int64_t i = 0; i < arrivals; ++i) {
    // Exponential inter-arrival times make the offered stream Poisson —
    // bursty, the way open-loop clients actually arrive.
    double u = rng->NextUniform(1e-12, 1.0);
    next += std::chrono::microseconds(static_cast<int64_t>(
        -std::log(u) / offered_rps * 1e6));
    std::this_thread::sleep_until(next);
    auto submitted = engine->EmbedAsync({PickNode(i, w.num_nodes)}, t_query,
                                        kDeadlineUs);
    if (submitted.ok()) {
      futures.push_back(submitted.TakeValue());
    } else {
      ++submit_errors;  // admission rejection; counted via engine totals
    }
  }

  // Harvest: every admitted request resolves — answered, shed after
  // admission, expired, or failed — or the accounting gate below trips.
  std::vector<double> latencies_ms;
  latencies_ms.reserve(futures.size());
  int64_t failed_other = 0;
  for (auto& future : futures) {
    auto result = future.get();
    if (result.ok()) {
      ++rec.answered;
      if (result.value().stale) ++rec.stale;
      latencies_ms.push_back(
          static_cast<double>(result.value().latency_us) / 1000.0);
    } else if (result.status().code() == StatusCode::kDeadlineExceeded ||
               result.status().code() == StatusCode::kResourceExhausted) {
      // expired in queue / shed after admission: counted via engine totals
    } else {
      std::fprintf(stderr, "unexpected failure: %s\n",
                   result.status().ToString().c_str());
      ++failed_other;
    }
  }
  rec.seconds = wall.ElapsedSeconds();
  rec.requests = arrivals;
  rec.rps = static_cast<double>(rec.answered) / rec.seconds;
  rec.rejected = engine->rejected_count() - base_rejected;
  rec.shed = engine->shed_count() - base_shed;
  rec.stale = engine->stale_served_count() - base_stale;
  rec.deadline_exceeded = engine->deadline_exceeded_count() - base_deadline;
  rec.peak_queue_depth = engine->queue_peak_depth();

  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    rec.p50_ms = latencies_ms[latencies_ms.size() / 2];
    rec.p95_ms = latencies_ms[latencies_ms.size() * 95 / 100];
    rec.p99_ms = latencies_ms[latencies_ms.size() * 99 / 100];
  }
  if (failed_other > 0) {
    std::fprintf(stderr, "FAIL: %lld requests failed outside the overload "
                 "protocol at %.1f req/s offered\n",
                 static_cast<long long>(failed_other), offered_rps);
    std::exit(1);
  }
  // Conservation: every arrival either produced a future (which resolved
  // above — answered, expired, or shed) or was turned away at admission.
  const int64_t accounted =
      static_cast<int64_t>(futures.size()) + submit_errors;
  if (accounted != arrivals) {
    std::fprintf(stderr, "FAIL: %lld arrivals but %lld accounted\n",
                 static_cast<long long>(arrivals),
                 static_cast<long long>(accounted));
    std::exit(1);
  }

  std::printf("%-24s offered %8.1f req/s  answered %8.1f req/s  "
              "p50 %7.2f ms  p95 %7.2f ms  p99 %7.2f ms  "
              "rej %lld shed %lld stale %lld expired %lld  peak-q %lld\n",
              rec.scenario.c_str(), rec.offered_rps, rec.rps, rec.p50_ms,
              rec.p95_ms, rec.p99_ms, static_cast<long long>(rec.rejected),
              static_cast<long long>(rec.shed),
              static_cast<long long>(rec.stale),
              static_cast<long long>(rec.deadline_exceeded),
              static_cast<long long>(rec.peak_queue_depth));
  return rec;
}

void WriteJson(const std::vector<Record>& records, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fputs("[\n", f);
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "  {\"scenario\": \"%s\", \"offered_rps\": %.6g, "
        "\"requests\": %lld, \"seconds\": %.6g, \"rps\": %.6g, "
        "\"p50_ms\": %.6g, \"p95_ms\": %.6g, \"p99_ms\": %.6g, "
        "\"answered\": %lld, \"rejected\": %lld, \"shed\": %lld, "
        "\"stale\": %lld, \"deadline_exceeded\": %lld, "
        "\"peak_queue_depth\": %lld, \"events_fed\": %lld, "
        "\"advances\": %lld, \"cache_invalidations\": %lld}%s\n",
        r.scenario.c_str(), r.offered_rps,
        static_cast<long long>(r.requests), r.seconds, r.rps, r.p50_ms,
        r.p95_ms, r.p99_ms, static_cast<long long>(r.answered),
        static_cast<long long>(r.rejected), static_cast<long long>(r.shed),
        static_cast<long long>(r.stale),
        static_cast<long long>(r.deadline_exceeded),
        static_cast<long long>(r.peak_queue_depth),
        static_cast<long long>(r.events_fed),
        static_cast<long long>(r.advances),
        static_cast<long long>(r.cache_invalidations),
        i + 1 < records.size() ? "," : "");
  }
  std::fputs("]\n", f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  std::printf("open-loop serving load benchmark (%s); "
              "hardware_concurrency=%d, kernel threads=%d\n\n",
              smoke ? "smoke" : "full",
              std::thread::hardware_concurrency(),
              util::ThreadPool::DefaultNumThreads());

  Workload w = BuildWorkload(smoke);
  const double t_query = w.graph.max_time() + 1.0;

  serve::ServingOptions options;
  options.max_batch = 64;
  options.cache_capacity = 0;  // every request computes: honest service time
  options.num_shards = 2;
  options.queue_limit = kQueueLimit;
  options.overload = serve::OverloadPolicy::kReject;
  options.default_deadline_us = kDeadlineUs;
  auto engine = serve::ServingEngine::FromCheckpoint(
                    BenchConfig(w.num_nodes), kPredictorHidden, &w.graph,
                    w.checkpoint_path, options)
                    .TakeValue();
  std::printf("engine: %d shards, queue limit %lld (%s), deadline %lld us\n",
              engine->num_shards(), static_cast<long long>(kQueueLimit),
              serve::OverloadPolicyName(options.overload),
              static_cast<long long>(kDeadlineUs));

  std::vector<Record> records;
  const double saturation =
      MeasureSaturation(engine.get(), w, t_query, &records);

  Rng arrival_rng(0xa11ce);
  bool ok = true;
  for (double multiple : {0.5, 1.0, 2.0}) {
    char label[32];
    std::snprintf(label, sizeof(label), "load_%.2gx", multiple);
    Record rec = DriveOpenLoop(engine.get(), w, t_query,
                               multiple * saturation, label, &arrival_rng);
    // Robustness gates, enforced at every offered rate including 2x
    // saturation:
    if (rec.peak_queue_depth > kQueueLimit) {
      std::fprintf(stderr,
                   "FAIL: %s peak queue depth %lld exceeds limit %lld\n",
                   rec.scenario.c_str(),
                   static_cast<long long>(rec.peak_queue_depth),
                   static_cast<long long>(kQueueLimit));
      ok = false;
    }
    if (rec.answered > 0 && rec.p99_ms > kDeadlineUs / 1000.0) {
      std::fprintf(stderr,
                   "FAIL: %s p99 %.2f ms of admitted requests exceeds the "
                   "%.0f ms deadline\n",
                   rec.scenario.c_str(), rec.p99_ms, kDeadlineUs / 1000.0);
      ok = false;
    }
    records.push_back(rec);
  }

  // --- live feed: event churn through Advance while query load runs ---
  //
  // A feeder thread streams generated events through the Advance barrier
  // at a fixed events/sec rate while Poisson queries run at half the
  // closed-loop saturation. Two cache configurations, because the engine
  // deliberately treats churn differently by deadline mode:
  //   live_feed       — deadline set, so keep_stale_entries is forced on:
  //                     advances keep old cache generations around for
  //                     deadline-pressed stale serving. Reports the
  //                     staleness/latency interaction.
  //   live_feed_inval — no default deadline: every advance eagerly
  //                     invalidates the cache; gates that churn actually
  //                     exercised invalidation.
  {
    double feed_eps = smoke ? 400.0 : 800.0;
    if (const char* v = std::getenv("CPDG_BENCH_FEED_EPS")) {
      char* end = nullptr;
      const double parsed = std::strtod(v, &end);
      if (end != v && *end == '\0' && parsed > 0.0) feed_eps = parsed;
    }
    constexpr int64_t kFeedBatch = 20;  // events per Advance

    // Query far enough ahead that fed event times (+1 ms per event) never
    // pass the query horizon inside any plausible run length.
    const double t_far = w.graph.max_time() + 1000.0;

    struct LiveFeedCase {
      const char* scenario;
      int64_t default_deadline_us;
    };
    for (const LiveFeedCase& lf_case :
         {LiveFeedCase{"live_feed", kDeadlineUs},
          LiveFeedCase{"live_feed_inval", 0}}) {
      serve::ServingOptions lf_options;
      lf_options.max_batch = 64;
      lf_options.cache_capacity = 4 * w.num_nodes;
      lf_options.num_shards = 2;
      lf_options.queue_limit = kQueueLimit;
      lf_options.overload = serve::OverloadPolicy::kReject;
      lf_options.default_deadline_us = lf_case.default_deadline_us;
      auto lf_engine = serve::ServingEngine::FromCheckpoint(
                           BenchConfig(w.num_nodes), kPredictorHidden,
                           &w.graph, w.checkpoint_path, lf_options)
                           .TakeValue();
      const uint64_t version_before = lf_engine->memory_version();

      std::atomic<bool> stop{false};
      std::atomic<bool> feeder_ok{true};
      std::atomic<int64_t> events_fed{0};
      std::atomic<int64_t> advances{0};
      std::thread feeder([&] {
        Rng feed_rng(0xfeedd);
        double t_event = w.graph.max_time() + 1.0;
        auto next = std::chrono::steady_clock::now();
        while (!stop.load(std::memory_order_relaxed)) {
          std::vector<graph::Event> batch;
          batch.reserve(kFeedBatch);
          for (int64_t i = 0; i < kFeedBatch; ++i) {
            graph::Event e;
            e.src = static_cast<graph::NodeId>(
                feed_rng.NextBounded(static_cast<uint64_t>(w.num_nodes)));
            e.dst = static_cast<graph::NodeId>(
                feed_rng.NextBounded(static_cast<uint64_t>(w.num_nodes)));
            if (e.dst == e.src) e.dst = (e.src + 1) % w.num_nodes;
            t_event += 0.001;
            e.time = t_event;
            batch.push_back(e);
          }
          cpdg::Status status = lf_engine->Advance(std::move(batch));
          if (!status.ok()) {
            std::fprintf(stderr, "live-feed advance failed: %s\n",
                         status.ToString().c_str());
            feeder_ok.store(false);
            return;
          }
          events_fed.fetch_add(kFeedBatch, std::memory_order_relaxed);
          advances.fetch_add(1, std::memory_order_relaxed);
          next += std::chrono::microseconds(
              static_cast<int64_t>(kFeedBatch / feed_eps * 1e6));
          std::this_thread::sleep_until(next);
        }
      });

      Record rec = DriveOpenLoop(lf_engine.get(), w, t_far,
                                 0.5 * saturation, lf_case.scenario,
                                 &arrival_rng);
      stop.store(true);
      feeder.join();
      rec.events_fed = events_fed.load();
      rec.advances = advances.load();
      rec.cache_invalidations = lf_engine->cache_invalidations();
      std::printf("%s: %lld events in %lld advances (%.0f ev/s offered), "
                  "%lld cache invalidations, %lld stale-served\n",
                  lf_case.scenario, static_cast<long long>(rec.events_fed),
                  static_cast<long long>(rec.advances), feed_eps,
                  static_cast<long long>(rec.cache_invalidations),
                  static_cast<long long>(rec.stale));

      if (!feeder_ok.load()) ok = false;
      if (rec.advances == 0 ||
          lf_engine->memory_version() <= version_before) {
        std::fprintf(stderr,
                     "FAIL: %s produced no memory churn (advances %lld, "
                     "version %llu -> %llu)\n",
                     lf_case.scenario, static_cast<long long>(rec.advances),
                     static_cast<unsigned long long>(version_before),
                     static_cast<unsigned long long>(
                         lf_engine->memory_version()));
        ok = false;
      }
      if (lf_case.default_deadline_us == 0 &&
          rec.cache_invalidations == 0) {
        std::fprintf(stderr,
                     "FAIL: %s advanced %lld times but never invalidated "
                     "the cache\n",
                     lf_case.scenario,
                     static_cast<long long>(rec.advances));
        ok = false;
      }
      if (rec.peak_queue_depth > kQueueLimit) {
        std::fprintf(stderr,
                     "FAIL: %s peak queue depth %lld exceeds limit %lld\n",
                     lf_case.scenario,
                     static_cast<long long>(rec.peak_queue_depth),
                     static_cast<long long>(kQueueLimit));
        ok = false;
      }
      if (rec.answered > 0 && rec.p99_ms > kDeadlineUs / 1000.0) {
        std::fprintf(stderr,
                     "FAIL: %s p99 %.2f ms of admitted requests exceeds "
                     "the %.0f ms deadline\n",
                     lf_case.scenario, rec.p99_ms, kDeadlineUs / 1000.0);
        ok = false;
      }
      records.push_back(rec);
      lf_engine->Shutdown();
    }
  }

  WriteJson(records, "BENCH_serving_load.json");
  {
    cpdg::Status status = obs::MetricsRegistry::Global().WriteJson(
        "BENCH_serving_load_metrics.json");
    if (status.ok()) std::printf("wrote BENCH_serving_load_metrics.json\n");
  }
  engine->Shutdown();
  std::remove(w.checkpoint_path.c_str());

  if (!ok) return 1;
  std::printf("\nall overload invariants held at up to 2x saturation\n");
  return 0;
}
