// Reproduces Table V: dynamic link prediction on the Amazon-like (Beauty,
// Luxury) and Gowalla-like (Entertainment, Outdoors) benchmarks under the
// three transfer settings (time / field / time+field), comparing all
// eleven methods on AUC and AP (mean ± std over seeds).
//
// Scale knobs: CPDG_SEEDS, CPDG_EVENT_SCALE, CPDG_EPOCHS (see
// bench_common/experiment.h). Expected shape (not absolute values):
// dynamic methods > static methods; task-supervised dynamic >
// self-supervised dynamic; CPDG best or tied-best per column.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "util/table_printer.h"

namespace {

using namespace cpdg;

struct Column {
  std::string label;
  data::TransferDataset dataset;
};

}  // namespace

int main() {
  bench::ExperimentScale scale = bench::ExperimentScale::FromEnv();
  std::printf(
      "Table V reproduction: dynamic link prediction under three transfer "
      "settings\n(seeds=%lld, event_scale=%.2f)\n\n",
      static_cast<long long>(scale.num_seeds), scale.event_scale);

  data::TransferBenchmarkBuilder amazon(
      bench::ScaleSpec(data::MakeAmazonLike(), scale.event_scale), 20240501);
  data::TransferBenchmarkBuilder gowalla(
      bench::ScaleSpec(data::MakeGowallaLike(), scale.event_scale),
      20240502);

  const std::vector<bench::MethodId> methods = {
      bench::MethodId::kGraphSage, bench::MethodId::kGin,
      bench::MethodId::kGat,       bench::MethodId::kDgi,
      bench::MethodId::kGptGnn,    bench::MethodId::kDyRep,
      bench::MethodId::kJodie,     bench::MethodId::kTgn,
      bench::MethodId::kDdgcl,     bench::MethodId::kSelfRgnn,
      bench::MethodId::kCpdg,
  };

  for (auto setting :
       {data::TransferSetting::kTime, data::TransferSetting::kField,
        data::TransferSetting::kTimeField}) {
    // Materialize the four downstream columns for this setting.
    std::vector<Column> columns;
    columns.push_back({"Beauty", amazon.Build(setting, 0)});
    columns.push_back({"Luxury", amazon.Build(setting, 1)});
    columns.push_back({"Entertainment", gowalla.Build(setting, 0)});
    columns.push_back({"Outdoors", gowalla.Build(setting, 1)});

    std::vector<std::string> header = {"Method"};
    for (const Column& c : columns) {
      header.push_back(c.label + " AUC");
      header.push_back(c.label + " AP");
    }
    TablePrinter table(header);

    for (bench::MethodId id : methods) {
      bench::MethodSpec spec = id == bench::MethodId::kCpdg
                                   ? bench::MethodSpec::Cpdg()
                                   : bench::MethodSpec::Baseline(id);
      std::vector<std::string> row = {bench::MethodName(id)};
      for (const Column& c : columns) {
        bench::AggregatedResult agg =
            bench::RunLinkPredictionSeeds(spec, c.dataset, scale);
        row.push_back(TablePrinter::FormatMeanStd(agg.auc.mean(),
                                                  agg.auc.stddev()));
        row.push_back(
            TablePrinter::FormatMeanStd(agg.ap.mean(), agg.ap.stddev()));
      }
      table.AddRow(row);
      std::fprintf(stderr, "  [table5/%s] %s done\n",
                   data::TransferSettingName(setting),
                   bench::MethodName(id));
    }
    std::printf("--- %s transfer ---\n",
                data::TransferSettingName(setting));
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
