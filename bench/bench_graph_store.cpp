// Graph-store benchmark: build throughput and query latency of the
// memory-mapped sharded event-log store against the in-memory
// TemporalGraph, at 1 and 4 shards, with a bitwise cross-backend parity
// check folded in. Results land in BENCH_graph.json next to the binary.
//
// Usage:
//   bench_graph_store          default: 2*10^5 nodes, 2*10^6 events
//   bench_graph_store --smoke  CI-sized: 2*10^4 nodes, 2*10^5 events
//   bench_graph_store --scale  stress:  10^6 nodes, 10^7 events — the
//                              production-scale profile the storage layer
//                              exists for (streamed generation, so the
//                              event set never materializes except inside
//                              the in-memory reference backend)
//
// The store is built under $CPDG_STORE_DIR (default: ./bench_graph_store.d,
// removed afterwards). Exits nonzero if any mmap-backend query deviates
// from the in-memory reference by a single bit, so the ctest `bench-smoke`
// registration doubles as a cross-backend determinism gate.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "data/generators.h"
#include "graph/graph_store.h"
#include "graph/temporal_graph.h"
#include "storage/sharded_store.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace cpdg;
namespace fs = std::filesystem;
using graph::Event;
using graph::GraphStore;
using graph::NodeId;
using storage::ShardedGraphStore;

struct Record {
  std::string name;
  int threads = 1;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  bool bitwise_equal_to_serial = true;
};

/// Streams generated chunks straight into the event-log builder — the
/// whole point of the streaming generator + streaming writer pairing: the
/// 10^7-event profile never exists as one vector on this path.
class BuilderSink : public data::EventSink {
 public:
  explicit BuilderSink(storage::EventLogBuilder* builder)
      : builder_(builder) {}
  Status Append(const Event* events, int64_t count) override {
    return builder_->AddBatch(events, count);
  }

 private:
  storage::EventLogBuilder* builder_;
};

/// Buffers the identical stream for the in-memory reference backend.
class VectorSink : public data::EventSink {
 public:
  Status Append(const Event* events, int64_t count) override {
    events_.insert(events_.end(), events, events + count);
    return Status::OK();
  }
  std::vector<Event> Take() { return std::move(events_); }

 private:
  std::vector<Event> events_;
};

constexpr uint64_t kSeed = 20260808;
constexpr int64_t kChunk = 1 << 16;

/// Fixed pseudo-random query mix; identical across backends so the timed
/// work and the parity check cover the same queries.
struct QueryMix {
  std::vector<NodeId> nodes;
  std::vector<double> times;
};

QueryMix MakeQueries(const data::ScaleStressSpec& spec, int64_t count) {
  Rng rng(kSeed + 1);
  QueryMix mix;
  mix.nodes.reserve(static_cast<size_t>(count));
  mix.times.reserve(static_cast<size_t>(count));
  int64_t num_nodes = spec.num_users + spec.num_items;
  for (int64_t i = 0; i < count; ++i) {
    mix.nodes.push_back(static_cast<NodeId>(rng.NextBounded(num_nodes)));
    mix.times.push_back(rng.NextDouble());
  }
  return mix;
}

/// One timed NeighborsBefore sweep; returns a digest so the work cannot be
/// optimized away and backends can be compared cheaply.
uint64_t QuerySweep(const GraphStore& g, const QueryMix& mix,
                    double* seconds_out) {
  graph::NeighborScratch scratch;
  uint64_t digest = 0;
  util::Timer timer;
  for (size_t i = 0; i < mix.nodes.size(); ++i) {
    auto span = g.NeighborsBefore(mix.nodes[i], mix.times[i], &scratch);
    digest = digest * 1099511628211ull + static_cast<uint64_t>(span.count);
    if (span.count > 0) {
      digest ^= static_cast<uint64_t>(span[span.count - 1].event_index);
    }
  }
  *seconds_out = timer.ElapsedSeconds();
  return digest;
}

/// Timed chronological window scan (the batching access pattern).
double WindowScan(const GraphStore& g, int64_t num_windows) {
  double span = g.max_time() - g.min_time();
  util::Timer timer;
  int64_t total = 0;
  for (int64_t w = 0; w < num_windows; ++w) {
    double lo = g.min_time() + span * static_cast<double>(w) /
                                   static_cast<double>(num_windows);
    // Half-open windows: the last one is stretched past max_time so the
    // final event is not lost to the exclusive upper bound.
    double hi = w + 1 == num_windows
                    ? g.max_time() + 1.0
                    : g.min_time() + span * static_cast<double>(w + 1) /
                                         static_cast<double>(num_windows);
    total += static_cast<int64_t>(g.EventsInWindow(lo, hi).size());
  }
  double seconds = timer.ElapsedSeconds();
  if (total != g.num_events()) {
    std::fprintf(stderr, "window scan lost events: %lld of %lld\n",
                 static_cast<long long>(total),
                 static_cast<long long>(g.num_events()));
    std::exit(1);
  }
  return seconds;
}

/// Bitwise parity of NeighborsBefore across backends on the query mix.
bool BitwiseParity(const GraphStore& ref, const GraphStore& got,
                   const QueryMix& mix) {
  graph::NeighborScratch sa, sb;
  for (size_t i = 0; i < mix.nodes.size(); ++i) {
    auto a = ref.NeighborsBefore(mix.nodes[i], mix.times[i], &sa);
    auto b = got.NeighborsBefore(mix.nodes[i], mix.times[i], &sb);
    if (a.count != b.count ||
        (a.count > 0 &&
         std::memcmp(a.data, b.data,
                     sizeof(graph::TemporalNeighbor) *
                         static_cast<size_t>(a.count)) != 0)) {
      return false;
    }
  }
  return true;
}

void WriteJson(const std::vector<Record>& records, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fputs("[\n", f);
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"threads\": %d, \"seconds\": %.6g, "
                 "\"events_per_sec\": %.6g, "
                 "\"bitwise_equal_to_serial\": %s}%s\n",
                 r.name.c_str(), r.threads, r.seconds, r.events_per_sec,
                 r.bitwise_equal_to_serial ? "true" : "false",
                 i + 1 < records.size() ? "," : "");
  }
  std::fputs("]\n", f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

storage::StoreOptions ShardOpts(uint32_t shards) {
  storage::StoreOptions opts;
  opts.shard_count = shards;
  opts.verify_checksums = true;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  const bool smoke = mode == "--smoke";
  const bool scale = mode == "--scale";

  data::ScaleStressSpec spec;  // --scale: the 10^6-node / 10^7-event profile
  if (smoke) {
    spec.num_users = 10'000;
    spec.num_items = 10'000;
    spec.num_events = 200'000;
  } else if (!scale) {
    spec.num_users = 100'000;
    spec.num_items = 100'000;
    spec.num_events = 2'000'000;
  }
  const int64_t num_nodes = spec.num_users + spec.num_items;
  const int64_t num_queries = smoke ? 50'000 : 200'000;
  const int64_t num_windows = 16;

  const char* dir_env = std::getenv("CPDG_STORE_DIR");
  const std::string root = dir_env != nullptr && *dir_env != '\0'
                               ? std::string(dir_env)
                               : std::string("bench_graph_store.d");

  std::printf("graph-store bench: %lld nodes, %lld events (%s)\n",
              static_cast<long long>(num_nodes),
              static_cast<long long>(spec.num_events),
              smoke ? "smoke" : scale ? "scale" : "full");

  std::vector<Record> records;
  bool all_bitwise = true;
  QueryMix mix = MakeQueries(spec, num_queries);

  // In-memory reference: same stream, bulk-built.
  std::vector<Event> events;
  {
    VectorSink sink;
    Status status = data::StreamScaleStressEvents(spec, kSeed, kChunk, &sink);
    if (!status.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   status.message().c_str());
      return 1;
    }
    events = sink.Take();
  }
  std::unique_ptr<graph::TemporalGraph> inmem;
  {
    util::Timer timer;
    auto built = graph::TemporalGraph::Create(num_nodes, std::move(events));
    double seconds = timer.ElapsedSeconds();
    if (!built.ok()) {
      std::fprintf(stderr, "in-memory build failed: %s\n",
                   built.status().message().c_str());
      return 1;
    }
    inmem = std::make_unique<graph::TemporalGraph>(
        std::move(built).ValueOrDie());
    records.push_back({"build_inmem", 1, seconds,
                       static_cast<double>(spec.num_events) / seconds, true});
    std::printf("  build_inmem            %8.3fs  %10.0f events/s\n",
                seconds, records.back().events_per_sec);
  }

  for (uint32_t shards : {1u, 4u}) {
    const std::string tag = "_s" + std::to_string(shards);
    const std::string dir = root + "/shards" + std::to_string(shards);
    fs::remove_all(dir);

    // Build: generator chunks stream straight into the event-log builder.
    double build_seconds = 0.0;
    {
      storage::EventLogBuilder builder(dir, num_nodes, ShardOpts(shards));
      BuilderSink sink(&builder);
      util::Timer timer;
      Status status =
          data::StreamScaleStressEvents(spec, kSeed, kChunk, &sink);
      if (status.ok()) status = builder.Finish();
      build_seconds = timer.ElapsedSeconds();
      if (!status.ok()) {
        std::fprintf(stderr, "mmap build failed: %s\n",
                     status.message().c_str());
        return 1;
      }
    }
    records.push_back({"build_mmap" + tag, 1, build_seconds,
                       static_cast<double>(spec.num_events) / build_seconds,
                       true});
    std::printf("  build_mmap%s         %8.3fs  %10.0f events/s\n",
                tag.c_str(), build_seconds, records.back().events_per_sec);

    // Cold: fresh Open, first sweep pays the mmap page faults.
    auto store = ShardedGraphStore::Open(dir, ShardOpts(shards));
    if (!store.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   store.status().message().c_str());
      return 1;
    }
    double cold_seconds = 0.0, warm_seconds = 0.0;
    uint64_t cold_digest = QuerySweep(*store.value(), mix, &cold_seconds);
    uint64_t warm_digest = QuerySweep(*store.value(), mix, &warm_seconds);
    bool parity = cold_digest == warm_digest &&
                  BitwiseParity(*inmem, *store.value(), mix);
    all_bitwise = all_bitwise && parity;
    double qps = static_cast<double>(num_queries);
    records.push_back(
        {"query_cold_mmap" + tag, 1, cold_seconds, qps / cold_seconds,
         parity});
    records.push_back(
        {"query_warm_mmap" + tag, 1, warm_seconds, qps / warm_seconds,
         parity});
    std::printf("  query_cold_mmap%s    %8.3fs  query_warm_mmap%s %8.3fs"
                "  parity=%s\n",
                tag.c_str(), cold_seconds, tag.c_str(), warm_seconds,
                parity ? "true" : "FALSE");

    double scan_seconds = WindowScan(*store.value(), num_windows);
    records.push_back({"window_scan_mmap" + tag, 1, scan_seconds,
                       static_cast<double>(spec.num_events) / scan_seconds,
                       parity});
    fs::remove_all(dir);
  }

  // In-memory query sweeps for the latency comparison.
  {
    double seconds = 0.0;
    QuerySweep(*inmem, mix, &seconds);  // warm-up / first touch
    uint64_t d1 = QuerySweep(*inmem, mix, &seconds);
    uint64_t d2 = QuerySweep(*inmem, mix, &seconds);
    bool stable = d1 == d2;
    all_bitwise = all_bitwise && stable;
    records.push_back({"query_warm_inmem", 1, seconds,
                       static_cast<double>(num_queries) / seconds, stable});
    std::printf("  query_warm_inmem       %8.3fs\n", seconds);
    double scan_seconds = WindowScan(*inmem, num_windows);
    records.push_back({"window_scan_inmem", 1, scan_seconds,
                       static_cast<double>(spec.num_events) / scan_seconds,
                       stable});
  }

  fs::remove_all(root);
  WriteJson(records, "BENCH_graph.json");
  if (!all_bitwise) {
    std::fprintf(stderr,
                 "FAIL: mmap backend deviated from the in-memory "
                 "reference\n");
    return 1;
  }
  std::printf("all backends bitwise-identical over %lld queries\n",
              static_cast<long long>(num_queries));
  return 0;
}
