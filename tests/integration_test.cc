#include <gtest/gtest.h>

#include "bench_common/experiment.h"
#include "data/transfer.h"

namespace cpdg::bench {
namespace {

/// Tiny universe for end-to-end integration: small enough for CI, big
/// enough that learning beats chance.
data::UniverseSpec TinyUniverse(bool labeled = false) {
  data::UniverseSpec spec;
  spec.num_users = 60;
  data::FieldSpec a;
  a.name = "A";
  a.num_items = 40;
  a.num_communities = 4;
  a.community_strength = 0.9;
  a.short_term_prob = 0.3;
  a.num_events_early = 900;
  a.num_events_late = 600;
  a.labeled = labeled;
  data::FieldSpec pre = a;
  pre.name = "Pre";
  if (labeled) {
    spec.fields = {a};
  } else {
    spec.fields = {a, pre};
  }
  return spec;
}

ExperimentScale TinyScale() {
  ExperimentScale scale;
  scale.num_seeds = 1;
  scale.pretrain_epochs = 2;
  scale.finetune_epochs = 2;
  scale.batch_size = 100;
  scale.memory_dim = 8;
  scale.embed_dim = 8;
  scale.time_dim = 4;
  scale.num_neighbors = 3;
  return scale;
}

TEST(IntegrationTest, CpdgEndToEndBeatsChance) {
  data::TransferBenchmarkBuilder builder(TinyUniverse(), 101);
  data::TransferDataset ds = builder.Build(data::TransferSetting::kTime, 0);
  LinkPredResult r = RunLinkPrediction(MethodSpec::Cpdg(), ds, TinyScale(),
                                       /*seed=*/1);
  EXPECT_GT(r.auc, 0.55);
  EXPECT_GT(r.ap, 0.55);
  EXPECT_LE(r.auc, 1.0);
}

TEST(IntegrationTest, TgnBaselineEndToEnd) {
  data::TransferBenchmarkBuilder builder(TinyUniverse(), 103);
  data::TransferDataset ds =
      builder.Build(data::TransferSetting::kTimeField, 0);
  LinkPredResult r = RunLinkPrediction(
      MethodSpec::Baseline(MethodId::kTgn), ds, TinyScale(), 1);
  EXPECT_GT(r.auc, 0.5);
}

TEST(IntegrationTest, StaticBaselineEndToEnd) {
  data::TransferBenchmarkBuilder builder(TinyUniverse(), 105);
  data::TransferDataset ds = builder.Build(data::TransferSetting::kField, 0);
  LinkPredResult r = RunLinkPrediction(
      MethodSpec::Baseline(MethodId::kGraphSage), ds, TinyScale(), 1);
  EXPECT_GT(r.auc, 0.4);  // smoke-level: static models are weaker
}

TEST(IntegrationTest, SslBaselinesEndToEnd) {
  data::TransferBenchmarkBuilder builder(TinyUniverse(), 107);
  data::TransferDataset ds = builder.Build(data::TransferSetting::kTime, 0);
  for (MethodId id : {MethodId::kDdgcl, MethodId::kSelfRgnn}) {
    LinkPredResult r = RunLinkPrediction(MethodSpec::Baseline(id), ds,
                                         TinyScale(), 1);
    EXPECT_GE(r.auc, 0.3) << MethodName(id);
    EXPECT_LE(r.auc, 1.0) << MethodName(id);
  }
}

TEST(IntegrationTest, InductiveEvaluationRuns) {
  data::TransferBenchmarkBuilder builder(TinyUniverse(), 109);
  data::TransferDataset ds = builder.Build(data::TransferSetting::kTime, 0);
  MethodSpec spec = MethodSpec::Cpdg(dgnn::EncoderType::kJodie);
  LinkPredResult r =
      RunLinkPrediction(spec, ds, TinyScale(), 1, /*inductive=*/true);
  EXPECT_GE(r.auc, 0.0);
  EXPECT_LE(r.auc, 1.0);
}

TEST(IntegrationTest, NodeClassificationEndToEnd) {
  data::UniverseSpec spec = TinyUniverse(/*labeled=*/true);
  spec.fields[0].bad_user_fraction = 0.3;
  spec.fields[0].label_window = 0.3;
  data::TransferBenchmarkBuilder builder(spec, 111);
  data::TransferDataset ds = builder.BuildSingleField();
  double auc = RunNodeClassification(MethodSpec::Baseline(MethodId::kTgn),
                                     ds, TinyScale(), 1);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
}

TEST(IntegrationTest, SeedsAggregationProducesStats) {
  data::TransferBenchmarkBuilder builder(TinyUniverse(), 113);
  data::TransferDataset ds = builder.Build(data::TransferSetting::kTime, 0);
  ExperimentScale scale = TinyScale();
  scale.num_seeds = 2;
  AggregatedResult agg = RunLinkPredictionSeeds(
      MethodSpec::Baseline(MethodId::kJodie), ds, scale);
  EXPECT_EQ(agg.auc.count(), 2);
  EXPECT_GT(agg.auc.mean(), 0.4);
}

TEST(IntegrationTest, NoPretrainControl) {
  data::TransferBenchmarkBuilder builder(TinyUniverse(), 115);
  data::TransferDataset ds = builder.Build(data::TransferSetting::kTime, 0);
  MethodSpec spec = MethodSpec::Cpdg();
  spec.pretrain = false;
  LinkPredResult r = RunLinkPrediction(spec, ds, TinyScale(), 1);
  EXPECT_GT(r.auc, 0.4);
}

TEST(ScaleTest, EnvOverridesParse) {
  // FromEnv without variables returns defaults.
  ExperimentScale s = ExperimentScale::FromEnv();
  EXPECT_GE(s.num_seeds, 1);
  EXPECT_GT(s.event_scale, 0.0);
}

TEST(ScaleTest, ScaleSpecMultipliesEvents) {
  data::UniverseSpec spec = TinyUniverse();
  data::UniverseSpec scaled = ScaleSpec(spec, 2.0);
  EXPECT_EQ(scaled.fields[0].num_events_early,
            spec.fields[0].num_events_early * 2);
  // Floor keeps tiny scales usable.
  data::UniverseSpec floored = ScaleSpec(spec, 0.01);
  EXPECT_GE(floored.fields[0].num_events_early, 500);
}

}  // namespace
}  // namespace cpdg::bench
