#include "core/pretrainer.h"

#include <gtest/gtest.h>

#include "core/evolution.h"
#include "core/finetuner.h"
#include "data/generators.h"
#include "graph/temporal_graph.h"

namespace cpdg::core {
namespace {

using graph::Event;
using graph::TemporalGraph;

TemporalGraph MakeGraph(uint64_t seed, int64_t events_count = 400) {
  Rng rng(seed);
  std::vector<Event> events;
  for (int64_t i = 0; i < events_count; ++i) {
    graph::NodeId a = static_cast<graph::NodeId>(rng.NextBounded(15));
    graph::NodeId b = 15 + static_cast<graph::NodeId>(rng.NextBounded(15));
    events.push_back({a, b, static_cast<double>(i) * 0.002});
  }
  return TemporalGraph::Create(30, events).ValueOrDie();
}

dgnn::EncoderConfig SmallConfig(int64_t num_nodes) {
  dgnn::EncoderConfig c =
      dgnn::EncoderConfig::Preset(dgnn::EncoderType::kTgn, num_nodes);
  c.memory_dim = 8;
  c.embed_dim = 8;
  c.time_dim = 4;
  c.num_neighbors = 3;
  return c;
}

TEST(EvolutionCheckpointsTest, RecordAndAccess) {
  dgnn::Memory mem(4, 3);
  EvolutionCheckpoints ckpts(4, 3);
  ckpts.Record(mem);
  mem.SetStates({1}, tensor::Tensor::Full(1, 3, 2.0f));
  ckpts.Record(mem);
  ASSERT_EQ(ckpts.num_checkpoints(), 2);
  EXPECT_FLOAT_EQ(ckpts.StateAt(0, 1)[0], 0.0f);
  EXPECT_FLOAT_EQ(ckpts.StateAt(1, 1)[0], 2.0f);
}

class EieVariantTest : public ::testing::TestWithParam<EieVariant> {};

TEST_P(EieVariantTest, FusionShapesAndGradients) {
  dgnn::Memory mem(6, 4);
  EvolutionCheckpoints ckpts(6, 4);
  Rng state_rng(3);
  for (int l = 0; l < 3; ++l) {
    mem.SetStates({0, 1, 2, 3, 4, 5},
                  tensor::Tensor::RandomUniform(6, 4, 1.0f, &state_rng));
    ckpts.Record(mem);
  }
  Rng rng(5);
  EvolutionFusion fusion(GetParam(), 4, 5, &rng);
  tensor::Tensor out = fusion.Forward(ckpts, {0, 3, 5});
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 5);
  EXPECT_TRUE(out.requires_grad());
  // Gradients reach the fusion parameters.
  tensor::Tensor loss = tensor::Mean(tensor::Square(out));
  loss.Backward();
  bool any_nonzero = false;
  for (auto& p : fusion.Parameters()) {
    if (!p.has_grad()) continue;
    for (int64_t i = 0; i < p.size(); ++i) {
      if (p.grad()[i] != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, EieVariantTest,
                         ::testing::Values(EieVariant::kMean,
                                           EieVariant::kAttention,
                                           EieVariant::kGru),
                         [](const auto& info) {
                           std::string name = EieVariantName(info.param);
                           // gtest names must be alphanumeric.
                           std::string out;
                           for (char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               out += c;
                             }
                           }
                           return out;
                         });

TEST(EieVariantTest, MeanFusionAveragesCheckpoints) {
  dgnn::Memory mem(2, 2);
  EvolutionCheckpoints ckpts(2, 2);
  mem.SetStates({0, 1}, tensor::Tensor::FromVector(2, 2, {2, 2, 0, 0}));
  ckpts.Record(mem);
  mem.SetStates({0, 1}, tensor::Tensor::FromVector(2, 2, {4, 4, 0, 0}));
  ckpts.Record(mem);
  Rng rng(7);
  EvolutionFusion fusion(EieVariant::kMean, 2, 2, &rng);
  // Peek at the raw fused value through a linear-probe trick: the adapter
  // is nonlinear, so instead verify the mean indirectly — identical
  // checkpoints for node 1 (all zero) must map both rows deterministically.
  tensor::Tensor out1 = fusion.Forward(ckpts, {1});
  tensor::Tensor out2 = fusion.Forward(ckpts, {1});
  for (int64_t c = 0; c < out1.cols(); ++c) {
    EXPECT_FLOAT_EQ(out1.at(0, c), out2.at(0, c));
  }
}

TEST(CpdgPretrainerTest, RunsAndRecordsCheckpoints) {
  TemporalGraph g = MakeGraph(11);
  Rng rng(13);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  dgnn::LinkPredictor decoder(8, 8, &rng);

  CpdgConfig config;
  config.epochs = 2;
  config.batch_size = 50;
  config.num_checkpoints = 4;
  config.max_contrast_anchors = 16;
  CpdgPretrainer pretrainer(config, &rng);
  PretrainResult result = pretrainer.Pretrain(&encoder, &decoder, g);

  EXPECT_EQ(result.log.epoch_losses.size(), 2u);
  EXPECT_GE(result.checkpoints.num_checkpoints(), 2);
  EXPECT_LE(result.checkpoints.num_checkpoints(), 4);
  EXPECT_GT(encoder.memory().StateNorm(), 0.0);
}

TEST(CpdgPretrainerTest, LossDecreases) {
  TemporalGraph g = MakeGraph(17, 600);
  Rng rng(19);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  dgnn::LinkPredictor decoder(8, 8, &rng);
  CpdgConfig config;
  config.epochs = 4;
  config.batch_size = 60;
  config.max_contrast_anchors = 8;
  CpdgPretrainer pretrainer(config, &rng);
  PretrainResult result = pretrainer.Pretrain(&encoder, &decoder, g);
  EXPECT_LT(result.log.epoch_losses.back(), result.log.epoch_losses.front());
}

TEST(CpdgPretrainerTest, AblationFlagsRespected) {
  TemporalGraph g = MakeGraph(23);
  Rng rng(29);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  dgnn::LinkPredictor decoder(8, 8, &rng);
  CpdgConfig config;
  config.epochs = 1;
  config.batch_size = 100;
  config.use_temporal_contrast = false;
  config.use_structural_contrast = false;
  CpdgPretrainer pretrainer(config, &rng);
  // Should degrade gracefully to pure TLP pre-training.
  PretrainResult result = pretrainer.Pretrain(&encoder, &decoder, g);
  EXPECT_EQ(result.log.epoch_losses.size(), 1u);
  EXPECT_GT(result.checkpoints.num_checkpoints(), 0);
}

TEST(FineTunerTest, FullFineTuningWithoutEie) {
  TemporalGraph g = MakeGraph(31);
  Rng rng(37);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  FineTuneConfig config;
  config.train.epochs = 1;
  config.train.batch_size = 50;
  FineTunedModel model =
      FineTuneLinkPrediction(&encoder, g, config, nullptr, &rng);
  EXPECT_FALSE(model.uses_eie());
  encoder.BeginBatch();
  tensor::Tensor logits =
      model.ScoreLogits(&encoder, {0, 1}, {15, 16}, {0.9, 0.9});
  EXPECT_EQ(logits.rows(), 2);
  EXPECT_EQ(logits.cols(), 1);
}

TEST(FineTunerTest, EieFineTuningConcatenatesFeatures) {
  TemporalGraph g = MakeGraph(41);
  Rng rng(43);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);

  EvolutionCheckpoints ckpts(g.num_nodes(), 8);
  for (int l = 0; l < 3; ++l) ckpts.Record(encoder.memory());

  FineTuneConfig config;
  config.train.epochs = 1;
  config.train.batch_size = 50;
  config.use_eie = true;
  config.eie_variant = EieVariant::kGru;
  config.eie_dim = 6;
  FineTunedModel model =
      FineTuneLinkPrediction(&encoder, g, config, &ckpts, &rng);
  EXPECT_TRUE(model.uses_eie());
  encoder.BeginBatch();
  tensor::Tensor z = model.Embed(&encoder, {0, 1}, {0.9, 0.9});
  EXPECT_EQ(z.cols(), 8 + 6);  // embed_dim + eie_dim (Eq. 19)
}

}  // namespace
}  // namespace cpdg::core
