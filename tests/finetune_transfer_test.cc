// Tests for the pre-train -> transfer -> fine-tune mechanics: parameter
// transfer fidelity, EIE checkpoint plumbing, and downstream evaluator
// protocols (streaming, inductive filtering).

#include <cmath>

#include <gtest/gtest.h>

#include "core/finetuner.h"
#include "core/pretrainer.h"
#include "dgnn/trainer.h"
#include "eval/evaluators.h"
#include "graph/temporal_graph.h"

namespace cpdg {
namespace {

using graph::Event;
using graph::NodeId;
using graph::TemporalGraph;

TemporalGraph MakeGraph(uint64_t seed, double t_lo, double t_hi,
                        int64_t count) {
  Rng rng(seed);
  std::vector<Event> events;
  for (int64_t i = 0; i < count; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(15));
    NodeId b = 15 + static_cast<NodeId>(rng.NextBounded(15));
    double t = t_lo + (t_hi - t_lo) * (static_cast<double>(i) + 0.5) /
                          static_cast<double>(count);
    events.push_back({a, b, t});
  }
  return TemporalGraph::Create(30, events).ValueOrDie();
}

dgnn::EncoderConfig SmallConfig() {
  dgnn::EncoderConfig c =
      dgnn::EncoderConfig::Preset(dgnn::EncoderType::kTgn, 30);
  c.memory_dim = 8;
  c.embed_dim = 8;
  c.time_dim = 4;
  c.num_neighbors = 3;
  return c;
}

TEST(TransferMechanicsTest, ParametersSurviveGraphSwitch) {
  TemporalGraph pre = MakeGraph(1, 0.0, 0.5, 300);
  TemporalGraph down = MakeGraph(2, 0.5, 1.0, 200);
  Rng rng(3);
  dgnn::DgnnEncoder encoder(SmallConfig(), &pre, &rng);

  // Pre-train briefly, snapshot parameters.
  dgnn::LinkPredictor decoder(8, 8, &rng);
  dgnn::TlpTrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 50;
  dgnn::TrainLinkPrediction(&encoder, &decoder, pre, opts, &rng);
  std::vector<tensor::Tensor> before;
  for (auto& p : encoder.Parameters()) before.push_back(p.Clone());

  // Switching graphs resets memory but must not touch parameters.
  encoder.AttachGraph(&down);
  auto after = encoder.Parameters();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    for (int64_t j = 0; j < before[i].size(); ++j) {
      EXPECT_EQ(before[i].data()[j], after[i].data()[j]);
    }
  }
}

TEST(TransferMechanicsTest, PretrainedInitDiffersFromRandom) {
  TemporalGraph pre = MakeGraph(5, 0.0, 0.5, 300);
  Rng rng1(7), rng2(7);
  dgnn::DgnnEncoder trained(SmallConfig(), &pre, &rng1);
  dgnn::DgnnEncoder fresh(SmallConfig(), &pre, &rng2);

  dgnn::LinkPredictor decoder(8, 8, &rng1);
  dgnn::TlpTrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 50;
  dgnn::TrainLinkPrediction(&trained, &decoder, pre, opts, &rng1);

  double diff = 0.0;
  auto pt = trained.Parameters();
  auto pf = fresh.Parameters();
  ASSERT_EQ(pt.size(), pf.size());
  for (size_t i = 0; i < pt.size(); ++i) {
    for (int64_t j = 0; j < pt[i].size(); ++j) {
      diff += std::fabs(pt[i].data()[j] - pf[i].data()[j]);
    }
  }
  EXPECT_GT(diff, 0.1);
}

TEST(TransferMechanicsTest, CheckpointsFeedEieAcrossGraphs) {
  TemporalGraph pre = MakeGraph(9, 0.0, 0.5, 400);
  TemporalGraph down = MakeGraph(10, 0.5, 1.0, 200);
  Rng rng(11);
  dgnn::DgnnEncoder encoder(SmallConfig(), &pre, &rng);
  dgnn::LinkPredictor decoder(8, 8, &rng);

  core::CpdgConfig config;
  config.epochs = 1;
  config.batch_size = 80;
  config.num_checkpoints = 5;
  config.max_contrast_anchors = 8;
  core::CpdgPretrainer pretrainer(config, &rng);
  core::PretrainResult pre_result = pretrainer.Pretrain(&encoder, &decoder,
                                                        pre);
  // Checkpoints must cover the shared node universe, so downstream nodes
  // can look themselves up even after the graph switch.
  EXPECT_EQ(pre_result.checkpoints.num_nodes(), 30);

  encoder.AttachGraph(&down);
  core::FineTuneConfig ft;
  ft.train.epochs = 1;
  ft.train.batch_size = 50;
  ft.use_eie = true;
  ft.eie_dim = 4;
  core::FineTunedModel model = core::FineTuneLinkPrediction(
      &encoder, down, ft, &pre_result.checkpoints, &rng);

  encoder.BeginBatch();
  tensor::Tensor z = model.Embed(&encoder, {0, 20}, {0.95, 0.95});
  EXPECT_EQ(z.cols(), 8 + 4);
  for (int64_t i = 0; i < z.size(); ++i) {
    EXPECT_TRUE(std::isfinite(z.data()[i]));
  }
}

TEST(EvaluatorProtocolTest, LinkEvalAdvancesMemory) {
  TemporalGraph down = MakeGraph(13, 0.5, 1.0, 200);
  Rng rng(15);
  dgnn::DgnnEncoder encoder(SmallConfig(), &down, &rng);
  dgnn::LinkPredictor decoder(8, 8, &rng);

  eval::ScoreFn score = [&](const std::vector<NodeId>& s,
                            const std::vector<NodeId>& d,
                            const std::vector<double>& t) {
    return decoder.ForwardLogits(encoder.ComputeEmbeddings(s, t),
                                 encoder.ComputeEmbeddings(d, t));
  };
  auto metrics = eval::EvaluateDynamicLinkPrediction(
      &encoder, score, down.events(), {}, 50, &rng);
  EXPECT_EQ(metrics.num_scored_events, down.num_events());
  EXPECT_GE(metrics.auc, 0.0);
  EXPECT_LE(metrics.auc, 1.0);
  // Streaming evaluation must have advanced memory through all events.
  EXPECT_GT(encoder.memory().StateNorm(), 0.0);
  EXPECT_GT(encoder.memory().LastUpdate(0), 0.0);
}

TEST(EvaluatorProtocolTest, InductiveFilterScoresOnlyUnseen) {
  TemporalGraph down = MakeGraph(17, 0.5, 1.0, 100);
  Rng rng(19);
  dgnn::DgnnEncoder encoder(SmallConfig(), &down, &rng);
  dgnn::LinkPredictor decoder(8, 8, &rng);
  eval::ScoreFn score = [&](const std::vector<NodeId>& s,
                            const std::vector<NodeId>& d,
                            const std::vector<double>& t) {
    return decoder.ForwardLogits(encoder.ComputeEmbeddings(s, t),
                                 encoder.ComputeEmbeddings(d, t));
  };
  // Everything seen: nothing scored, AUC defaults.
  std::unordered_set<NodeId> all_seen;
  for (NodeId v = 0; v < 30; ++v) all_seen.insert(v);
  auto metrics = eval::EvaluateDynamicLinkPrediction(
      &encoder, score, down.events(), {}, 50, &rng, &all_seen);
  EXPECT_EQ(metrics.num_scored_events, 0);
  EXPECT_EQ(metrics.auc, 0.5);

  // Nothing seen: every event scored.
  encoder.memory().Reset();
  std::unordered_set<NodeId> none;
  auto metrics2 = eval::EvaluateDynamicLinkPrediction(
      &encoder, score, down.events(), {}, 50, &rng, &none);
  EXPECT_EQ(metrics2.num_scored_events, down.num_events());
}

TEST(EvaluatorProtocolTest, NodeClassificationHandlesNoLabels) {
  TemporalGraph down = MakeGraph(21, 0.5, 1.0, 100);
  Rng rng(23);
  dgnn::DgnnEncoder encoder(SmallConfig(), &down, &rng);
  eval::EmbedFn embed = [&](const std::vector<NodeId>& nodes,
                            const std::vector<double>& times) {
    return encoder.ComputeEmbeddings(nodes, times);
  };
  // Events carry label = -1 (unlabeled): the evaluator must return the
  // default metrics without crashing.
  auto metrics = eval::EvaluateDynamicNodeClassification(
      &encoder, embed, down.events(), 0.8, 0.9, 50, 10, 1e-2f, &rng);
  EXPECT_EQ(metrics.num_train_samples, 0);
  EXPECT_EQ(metrics.num_test_samples, 0);
  EXPECT_EQ(metrics.auc, 0.5);
}

TEST(EvaluatorProtocolTest, NodeClassificationLearnsSeparableLabels) {
  // Construct a stream where labels are trivially separable from the
  // source node's degree pattern: labeled-1 users always interact with a
  // dedicated "spam" item, label-0 users never do.
  std::vector<Event> events;
  Rng gen(25);
  for (int64_t i = 0; i < 400; ++i) {
    double t = static_cast<double>(i) / 400.0;
    bool bad = gen.NextBernoulli(0.4);
    NodeId user = bad ? static_cast<NodeId>(gen.NextBounded(5))
                      : 5 + static_cast<NodeId>(gen.NextBounded(5));
    NodeId item = bad ? 10 : 11 + static_cast<NodeId>(gen.NextBounded(4));
    Event e{user, item, t};
    e.label = bad ? 1 : 0;
    events.push_back(e);
  }
  auto graph = TemporalGraph::Create(15, events).ValueOrDie();
  Rng rng(27);
  dgnn::EncoderConfig config =
      dgnn::EncoderConfig::Preset(dgnn::EncoderType::kTgn, 15);
  config.memory_dim = 8;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.num_neighbors = 3;
  dgnn::DgnnEncoder encoder(config, &graph, &rng);
  dgnn::LinkPredictor decoder(8, 8, &rng);
  dgnn::TlpTrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 50;
  dgnn::TrainLinkPrediction(&encoder, &decoder, graph, opts, &rng);

  encoder.memory().Reset();
  eval::EmbedFn embed = [&](const std::vector<NodeId>& nodes,
                            const std::vector<double>& times) {
    return encoder.ComputeEmbeddings(nodes, times);
  };
  auto metrics = eval::EvaluateDynamicNodeClassification(
      &encoder, embed, graph.events(), 0.7, 0.8, 50, 200, 1e-2f, &rng);
  EXPECT_GT(metrics.num_train_samples, 0);
  EXPECT_GT(metrics.num_test_samples, 0);
  EXPECT_GT(metrics.auc, 0.8);  // trivially separable by construction
}

}  // namespace
}  // namespace cpdg
