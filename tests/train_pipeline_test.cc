// Determinism and conservation tests for the prefetching batch pipeline
// (src/train/prefetch.*): the loss sequence must be bit-identical at every
// prefetch depth / worker count, and a racing mid-epoch shutdown must
// account for every produced batch (consumed + discarded, nothing leaked).
//
// Under a sanitizer build this suite carries the `sanitize` ctest label
// (see tests/CMakeLists.txt), so `ctest -L sanitize` runs a full
// prefetched pre-training epoch with 4 producer threads under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/pretrainer.h"
#include "dgnn/trainer.h"
#include "graph/temporal_graph.h"
#include "train/prefetch.h"
#include "train/train_loop.h"
#include "util/rng.h"

namespace cpdg {
namespace {

using graph::Event;
using graph::NodeId;
using graph::TemporalGraph;

// Scoped env override; the pipeline knobs default to the CPDG_PREFETCH_*
// environment, which is how the CLI/bench configure depth, so the tests
// exercise that path too.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, old_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TemporalGraph MakeGraph(uint64_t seed, int64_t events_count = 400) {
  Rng rng(seed);
  std::vector<Event> events;
  for (int64_t i = 0; i < events_count; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(15));
    NodeId b = 15 + static_cast<NodeId>(rng.NextBounded(15));
    events.push_back({a, b, static_cast<double>(i) * 0.002});
  }
  return TemporalGraph::Create(30, events).ValueOrDie();
}

dgnn::EncoderConfig SmallConfig(int64_t num_nodes) {
  dgnn::EncoderConfig c =
      dgnn::EncoderConfig::Preset(dgnn::EncoderType::kTgn, num_nodes);
  c.memory_dim = 8;
  c.embed_dim = 8;
  c.time_dim = 4;
  c.num_neighbors = 3;
  return c;
}

// Runs CPDG pre-training — the heaviest prepare stage in the repo
// (negative sampling + anchor subsampling + η-BFS / ε-DFS subgraph
// draws) — at the given pipeline setting and returns the epoch losses.
std::vector<double> PretrainLosses(int64_t depth, int64_t workers) {
  ScopedEnv d("CPDG_PREFETCH_DEPTH", std::to_string(depth));
  ScopedEnv w("CPDG_PREFETCH_WORKERS", std::to_string(workers));
  TemporalGraph g = MakeGraph(11);
  Rng rng(13);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  dgnn::LinkPredictor decoder(8, 8, &rng);
  core::CpdgConfig config;
  config.epochs = 2;
  config.batch_size = 50;
  config.num_checkpoints = 4;
  config.max_contrast_anchors = 16;
  core::CpdgPretrainer pretrainer(config, &rng);
  core::PretrainResult result = pretrainer.Pretrain(&encoder, &decoder, g);
  EXPECT_TRUE(result.log.status.ok());
  return result.log.epoch_losses;
}

std::vector<double> TlpLosses(int64_t depth, int64_t workers) {
  ScopedEnv d("CPDG_PREFETCH_DEPTH", std::to_string(depth));
  ScopedEnv w("CPDG_PREFETCH_WORKERS", std::to_string(workers));
  TemporalGraph g = MakeGraph(21);
  Rng rng(23);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  dgnn::LinkPredictor decoder(8, 8, &rng);
  dgnn::TlpTrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 50;
  dgnn::TrainLog log =
      dgnn::TrainLinkPrediction(&encoder, &decoder, g, opts, &rng);
  return log.epoch_losses;
}

// The core determinism contract of DESIGN.md §13: every (depth, workers)
// combination yields bit-identical losses, because all prepare-stage
// randomness flows through per-(epoch, batch_index) RNG substreams that
// are consumed in batch order no matter which worker produced them.
TEST(TrainPipelineTest, PretrainLossesBitIdenticalAcrossDepthsAndWorkers) {
  std::vector<double> serial = PretrainLosses(/*depth=*/0, /*workers=*/1);
  ASSERT_EQ(serial.size(), 2u);
  struct Setting {
    int64_t depth, workers;
  };
  for (const Setting& s : {Setting{1, 1}, Setting{4, 1}, Setting{1, 4},
                           Setting{4, 4}}) {
    std::vector<double> losses = PretrainLosses(s.depth, s.workers);
    ASSERT_EQ(losses.size(), serial.size())
        << "depth=" << s.depth << " workers=" << s.workers;
    for (size_t i = 0; i < serial.size(); ++i) {
      // Bitwise equality, not EXPECT_NEAR: the pipeline must not perturb
      // a single floating-point operation.
      EXPECT_EQ(losses[i], serial[i])
          << "depth=" << s.depth << " workers=" << s.workers << " epoch="
          << i;
    }
  }
}

TEST(TrainPipelineTest, TlpLossesBitIdenticalAcrossDepthsAndWorkers) {
  std::vector<double> serial = TlpLosses(/*depth=*/0, /*workers=*/1);
  ASSERT_EQ(serial.size(), 2u);
  std::vector<double> deep = TlpLosses(/*depth=*/4, /*workers=*/4);
  ASSERT_EQ(deep.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(deep[i], serial[i]) << "epoch=" << i;
  }
}

// Every produced batch is consumed exactly once, in index order, even when
// production is jittered so later tickets finish before earlier ones.
TEST(TrainPipelineTest, DeliversBatchesInOrderWithJitteredProducers) {
  constexpr int64_t kBatches = 48;
  train::PrefetchOptions options;
  options.depth = 4;
  options.workers = 4;
  std::atomic<int64_t> produced{0};
  train::PrefetchPipeline pipeline(
      options, /*first=*/0, kBatches, [&](int64_t index) {
        // Stagger production so slot publication order != index order.
        std::this_thread::sleep_for(
            std::chrono::microseconds((index % 5) * 100));
        produced.fetch_add(1);
        train::PreparedBatch out;
        out.events.first_event_index = index;
        out.payload = index;
        return out;
      });
  for (int64_t i = 0; i < kBatches; ++i) {
    train::PreparedBatch batch = pipeline.Next(i);
    EXPECT_EQ(batch.events.first_event_index, i);
    EXPECT_EQ(std::any_cast<int64_t>(batch.payload), i);
  }
  pipeline.Stop();
  train::PrefetchPipeline::Counters counters = pipeline.counters();
  EXPECT_EQ(counters.produced, kBatches);
  EXPECT_EQ(counters.consumed, kBatches);
  EXPECT_EQ(counters.discarded, 0);
}

// Racing shutdown mid-epoch: Stop() while workers are mid-produce. The
// conservation identity produced == consumed + discarded must hold — a
// leaked batch here would be a leaked sampled subgraph in training.
TEST(TrainPipelineTest, RacingShutdownConservesBatches) {
  for (int round = 0; round < 20; ++round) {
    train::PrefetchOptions options;
    options.depth = 4;
    options.workers = 4;
    train::PrefetchPipeline pipeline(
        options, /*first=*/0, /*num_batches=*/256, [&](int64_t index) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          train::PreparedBatch out;
          out.events.first_event_index = index;
          return out;
        });
    // Consume a prefix, then abandon the epoch while the window is full
    // and workers are racing to refill it.
    int64_t take = round % 7;
    for (int64_t i = 0; i < take; ++i) {
      train::PreparedBatch batch = pipeline.Next(i);
      EXPECT_EQ(batch.events.first_event_index, i);
    }
    pipeline.Stop();
    train::PrefetchPipeline::Counters counters = pipeline.counters();
    EXPECT_EQ(counters.consumed, take);
    EXPECT_EQ(counters.produced, counters.consumed + counters.discarded)
        << "round " << round << ": leaked "
        << counters.produced - counters.consumed - counters.discarded
        << " batches";
  }
}

// The same conservation identity, end to end through TrainLoop: a
// max_batches graceful stop lands mid-epoch with ready-but-unconsumed
// slots in the window, and the run's telemetry must account for them.
TEST(TrainPipelineTest, MidEpochStopThroughTrainLoopConserves) {
  ScopedEnv d("CPDG_PREFETCH_DEPTH", "4");
  ScopedEnv w("CPDG_PREFETCH_WORKERS", "2");
  TemporalGraph g = MakeGraph(31);
  Rng rng(37);
  dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
  dgnn::LinkPredictor decoder(8, 8, &rng);
  core::CpdgConfig config;
  config.epochs = 2;
  config.batch_size = 50;
  config.num_checkpoints = 2;
  config.max_contrast_anchors = 8;
  config.max_batches = 5;  // stop mid-epoch (8 batches/epoch)
  core::CpdgPretrainer pretrainer(config, &rng);
  core::PretrainResult result = pretrainer.Pretrain(&encoder, &decoder, g);
  ASSERT_TRUE(result.log.status.ok());
  EXPECT_TRUE(result.log.stopped_early);
  EXPECT_EQ(result.log.prefetch_consumed, 5);
  EXPECT_GE(result.log.prefetch_produced, result.log.prefetch_consumed);
  EXPECT_EQ(result.log.prefetch_produced,
            result.log.prefetch_consumed + result.log.prefetch_discarded);
}

// Telemetry attribution: with prefetch enabled, producer-side sample time
// lands in sample_seconds and consumer-side compute in compute_seconds,
// for every setting (the split is what makes overlap measurable).
TEST(TrainPipelineTest, TelemetrySplitsSampleAndComputeTime) {
  for (int64_t depth : {int64_t{0}, int64_t{4}}) {
    ScopedEnv d("CPDG_PREFETCH_DEPTH", std::to_string(depth));
    ScopedEnv w("CPDG_PREFETCH_WORKERS", "2");
    TemporalGraph g = MakeGraph(11);
    Rng rng(13);
    dgnn::DgnnEncoder encoder(SmallConfig(g.num_nodes()), &g, &rng);
    dgnn::LinkPredictor decoder(8, 8, &rng);
    core::CpdgConfig config;
    config.epochs = 1;
    config.batch_size = 50;
    config.num_checkpoints = 2;
    config.max_contrast_anchors = 16;
    core::CpdgPretrainer pretrainer(config, &rng);
    core::PretrainResult result = pretrainer.Pretrain(&encoder, &decoder, g);
    ASSERT_TRUE(result.log.status.ok());
    ASSERT_EQ(result.log.epochs.size(), 1u);
    const train::EpochTelemetry& et = result.log.epochs[0];
    EXPECT_GT(et.sample_seconds, 0.0) << "depth=" << depth;
    EXPECT_GT(et.compute_seconds, 0.0) << "depth=" << depth;
  }
}

}  // namespace
}  // namespace cpdg
