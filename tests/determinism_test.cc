// Threading determinism suite: the thread-pool contract (static,
// grain-only chunking with chunk-owned output slices) promises bitwise
// identical results at every thread count. These tests pin that promise at
// the three wired-in layers: raw tensor kernels, a full link-prediction
// bench cell, and the seed-level fan-out.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common/experiment.h"
#include "data/transfer.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace cpdg {
namespace {

namespace ts = cpdg::tensor;

/// Restores the default global pool size when a test scope ends.
struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) {
    util::ThreadPool::SetGlobalNumThreads(n);
  }
  ~ThreadCountGuard() {
    util::ThreadPool::SetGlobalNumThreads(
        util::ThreadPool::DefaultNumThreads());
  }
};

std::vector<float> Bytes(const float* p, int64_t n) {
  return std::vector<float>(p, p + n);
}

struct MatMulRun {
  std::vector<float> out, ga, gb;
};

// Sizes chosen so every kernel exceeds the parallel grain: the forward and
// dA row cost is 257*129 ~ 33k flops (one row per chunk) and the flat
// elementwise paths see 300*257 > 2^14 elements.
MatMulRun RunMatMulForwardBackward(int num_threads) {
  ThreadCountGuard guard(num_threads);
  Rng rng(7);
  ts::Tensor a = ts::Tensor::RandomUniform(300, 257, 0.5f, &rng,
                                           /*requires_grad=*/true);
  ts::Tensor b = ts::Tensor::RandomUniform(257, 129, 0.5f, &rng,
                                           /*requires_grad=*/true);
  ts::Tensor out = ts::MatMul(a, b);
  out.Backward();
  return {Bytes(out.data(), out.size()), Bytes(a.grad(), a.size()),
          Bytes(b.grad(), b.size())};
}

TEST(DeterminismTest, MatMulForwardBackwardBitIdentical) {
  MatMulRun serial = RunMatMulForwardBackward(1);
  for (int threads : {2, 4}) {
    MatMulRun parallel = RunMatMulForwardBackward(threads);
    ASSERT_EQ(serial.out.size(), parallel.out.size());
    EXPECT_EQ(0, std::memcmp(serial.out.data(), parallel.out.data(),
                             serial.out.size() * sizeof(float)))
        << "forward, threads=" << threads;
    EXPECT_EQ(0, std::memcmp(serial.ga.data(), parallel.ga.data(),
                             serial.ga.size() * sizeof(float)))
        << "dA, threads=" << threads;
    EXPECT_EQ(0, std::memcmp(serial.gb.data(), parallel.gb.data(),
                             serial.gb.size() * sizeof(float)))
        << "dB, threads=" << threads;
  }
}

std::vector<float> RunElementwiseChain(int num_threads) {
  ThreadCountGuard guard(num_threads);
  Rng rng(11);
  ts::Tensor x = ts::Tensor::RandomUniform(180, 120, 1.0f, &rng,
                                           /*requires_grad=*/true);
  ts::Tensor y = ts::Tensor::RandomUniform(180, 120, 1.0f, &rng,
                                           /*requires_grad=*/false);
  ts::Tensor z = ts::Mean(ts::Sigmoid(ts::Mul(ts::Add(x, y), ts::Tanh(x))));
  z.Backward();
  std::vector<float> got = Bytes(x.grad(), x.size());
  got.push_back(z.item());
  return got;
}

TEST(DeterminismTest, ElementwiseChainBitIdentical) {
  std::vector<float> serial = RunElementwiseChain(1);
  std::vector<float> parallel = RunElementwiseChain(4);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                           serial.size() * sizeof(float)));
}

data::UniverseSpec CellUniverse() {
  data::UniverseSpec spec;
  spec.num_users = 50;
  data::FieldSpec a;
  a.name = "A";
  a.num_items = 30;
  a.num_communities = 4;
  a.community_strength = 0.9;
  a.short_term_prob = 0.3;
  a.num_events_early = 600;
  a.num_events_late = 400;
  data::FieldSpec pre = a;
  pre.name = "Pre";
  spec.fields = {a, pre};
  return spec;
}

// Dimensions large enough that the encoder's MatMuls cross the parallel
// grain (batch 200 x embed 32), so the cell genuinely exercises the
// threaded kernels rather than the small-tensor serial fast path.
bench::ExperimentScale CellScale() {
  bench::ExperimentScale scale;
  scale.num_seeds = 2;
  scale.pretrain_epochs = 1;
  scale.finetune_epochs = 1;
  scale.batch_size = 200;
  scale.memory_dim = 32;
  scale.embed_dim = 32;
  scale.time_dim = 8;
  scale.num_neighbors = 5;
  return scale;
}

TEST(DeterminismTest, LinkPredictionCellBitIdentical) {
  data::TransferBenchmarkBuilder builder(CellUniverse(), 301);
  data::TransferDataset ds = builder.Build(data::TransferSetting::kTime, 0);
  bench::LinkPredResult serial, parallel;
  {
    ThreadCountGuard guard(1);
    serial = bench::RunLinkPrediction(bench::MethodSpec::Cpdg(), ds,
                                      CellScale(), /*seed=*/1);
  }
  {
    ThreadCountGuard guard(4);
    parallel = bench::RunLinkPrediction(bench::MethodSpec::Cpdg(), ds,
                                        CellScale(), /*seed=*/1);
  }
  EXPECT_EQ(serial.auc, parallel.auc);
  EXPECT_EQ(serial.ap, parallel.ap);
}

TEST(DeterminismTest, SeedFanOutBitIdentical) {
  data::TransferBenchmarkBuilder builder(CellUniverse(), 303);
  data::TransferDataset ds = builder.Build(data::TransferSetting::kTime, 0);
  bench::MethodSpec spec =
      bench::MethodSpec::Baseline(bench::MethodId::kTgn);
  bench::AggregatedResult serial, parallel;
  {
    ThreadCountGuard guard(1);
    serial = bench::RunLinkPredictionSeeds(spec, ds, CellScale());
  }
  {
    // Both seeds run concurrently; the merge happens in seed order.
    ThreadCountGuard guard(4);
    parallel = bench::RunLinkPredictionSeeds(spec, ds, CellScale());
  }
  EXPECT_EQ(serial.auc.count(), parallel.auc.count());
  EXPECT_EQ(serial.auc.mean(), parallel.auc.mean());
  EXPECT_EQ(serial.auc.stddev(), parallel.auc.stddev());
  EXPECT_EQ(serial.ap.mean(), parallel.ap.mean());
}

}  // namespace
}  // namespace cpdg
