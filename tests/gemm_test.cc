// Packed-GEMM and SIMD-dispatch suite: correctness of the cache-blocked
// kernels at awkward shapes (edge tiles, degenerate dims, tiny-path
// boundary), bitwise equality between the scalar and AVX2 backends, the
// serial-cutoff boundary of the elementwise dispatch, and the fwd/bwd
// flop counters the bench derives its GFLOPS from.

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cpdg {
namespace {

namespace ts = cpdg::tensor;

struct ThreadCountGuard {
  explicit ThreadCountGuard(int n) {
    util::ThreadPool::SetGlobalNumThreads(n);
  }
  ~ThreadCountGuard() {
    util::ThreadPool::SetGlobalNumThreads(
        util::ThreadPool::DefaultNumThreads());
  }
};

struct SimdModeGuard {
  explicit SimdModeGuard(ts::simd::Mode m) { ts::simd::ForceModeForTest(m); }
  ~SimdModeGuard() { ts::simd::ResetModeForTest(); }
};

std::vector<float> RandomVec(int64_t n, Rng* rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng->NextUniform(-1.0, 1.0));
  return v;
}

/// Double-precision reference for C += A·B on plain row-major operands.
std::vector<float> ReferenceGemm(const std::vector<float>& a,
                                 const std::vector<float>& b, int64_t m,
                                 int64_t k, int64_t n) {
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) *
               static_cast<double>(b[p * n + j]);
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

std::vector<float> RunGemm(const std::vector<float>& a,
                           const std::vector<float>& b, int64_t m, int64_t k,
                           int64_t n) {
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  ts::GemmAccumulate({a.data(), m, k, k, 1}, {b.data(), k, n, n, 1},
                     c.data());
  return c;
}

void ExpectCloseToReference(const std::vector<float>& got,
                            const std::vector<float>& want, int64_t k) {
  ASSERT_EQ(got.size(), want.size());
  // k rounding steps of float accumulation against a double reference.
  const float tol = 1e-6f * static_cast<float>(k) + 1e-6f;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol) << "element " << i;
  }
}

TEST(GemmTest, AwkwardShapesMatchDoubleReference) {
  // Shapes straddling every blocking boundary: non-multiple-of-MR rows,
  // non-multiple-of-NR cols, k above one KC block, degenerate m=1 and k=1,
  // and an exact single 6x16 tile.
  struct Shape {
    int64_t m, k, n;
  };
  const Shape shapes[] = {
      {67, 129, 35},  // edge tiles in every dimension
      {1, 300, 17},   // m=1: single partial row group, k spans 2 KC blocks
      {30, 1, 40},    // k=1: rank-1 update
      {6, 16, 16},    // exactly one full microkernel tile (tiny path)
      {97, 257, 16},  // m just past MC=96, k just past KC=256
      {8, 16, 31},    // tiny-path side of the kGemmTinyFlops boundary
      {8, 17, 31},    // packed side of the same boundary
  };
  Rng rng(123);
  for (const Shape& s : shapes) {
    SCOPED_TRACE(testing::Message()
                 << "m=" << s.m << " k=" << s.k << " n=" << s.n);
    std::vector<float> a = RandomVec(s.m * s.k, &rng);
    std::vector<float> b = RandomVec(s.k * s.n, &rng);
    ExpectCloseToReference(RunGemm(a, b, s.m, s.k, s.n),
                           ReferenceGemm(a, b, s.m, s.k, s.n), s.k);
  }
}

TEST(GemmTest, TransposedViewsMatchDoubleReference) {
  // The backward products consume strided views (swapped strides) instead
  // of materialized transposes: dA = dOut·Bt and dB = At·dOut.
  const int64_t m = 45, k = 37, n = 29;
  Rng rng(321);
  std::vector<float> a = RandomVec(m * k, &rng);    // A is m x k
  std::vector<float> b = RandomVec(k * n, &rng);    // B is k x n
  std::vector<float> dout = RandomVec(m * n, &rng); // dOut is m x n

  std::vector<float> da(static_cast<size_t>(m * k), 0.0f);
  ts::GemmAccumulate({dout.data(), m, n, n, 1}, {b.data(), n, k, 1, n},
                     da.data());
  std::vector<float> bt(static_cast<size_t>(n * k));
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < n; ++j) bt[j * k + i] = b[i * n + j];
  }
  ExpectCloseToReference(da, ReferenceGemm(dout, bt, m, n, k), n);

  std::vector<float> db(static_cast<size_t>(k * n), 0.0f);
  ts::GemmAccumulate({a.data(), k, m, 1, k}, {dout.data(), m, n, n, 1},
                     db.data());
  std::vector<float> at(static_cast<size_t>(k * m));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < k; ++j) at[j * m + i] = a[i * k + j];
  }
  ExpectCloseToReference(db, ReferenceGemm(at, dout, k, m, n), m);
}

TEST(GemmTest, AccumulatesIntoExistingOutput) {
  const int64_t m = 13, k = 21, n = 19;
  Rng rng(77);
  std::vector<float> a = RandomVec(m * k, &rng);
  std::vector<float> b = RandomVec(k * n, &rng);
  std::vector<float> once = RunGemm(a, b, m, k, n);
  std::vector<float> twice = once;
  ts::GemmAccumulate({a.data(), m, k, k, 1}, {b.data(), k, n, n, 1},
                     twice.data());
  for (size_t i = 0; i < once.size(); ++i) {
    ASSERT_EQ(twice[i], once[i] + once[i]) << "element " << i;
  }
}

TEST(GemmTest, ScalarAndAvx2BackendsBitwiseIdentical) {
  if (!ts::simd::Avx2Supported()) {
    GTEST_SKIP() << "AVX2 kernels unavailable on this machine/build";
  }
  const int64_t m = 67, k = 300, n = 35;  // edge tiles + 2 KC blocks
  Rng rng(55);
  std::vector<float> a = RandomVec(m * k, &rng);
  std::vector<float> b = RandomVec(k * n, &rng);
  std::vector<float> scalar, avx2;
  {
    SimdModeGuard guard(ts::simd::Mode::kScalar);
    scalar = RunGemm(a, b, m, k, n);
  }
  {
    SimdModeGuard guard(ts::simd::Mode::kAvx2);
    avx2 = RunGemm(a, b, m, k, n);
  }
  EXPECT_EQ(0, std::memcmp(scalar.data(), avx2.data(),
                           scalar.size() * sizeof(float)));
}

TEST(GemmTest, ElementwiseBackendsBitwiseIdentical) {
  if (!ts::simd::Avx2Supported()) {
    GTEST_SKIP() << "AVX2 kernels unavailable on this machine/build";
  }
  const int64_t n = 1037;  // odd size: vector body + scalar tail
  Rng rng(56);
  std::vector<float> a = RandomVec(n, &rng);
  std::vector<float> b = RandomVec(n, &rng);
  for (float& x : b) x += x < 0.0f ? -1.5f : 1.5f;  // away from zero for Div
  auto run_all = [&](ts::simd::Mode mode) {
    SimdModeGuard guard(mode);
    std::vector<float> out;
    std::vector<float> o(static_cast<size_t>(n));
    ts::simd::Add(a.data(), b.data(), o.data(), n);
    out.insert(out.end(), o.begin(), o.end());
    ts::simd::Sub(a.data(), b.data(), o.data(), n);
    out.insert(out.end(), o.begin(), o.end());
    ts::simd::Mul(a.data(), b.data(), o.data(), n);
    out.insert(out.end(), o.begin(), o.end());
    ts::simd::Div(a.data(), b.data(), o.data(), n);
    out.insert(out.end(), o.begin(), o.end());
    ts::simd::Negate(a.data(), o.data(), n);
    out.insert(out.end(), o.begin(), o.end());
    ts::simd::Scale(a.data(), 1.7f, o.data(), n);
    out.insert(out.end(), o.begin(), o.end());
    std::vector<float> g(static_cast<size_t>(n), 0.25f);
    ts::simd::Accumulate(g.data(), a.data(), n);
    ts::simd::AccumulateProduct(g.data(), a.data(), b.data(), n);
    ts::simd::AccumulateQuotient(g.data(), a.data(), b.data(), n);
    ts::simd::AccumulateScaled(g.data(), a.data(), -0.3f, n);
    out.insert(out.end(), g.begin(), g.end());
    return out;
  };
  std::vector<float> scalar = run_all(ts::simd::Mode::kScalar);
  std::vector<float> avx2 = run_all(ts::simd::Mode::kAvx2);
  ASSERT_EQ(scalar.size(), avx2.size());
  EXPECT_EQ(0, std::memcmp(scalar.data(), avx2.data(),
                           scalar.size() * sizeof(float)));
}

// The elementwise dispatch runs ops below kMinParallelWork (2^16 scalar
// ops) serially on the calling thread. Results must not depend on which
// side of the cutoff a shape lands on or on the pool size — pin both by
// straddling the boundary at 1 and 4 threads.
TEST(GemmTest, SerialCutoffBoundaryBitIdentical) {
  // 255*257 = 65535 (last shape below the cutoff), 256*257 = 65792 (above).
  const struct {
    int64_t rows, cols;
  } shapes[] = {{255, 257}, {256, 257}};
  for (const auto& s : shapes) {
    SCOPED_TRACE(testing::Message() << s.rows << "x" << s.cols);
    auto run = [&](int threads) {
      ThreadCountGuard guard(threads);
      Rng rng(99);
      ts::Tensor x = ts::Tensor::RandomUniform(s.rows, s.cols, 1.0f, &rng,
                                               /*requires_grad=*/true);
      ts::Tensor y = ts::Tensor::RandomUniform(s.rows, s.cols, 1.0f, &rng,
                                               /*requires_grad=*/false);
      ts::Tensor z = ts::Mean(ts::Mul(ts::Add(x, y), x));
      z.Backward();
      std::vector<float> out(x.grad(), x.grad() + x.size());
      out.push_back(z.item());
      return out;
    };
    std::vector<float> serial = run(1);
    std::vector<float> parallel = run(4);
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                             serial.size() * sizeof(float)));
  }
}

TEST(GemmTest, FwdAndBwdFlopCountersAreSeparate) {
  obs::Counter& fwd =
      obs::MetricsRegistry::Global().counter("tensor.matmul.fwd_flops");
  obs::Counter& bwd =
      obs::MetricsRegistry::Global().counter("tensor.matmul.bwd_flops");
  const int64_t m = 12, k = 34, n = 56;
  Rng rng(7);
  ts::Tensor a = ts::Tensor::RandomUniform(m, k, 0.5f, &rng,
                                           /*requires_grad=*/true);
  ts::Tensor b = ts::Tensor::RandomUniform(k, n, 0.5f, &rng,
                                           /*requires_grad=*/false);
  const int64_t fwd0 = fwd.value(), bwd0 = bwd.value();
  ts::Tensor out = ts::MatMul(a, b);
  EXPECT_EQ(fwd.value() - fwd0, 2 * m * k * n);
  EXPECT_EQ(bwd.value() - bwd0, 0);
  out.Backward();
  EXPECT_EQ(fwd.value() - fwd0, 2 * m * k * n);
  // Only dA is computed (b does not require grad), so one backward GEMM.
  EXPECT_EQ(bwd.value() - bwd0, 2 * m * k * n);
}

}  // namespace
}  // namespace cpdg
