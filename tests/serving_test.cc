// Tests for the frozen-encoder serving engine: checkpoint loading and
// rejection, batch-coalescing bit-determinism against a direct encoder
// forward, cache eviction/invalidation, and link scoring.

#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "dgnn/encoder.h"
#include "graph/temporal_graph.h"
#include "gtest/gtest.h"
#include "serve/embedding_cache.h"
#include "serve/serving_engine.h"
#include "tensor/checkpoint_container.h"
#include "tensor/ops.h"
#include "tensor/serialization.h"
#include "tensor/tensor.h"
#include "train/checkpoint.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cpdg {
namespace {

namespace ts = tensor;

constexpr int64_t kNumNodes = 30;
constexpr int64_t kPredictorHidden = 16;
/// Must stay below the engine's internal advance replay batch (128) so a
/// reference ReplayEvents over the same events is trivially batched
/// identically.
constexpr size_t kAdvanceEvents = 40;

dgnn::EncoderConfig SmallConfig() {
  dgnn::EncoderConfig config;
  config.num_nodes = kNumNodes;
  config.memory_dim = 8;
  config.embed_dim = 8;
  config.time_dim = 4;
  config.num_neighbors = 3;
  return config;
}

std::vector<graph::Event> MakeEvents(uint64_t seed, size_t count,
                                     double t0) {
  Rng rng(seed);
  std::vector<graph::Event> events;
  events.reserve(count);
  double t = t0;
  for (size_t i = 0; i < count; ++i) {
    graph::Event e;
    e.src = static_cast<graph::NodeId>(rng.NextBounded(kNumNodes));
    e.dst = static_cast<graph::NodeId>(rng.NextBounded(kNumNodes));
    if (e.dst == e.src) e.dst = (e.src + 1) % kNumNodes;
    t += rng.NextUniform(0.1, 2.0);
    e.time = t;
    events.push_back(e);
  }
  return events;
}

/// Reference model pair with warm memory, plus the checkpoint the serving
/// engine loads. The reference encoder is left exactly in the serialized
/// state, so its forwards are the ground truth for the engine's answers.
struct Fixture {
  graph::TemporalGraph graph;
  Rng rng{42};
  std::unique_ptr<dgnn::DgnnEncoder> encoder;
  std::unique_ptr<dgnn::LinkPredictor> predictor;
  std::string checkpoint_path;

  explicit Fixture(const std::string& name, bool with_memory = true) {
    graph = graph::TemporalGraph::Create(kNumNodes, MakeEvents(7, 120, 0.0))
                .ValueOrDie();
    encoder =
        std::make_unique<dgnn::DgnnEncoder>(SmallConfig(), &graph, &rng);
    predictor = std::make_unique<dgnn::LinkPredictor>(
        SmallConfig().embed_dim, kPredictorHidden, &rng);
    {
      ts::InferenceModeGuard guard;
      encoder->ReplayEvents(graph.events(), /*batch_size=*/16);
    }
    checkpoint_path = ::testing::TempDir() + "serving_" + name + ".ckpt";
    WriteCheckpoint(checkpoint_path, with_memory);
  }

  void WriteCheckpoint(const std::string& path, bool with_memory) const {
    std::vector<ts::Tensor> params = encoder->Parameters();
    std::vector<ts::Tensor> dec = predictor->Parameters();
    params.insert(params.end(), dec.begin(), dec.end());
    ts::SectionWriter writer;
    writer.Add(ts::kParamsSection,
               ts::EncodeTensorList(params).ValueOrDie());
    if (with_memory) {
      std::string memory_bytes;
      encoder->memory().SerializeTo(&memory_bytes);
      writer.Add(train::kMemorySection, memory_bytes);
    }
    ASSERT_TRUE(writer.WriteAtomic(path).ok());
  }

  /// Direct (unserved) forward over the reference encoder.
  ts::Tensor DirectEmbed(const std::vector<graph::NodeId>& nodes,
                         double time) {
    ts::InferenceModeGuard guard;
    encoder->BeginBatch();
    return encoder->ComputeEmbeddings(
        nodes, std::vector<double>(nodes.size(), time));
  }
};

void ExpectBitIdentical(const ts::Tensor& a, const ts::Tensor& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<size_t>(a.size()) * sizeof(float)));
}

TEST(EmbeddingCacheTest, LruEvictionAndInvalidation) {
  serve::EmbeddingCache cache(2);
  std::vector<float> row;
  cache.Insert({1, 0.0, 0}, {1.0f});
  cache.Insert({2, 0.0, 0}, {2.0f});
  ASSERT_TRUE(cache.Lookup({1, 0.0, 0}, &row));  // 1 now most recent
  cache.Insert({3, 0.0, 0}, {3.0f});             // evicts 2 (LRU)
  EXPECT_FALSE(cache.Lookup({2, 0.0, 0}, &row));
  ASSERT_TRUE(cache.Lookup({3, 0.0, 0}, &row));
  EXPECT_EQ(row[0], 3.0f);
  EXPECT_EQ(cache.evictions(), 1);
  // Distinct time or version is a distinct key.
  EXPECT_FALSE(cache.Lookup({3, 1.0, 0}, &row));
  EXPECT_FALSE(cache.Lookup({3, 0.0, 1}, &row));
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.invalidations(), 2);
  EXPECT_FALSE(cache.Lookup({1, 0.0, 0}, &row));
}

TEST(EmbeddingCacheTest, ZeroCapacityDisables) {
  serve::EmbeddingCache cache(0);
  std::vector<float> row;
  cache.Insert({1, 0.0, 0}, {1.0f});
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.Lookup({1, 0.0, 0}, &row));
}

TEST(ServingEngineTest, LoadsParamsAndMemoryFrozen) {
  Fixture fx("load");
  auto result = serve::ServingEngine::FromCheckpoint(
      SmallConfig(), kPredictorHidden, &fx.graph, fx.checkpoint_path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto& engine = *result.value();

  std::vector<ts::Tensor> expected = fx.encoder->Parameters();
  std::vector<ts::Tensor> actual = engine.encoder().Parameters();
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ExpectBitIdentical(expected[i], actual[i]);
    EXPECT_FALSE(actual[i].requires_grad());
  }
  EXPECT_DOUBLE_EQ(engine.encoder().memory().StateNorm(),
                   fx.encoder->memory().StateNorm());
  EXPECT_TRUE(engine.has_predictor());
}

TEST(ServingEngineTest, RejectsMismatchedCheckpoints) {
  Fixture fx("reject");

  // Architecture mismatch: different memory width.
  dgnn::EncoderConfig wrong = SmallConfig();
  wrong.memory_dim = 16;
  auto r1 = serve::ServingEngine::FromCheckpoint(
      wrong, kPredictorHidden, &fx.graph, fx.checkpoint_path);
  EXPECT_FALSE(r1.ok());

  // Parameter-count mismatch: checkpoint carries a predictor, engine
  // built without one.
  auto r2 = serve::ServingEngine::FromCheckpoint(
      SmallConfig(), /*predictor_hidden=*/0, &fx.graph, fx.checkpoint_path);
  EXPECT_FALSE(r2.ok());

  // Corrupt container.
  const std::string garbage = ::testing::TempDir() + "serving_garbage.ckpt";
  std::ofstream(garbage, std::ios::binary) << "not a checkpoint";
  auto r3 = serve::ServingEngine::FromCheckpoint(
      SmallConfig(), kPredictorHidden, &fx.graph, garbage);
  EXPECT_FALSE(r3.ok());

  // Valid params section but truncated memory section.
  std::vector<ts::Tensor> params = fx.encoder->Parameters();
  std::vector<ts::Tensor> dec = fx.predictor->Parameters();
  params.insert(params.end(), dec.begin(), dec.end());
  std::string memory_bytes;
  fx.encoder->memory().SerializeTo(&memory_bytes);
  ts::SectionWriter writer;
  writer.Add(ts::kParamsSection, ts::EncodeTensorList(params).ValueOrDie());
  writer.Add(train::kMemorySection,
             memory_bytes.substr(0, memory_bytes.size() / 2));
  const std::string truncated =
      ::testing::TempDir() + "serving_truncated_mem.ckpt";
  ASSERT_TRUE(writer.WriteAtomic(truncated).ok());
  auto r4 = serve::ServingEngine::FromCheckpoint(
      SmallConfig(), kPredictorHidden, &fx.graph, truncated);
  EXPECT_FALSE(r4.ok());
}

// The acceptance bar of the serving engine: coalesced, cached, concurrent
// serving answers are bit-identical to a direct encoder forward — at one
// and at four kernel threads, cold cache and warm.
TEST(ServingEngineTest, BitIdenticalToDirectForwardAcrossThreadCounts) {
  Fixture fx("bitident");
  const double t_query = fx.graph.max_time() + 5.0;
  const std::vector<graph::NodeId> all_nodes = [] {
    std::vector<graph::NodeId> v;
    for (graph::NodeId i = 0; i < kNumNodes; ++i) v.push_back(i);
    return v;
  }();
  ts::Tensor direct = fx.DirectEmbed(all_nodes, t_query);

  for (int num_threads : {1, 4}) {
    SCOPED_TRACE("num_threads=" + std::to_string(num_threads));
    util::ThreadPool::SetGlobalNumThreads(num_threads);

    serve::ServingOptions options;
    options.max_batch = 8;
    options.max_wait_micros = 2000;  // encourage coalescing
    auto engine = serve::ServingEngine::FromCheckpoint(
                      SmallConfig(), kPredictorHidden, &fx.graph,
                      fx.checkpoint_path, options)
                      .TakeValue();

    // Four client threads race single-node requests; the executor is free
    // to coalesce them into arbitrary batch compositions.
    for (int round = 0; round < 2; ++round) {  // round 1 hits a warm cache
      SCOPED_TRACE("round=" + std::to_string(round));
      std::vector<ts::Tensor> rows(static_cast<size_t>(kNumNodes));
      std::vector<std::thread> clients;
      for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
          for (graph::NodeId v = c; v < kNumNodes; v += 4) {
            auto r = engine->Embed({v}, t_query);
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            rows[static_cast<size_t>(v)] = r.TakeValue();
          }
        });
      }
      for (auto& c : clients) c.join();
      for (graph::NodeId v = 0; v < kNumNodes; ++v) {
        const ts::Tensor& row = rows[static_cast<size_t>(v)];
        ASSERT_EQ(row.rows(), 1);
        EXPECT_FALSE(row.requires_grad());
        ASSERT_EQ(0, std::memcmp(row.data(),
                                 direct.data() + v * direct.cols(),
                                 static_cast<size_t>(direct.cols()) *
                                     sizeof(float)))
            << "row " << v << " differs from the direct forward";
      }
    }
    EXPECT_GT(engine->cache_hits(), 0);  // round 2 came from the cache

    // One multi-node request must equal the same direct forward too.
    auto batched = engine->Embed(all_nodes, t_query);
    ASSERT_TRUE(batched.ok());
    ExpectBitIdentical(batched.value(), direct);
  }
  util::ThreadPool::SetGlobalNumThreads(1);
}

TEST(ServingEngineTest, ScoreLinksMatchesDirectPredictor) {
  Fixture fx("score");
  const double t_query = fx.graph.max_time() + 1.0;
  auto engine = serve::ServingEngine::FromCheckpoint(
                    SmallConfig(), kPredictorHidden, &fx.graph,
                    fx.checkpoint_path)
                    .TakeValue();
  const std::vector<graph::NodeId> srcs = {0, 3, 7, 7};
  const std::vector<graph::NodeId> dsts = {1, 4, 8, 2};
  auto probs = engine->ScoreLinks(srcs, dsts, t_query);
  ASSERT_TRUE(probs.ok()) << probs.status().ToString();
  ASSERT_EQ(probs.value().size(), srcs.size());

  ts::InferenceModeGuard guard;
  ts::Tensor z_src = fx.DirectEmbed(srcs, t_query);
  ts::Tensor z_dst = fx.DirectEmbed(dsts, t_query);
  ts::Tensor expected =
      ts::Sigmoid(fx.predictor->ForwardLogits(z_src, z_dst));
  for (size_t i = 0; i < srcs.size(); ++i) {
    EXPECT_EQ(probs.value()[i],
              static_cast<double>(expected.at(static_cast<int64_t>(i), 0)));
    EXPECT_GT(probs.value()[i], 0.0);
    EXPECT_LT(probs.value()[i], 1.0);
  }

  // Mis-shaped and out-of-range inputs are rejected up front.
  EXPECT_FALSE(engine->ScoreLinks({0, 1}, {2}, t_query).ok());
  EXPECT_FALSE(engine->ScoreLinks({kNumNodes}, {0}, t_query).ok());

  // An engine without a predictor refuses to score.
  Fixture fx2("score_nopred");
  ts::SectionWriter writer;
  writer.Add(ts::kParamsSection,
             ts::EncodeTensorList(fx2.encoder->Parameters()).ValueOrDie());
  const std::string enc_only =
      ::testing::TempDir() + "serving_enc_only.ckpt";
  ASSERT_TRUE(writer.WriteAtomic(enc_only).ok());
  auto bare = serve::ServingEngine::FromCheckpoint(
                  SmallConfig(), /*predictor_hidden=*/0, &fx2.graph,
                  enc_only)
                  .TakeValue();
  EXPECT_FALSE(bare->has_predictor());
  EXPECT_FALSE(bare->ScoreLinks({0}, {1}, t_query).ok());
}

TEST(ServingEngineTest, AdvanceInvalidatesCacheAndMatchesReplayedEncoder) {
  Fixture fx("advance");
  const double t0 = fx.graph.max_time();
  auto engine = serve::ServingEngine::FromCheckpoint(
                    SmallConfig(), kPredictorHidden, &fx.graph,
                    fx.checkpoint_path)
                    .TakeValue();

  const std::vector<graph::NodeId> probe = {0, 1, 2, 3};
  const double t_query = t0 + 50.0;
  ts::Tensor before = engine->Embed(probe, t_query).TakeValue();
  ExpectBitIdentical(before, fx.DirectEmbed(probe, t_query));

  const uint64_t version_before = engine->memory_version();
  EXPECT_TRUE(engine->Advance({}).ok());  // no-op advance
  EXPECT_EQ(engine->memory_version(), version_before);

  std::vector<graph::Event> fresh = MakeEvents(99, kAdvanceEvents, t0 + 1.0);
  ASSERT_TRUE(engine->Advance(fresh).ok());
  EXPECT_GT(engine->memory_version(), version_before);
  EXPECT_GT(engine->cache_invalidations(), 0);

  // Out-of-range events are rejected without touching memory.
  graph::Event bad;
  bad.src = kNumNodes;
  bad.dst = 0;
  bad.time = t0 + 100.0;
  const uint64_t version_mid = engine->memory_version();
  EXPECT_FALSE(engine->Advance({bad}).ok());
  EXPECT_EQ(engine->memory_version(), version_mid);

  // Post-advance embeddings match a reference encoder that replayed the
  // same events (kAdvanceEvents < 128, so replay batching is identical),
  // and are served fresh, not from the stale cache.
  {
    ts::InferenceModeGuard guard;
    fx.encoder->ReplayEvents(fresh, /*batch_size=*/128);
  }
  ts::Tensor after = engine->Embed(probe, t_query).TakeValue();
  ExpectBitIdentical(after, fx.DirectEmbed(probe, t_query));
  EXPECT_NE(0, std::memcmp(before.data(), after.data(),
                           static_cast<size_t>(before.size()) *
                               sizeof(float)))
      << "advance should change the probe nodes' embeddings";
}

TEST(ServingEngineTest, CacheEvictionUnderTinyCapacity) {
  Fixture fx("evict");
  serve::ServingOptions options;
  options.cache_capacity = 2;
  options.max_batch = 1;  // no coalescing: one node per executor batch
  auto engine = serve::ServingEngine::FromCheckpoint(
                    SmallConfig(), kPredictorHidden, &fx.graph,
                    fx.checkpoint_path, options)
                    .TakeValue();
  const double t = fx.graph.max_time() + 1.0;
  for (graph::NodeId v : {0, 1, 2, 0}) {  // 0 evicted by 2, recomputed
    ASSERT_TRUE(engine->Embed({v}, t).ok());
  }
  EXPECT_GT(engine->cache_evictions(), 0);
  EXPECT_EQ(engine->cache_hits(), 0);
  EXPECT_EQ(engine->cache_misses(), 4);
}

TEST(ServingEngineTest, ShutdownRejectsNewRequestsAndIsIdempotent) {
  Fixture fx("shutdown");
  auto engine = serve::ServingEngine::FromCheckpoint(
                    SmallConfig(), kPredictorHidden, &fx.graph,
                    fx.checkpoint_path)
                    .TakeValue();
  ASSERT_TRUE(engine->Embed({0}, 1.0).ok());
  engine->Shutdown();
  engine->Shutdown();  // idempotent
  EXPECT_FALSE(engine->Embed({0}, 1.0).ok());
  EXPECT_FALSE(engine->ScoreLinks({0}, {1}, 1.0).ok());
  EXPECT_FALSE(engine->Advance(MakeEvents(5, 3, 100.0)).ok());
}

TEST(ServingEngineTest, ServingRetainsNoAutogradGraph) {
  Fixture fx("noleak");
  auto engine = serve::ServingEngine::FromCheckpoint(
                    SmallConfig(), kPredictorHidden, &fx.graph,
                    fx.checkpoint_path)
                    .TakeValue();
  const double t = fx.graph.max_time() + 1.0;
  ASSERT_TRUE(engine->Embed({0, 1}, t).ok());  // warm caches
  const int64_t live_before = ts::LiveTensorCount();
  for (int i = 0; i < 3; ++i) {
    auto r = engine->Embed({0, 1}, t);  // cache hits: no new retained state
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(ts::LiveTensorCount(), live_before);
}

}  // namespace
}  // namespace cpdg
